//! Remap explorer: run every paper figure through the pipeline and
//! print a one-line verdict — a tour of the whole reproduction.
//!
//! Run with: `cargo run --example remap_explorer`
//! Add a figure name to dump its remapping graph:
//! `cargo run --example remap_explorer -- fig10`

use hpfc::{compile, compile_and_run, figures, CompileOptions, ExecConfig};

fn main() {
    let arg = std::env::args().nth(1);
    if let Some(name) = arg {
        dump(&name);
        return;
    }
    println!(
        "{:<8} {:>7} {:>8} {:>8} {:>9} | {:>11} {:>11}",
        "figure", "slots", "removed", "trivial", "restores", "naive B", "opt B"
    );
    for (name, src) in figures::all() {
        let naive = compile(src, &CompileOptions::naive()).expect(name);
        let opt = compile(src, &CompileOptions::default()).expect(name);
        let exec = ExecConfig::default().with_scalar("m", 1.0).with_scalar("t", 3.0)
            .with_scalar("s", 1.0);
        let (_, rn) = compile_and_run(src, &CompileOptions::naive(), exec.clone()).unwrap();
        let (_, ro) = compile_and_run(src, &CompileOptions::default(), exec).unwrap();
        assert_eq!(rn.arrays, ro.arrays, "{name}: optimization changed results");
        let u = opt.main();
        println!(
            "{:<8} {:>7} {:>8} {:>8} {:>9} | {:>11} {:>11}",
            name,
            u.opt_stats.total,
            u.opt_stats.removed,
            u.opt_stats.trivial,
            naive.main().codegen_stats.save_restores,
            rn.stats.bytes,
            ro.stats.bytes,
        );
    }
    println!();
    println!("Flow-level rejections (expected errors):");
    for (name, src) in
        [("fig5", figures::FIG5_AMBIGUOUS), ("fig21", figures::FIG21_MULTI_LEAVING)]
    {
        match compile(src, &CompileOptions::default()) {
            Err(errs) => println!("  {name}: {}", errs[0]),
            Ok(_) => println!("  {name}: UNEXPECTEDLY compiled"),
        }
    }
}

fn dump(name: &str) {
    let src = figures::all()
        .into_iter()
        .find(|(n, _)| *n == name)
        .map(|(_, s)| s)
        .unwrap_or_else(|| panic!("unknown figure `{name}`"));
    let opt = compile(src, &CompileOptions::default()).expect("compiles");
    let u = opt.main();
    println!("=== {name}: optimized remapping graph ===");
    println!("{}", hpfc::rgraph::dot::to_text(&u.rg, &u.unit));
    println!("=== {name}: generated program ===");
    println!("{}", hpfc::codegen::render::program_text(&u.program));
}
