//! LU-style linear algebra — the paper's third motivating workload
//! (Sec. 1 cites "linear algebra solvers"): factorization phases want a
//! CYCLIC mapping for load balance, triangular-solve phases want BLOCK
//! for locality, so phase changes are remappings.
//!
//! Run with: `cargo run --example lu_solver`

use hpfc::{compile, compile_and_run, figures, CompileOptions, ExecConfig};

fn main() {
    let src = figures::LU_KERNEL;
    println!("=== source ===\n{src}");

    let compiled = compile(src, &CompileOptions::default()).expect("compiles");
    let u = compiled.main();
    println!("=== optimized remapping graph ===");
    println!("{}", hpfc::rgraph::dot::to_text(&u.rg, &u.unit));

    let (_, naive) =
        compile_and_run(src, &CompileOptions::naive(), ExecConfig::default()).expect("naive");
    let (_, opt) =
        compile_and_run(src, &CompileOptions::default(), ExecConfig::default()).expect("opt");
    assert_eq!(naive.arrays["m"], opt.arrays["m"]);

    println!("=== simulated remapping traffic ===");
    println!("naive:     {} bytes in {} messages", naive.stats.bytes, naive.stats.messages);
    println!("optimized: {} bytes in {} messages", opt.stats.bytes, opt.stats.messages);
    println!();
    println!("Both phase changes move data (the matrix is read and written in");
    println!("both mappings); the optimizer's win here is dropping the useless");
    println!("entry instantiation and the exit restores of unused copies, and");
    println!("- on the factorization loop of a full solver - the same");
    println!("loop-invariant motion as the ADI example.");
}
