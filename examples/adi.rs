//! ADI (Alternating Direction Implicit) — the paper's motivating
//! workload (Sec. 1 cites ADI first; Fig. 10's loop is "typical of
//! ADI"): row sweeps want a row-block mapping, column sweeps a
//! column-block one, so each time step remaps the grid twice.
//!
//! This example generates the kernel at several sizes, compiles it
//! naive vs optimized (+ loop motion), and prints a table of simulated
//! remapping traffic.
//!
//! Run with: `cargo run --example adi`

use hpfc::{compile_and_run, figures, CompileOptions, ExecConfig};

fn main() {
    println!("ADI kernel: per-iteration (block,*) <-> (*,block) remapping");
    println!(
        "{:>6} {:>4} {:>3} | {:>10} {:>12} | {:>10} {:>12} | {:>7}",
        "n", "P", "t", "naive msgs", "naive bytes", "opt msgs", "opt bytes", "saved"
    );
    for (n, p) in [(32u64, 4u64), (64, 4), (64, 8)] {
        let t = 4.0;
        let src = figures::scaled("adi", n, p).unwrap();
        let exec = ExecConfig::default().with_scalar("t", t);

        let (_, naive) =
            compile_and_run(&src, &CompileOptions::naive(), exec.clone()).expect("naive");
        let (_, opt) = compile_and_run(&src, &CompileOptions::max(), exec).expect("optimized");

        assert_eq!(naive.arrays["u"], opt.arrays["u"], "same numeric results");
        let saved = 100.0 * (1.0 - opt.stats.bytes as f64 / naive.stats.bytes.max(1) as f64);
        println!(
            "{:>6} {:>4} {:>3} | {:>10} {:>12} | {:>10} {:>12} | {:>6.1}%",
            n, p, t, naive.stats.messages, naive.stats.bytes, opt.stats.messages,
            opt.stats.bytes, saved
        );
    }
    println!();
    println!("The sweeps themselves need both remappings every iteration, so the");
    println!("big win here is the runtime status check plus the removal of the");
    println!("useless exit-restore; kernels with read-only phases (see the fft2d");
    println!("example) additionally reuse live copies.");
}
