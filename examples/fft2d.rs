//! 2-D FFT — the paper's second motivating workload (ref. [10]:
//! "Implementing Fast Fourier Transforms on Distributed-Memory
//! Multiprocessors using Data Redistributions"): transform rows under a
//! row mapping, redistribute (a transpose in disguise), transform the
//! other axis, redistribute back.
//!
//! The key optimization visible here is **live-copy reuse** (App. D):
//! the second phase only *reads* the column-mapped copy, so remapping
//! back to the row mapping finds the original copy still live — zero
//! communication for the return trip.
//!
//! Run with: `cargo run --example fft2d`

use hpfc::{compile_and_run, figures, CompileOptions, ExecConfig};

fn main() {
    println!("2-D FFT transpose-by-redistribution, (block,*) -> (*,block) -> (block,*)");
    println!(
        "{:>6} {:>4} | {:>12} {:>12} | {:>12} {:>12} {:>6}",
        "n", "P", "naive bytes", "naive msgs", "opt bytes", "opt msgs", "reuse"
    );
    for (n, p) in [(32u64, 4u64), (64, 4), (128, 8)] {
        let src = figures::scaled("fft", n, p).unwrap();
        let (_, naive) = compile_and_run(&src, &CompileOptions::naive(), ExecConfig::default())
            .expect("naive");
        let (_, opt) = compile_and_run(&src, &CompileOptions::default(), ExecConfig::default())
            .expect("optimized");
        assert_eq!(naive.arrays["f"], opt.arrays["f"]);
        println!(
            "{:>6} {:>4} | {:>12} {:>12} | {:>12} {:>12} {:>6}",
            n,
            p,
            naive.stats.bytes,
            naive.stats.messages,
            opt.stats.bytes,
            opt.stats.messages,
            opt.stats.remaps_reused_live,
        );
    }
    println!();
    println!("Optimized traffic is half the naive traffic: the forward transpose");
    println!("must move (P-1)/P of the array, but the way back reuses the live");
    println!("row-mapped copy (the second phase only read the column copy).");
}
