//! Quickstart: compile the paper's running example (Fig. 10), inspect
//! the remapping graph before/after optimization, look at the generated
//! copy code, and execute it on the simulated distributed machine.
//!
//! Run with: `cargo run --example quickstart`

use hpfc::{compile, execute, CompileOptions, ExecConfig};

fn main() {
    let src = hpfc::figures::FIG10_ADI;
    println!("=== source ===\n{src}");

    // 1. Compile without optimizations: the pure array-copy translation.
    let naive = compile(src, &CompileOptions::naive()).expect("compiles");
    println!("=== remapping graph (naive) ===");
    println!("{}", hpfc::rgraph::dot::to_text(&naive.main().rg, &naive.main().unit));

    // 2. Compile with the App. C/D optimizations.
    let opt = compile(src, &CompileOptions::default()).expect("compiles");
    let u = opt.main();
    println!("=== remapping graph (optimized) ===");
    println!("{}", hpfc::rgraph::dot::to_text(&u.rg, &u.unit));
    println!(
        "optimizer: {} slots, {} removed, {} trivial",
        u.opt_stats.total, u.opt_stats.removed, u.opt_stats.trivial
    );

    // 3. The generated static program (Fig. 19/20 copy code).
    println!("=== generated static program ===");
    println!("{}", hpfc::codegen::render::program_text(&u.program));

    // 4. Execute both on the simulator and compare remapping traffic.
    let exec = ExecConfig::default().with_scalar("m", 1.0).with_scalar("t", 4.0);
    let rn = execute(&naive.programs(), "remap", exec.clone()).expect("naive executes cleanly");
    let ro = execute(&opt.programs(), "remap", exec).expect("optimized executes cleanly");
    println!("=== simulated remapping traffic (4 processors, t = 4) ===");
    println!(
        "naive:     {:>6} messages, {:>8} bytes, {:>8.1} us",
        rn.stats.messages, rn.stats.bytes, rn.stats.time_us
    );
    println!(
        "optimized: {:>6} messages, {:>8} bytes, {:>8.1} us",
        ro.stats.messages, ro.stats.bytes, ro.stats.time_us
    );
    assert_eq!(rn.arrays, ro.arrays, "optimizations preserve results");
    println!("results identical: yes");
}
