//! Message-level SPMD codegen, end to end: compile a 2-D block-cyclic
//! remap, print the generated static program (per-pair packed send/recv
//! loops, caterpillar rounds), then execute it and report the simulated
//! communication — the README's worked example.
//!
//! Run with: `cargo run --example spmd_remap`

use hpfc::{compile, execute, CompileOptions, ExecConfig};

const SRC: &str = "\
subroutine demo
  real :: a(8, 8)
!hpf$ processors p(2, 2)
!hpf$ dynamic a
!hpf$ distribute a(block, block) onto p
  a = 1.0
!hpf$ redistribute a(cyclic(2), cyclic) onto p
  x = a(3, 3)
end subroutine
";

fn main() {
    let compiled = compile(SRC, &CompileOptions::default()).expect("compiles");
    let program = &compiled.main().program;

    println!("=== generated static program ===");
    println!("{}", hpfc::codegen::render::program_text(program));

    let result = execute(&compiled.programs(), "demo", ExecConfig::default())
        .expect("demo executes cleanly");
    println!("=== simulated execution ===");
    println!("remaps performed:   {}", result.stats.remaps_performed);
    println!("messages:           {}", result.stats.messages);
    println!("bytes on the wire:  {}", result.stats.bytes);
    println!("bytes moved:        {} ({} runs)", result.stats.bytes_moved, result.stats.runs_copied);
    println!("local elements:     {}", result.stats.local_elements);
    println!("plans computed:     {}  (runtime replans nothing: the cache", result.stats.plans_computed);
    println!("                        is seeded from the lowered copy programs)");
    println!("simulated time:     {:.1} us", result.stats.time_us);
    println!("peak memory/proc:   {} bytes", result.peak_mem_bytes);
    println!("summary:            {}", result.stats.summary());
}
