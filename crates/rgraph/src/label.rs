//! Vertex labels of the remapping graph (paper App. A, Fig. 9).

use std::collections::BTreeSet;

use hpfc_mapping::VersionId;

/// The conservative use qualifier `U_A(v)`: how the copy leaving vertex
/// `v` may be used before the next remapping of the array.
///
/// The paper's order — "qualifiers supersede one another, once assigned
/// a qualifier can only be updated to a stronger one" — is the derived
/// `Ord`: `N < D < R < W`, with join = max.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum UseInfo {
    /// Never referenced: the remapping is useless (App. C removes it).
    #[default]
    N,
    /// Fully redefined before any use: the copy is needed but its
    /// *values* are not — no communication (Fig. 19 skips the copy).
    D,
    /// Only read: the reaching copies stay valid and may be reused
    /// later without communication (App. D).
    R,
    /// Maybe modified: all other copies become stale.
    W,
}

impl UseInfo {
    /// Join (may): the stronger qualifier wins.
    pub fn join(self, other: UseInfo) -> UseInfo {
        self.max(other)
    }

    /// Sequence this node's own access (`of`) before the summarized
    /// later uses (`after`), walking backward:
    ///
    /// * no access          → `after`;
    /// * read **and** write → `W` (the copy is used and invalidates
    ///   the others);
    /// * read only          → `R` if nothing stronger follows, else `W`
    ///   (read-then-modified);
    /// * full write, no read → `D` (whatever follows sees new values);
    /// * partial write       → `W`.
    pub fn seq(of: Option<Self>, after: Self) -> Self {
        match of {
            None | Some(UseInfo::N) => after,
            Some(UseInfo::D) => UseInfo::D,
            Some(UseInfo::R) => match after {
                // Only reads (or nothing) follow: the copy is read-only.
                UseInfo::N | UseInfo::R => UseInfo::R,
                // Redefined or written later in the same region: the
                // copy is both used and invalidates the others.
                UseInfo::D | UseInfo::W => UseInfo::W,
            },
            Some(UseInfo::W) => UseInfo::W,
        }
    }
}

impl std::fmt::Display for UseInfo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let c = match self {
            UseInfo::N => 'N',
            UseInfo::D => 'D',
            UseInfo::R => 'R',
            UseInfo::W => 'W',
        };
        write!(f, "{c}")
    }
}

/// The leaving side of a label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Leaving {
    /// A single statically known leaving copy — the common case the
    /// paper's presentation assumes.
    One(VersionId),
    /// A status-restore (the paper's Fig. 18): the vertex restores
    /// whichever mapping reached the paired `ArgIn`, dynamically. Only
    /// `ArgOut` vertices may carry this.
    Restore(BTreeSet<VersionId>),
}

impl Leaving {
    /// The versions this leaving side can produce.
    pub fn versions(&self) -> Vec<VersionId> {
        match self {
            Leaving::One(v) => vec![*v],
            Leaving::Restore(s) => s.iter().copied().collect(),
        }
    }

    /// The single version, if statically known.
    pub fn single(&self) -> Option<VersionId> {
        match self {
            Leaving::One(v) => Some(*v),
            Leaving::Restore(s) if s.len() == 1 => s.iter().next().copied(),
            Leaving::Restore(_) => None,
        }
    }
}

/// Per-(vertex, array) label: the paper's Fig. 9 `A: {1,2} → 3, R`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Label {
    /// `L_A(v)` — `None` once removed by App. C (or for arrays whose
    /// mapping merely flows through a status-restore).
    pub leaving: Option<Leaving>,
    /// What `leaving` was before optimization (for reporting).
    pub original_leaving: Option<Leaving>,
    /// `R_A(v)` — versions that may reach the vertex.
    pub reaching: BTreeSet<VersionId>,
    /// Versions that may reach the vertex on executions where the
    /// directive does *not* impact the array (a redistribution of a
    /// template the array is only conditionally aligned with — the
    /// Fig. 5/6 partial-impact situation). These pass through
    /// unchanged: no copy, and they must survive the vertex's cleaning.
    pub passthrough: BTreeSet<VersionId>,
    /// `U_A(v)`.
    pub use_info: UseInfo,
    /// `M_A(v)` — copies that may be live after `v` *and* useful later
    /// (App. D); filled by [`crate::optimize::compute_may_live`].
    pub may_live: BTreeSet<VersionId>,
    /// The array's *values* are dead when they reach this vertex
    /// (downstream of a `KILL`): the copy needs no communication.
    pub values_dead: bool,
}

impl Label {
    /// A fresh label.
    pub fn new(leaving: Option<Leaving>, reaching: BTreeSet<VersionId>) -> Self {
        Label {
            original_leaving: leaving.clone(),
            leaving,
            reaching,
            passthrough: BTreeSet::new(),
            use_info: UseInfo::N,
            may_live: BTreeSet::new(),
            values_dead: false,
        }
    }

    /// Whether the remapping at this vertex is statically a no-op: one
    /// reaching copy, equal to the (single) leaving copy.
    pub fn is_trivial(&self) -> bool {
        match &self.leaving {
            Some(l) => {
                self.reaching.len() == 1
                    && l.single().is_some_and(|v| self.reaching.contains(&v))
            }
            None => false,
        }
    }

    /// Whether App. C removed this remapping.
    pub fn is_removed(&self) -> bool {
        self.leaving.is_none() && self.original_leaving.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpfc_mapping::ArrayId;

    fn v(i: u32) -> VersionId {
        VersionId { array: ArrayId(0), index: i }
    }

    #[test]
    fn qualifier_order_matches_paper() {
        assert!(UseInfo::N < UseInfo::D);
        assert!(UseInfo::D < UseInfo::R);
        assert!(UseInfo::R < UseInfo::W);
        assert_eq!(UseInfo::R.join(UseInfo::D), UseInfo::R);
        assert_eq!(UseInfo::N.join(UseInfo::W), UseInfo::W);
    }

    #[test]
    fn seq_rules() {
        use UseInfo::*;
        // No access: transparent.
        assert_eq!(UseInfo::seq(None, R), R);
        // Full write masks anything later.
        assert_eq!(UseInfo::seq(Some(D), W), D);
        assert_eq!(UseInfo::seq(Some(D), N), D);
        // Read stays R over weak suffixes, escalates to W over strong.
        assert_eq!(UseInfo::seq(Some(R), N), R);
        assert_eq!(UseInfo::seq(Some(R), R), R);
        assert_eq!(UseInfo::seq(Some(R), D), W);
        assert_eq!(UseInfo::seq(Some(R), W), W);
        // Partial write is W.
        assert_eq!(UseInfo::seq(Some(W), N), W);
    }

    #[test]
    fn trivial_detection() {
        let mut l = Label::new(Some(Leaving::One(v(0))), [v(0)].into_iter().collect());
        assert!(l.is_trivial());
        l.reaching.insert(v(1));
        assert!(!l.is_trivial());
        let r = Label::new(Some(Leaving::One(v(2))), [v(0)].into_iter().collect());
        assert!(!r.is_trivial());
    }

    #[test]
    fn removal_flags() {
        let mut l = Label::new(Some(Leaving::One(v(1))), BTreeSet::new());
        assert!(!l.is_removed());
        l.leaving = None;
        assert!(l.is_removed());
    }

    #[test]
    fn restore_versions() {
        let s: BTreeSet<_> = [v(1), v(2)].into_iter().collect();
        let l = Leaving::Restore(s);
        assert_eq!(l.versions().len(), 2);
        assert_eq!(l.single(), None);
    }
}
