//! Remapping-graph construction — the dataflow formulation of App. B.
//!
//! Four passes over the CFG, each a standard may-problem solved with
//! the shared worklist solver:
//!
//! 1. **Reaching/leaving mappings** (may-forward): per-array sets of raw
//!    `(alignment, distribution)` pairs, updated by the `impact` of each
//!    remapping statement. Distribution state is tracked per template so
//!    a `REALIGN` picks up the target template's current distribution.
//! 2. **Use summarization** (may-backward): folds per-node accesses into
//!    the `N < D < R < W` qualifiers between remapping vertices.
//! 3. **Remapped-after** (may-backward): which remapping vertex comes
//!    next for each array — the edges of `G_R`.
//! 4. **Live values** (may-forward): `KILL` support — whether the
//!    array's *values* may still be live when they reach a vertex.
//!
//! Along the way every array reference is re-pointed at its statically
//! known version (the paper's Sec. 2 translation) and the two
//! flow-level restrictions are enforced (ambiguous references, several
//! leaving mappings).

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, HashMap};

use hpfc_cfg::dataflow::{solve, Dataflow, Direction};
use hpfc_cfg::effects::node_effects;
use hpfc_cfg::graph::{build_cfg, Cfg, NodeId, NodeKind};
use hpfc_lang::ast::Intent;
use hpfc_lang::diag::{codes, Diagnostic};
use hpfc_lang::sema::RoutineUnit;
use hpfc_mapping::{
    ArrayId, DimFormat, Distribution, Mapping, TemplateId, VersionId, VersionTable,
};

use crate::label::{Label, Leaving, UseInfo};

/// Index of a vertex within [`Rg::vertices`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VertexId(pub u32);

impl VertexId {
    /// As usize for indexing.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// The remapping graph of one routine, plus the reference-version
/// tagging the code generator consumes.
#[derive(Debug, Clone)]
pub struct Rg {
    /// The underlying CFG (owned: later phases need node kinds/spans).
    pub cfg: Cfg,
    /// `V_R` in reverse-postorder (so `v_c` is first, `v_e` last or
    /// close to it); `VertexId` indexes into this.
    pub vertices: Vec<NodeId>,
    /// Per-vertex, per-array labels (the paper's `S(v)` is the key set).
    pub labels: Vec<BTreeMap<ArrayId, Label>>,
    /// Edges `v → w` with the arrays remapped at both ends and untouched
    /// in between.
    pub edges: BTreeMap<VertexId, BTreeMap<VertexId, BTreeSet<ArrayId>>>,
    /// Reverse edges (same labels).
    pub redges: BTreeMap<VertexId, BTreeMap<VertexId, BTreeSet<ArrayId>>>,
    /// The interned array versions (the paper's `A_0, A_1, …`).
    pub versions: VersionTable,
    /// For every referencing CFG node: the statically known version of
    /// each array it touches.
    pub ref_versions: BTreeMap<(NodeId, ArrayId), VersionId>,
}

impl Rg {
    /// Vertex index of a CFG node, if it is a remapping vertex.
    pub fn vertex_of(&self, n: NodeId) -> Option<VertexId> {
        self.vertices.iter().position(|&x| x == n).map(|i| VertexId(i as u32))
    }

    /// CFG node of a vertex.
    pub fn node_of(&self, v: VertexId) -> NodeId {
        self.vertices[v.idx()]
    }

    /// The label of array `a` at vertex `v`, if `a ∈ S(v)`.
    pub fn label(&self, v: VertexId, a: ArrayId) -> Option<&Label> {
        self.labels[v.idx()].get(&a)
    }

    /// Vertex ids in order.
    pub fn vertex_ids(&self) -> impl Iterator<Item = VertexId> {
        (0..self.vertices.len() as u32).map(VertexId)
    }

    /// Predecessor vertices of `v` for array `a` (edges labelled `a`).
    pub fn preds_for(&self, v: VertexId, a: ArrayId) -> Vec<VertexId> {
        self.redges
            .get(&v)
            .map(|m| {
                m.iter().filter(|(_, arrays)| arrays.contains(&a)).map(|(p, _)| *p).collect()
            })
            .unwrap_or_default()
    }

    /// Successor vertices of `v` for array `a`.
    pub fn succs_for(&self, v: VertexId, a: ArrayId) -> Vec<VertexId> {
        self.edges
            .get(&v)
            .map(|m| {
                m.iter().filter(|(_, arrays)| arrays.contains(&a)).map(|(s, _)| *s).collect()
            })
            .unwrap_or_default()
    }

    /// Total number of (vertex, array) remapping slots, before any
    /// optimization (the paper's per-array remapping count).
    pub fn remapping_count(&self) -> usize {
        self.labels.iter().map(|m| m.len()).sum()
    }
}

/// Fig. 22 — use qualifiers attached to dummy arguments at `v_c` / `v_e`
/// from the `INTENT` attribute.
pub fn intent_use_labels(intent: Intent) -> (UseInfo, UseInfo) {
    match intent {
        Intent::In => (UseInfo::D, UseInfo::N),
        Intent::InOut => (UseInfo::D, UseInfo::W),
        Intent::Out => (UseInfo::N, UseInfo::W),
    }
}

/// Build the remapping graph of a routine (constructs the CFG first).
pub fn build(unit: &RoutineUnit) -> Result<Rg, Vec<Diagnostic>> {
    let cfg = build_cfg(unit)?;
    build_from_cfg(unit, cfg)
}

// ---------------------------------------------------------------------
// Pass 1: reaching/leaving mapping propagation.
// ---------------------------------------------------------------------

type Key = u32;

#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct MapState {
    arrays: BTreeMap<ArrayId, BTreeSet<Key>>,
    templates: BTreeMap<TemplateId, BTreeSet<Key>>,
}

#[derive(Default)]
struct Interners {
    maps: Vec<Mapping>,
    map_idx: HashMap<Mapping, Key>,
    dists: Vec<Distribution>,
    dist_idx: HashMap<Distribution, Key>,
}

impl Interners {
    fn map(&mut self, m: &Mapping) -> Key {
        if let Some(&k) = self.map_idx.get(m) {
            return k;
        }
        let k = self.maps.len() as Key;
        self.maps.push(m.clone());
        self.map_idx.insert(m.clone(), k);
        k
    }
    fn dist(&mut self, d: &Distribution) -> Key {
        if let Some(&k) = self.dist_idx.get(d) {
            return k;
        }
        let k = self.dists.len() as Key;
        self.dists.push(d.clone());
        self.dist_idx.insert(d.clone(), k);
        k
    }
}

struct MapFlow<'a> {
    unit: &'a RoutineUnit,
    cfg: &'a Cfg,
    interners: RefCell<Interners>,
    dummies: BTreeSet<ArrayId>,
}

impl<'a> MapFlow<'a> {
    fn initial_key(&self, a: ArrayId) -> Key {
        self.interners.borrow_mut().map(&self.unit.initial[&a])
    }

    fn template_initial(&self, t: TemplateId) -> Distribution {
        self.unit.template_dist.get(&t).cloned().unwrap_or_else(|| {
            Distribution::new(
                self.unit.default_grid,
                vec![DimFormat::Collapsed; self.unit.env.template(t).shape.rank()],
            )
        })
    }
}

impl<'a> Dataflow for MapFlow<'a> {
    type Fact = MapState;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn bottom(&self) -> MapState {
        MapState::default()
    }

    fn join(&self, a: &mut MapState, b: &MapState) -> bool {
        let mut changed = false;
        for (k, s) in &b.arrays {
            let e = a.arrays.entry(*k).or_default();
            for x in s {
                changed |= e.insert(*x);
            }
        }
        for (k, s) in &b.templates {
            let e = a.templates.entry(*k).or_default();
            for x in s {
                changed |= e.insert(*x);
            }
        }
        changed
    }

    fn transfer(&self, node: NodeId, input: &MapState, outs: &[MapState]) -> MapState {
        let mut st = input.clone();
        match &self.cfg.node(node).kind {
            NodeKind::CallCtx => {
                // Seed every template's current distribution and the
                // dummies' initial mappings.
                let mut int = self.interners.borrow_mut();
                for t in self.unit.env.templates() {
                    let d = self.template_initial(t.id);
                    st.templates.insert(t.id, [int.dist(&d)].into());
                }
                drop(int);
                for &a in &self.dummies {
                    let k = self.initial_key(a);
                    st.arrays.insert(a, [k].into());
                }
            }
            NodeKind::Entry => {
                for info in self.unit.env.arrays() {
                    if !self.dummies.contains(&info.id) {
                        let k = self.initial_key(info.id);
                        st.arrays.insert(info.id, [k].into());
                    }
                }
            }
            NodeKind::Exit => {
                // Dummies are restored to their declared mapping.
                for &a in &self.dummies {
                    let k = self.initial_key(a);
                    st.arrays.insert(a, [k].into());
                }
            }
            NodeKind::Realign { pairs } => {
                let mut int = self.interners.borrow_mut();
                for (a, al) in pairs {
                    let dists: Vec<Distribution> = st
                        .templates
                        .get(&al.template)
                        .map(|s| s.iter().map(|&k| int.dists[k as usize].clone()).collect())
                        .unwrap_or_else(|| vec![self.template_initial(al.template)]);
                    let keys: BTreeSet<Key> = dists
                        .iter()
                        .map(|d| int.map(&Mapping { align: al.clone(), dist: d.clone() }))
                        .collect();
                    st.arrays.insert(*a, keys);
                }
            }
            NodeKind::Redistribute { template, dist } => {
                let mut int = self.interners.borrow_mut();
                let dk = int.dist(dist);
                st.templates.insert(*template, [dk].into());
                let arrays: Vec<ArrayId> = st.arrays.keys().copied().collect();
                for a in arrays {
                    let old = st.arrays[&a].clone();
                    let mut new = BTreeSet::new();
                    for k in old {
                        let m = int.maps[k as usize].clone();
                        if m.align.template == *template {
                            let nk = int.map(&Mapping { align: m.align, dist: dist.clone() });
                            new.insert(nk);
                        } else {
                            new.insert(k);
                        }
                    }
                    st.arrays.insert(a, new);
                }
            }
            NodeKind::ArgIn { array, mapping, .. } => {
                let k = self.interners.borrow_mut().map(mapping);
                st.arrays.insert(*array, [k].into());
            }
            NodeKind::ArgOut { array, arg_in, .. } => {
                // Restore the mappings that reached the paired ArgIn:
                // monotone read of the current out-facts of its preds.
                let mut restored = BTreeSet::new();
                for p in &self.cfg.preds[arg_in.idx()] {
                    if let Some(s) = outs[p.idx()].arrays.get(array) {
                        restored.extend(s.iter().copied());
                    }
                }
                if !restored.is_empty() {
                    st.arrays.insert(*array, restored);
                }
            }
            _ => {}
        }
        st
    }
}

// ---------------------------------------------------------------------
// Pass 2: use summarization.
// ---------------------------------------------------------------------

struct UseFlow<'a> {
    unit: &'a RoutineUnit,
    cfg: &'a Cfg,
    /// Precomputed `S(v)` for remap vertices.
    s_sets: &'a BTreeMap<NodeId, BTreeSet<ArrayId>>,
    dummies: &'a BTreeSet<ArrayId>,
}

type UseFact = BTreeMap<ArrayId, UseInfo>;

impl<'a> Dataflow for UseFlow<'a> {
    type Fact = UseFact;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn bottom(&self) -> UseFact {
        UseFact::new()
    }

    fn join(&self, a: &mut UseFact, b: &UseFact) -> bool {
        let mut changed = false;
        for (k, v) in b {
            let e = a.entry(*k).or_default();
            let j = e.join(*v);
            if j != *e {
                *e = j;
                changed = true;
            }
        }
        changed
    }

    fn seed(&self, node: NodeId, input: &mut UseFact) {
        if matches!(self.cfg.node(node).kind, NodeKind::Exit) {
            // Fig. 22: exported values are uses after exit.
            for &a in self.dummies {
                let name = &self.unit.env.array(a).name;
                let intent =
                    self.unit.param_intents.get(name).copied().unwrap_or(Intent::InOut);
                let (_, at_exit) = intent_use_labels(intent);
                let e = input.entry(a).or_default();
                *e = e.join(at_exit);
            }
        }
    }

    fn transfer(&self, node: NodeId, input: &UseFact, _outs: &[UseFact]) -> UseFact {
        let mut out = input.clone();
        if let Some(s) = self.s_sets.get(&node) {
            // Remapping vertex: the summarized region ends here.
            for a in s {
                out.remove(a);
            }
            return out;
        }
        for (a, acc) in node_effects(self.unit, self.cfg, node) {
            let of = if acc.read && acc.write {
                Some(UseInfo::W)
            } else if acc.read {
                Some(UseInfo::R)
            } else if acc.write_full {
                Some(UseInfo::D)
            } else if acc.write {
                Some(UseInfo::W)
            } else {
                None
            };
            let after = out.get(&a).copied().unwrap_or_default();
            let v = UseInfo::seq(of, after);
            out.insert(a, v);
        }
        out
    }
}

// ---------------------------------------------------------------------
// Pass 3: remapped-after (G_R edges).
// ---------------------------------------------------------------------

struct NextRemapFlow<'a> {
    s_sets: &'a BTreeMap<NodeId, BTreeSet<ArrayId>>,
}

type NextFact = BTreeSet<(ArrayId, u32)>;

impl<'a> Dataflow for NextRemapFlow<'a> {
    type Fact = NextFact;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn bottom(&self) -> NextFact {
        NextFact::new()
    }

    fn join(&self, a: &mut NextFact, b: &NextFact) -> bool {
        let before = a.len();
        a.extend(b.iter().copied());
        a.len() != before
    }

    fn transfer(&self, node: NodeId, input: &NextFact, _outs: &[NextFact]) -> NextFact {
        match self.s_sets.get(&node) {
            Some(s) => {
                let mut out: NextFact =
                    input.iter().filter(|(a, _)| !s.contains(a)).copied().collect();
                for a in s {
                    out.insert((*a, node.0));
                }
                out
            }
            None => input.clone(),
        }
    }
}

// ---------------------------------------------------------------------
// Pass 4: live values (KILL support).
// ---------------------------------------------------------------------

struct LiveValuesFlow<'a> {
    unit: &'a RoutineUnit,
    cfg: &'a Cfg,
    dummies: &'a BTreeSet<ArrayId>,
}

type LiveFact = BTreeSet<ArrayId>;

impl<'a> Dataflow for LiveValuesFlow<'a> {
    type Fact = LiveFact;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn bottom(&self) -> LiveFact {
        LiveFact::new()
    }

    fn join(&self, a: &mut LiveFact, b: &LiveFact) -> bool {
        let before = a.len();
        a.extend(b.iter().copied());
        a.len() != before
    }

    fn transfer(&self, node: NodeId, input: &LiveFact, _outs: &[LiveFact]) -> LiveFact {
        let mut out = input.clone();
        match &self.cfg.node(node).kind {
            NodeKind::CallCtx => {
                // Imported values are live; OUT dummies arrive dead;
                // locals are uninitialized (dead) until first written.
                for &a in self.dummies {
                    let name = &self.unit.env.array(a).name;
                    let intent =
                        self.unit.param_intents.get(name).copied().unwrap_or(Intent::InOut);
                    if intent != Intent::Out {
                        out.insert(a);
                    }
                }
            }
            NodeKind::Kill { arrays } => {
                for a in arrays {
                    out.remove(a);
                }
            }
            _ => {
                for (a, acc) in node_effects(self.unit, self.cfg, node) {
                    if acc.write {
                        out.insert(a);
                    }
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// Assembly.
// ---------------------------------------------------------------------

/// Build `G_R` from an already-built CFG.
pub fn build_from_cfg(unit: &RoutineUnit, cfg: Cfg) -> Result<Rg, Vec<Diagnostic>> {
    let mut errs: Vec<Diagnostic> = Vec::new();

    let dummies: BTreeSet<ArrayId> =
        unit.ast.params.iter().filter_map(|p| unit.array(p)).collect();

    // --- Pass 1: mapping propagation.
    let flow = MapFlow { unit, cfg: &cfg, interners: RefCell::new(Interners::default()), dummies: dummies.clone() };
    let outs = solve(&cfg, &flow);
    let interners = flow.interners.into_inner();

    let input_at = |n: NodeId| -> MapState {
        let mut st = MapState::default();
        for p in &cfg.preds[n.idx()] {
            for (k, s) in &outs[p.idx()].arrays {
                st.arrays.entry(*k).or_default().extend(s.iter().copied());
            }
            for (k, s) in &outs[p.idx()].templates {
                st.templates.entry(*k).or_default().extend(s.iter().copied());
            }
        }
        st
    };

    // --- S(v): which arrays are remapped at each vertex.
    let rpo = cfg.reverse_postorder();
    let remap_vertices: Vec<NodeId> =
        rpo.iter().copied().filter(|&n| cfg.node(n).kind.is_remap_vertex()).collect();

    let mut s_sets: BTreeMap<NodeId, BTreeSet<ArrayId>> = BTreeMap::new();
    for &v in &remap_vertices {
        let set: BTreeSet<ArrayId> = match &cfg.node(v).kind {
            NodeKind::CallCtx | NodeKind::Exit => dummies.clone(),
            NodeKind::Entry => unit
                .env
                .arrays()
                .iter()
                .map(|i| i.id)
                .filter(|a| !dummies.contains(a))
                .collect(),
            NodeKind::ArgIn { array, .. } | NodeKind::ArgOut { array, .. } => {
                [*array].into()
            }
            NodeKind::Realign { .. } | NodeKind::Redistribute { .. } => {
                let before = input_at(v);
                let after = &outs[v.idx()];
                unit.env
                    .arrays()
                    .iter()
                    .map(|i| i.id)
                    .filter(|a| {
                        before.arrays.contains_key(a)
                            && before.arrays.get(a) != after.arrays.get(a)
                    })
                    .collect()
            }
            _ => unreachable!("not a remap vertex"),
        };
        s_sets.insert(v, set);
    }

    // --- Version interning, leaving/reaching labels (RPO order gives
    // the paper's discovery-order subscripts: the entry mapping is 0).
    let mut versions = VersionTable::new();
    let mut labels_by_node: BTreeMap<NodeId, BTreeMap<ArrayId, Label>> = BTreeMap::new();

    let normalize_keys = |keys: &BTreeSet<Key>,
                          a: ArrayId,
                          versions: &mut VersionTable,
                          errs: &mut Vec<Diagnostic>,
                          span: hpfc_lang::Span|
     -> BTreeSet<VersionId> {
        let mut out = BTreeSet::new();
        for &k in keys {
            match unit.env.normalize(a, &interners.maps[k as usize]) {
                Ok(nm) => {
                    out.insert(versions.intern(a, &nm));
                }
                Err(e) => {
                    errs.push(Diagnostic::error(
                        codes::MAPPING,
                        span,
                        format!("mapping of `{}` is invalid: {e}", unit.env.array(a).name),
                    ));
                }
            }
        }
        out
    };

    for &v in &remap_vertices {
        let span = cfg.node(v).span;
        let before = input_at(v);
        let after = &outs[v.idx()];
        let mut labels: BTreeMap<ArrayId, Label> = BTreeMap::new();
        for &a in &s_sets[&v] {
            // Split the conceptual mappings into *remapped* (the
            // directive's impact changes them) and *pass-through* (a
            // partial-impact redistribution leaves them alone — the
            // Fig. 5 situation where the alignment is flow-dependent).
            // The split applies `impact` per reaching key: for a
            // REDISTRIBUTE, a key is unaffected iff its alignment does
            // not target the redistributed template; every other vertex
            // kind maps all keys to the full after-set.
            let before_keys = before.arrays.get(&a).cloned().unwrap_or_default();
            let after_keys = after.arrays.get(&a).cloned().unwrap_or_default();
            let mut passthrough_keys: BTreeSet<Key> = BTreeSet::new();
            let mut affected_before: BTreeSet<Key> = BTreeSet::new();
            let mut affected_after: BTreeSet<Key> = BTreeSet::new();
            for &k in &before_keys {
                let s_k: BTreeSet<Key> = match &cfg.node(v).kind {
                    NodeKind::Redistribute { template, dist } => {
                        let m = &interners.maps[k as usize];
                        if m.align.template == *template {
                            let m2 = Mapping { align: m.align.clone(), dist: dist.clone() };
                            [*interners
                                .map_idx
                                .get(&m2)
                                .expect("impact result was interned by the flow")]
                            .into()
                        } else {
                            [k].into()
                        }
                    }
                    _ => after_keys.clone(),
                };
                if s_k.len() == 1 && s_k.contains(&k) {
                    passthrough_keys.insert(k);
                } else {
                    affected_before.insert(k);
                    affected_after.extend(s_k);
                }
            }
            if before_keys.is_empty() {
                // Entry-side vertices: everything they leave is new.
                affected_after = after_keys.clone();
            }

            let reaching = normalize_keys(&affected_before, a, &mut versions, &mut errs, span);
            let passthrough =
                normalize_keys(&passthrough_keys, a, &mut versions, &mut errs, span);
            let leaving_set = normalize_keys(&affected_after, a, &mut versions, &mut errs, span);
            let leaving = if leaving_set.is_empty() {
                None
            } else if leaving_set.len() == 1 {
                Some(Leaving::One(*leaving_set.iter().next().unwrap()))
            } else if matches!(cfg.node(v).kind, NodeKind::ArgOut { .. }) {
                // Fig. 18: restore whichever mapping reached the call —
                // legal, realized by a runtime status save/restore.
                Some(Leaving::Restore(leaving_set.clone()))
            } else {
                errs.push(Diagnostic::error(
                    codes::MULTI_LEAVING,
                    span,
                    format!(
                        "`{}` has {} possible leaving mappings at this remapping \
                         (paper App. A assumes one; Fig. 21 case is rejected)",
                        unit.env.array(a).name,
                        leaving_set.len()
                    ),
                ));
                None
            };
            let mut label = Label::new(leaving, reaching);
            label.passthrough = passthrough;
            labels.insert(a, label);
        }
        labels_by_node.insert(v, labels);
    }

    // --- Reference tagging + restriction 1 (ambiguous references).
    let mut ref_versions: BTreeMap<(NodeId, ArrayId), VersionId> = BTreeMap::new();
    for n in cfg.node_ids() {
        if cfg.node(n).kind.is_remap_vertex() {
            continue;
        }
        let effects = node_effects(unit, &cfg, n);
        if effects.is_empty() {
            continue;
        }
        let st = input_at(n);
        for (a, _acc) in effects {
            let span = cfg.node(n).span;
            let Some(keys) = st.arrays.get(&a) else {
                errs.push(Diagnostic::error(
                    codes::AMBIGUOUS_REF,
                    span,
                    format!("`{}` referenced before any mapping", unit.env.array(a).name),
                ));
                continue;
            };
            let vset = normalize_keys(keys, a, &mut versions, &mut errs, span);
            match vset.len() {
                1 => {
                    ref_versions.insert((n, a), *vset.iter().next().unwrap());
                }
                0 => {}
                _ => {
                    errs.push(Diagnostic::error(
                        codes::AMBIGUOUS_REF,
                        span,
                        format!(
                            "`{}` is referenced with an ambiguous mapping \
                             ({} possible placements reach this statement); \
                             the paper's restriction 1 forbids this (Fig. 5)",
                            unit.env.array(a).name,
                            vset.len()
                        ),
                    ));
                }
            }
        }
    }

    // --- Pass 2: use qualifiers.
    let use_flow = UseFlow { unit, cfg: &cfg, s_sets: &s_sets, dummies: &dummies };
    let use_outs = solve(&cfg, &use_flow);
    for &v in &remap_vertices {
        // U_A(v) = join of successor facts (+ exit seed).
        let mut input = UseFact::new();
        for s_n in &cfg.succs[v.idx()] {
            use_flow.join(&mut input, &use_outs[s_n.idx()]);
        }
        use_flow.seed(v, &mut input);
        let labels = labels_by_node.get_mut(&v).unwrap();
        match &cfg.node(v).kind {
            NodeKind::CallCtx => {
                // Fig. 22 import side.
                for (a, l) in labels.iter_mut() {
                    let name = &unit.env.array(*a).name;
                    let intent = unit.param_intents.get(name).copied().unwrap_or(Intent::InOut);
                    l.use_info = intent_use_labels(intent).0;
                }
            }
            _ => {
                // ArgIn vertices need no special case: the callee's
                // Fig. 25 intent effect is the Call node's proper
                // effect, which the backward summarization already
                // folded into `input`.
                for (a, l) in labels.iter_mut() {
                    l.use_info = input.get(a).copied().unwrap_or_default();
                }
            }
        }
    }

    // --- Pass 3: edges.
    let next_flow = NextRemapFlow { s_sets: &s_sets };
    let next_outs = solve(&cfg, &next_flow);
    let vindex: BTreeMap<NodeId, VertexId> = remap_vertices
        .iter()
        .enumerate()
        .map(|(i, &n)| (n, VertexId(i as u32)))
        .collect();
    let mut edges: BTreeMap<VertexId, BTreeMap<VertexId, BTreeSet<ArrayId>>> = BTreeMap::new();
    let mut redges: BTreeMap<VertexId, BTreeMap<VertexId, BTreeSet<ArrayId>>> = BTreeMap::new();
    for &v in &remap_vertices {
        let mut input = NextFact::new();
        for s_n in &cfg.succs[v.idx()] {
            next_flow.join(&mut input, &next_outs[s_n.idx()]);
        }
        let from = vindex[&v];
        for (a, w) in input {
            if s_sets[&v].contains(&a) {
                let to = vindex[&NodeId(w)];
                edges.entry(from).or_default().entry(to).or_default().insert(a);
                redges.entry(to).or_default().entry(from).or_default().insert(a);
            }
        }
    }

    // --- Pass 4: live values (KILL).
    let live_flow = LiveValuesFlow { unit, cfg: &cfg, dummies: &dummies };
    let live_outs = solve(&cfg, &live_flow);
    for &v in &remap_vertices {
        let mut input = LiveFact::new();
        for p in &cfg.preds[v.idx()] {
            live_flow.join(&mut input, &live_outs[p.idx()]);
        }
        let labels = labels_by_node.get_mut(&v).unwrap();
        for (a, l) in labels.iter_mut() {
            // Entry-side vertices have no incoming values by definition.
            let has_preds = !cfg.preds[v.idx()].is_empty();
            l.values_dead = has_preds && !input.contains(a);
        }
    }

    if !errs.is_empty() {
        return Err(errs);
    }

    let labels: Vec<BTreeMap<ArrayId, Label>> =
        remap_vertices.iter().map(|n| labels_by_node.remove(n).unwrap()).collect();

    Ok(Rg {
        cfg,
        vertices: remap_vertices,
        labels,
        edges,
        redges,
        versions,
        ref_versions,
    })
}
