//! Rendering of the remapping graph: a text summary in the style of the
//! paper's Fig. 9/11 labels (`A: {1,2} -> 3, R`) and a graphviz export.

use hpfc_cfg::graph::NodeKind;
use hpfc_lang::sema::RoutineUnit;

use crate::build::{Rg, VertexId};
use crate::label::Leaving;

/// Short display name of a vertex (`C`, `0`, `E` for the synthetic
/// vertices, the vertex number otherwise — matching the paper's
/// figures).
pub fn vertex_name(rg: &Rg, v: VertexId) -> String {
    match rg.cfg.node(rg.node_of(v)).kind {
        NodeKind::CallCtx => "C".into(),
        NodeKind::Entry => "0".into(),
        NodeKind::Exit => "E".into(),
        _ => format!("{}", v.0),
    }
}

/// One-line label of an array at a vertex, Fig. 9 style.
pub fn label_line(rg: &Rg, unit: &RoutineUnit, v: VertexId, a: hpfc_mapping::ArrayId) -> String {
    let l = &rg.labels[v.idx()][&a];
    let name = &unit.env.array(a).name;
    let reaching: Vec<String> = l.reaching.iter().map(|x| x.index.to_string()).collect();
    let leaving = match &l.leaving {
        None => "·".to_string(),
        Some(Leaving::One(x)) => x.index.to_string(),
        Some(Leaving::Restore(s)) => format!(
            "restore{{{}}}",
            s.iter().map(|x| x.index.to_string()).collect::<Vec<_>>().join(",")
        ),
    };
    let mut line = format!("{name}: {{{}}} -> {leaving}, {}", reaching.join(","), l.use_info);
    if l.values_dead {
        line.push_str(" dead");
    }
    if l.is_removed() {
        line.push_str(" (removed)");
    } else if l.is_trivial() {
        line.push_str(" (trivial)");
    }
    line
}

/// Multi-line text summary of the whole graph (tests and the
/// experiment harness print this).
pub fn to_text(rg: &Rg, unit: &RoutineUnit) -> String {
    let mut s = String::new();
    for v in rg.vertex_ids() {
        s.push_str(&format!("vertex {}:\n", vertex_name(rg, v)));
        for a in rg.labels[v.idx()].keys() {
            s.push_str(&format!("  {}\n", label_line(rg, unit, v, *a)));
        }
        if let Some(out) = rg.edges.get(&v) {
            for (w, arrays) in out {
                let names: Vec<String> =
                    arrays.iter().map(|a| unit.env.array(*a).name.clone()).collect();
                s.push_str(&format!(
                    "  -> {} [{}]\n",
                    vertex_name(rg, *w),
                    names.join(",")
                ));
            }
        }
    }
    s
}

/// Graphviz dot export.
pub fn to_dot(rg: &Rg, unit: &RoutineUnit) -> String {
    let mut s = String::from("digraph remapping {\n  node [shape=box];\n");
    for v in rg.vertex_ids() {
        let mut label = vertex_name(rg, v);
        for a in rg.labels[v.idx()].keys() {
            label.push_str("\\n");
            label.push_str(&label_line(rg, unit, v, *a));
        }
        s.push_str(&format!("  v{} [label=\"{label}\"];\n", v.0));
    }
    for (v, out) in &rg.edges {
        for (w, arrays) in out {
            let names: Vec<String> =
                arrays.iter().map(|a| unit.env.array(*a).name.clone()).collect();
            s.push_str(&format!("  v{} -> v{} [label=\"{}\"];\n", v.0, w.0, names.join(",")));
        }
    }
    s.push_str("}\n");
    s
}
