//! The **remapping graph** `G_R` — the paper's central data structure —
//! its construction (App. A/B) and the dataflow optimizations on it
//! (App. C/D).
//!
//! `G_R` is a contracted sub-graph of the control-flow graph: its
//! vertices are the remapping statements (plus the synthetic
//! call/entry/exit vertices), its edges are control-flow paths along
//! which an array is remapped at both ends and untouched in between.
//! Each vertex carries, per remapped array:
//!
//! * the **leaving** version `L_A(v)` — the statically mapped copy that
//!   must be referenced after the vertex,
//! * the **reaching** versions `R_A(v)` — the copies that may arrive,
//! * the **use** qualifier `U_A(v) ∈ {N, D, R, W}` — how the leaving
//!   copy may be used before the next remapping,
//! * after optimization, the **may-live** set `M_A(v)` — which copies
//!   are worth keeping alive past the vertex (App. D).
//!
//! The two optimizations:
//!
//! * [`optimize::remove_useless`] (App. C) deletes every leaving copy
//!   tagged `N` and recomputes reaching sets by transitive closure; the
//!   result is proved optimal in the paper (Theorem 1) and checked here
//!   by [`optimize::verify_reaching_paths`].
//! * [`optimize::compute_may_live`] (App. D) bounds the copies the
//!   runtime keeps for communication-free reuse.
//!
//! Restriction 1 of the paper (no reference with an ambiguous mapping)
//! is enforced during construction: Fig. 5 programs are rejected with
//! [`hpfc_lang::diag::codes::AMBIGUOUS_REF`], Fig. 21 programs (several
//! leaving mappings) with [`hpfc_lang::diag::codes::MULTI_LEAVING`],
//! while Fig. 6 programs (ambiguous *state*, no reference) compile.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod build;
pub mod dot;
pub mod label;
pub mod optimize;

pub use build::{build, build_from_cfg, Rg, VertexId};
pub use label::{Label, Leaving, UseInfo};
pub use optimize::{compute_may_live, optimize, remove_useless, OptConfig, OptStats};
