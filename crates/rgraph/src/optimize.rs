//! Dataflow optimizations on the remapping graph (paper Sec. 4,
//! App. C/D).

use std::collections::BTreeSet;

use hpfc_mapping::{ArrayId, VersionId};

use crate::build::{Rg, VertexId};
use crate::label::UseInfo;

/// Which optimizations to run — the ablation switchboard of the
/// experiment harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptConfig {
    /// App. C: delete leaving copies tagged `N` and recompute reaching
    /// sets by transitive closure.
    pub remove_useless: bool,
    /// App. D: compute the bounded may-live sets `M_A(v)` enabling
    /// communication-free reuse of read-only copies. When disabled,
    /// `M_A(v)` is just `{L_A(v)}` — every other copy is dropped at
    /// each vertex (no reuse).
    pub live_copies: bool,
}

impl Default for OptConfig {
    fn default() -> Self {
        OptConfig { remove_useless: true, live_copies: true }
    }
}

impl OptConfig {
    /// Everything off — the naive compilation baseline.
    pub fn none() -> Self {
        OptConfig { remove_useless: false, live_copies: false }
    }
}

/// What the optimizer did (per-routine accounting used by the
/// experiment harness).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OptStats {
    /// (vertex, array) remapping slots before optimization.
    pub total: usize,
    /// Slots removed by App. C (`U = N`).
    pub removed: usize,
    /// Slots that became statically trivial (single reaching copy equal
    /// to the leaving copy): kept in place, but a runtime status check
    /// skips them (Sec. 5.1).
    pub trivial: usize,
    /// Slots whose values are dead (`KILL`): copy allocated, no data
    /// moved.
    pub dead_values: usize,
}

/// Run the configured optimizations; always (re)computes may-live sets
/// so the runtime has consistent liveness information.
pub fn optimize(rg: &mut Rg, config: OptConfig) -> OptStats {
    let mut stats = OptStats { total: rg.remapping_count(), ..Default::default() };
    if config.remove_useless {
        stats.removed = remove_useless(rg);
    }
    compute_may_live(rg, config.live_copies);
    for v in rg.vertex_ids() {
        for l in rg.labels[v.idx()].values() {
            if l.leaving.is_some() && l.is_trivial() {
                stats.trivial += 1;
            }
            if l.leaving.is_some() && l.values_dead {
                stats.dead_values += 1;
            }
        }
    }
    stats
}

/// App. C — remove useless remappings (`U_A(v) = N`) and recompute the
/// reaching sets by a may-forward transitive closure over `G_R`.
/// Returns the number of removed (vertex, array) slots.
pub fn remove_useless(rg: &mut Rg) -> usize {
    let mut removed = 0;
    // Step 1: delete leaving mappings of unused slots.
    for v in rg.vertex_ids() {
        for l in rg.labels[v.idx()].values_mut() {
            if l.use_info == UseInfo::N && l.leaving.is_some() {
                l.leaving = None;
                removed += 1;
            }
        }
    }
    recompute_reaching(rg);
    removed
}

/// The reaching-set recomputation of App. C: initialize from the
/// leaving mappings of predecessors that are actually referenced
/// (`U ≠ N`), then propagate transitively through removed (`U = N`)
/// vertices.
pub fn recompute_reaching(rg: &mut Rg) {
    // Collect per (vertex, array): the contribution each vertex makes to
    // its successors — either its own leaving versions (if kept) or its
    // (current) reaching set (if removed). Iterate to fixpoint.
    let vs: Vec<VertexId> = rg.vertex_ids().collect();

    // Reset reaching sets.
    for v in &vs {
        for l in rg.labels[v.idx()].values_mut() {
            l.reaching.clear();
        }
    }

    let mut changed = true;
    while changed {
        changed = false;
        for &v in &vs {
            let arrays: Vec<ArrayId> = rg.labels[v.idx()].keys().copied().collect();
            for a in arrays {
                let mut incoming: BTreeSet<VersionId> = BTreeSet::new();
                for p in rg.preds_for(v, a) {
                    let pl = &rg.labels[p.idx()][&a];
                    match &pl.leaving {
                        // Removed (or never-leaving) vertex: transitive.
                        None => incoming.extend(pl.reaching.iter().copied()),
                        // Kept vertex: its leaving copies arrive.
                        Some(l) => incoming.extend(l.versions()),
                    }
                    // A partial-impact vertex forwards whatever *data*
                    // versions arrive on its unaffected executions —
                    // conservatively, everything that reaches it.
                    if !pl.passthrough.is_empty() {
                        incoming.extend(pl.reaching.iter().copied());
                    }
                }
                let lab = rg.labels[v.idx()].get_mut(&a).unwrap();
                let before = lab.reaching.len();
                lab.reaching.extend(incoming);
                if lab.reaching.len() != before {
                    changed = true;
                }
            }
        }
    }
}

/// App. D — compute the may-live sets `M_A(v)`: the copies worth keeping
/// past `v` because some later remapping may reuse them without
/// communication (they are only read in between).
///
/// With `enabled = false` the sets collapse to the leaving copy alone —
/// the runtime then frees every other copy at each vertex (the paper's
/// unbounded-memory concern, used as an ablation).
pub fn compute_may_live(rg: &mut Rg, enabled: bool) {
    let vs: Vec<VertexId> = rg.vertex_ids().collect();
    // Init: directly useful mappings — the leaving copies, plus
    // pass-through copies (they may be the current copy on unaffected
    // executions and must survive the vertex's cleaning).
    for v in &vs {
        for l in rg.labels[v.idx()].values_mut() {
            l.may_live =
                l.leaving.as_ref().map(|x| x.versions().into_iter().collect()).unwrap_or_default();
            l.may_live.extend(l.passthrough.iter().copied());
        }
    }
    if !enabled {
        return;
    }
    // Propagate backward while the array is only read (U ∈ {N, R}).
    let mut changed = true;
    while changed {
        changed = false;
        for &v in &vs {
            let arrays: Vec<ArrayId> = rg.labels[v.idx()].keys().copied().collect();
            for a in arrays {
                let u = rg.labels[v.idx()][&a].use_info;
                if !matches!(u, UseInfo::N | UseInfo::R) {
                    continue;
                }
                let mut add: BTreeSet<VersionId> = BTreeSet::new();
                for s in rg.succs_for(v, a) {
                    add.extend(rg.labels[s.idx()][&a].may_live.iter().copied());
                }
                let lab = rg.labels[v.idx()].get_mut(&a).unwrap();
                let before = lab.may_live.len();
                lab.may_live.extend(add);
                if lab.may_live.len() != before {
                    changed = true;
                }
            }
        }
    }
}

/// Theorem 1 sanity-checker (used by tests): every version in a
/// recomputed reaching set must be producible along a `G_R` path from a
/// kept vertex that leaves it, through removed/unreferenced vertices
/// only.
pub fn verify_reaching_paths(rg: &Rg) -> Result<(), String> {
    for v in rg.vertex_ids() {
        for (a, l) in &rg.labels[v.idx()] {
            for r in &l.reaching {
                if !reachable_from_producer(rg, v, *a, *r) {
                    return Err(format!(
                        "vertex {} array {:?}: reaching version {} has no producing path",
                        v.0, a, r
                    ));
                }
            }
        }
    }
    Ok(())
}

fn reachable_from_producer(rg: &Rg, v: VertexId, a: ArrayId, want: VersionId) -> bool {
    // Backward DFS from v through predecessors; a predecessor *produces*
    // `want` if it keeps a leaving copy equal to it; traversal continues
    // through predecessors with no leaving copy (removed).
    let mut stack = vec![v];
    let mut seen = BTreeSet::new();
    while let Some(x) = stack.pop() {
        if !seen.insert(x) {
            continue;
        }
        for p in rg.preds_for(x, a) {
            let pl = &rg.labels[p.idx()][&a];
            match &pl.leaving {
                Some(leave) if leave.versions().contains(&want) => return true,
                // Partial-impact vertices forward arriving data versions.
                Some(_) if !pl.passthrough.is_empty() => stack.push(p),
                Some(_) => {}
                None => stack.push(p),
            }
        }
    }
    false
}
