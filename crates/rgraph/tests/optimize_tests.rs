//! Optimizer-focused tests: ablation configurations, worst-case
//! synthetic programs, and the stats contract.

use hpfc_lang::frontend;
use hpfc_rgraph::build::build;
use hpfc_rgraph::optimize::{optimize, verify_reaching_paths, OptConfig};

/// A program where *every* remapping is used: the optimizer must remove
/// nothing.
const ALL_USED: &str = "\
subroutine s
  real :: a(16)
!hpf$ processors p(4)
!hpf$ dynamic a
!hpf$ distribute a(block) onto p
  a = 1.0
!hpf$ redistribute a(cyclic)
  a = a + 1.0
!hpf$ redistribute a(cyclic(2))
  a = a + 1.0
!hpf$ redistribute a(block)
  x = a(1)
end subroutine
";

/// A program where every remapping after the first write is useless.
const ALL_USELESS: &str = "\
subroutine s
  real :: a(16)
!hpf$ processors p(4)
!hpf$ dynamic a
!hpf$ distribute a(block) onto p
  a = 1.0
!hpf$ redistribute a(cyclic)
!hpf$ redistribute a(cyclic(2))
!hpf$ redistribute a(block)
end subroutine
";

#[test]
fn worst_case_removes_nothing() {
    let m = frontend(ALL_USED).unwrap();
    let mut rg = build(m.main()).unwrap();
    let stats = optimize(&mut rg, OptConfig::default());
    // Only the entry-instantiation slot can be touched; the three
    // redistributions are all referenced.
    let a = m.main().array("a").unwrap();
    for v in rg.vertex_ids() {
        if let Some(l) = rg.label(v, a) {
            if l.original_leaving.is_some() && l.is_removed() {
                // The only removable slot is the entry one (vertex 0/C)
                // — but `a` is written right after entry, so even that
                // stays as a non-slot. Nothing referenced is removed:
                assert!(
                    matches!(
                        rg.cfg.node(rg.node_of(v)).kind,
                        hpfc_cfg::graph::NodeKind::Entry | hpfc_cfg::graph::NodeKind::CallCtx
                    ),
                    "unexpected removal at {v:?}"
                );
            }
        }
    }
    assert_eq!(stats.trivial, 0);
    verify_reaching_paths(&rg).unwrap();
}

#[test]
fn dead_chain_collapses_entirely() {
    let m = frontend(ALL_USELESS).unwrap();
    let mut rg = build(m.main()).unwrap();
    let stats = optimize(&mut rg, OptConfig::default());
    // All three redistributions are unused (nothing references `a`
    // after them): all removed.
    assert!(stats.removed >= 3, "{stats:?}");
    verify_reaching_paths(&rg).unwrap();
}

#[test]
fn opt_none_keeps_everything() {
    let m = frontend(ALL_USELESS).unwrap();
    let mut rg = build(m.main()).unwrap();
    let stats = optimize(&mut rg, OptConfig::none());
    assert_eq!(stats.removed, 0);
    // May-live collapses to the leaving copies only.
    let a = m.main().array("a").unwrap();
    for v in rg.vertex_ids() {
        if let Some(l) = rg.label(v, a) {
            if let Some(leave) = &l.leaving {
                let versions: std::collections::BTreeSet<_> =
                    leave.versions().into_iter().collect();
                assert!(
                    l.may_live.is_subset(&versions.union(&l.passthrough).copied().collect()),
                    "no-reuse config must not keep extra copies: {l:?}"
                );
            }
        }
    }
}

#[test]
fn live_copy_ablation_shrinks_may_live() {
    let m = frontend(hpfc_lang::figures::FIG13_LIVE).unwrap();
    let mut with_reuse = build(m.main()).unwrap();
    optimize(&mut with_reuse, OptConfig { remove_useless: true, live_copies: true });
    let mut without_reuse = build(m.main()).unwrap();
    optimize(&mut without_reuse, OptConfig { remove_useless: true, live_copies: false });
    let a = m.main().array("a").unwrap();
    let total = |rg: &hpfc_rgraph::Rg| -> usize {
        rg.vertex_ids().filter_map(|v| rg.label(v, a)).map(|l| l.may_live.len()).sum()
    };
    assert!(total(&with_reuse) > total(&without_reuse));
}

#[test]
fn stats_totals_are_consistent() {
    for (_, src) in hpfc_lang::figures::all() {
        let m = frontend(src).unwrap();
        let mut rg = build(m.main()).unwrap();
        let total_before = rg.remapping_count();
        let stats = optimize(&mut rg, OptConfig::default());
        assert_eq!(stats.total, total_before);
        let removed_now = rg
            .vertex_ids()
            .flat_map(|v| rg.labels[v.idx()].values())
            .filter(|l| l.is_removed())
            .count();
        assert_eq!(stats.removed, removed_now);
        assert!(stats.trivial + stats.removed <= stats.total);
    }
}

#[test]
fn recompute_is_idempotent() {
    let m = frontend(hpfc_lang::figures::FIG10_ADI).unwrap();
    let mut rg = build(m.main()).unwrap();
    optimize(&mut rg, OptConfig::default());
    let snapshot: Vec<_> = rg.labels.clone();
    hpfc_rgraph::optimize::recompute_reaching(&mut rg);
    assert_eq!(snapshot, rg.labels, "second recompute must be a fixpoint");
}

#[test]
fn synthetic_scaling_shapes_hold() {
    // More remap statements → more slots; optimizer time-independent
    // correctness at size.
    let mut last = 0;
    for m_count in [2usize, 8, 16] {
        let src = hpfc_bench_src(64, m_count, 3);
        let m = frontend(&src).unwrap();
        let mut rg = build(m.main()).unwrap();
        let stats = optimize(&mut rg, OptConfig::default());
        assert!(stats.total > last);
        last = stats.total;
        verify_reaching_paths(&rg).unwrap();
    }
}

/// Local copy of the bench generator shape (no dependency on the bench
/// crate from here).
fn hpfc_bench_src(n_stmts: usize, n_remaps: usize, n_arrays: usize) -> String {
    let mut s = String::from("subroutine synth\n");
    let names: Vec<String> = (0..n_arrays).map(|i| format!("a{i}")).collect();
    s.push_str(&format!(
        "  real :: {}\n",
        names.iter().map(|n| format!("{n}(64)")).collect::<Vec<_>>().join(", ")
    ));
    s.push_str("!hpf$ processors p(4)\n!hpf$ template t(64)\n!hpf$ dynamic t\n");
    s.push_str(&format!("!hpf$ align with t :: {}\n", names.join(", ")));
    s.push_str("!hpf$ distribute t(block) onto p\n");
    let gap = n_stmts / (n_remaps + 1);
    let mut stmt = 0usize;
    for r in 0..=n_remaps {
        for k in 0..gap.max(1) {
            if stmt >= n_stmts {
                break;
            }
            let a = &names[(stmt + k) % n_arrays];
            s.push_str(&format!("  {a}(1) = {a}(2) + 1.0\n"));
            stmt += 1;
        }
        if r < n_remaps {
            let fmt = if r % 2 == 0 { "cyclic" } else { "block" };
            s.push_str(&format!("!hpf$ redistribute t({fmt}) onto p\n"));
        }
    }
    s.push_str("end subroutine\n");
    s
}
