//! Figure-by-figure validation of the remapping-graph construction and
//! optimizations against the paper's worked examples.

use std::collections::BTreeSet;

use hpfc_cfg::graph::NodeKind;
use hpfc_lang::diag::codes;
use hpfc_lang::{figures, frontend};
use hpfc_mapping::VersionId;
use hpfc_rgraph::build::{build, Rg, VertexId};
use hpfc_rgraph::label::{Leaving, UseInfo};
use hpfc_rgraph::optimize::{optimize, verify_reaching_paths, OptConfig};

fn rg_of(src: &str) -> (hpfc_lang::sema::Module, Rg) {
    let m = frontend(src).unwrap();
    let rg = build(m.main()).unwrap_or_else(|e| panic!("build failed: {e:?}"));
    (m, rg)
}

/// Versions of `name` used by actual references (the paper's "used with
/// mappings {…}" sets of Fig. 12).
fn used_versions(m: &hpfc_lang::sema::Module, rg: &Rg, name: &str) -> BTreeSet<u32> {
    let a = m.main().array(name).unwrap();
    rg.ref_versions
        .iter()
        .filter(|((_, arr), _)| *arr == a)
        .map(|(_, v)| v.index)
        .collect()
}

/// The vertices (by kind filter) in graph order.
fn redistribute_vertices(rg: &Rg) -> Vec<VertexId> {
    rg.vertex_ids()
        .filter(|&v| {
            matches!(rg.cfg.node(rg.node_of(v)).kind, NodeKind::Redistribute { .. })
        })
        .collect()
}

// ---------------------------------------------------------------------
// Fig. 10 / 11 / 12 — the running example.
// ---------------------------------------------------------------------

#[test]
fn fig10_graph_has_seven_vertices() {
    let (_m, rg) = rg_of(figures::FIG10_ADI);
    assert_eq!(rg.vertices.len(), 7, "v_c, v_0, four redistributes, v_e");
}

#[test]
fn fig10_version_counts() {
    let (m, rg) = rg_of(figures::FIG10_ADI);
    let a = m.main().array("a").unwrap();
    let b = m.main().array("b").unwrap();
    let c = m.main().array("c").unwrap();
    // Four distinct placements each: (block,*), (cyclic,*),
    // (block,block), (*,block).
    assert_eq!(rg.versions.n_versions(a), 4);
    assert_eq!(rg.versions.n_versions(b), 4);
    assert_eq!(rg.versions.n_versions(c), 4);
}

#[test]
fn fig10_zero_trip_edges_reach_exit() {
    let (m, rg) = rg_of(figures::FIG10_ADI);
    let a = m.main().array("a").unwrap();
    let exit = rg
        .vertex_ids()
        .find(|&v| matches!(rg.cfg.node(rg.node_of(v)).kind, NodeKind::Exit))
        .unwrap();
    // The exit must be reached (for A) from: both branch redistributes
    // (zero-trip loop) and the last loop redistribute.
    let preds = rg.preds_for(exit, a);
    let redists = redistribute_vertices(&rg);
    assert!(preds.contains(&redists[0]), "then-branch → E (zero-trip)");
    assert!(preds.contains(&redists[1]), "else-branch → E (zero-trip)");
    assert!(preds.contains(&redists[3]), "loop bottom → E");
    assert_eq!(preds.len(), 3);
}

#[test]
fn fig10_loop_back_edge_exists() {
    let (m, rg) = rg_of(figures::FIG10_ADI);
    let a = m.main().array("a").unwrap();
    let redists = redistribute_vertices(&rg);
    // v4 → v3 via the back edge, and v3 → v4 inside the body.
    assert!(rg.succs_for(redists[3], a).contains(&redists[2]));
    assert!(rg.succs_for(redists[2], a).contains(&redists[3]));
}

#[test]
fn fig10_use_labels() {
    let (m, rg) = rg_of(figures::FIG10_ADI);
    let unit = m.main();
    let (a, b, c) =
        (unit.array("a").unwrap(), unit.array("b").unwrap(), unit.array("c").unwrap());
    let redists = redistribute_vertices(&rg);
    let u = |v: VertexId, arr| rg.label(v, arr).unwrap().use_info;
    // v1 (then): a = a + b — A written (W), B read (R); C untouched (N).
    assert_eq!(u(redists[0], a), UseInfo::W);
    assert_eq!(u(redists[0], b), UseInfo::R);
    assert_eq!(u(redists[0], c), UseInfo::N);
    // v2 (else): x = a(3,3) — A read; B, C untouched.
    assert_eq!(u(redists[1], a), UseInfo::R);
    assert_eq!(u(redists[1], b), UseInfo::N);
    assert_eq!(u(redists[1], c), UseInfo::N);
    // v3 (loop top): c = a + 2.0 — C fully redefined (D), A read.
    assert_eq!(u(redists[2], a), UseInfo::R);
    assert_eq!(u(redists[2], c), UseInfo::D);
    assert_eq!(u(redists[2], b), UseInfo::N);
    // v4 (loop bottom): a = a + c — A read+written (W), C read (R).
    assert_eq!(u(redists[3], a), UseInfo::W);
    assert_eq!(u(redists[3], c), UseInfo::R);
    assert_eq!(u(redists[3], b), UseInfo::N);
}

#[test]
fn fig12_used_version_sets() {
    // The paper's post-optimization statement: A used with {0,1,2,3},
    // B with {0,1}, C with {2,3}.
    let (m, mut rg) = rg_of(figures::FIG10_ADI);
    optimize(&mut rg, OptConfig::default());
    assert_eq!(used_versions(&m, &rg, "a"), [0, 1, 2, 3].into());
    assert_eq!(used_versions(&m, &rg, "b"), [0, 1].into());
    assert_eq!(used_versions(&m, &rg, "c"), [2, 3].into());
}

#[test]
fn fig12_b_and_c_remappings_removed() {
    let (m, mut rg) = rg_of(figures::FIG10_ADI);
    let unit = m.main();
    let (b, c) = (unit.array("b").unwrap(), unit.array("c").unwrap());
    let stats = optimize(&mut rg, OptConfig::default());
    let redists = redistribute_vertices(&rg);
    // B: remapped uselessly at v2, v3, v4 (never referenced after).
    assert!(rg.label(redists[1], b).unwrap().is_removed());
    assert!(rg.label(redists[2], b).unwrap().is_removed());
    assert!(rg.label(redists[3], b).unwrap().is_removed());
    assert!(!rg.label(redists[0], b).unwrap().is_removed());
    // C: remapped uselessly at v1 and v2 (only used inside the loop).
    assert!(rg.label(redists[0], c).unwrap().is_removed());
    assert!(rg.label(redists[1], c).unwrap().is_removed());
    assert!(!rg.label(redists[2], c).unwrap().is_removed());
    assert!(stats.removed >= 5);
    verify_reaching_paths(&rg).unwrap();
}

#[test]
fn fig10_exit_restores_dummy_with_w() {
    let (m, rg) = rg_of(figures::FIG10_ADI);
    let a = m.main().array("a").unwrap();
    let exit = rg
        .vertex_ids()
        .find(|&v| matches!(rg.cfg.node(rg.node_of(v)).kind, NodeKind::Exit))
        .unwrap();
    let l = rg.label(exit, a).unwrap();
    // INTENT(INOUT): exported ⇒ W at v_e (Fig. 22); restored to the
    // declared mapping, version 0.
    assert_eq!(l.use_info, UseInfo::W);
    assert_eq!(
        l.leaving,
        Some(Leaving::One(VersionId { array: a, index: 0 }))
    );
}

// ---------------------------------------------------------------------
// Fig. 1 — direct remapping after optimization.
// ---------------------------------------------------------------------

#[test]
fn fig1_intermediate_remapping_removed() {
    let (m, mut rg) = rg_of(figures::FIG1_DIRECT);
    let a = m.main().array("a").unwrap();
    optimize(&mut rg, OptConfig::default());
    // The realign vertex's A-slot is removed (A unreferenced between
    // realign and redistribute)...
    let realign = rg
        .vertex_ids()
        .find(|&v| matches!(rg.cfg.node(rg.node_of(v)).kind, NodeKind::Realign { .. }))
        .unwrap();
    assert!(rg.label(realign, a).unwrap().is_removed());
    // ...and the redistribute now remaps A directly from version 0.
    let redist = redistribute_vertices(&rg)[0];
    let l = rg.label(redist, a).unwrap();
    assert_eq!(l.reaching, [VersionId { array: a, index: 0 }].into());
    assert!(!l.is_removed());
    verify_reaching_paths(&rg).unwrap();
}

// ---------------------------------------------------------------------
// Fig. 2 — both C remappings useless.
// ---------------------------------------------------------------------

#[test]
fn fig2_both_c_remappings_are_useless() {
    let (m, mut rg) = rg_of(figures::FIG2_USELESS);
    let c = m.main().array("c").unwrap();
    optimize(&mut rg, OptConfig::default());
    let realign = rg
        .vertex_ids()
        .find(|&v| matches!(rg.cfg.node(rg.node_of(v)).kind, NodeKind::Realign { .. }))
        .unwrap();
    let redist = redistribute_vertices(&rg)[0];
    // The realign slot is removed outright (C unreferenced before the
    // redistribution)…
    assert!(rg.label(realign, c).unwrap().is_removed());
    // …and the redistribution is statically trivial: the composed
    // placement equals the initial one (transpose ∘ transposed-dist).
    let l = rg.label(redist, c).unwrap();
    assert!(!l.is_removed(), "C is read afterwards, the slot stays");
    assert!(l.is_trivial(), "single reaching copy == leaving copy: {l:?}");
}

// ---------------------------------------------------------------------
// Fig. 3 — only used aligned arrays keep their remapping.
// ---------------------------------------------------------------------

#[test]
fn fig3_unused_aligned_arrays_are_not_remapped() {
    let (m, mut rg) = rg_of(figures::FIG3_ALIGNED);
    let unit = m.main();
    optimize(&mut rg, OptConfig::default());
    let redist = redistribute_vertices(&rg)[0];
    // All five arrays are remapped by the template redistribution…
    assert_eq!(rg.labels[redist.idx()].len(), 5);
    // …but only A and D are used afterwards.
    for name in ["a", "d"] {
        let arr = unit.array(name).unwrap();
        assert!(!rg.label(redist, arr).unwrap().is_removed(), "{name} must stay");
    }
    for name in ["b", "c", "e"] {
        let arr = unit.array(name).unwrap();
        assert!(rg.label(redist, arr).unwrap().is_removed(), "{name} must be removed");
    }
}

// ---------------------------------------------------------------------
// Fig. 4 — argument remappings across consecutive calls.
// ---------------------------------------------------------------------

#[test]
fn fig4_back_and_forth_argument_remappings_removed() {
    let (m, mut rg) = rg_of(figures::FIG4_ARGS);
    let y = m.main().array("y").unwrap();
    optimize(&mut rg, OptConfig::default());

    let arg_ins: Vec<VertexId> = rg
        .vertex_ids()
        .filter(|&v| matches!(rg.cfg.node(rg.node_of(v)).kind, NodeKind::ArgIn { .. }))
        .collect();
    let arg_outs: Vec<VertexId> = rg
        .vertex_ids()
        .filter(|&v| matches!(rg.cfg.node(rg.node_of(v)).kind, NodeKind::ArgOut { .. }))
        .collect();
    assert_eq!((arg_ins.len(), arg_outs.len()), (3, 3));

    // The restores after foo#1 and foo#2 are useless (Y unreferenced
    // until the next call remaps it again).
    assert!(rg.label(arg_outs[0], y).unwrap().is_removed());
    assert!(rg.label(arg_outs[1], y).unwrap().is_removed());
    // The final restore stays (Y read afterwards).
    assert!(!rg.label(arg_outs[2], y).unwrap().is_removed());

    // foo#2's ArgIn becomes trivial: Y already arrives CYCLIC.
    let l2 = rg.label(arg_ins[1], y).unwrap();
    assert!(l2.is_trivial(), "{l2:?}");
    // bla's ArgIn remaps CYCLIC → CYCLIC(2) directly (no intermediate
    // BLOCK hop — the paper's "direct remapping would be possible").
    let l3 = rg.label(arg_ins[2], y).unwrap();
    assert_eq!(l3.reaching.len(), 1);
    let reached = *l3.reaching.iter().next().unwrap();
    // Version 1 is the CYCLIC placement (0 = BLOCK initial).
    assert_eq!(reached.index, 1);
    verify_reaching_paths(&rg).unwrap();
}

// ---------------------------------------------------------------------
// Figs. 5, 6, 21 — the flow-level legality rules.
// ---------------------------------------------------------------------

#[test]
fn fig5_ambiguous_reference_rejected() {
    let m = frontend(figures::FIG5_AMBIGUOUS).unwrap();
    let errs = build(m.main()).unwrap_err();
    assert!(errs.iter().any(|e| e.code == codes::AMBIGUOUS_REF), "{errs:?}");
}

#[test]
fn fig6_ambiguous_state_accepted_with_two_reaching() {
    let (m, rg) = rg_of(figures::FIG6_OK);
    let a = m.main().array("a").unwrap();
    let redists = redistribute_vertices(&rg);
    assert_eq!(redists.len(), 2);
    // The final redistribution sees both the BLOCK (0) and CYCLIC (1)
    // placements and leaves CYCLIC(2) (version 2).
    let l = rg.label(redists[1], a).unwrap();
    assert_eq!(
        l.reaching,
        [VersionId { array: a, index: 0 }, VersionId { array: a, index: 1 }].into()
    );
    assert_eq!(l.leaving, Some(Leaving::One(VersionId { array: a, index: 2 })));
}

#[test]
fn fig21_multiple_leaving_mappings_rejected() {
    let m = frontend(figures::FIG21_MULTI_LEAVING).unwrap();
    let errs = build(m.main()).unwrap_err();
    assert!(errs.iter().any(|e| e.code == codes::MULTI_LEAVING), "{errs:?}");
}

// ---------------------------------------------------------------------
// Fig. 13 / 14 — flow-dependent live copy.
// ---------------------------------------------------------------------

#[test]
fn fig13_live_copy_kept_on_read_only_path() {
    let (m, mut rg) = rg_of(figures::FIG13_LIVE);
    let a = m.main().array("a").unwrap();
    optimize(&mut rg, OptConfig::default());
    let redists = redistribute_vertices(&rg);
    assert_eq!(redists.len(), 3);
    let v0 = VersionId { array: a, index: 0 };
    // THEN branch writes via the cyclic copy: A_0 must not be kept.
    // (`a = 2.0` is a whole-array write, so the sharper `D` applies —
    // like `W`, it stops live-copy propagation.)
    let l_then = rg.label(redists[0], a).unwrap();
    assert_eq!(l_then.use_info, UseInfo::D);
    assert!(!l_then.may_live.contains(&v0));
    // ELSE branch only reads: A_0 stays live for the later restore.
    let l_else = rg.label(redists[1], a).unwrap();
    assert_eq!(l_else.use_info, UseInfo::R);
    assert!(l_else.may_live.contains(&v0), "{l_else:?}");
    // The final vertex remaps back to version 0.
    let l_back = rg.label(redists[2], a).unwrap();
    assert_eq!(l_back.leaving, Some(Leaving::One(v0)));
}

// ---------------------------------------------------------------------
// Fig. 15 / 18 — status save/restore at a call.
// ---------------------------------------------------------------------

#[test]
fn fig15_argout_restores_flow_dependent_mapping() {
    let (m, rg) = rg_of(figures::FIG15_CALL_STATUS);
    let a = m.main().array("a").unwrap();
    let arg_out = rg
        .vertex_ids()
        .find(|&v| matches!(rg.cfg.node(rg.node_of(v)).kind, NodeKind::ArgOut { .. }))
        .unwrap();
    let l = rg.label(arg_out, a).unwrap();
    match &l.leaving {
        Some(Leaving::Restore(set)) => {
            assert_eq!(set.len(), 2, "restores CYCLIC or CYCLIC(2) per saved status")
        }
        other => panic!("expected a status restore, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// KILL (Sec. 4.3).
// ---------------------------------------------------------------------

#[test]
fn kill_marks_values_dead_at_next_remapping() {
    let (m, mut rg) = rg_of(figures::KILL_EXAMPLE);
    let unit = m.main();
    let (a, b) = (unit.array("a").unwrap(), unit.array("b").unwrap());
    optimize(&mut rg, OptConfig::default());
    let redist = redistribute_vertices(&rg)[0];
    // B's values were killed: the copy needs no communication...
    let lb = rg.label(redist, b).unwrap();
    assert!(lb.values_dead);
    assert!(!lb.is_removed(), "B is referenced after, the copy itself stays");
    // ...while A's values are alive and must move.
    let la = rg.label(redist, a).unwrap();
    assert!(!la.values_dead);
}

// ---------------------------------------------------------------------
// Whole-suite invariants.
// ---------------------------------------------------------------------

#[test]
fn all_figures_build_and_verify_after_optimization() {
    for (name, src) in figures::all() {
        let m = frontend(src).unwrap();
        let mut rg = build(m.main()).unwrap_or_else(|e| panic!("{name}: {e:?}"));
        optimize(&mut rg, OptConfig::default());
        verify_reaching_paths(&rg).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn optimization_never_removes_referenced_slots() {
    for (name, src) in figures::all() {
        let m = frontend(src).unwrap();
        let mut rg = build(m.main()).unwrap();
        optimize(&mut rg, OptConfig::default());
        // Every reference's version must be producible at some kept
        // vertex (or be the entry version of a never-remapped array).
        for ((_, arr), vid) in &rg.ref_versions {
            let produced = rg.vertex_ids().any(|v| {
                rg.labels[v.idx()].get(arr).is_some_and(|l| {
                    l.leaving.as_ref().is_some_and(|lv| lv.versions().contains(vid))
                })
            });
            assert!(produced, "{name}: referenced version {vid} is never produced");
        }
    }
}

#[test]
fn graph_text_rendering_is_stable() {
    let (m, rg) = rg_of(figures::FIG10_ADI);
    let text = hpfc_rgraph::dot::to_text(&rg, m.main());
    assert!(text.contains("vertex C:"));
    assert!(text.contains("vertex E:"));
    let dot = hpfc_rgraph::dot::to_dot(&rg, m.main());
    assert!(dot.starts_with("digraph"));
}
