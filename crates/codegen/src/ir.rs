//! The static-program IR: the paper's "standard statically mapped HPF
//! program with copies between differently mapped arrays" (Sec. 2).

use std::collections::BTreeSet;
use std::sync::Arc;

use hpfc_lang::ast::{Expr, Intent, LValue};
use hpfc_mapping::{ArrayId, NormalizedMapping};
use hpfc_runtime::{CommSchedule, PlannedRemap};

/// One array of the static program with all its versions.
#[derive(Debug, Clone)]
pub struct ArrayDecl {
    /// Identity (indices into `StaticProgram.arrays` follow `ArrayId`).
    pub id: ArrayId,
    /// Source name.
    pub name: String,
    /// Element size in bytes.
    pub elem_size: u64,
    /// The statically mapped versions `A_0 … A_k` (index = subscript).
    pub versions: Vec<NormalizedMapping>,
    /// The version holding the array on entry (always 0 by
    /// construction).
    pub entry_version: u32,
    /// Whether the array is a dummy argument (its current copy belongs
    /// to the caller and is never freed by exit cleanup).
    pub is_dummy: bool,
}

/// The message-level lowering of one guarded copy source of a
/// [`RemapOp`]: when the runtime status is `src`, the copy into the
/// target version is this packed send/recv loop nest — per
/// communicating (sender, receiver) pair one contiguous buffer with a
/// closed-form byte count, pack/unpack loops walking the periodic run
/// iterator, and the whole set ordered into contention-free caterpillar
/// rounds.
///
/// The attached [`PlannedRemap`] is the *same* plan + schedule +
/// compiled [`hpfc_runtime::CopyProgram`] triple the runtime caches
/// ([`hpfc_runtime::ArrayRt::plan_cache`]): the interpreter seeds the
/// per-array cache from these `Arc`s
/// ([`hpfc_runtime::ArrayRt::seed_plan`]), so executing a lowered
/// program replans **nothing** at run time and the rendered SPMD code,
/// the costed schedule, and the replayed copy program are one object
/// end to end.
///
/// ```
/// use std::sync::Arc;
/// use hpfc_codegen::ir::SpmdCopy;
/// use hpfc_mapping::{Alignment, DimFormat, Distribution, Extents, GridId, Mapping,
///                    ProcGrid, Template, TemplateId};
/// use hpfc_runtime::{plan_redistribution, PlannedRemap};
///
/// let t = Template { id: TemplateId(0), name: "T".into(), shape: Extents::new(&[16]) };
/// let g = ProcGrid { id: GridId(0), name: "P".into(), shape: Extents::new(&[4]) };
/// let mk = |fmt| Mapping {
///     align: Alignment::identity(TemplateId(0), 1),
///     dist: Distribution::new(GridId(0), vec![fmt]),
/// }.normalize(&Extents::new(&[16]), &t, &g).unwrap();
///
/// let plan = plan_redistribution(&mk(DimFormat::Block(None)), &mk(DimFormat::Cyclic(None)), 8);
/// let copy = SpmdCopy { src: 0, planned: Arc::new(PlannedRemap::compile(plan)) };
/// assert_eq!(copy.schedule().messages.len(), 12); // all-to-all minus the diagonal
/// assert_eq!(copy.schedule().n_rounds(), 3);      // caterpillar: contention-free rounds
/// let program = copy.planned.program.as_ref().unwrap();
/// assert_eq!(program.n_elements(), 16);           // every element delivered once
/// ```
#[derive(Debug, Clone)]
pub struct SpmdCopy {
    /// The source version this copy reads from (the `status == src`
    /// guard arm of Fig. 20).
    pub src: u32,
    /// The compile-time-planned remapping: plan, caterpillar schedule,
    /// and compiled copy program, shared by `Arc` with the runtime
    /// cache seeding.
    pub planned: Arc<PlannedRemap>,
}

impl SpmdCopy {
    /// The per-pair packed messages in caterpillar rounds, with the
    /// per-dimension periodic descriptors driving each pack loop.
    pub fn schedule(&self) -> &CommSchedule {
        &self.planned.schedule
    }
}

impl PartialEq for SpmdCopy {
    fn eq(&self, other: &Self) -> bool {
        // The schedule determines the copy (the plan is its preimage,
        // the program its compiled form).
        self.src == other.src && self.planned.schedule == other.planned.schedule
    }
}

impl Eq for SpmdCopy {}

/// An explicit remapping operation — one (vertex, array) slot of the
/// remapping graph, compiled per Fig. 19.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemapOp {
    /// The array being remapped.
    pub array: ArrayId,
    /// Target version (`L_A(v)`).
    pub target: u32,
    /// Versions that may reach this point (`R_A(v)`) — the guarded copy
    /// sources of Fig. 20.
    pub reaching: BTreeSet<u32>,
    /// Copies to keep alive past this point (`M_A(v)`, App. D).
    pub may_live: BTreeSet<u32>,
    /// No data movement required: the leaving copy is fully redefined
    /// before use (`U = D`, Fig. 19's test) or the values are dead
    /// (`KILL` upstream).
    pub no_data: bool,
    /// Partial-impact guard: if the current status is one of these
    /// versions, this execution is unaffected by the directive (the
    /// array's alignment does not involve the redistributed template on
    /// this path) — skip the remap, keep the status.
    pub skip_if_current: BTreeSet<u32>,
    /// Message-level SPMD copy code, one entry per data-moving source
    /// version (every `r ∈ reaching`, `r ≠ target`). Empty when
    /// `no_data` — there is nothing to move. Ordered by source version.
    pub copies: Vec<SpmdCopy>,
}

/// A statement of the static program.
#[derive(Debug, Clone)]
pub enum SStmt {
    /// An assignment (references use each array's *current* copy; the
    /// compiler guarantees the current version at this point — recorded
    /// in `expected` and asserted by the interpreter).
    Assign {
        /// Target.
        lhs: LValue,
        /// Source expression.
        rhs: Expr,
        /// Compiler-predicted (array, version) pairs at this reference.
        expected: Vec<(ArrayId, u32)>,
    },
    /// Conditional.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_body: Vec<SStmt>,
        /// Else branch.
        else_body: Vec<SStmt>,
    },
    /// Counted loop.
    Do {
        /// Loop variable.
        var: String,
        /// Lower bound.
        lo: Expr,
        /// Upper bound.
        hi: Expr,
        /// Step (default 1).
        step: Option<Expr>,
        /// Body.
        body: Vec<SStmt>,
    },
    /// A call; argument copies are separate [`SStmt::Remap`] /
    /// [`SStmt::RestoreStatus`] statements around it.
    Call {
        /// Callee name.
        name: String,
        /// Actual arguments.
        args: Vec<Expr>,
        /// Mapped array arguments with their intents and the dummy
        /// version the callee sees.
        mapped: Vec<(ArrayId, Intent, u32)>,
    },
    /// A compiled remapping (Fig. 19/20).
    Remap(RemapOp),
    /// Save the current status of an array before a call whose restore
    /// is flow-dependent (Fig. 18, `reaching_A = status_A`).
    SaveStatus {
        /// The array.
        array: ArrayId,
        /// Save-slot index (per routine).
        slot: u32,
    },
    /// Restore the saved mapping after the call (Fig. 18's
    /// if/elif chain, executed by the runtime as a remap to the saved
    /// version).
    RestoreStatus {
        /// The array.
        array: ArrayId,
        /// Save-slot index.
        slot: u32,
        /// The statically possible restored versions (display/tests).
        possible: BTreeSet<u32>,
        /// Copies to keep alive past the restore.
        may_live: BTreeSet<u32>,
    },
    /// Early return.
    Return,
    /// Exit cleanup: free every local copy; dummies keep their current
    /// copy ("which belongs to the caller", Sec. 5.2).
    ExitCleanup,
}

/// A fully lowered routine.
#[derive(Debug, Clone)]
pub struct StaticProgram {
    /// Routine name.
    pub routine: String,
    /// Scalar dummy argument names (arrays are in `arrays`).
    pub params: Vec<String>,
    /// All arrays with their version tables.
    pub arrays: Vec<ArrayDecl>,
    /// Number of processors of the largest grid in use.
    pub nprocs: u64,
    /// The body.
    pub body: Vec<SStmt>,
    /// The exit block: dummy-argument restores (the `v_e` vertex) and
    /// final cleanup. Always executed, including on early RETURN.
    pub exit_block: Vec<SStmt>,
    /// Number of status save slots used.
    pub n_slots: u32,
    /// All dummy argument names in positional order (scalars and
    /// arrays), for interprocedural argument binding.
    pub param_order: Vec<String>,
}

impl StaticProgram {
    /// Array declaration by id.
    pub fn array(&self, a: ArrayId) -> &ArrayDecl {
        &self.arrays[a.0 as usize]
    }

    /// Visit every statement of the program (body and exit block, all
    /// nesting levels, pre-order) — the single traversal behind
    /// [`StaticProgram::for_each_remap`] and
    /// [`StaticProgram::count_remaps`], so a future statement kind
    /// with a nested body only needs its recursion added here.
    pub fn for_each_stmt(&self, mut f: impl FnMut(&SStmt)) {
        fn go(body: &[SStmt], f: &mut impl FnMut(&SStmt)) {
            for s in body {
                f(s);
                match s {
                    SStmt::If { then_body, else_body, .. } => {
                        go(then_body, f);
                        go(else_body, f);
                    }
                    SStmt::Do { body, .. } => go(body, f),
                    _ => {}
                }
            }
        }
        go(&self.body, &mut f);
        go(&self.exit_block, &mut f);
    }

    /// Visit every [`RemapOp`] of the program — the interpreter uses
    /// this to seed each array's runtime plan cache from the
    /// compile-time plans before execution starts.
    pub fn for_each_remap(&self, mut f: impl FnMut(&RemapOp)) {
        self.for_each_stmt(|s| {
            if let SStmt::Remap(op) = s {
                f(op);
            }
        });
    }

    /// Total number of `Remap` statements (static count; flow-dependent
    /// restores count as one remap each).
    pub fn count_remaps(&self) -> usize {
        let mut n = 0;
        self.for_each_stmt(|s| {
            if matches!(s, SStmt::Remap(_) | SStmt::RestoreStatus { .. }) {
                n += 1;
            }
        });
        n
    }
}
