//! The static-program IR: the paper's "standard statically mapped HPF
//! program with copies between differently mapped arrays" (Sec. 2).

use std::collections::BTreeSet;
use std::sync::Arc;

use hpfc_lang::ast::{Expr, Intent, LValue};
use hpfc_mapping::{ArrayId, NormalizedMapping};
use hpfc_runtime::{CommSchedule, PlannedGroup, PlannedRemap};

/// One array of the static program with all its versions.
#[derive(Debug, Clone)]
pub struct ArrayDecl {
    /// Identity (indices into `StaticProgram.arrays` follow `ArrayId`).
    pub id: ArrayId,
    /// Source name.
    pub name: String,
    /// Element size in bytes.
    pub elem_size: u64,
    /// The statically mapped versions `A_0 … A_k` (index = subscript).
    pub versions: Vec<NormalizedMapping>,
    /// The version holding the array on entry (always 0 by
    /// construction).
    pub entry_version: u32,
    /// Whether the array is a dummy argument (its current copy belongs
    /// to the caller and is never freed by exit cleanup).
    pub is_dummy: bool,
}

/// The message-level lowering of one guarded copy source of a
/// [`RemapOp`]: when the runtime status is `src`, the copy into the
/// target version is this packed send/recv loop nest — per
/// communicating (sender, receiver) pair one contiguous buffer with a
/// closed-form byte count, pack/unpack loops walking the periodic run
/// iterator, and the whole set ordered into contention-free caterpillar
/// rounds.
///
/// The attached [`PlannedRemap`] is the *same* plan + schedule +
/// compiled [`hpfc_runtime::CopyProgram`] triple the runtime caches
/// ([`hpfc_runtime::ArrayRt::plan_cache`]): the interpreter seeds the
/// per-array cache from these `Arc`s
/// ([`hpfc_runtime::ArrayRt::seed_plan`]), so executing a lowered
/// program replans **nothing** at run time and the rendered SPMD code,
/// the costed schedule, and the replayed copy program are one object
/// end to end.
///
/// ```
/// use std::sync::Arc;
/// use hpfc_codegen::ir::SpmdCopy;
/// use hpfc_mapping::{Alignment, DimFormat, Distribution, Extents, GridId, Mapping,
///                    ProcGrid, Template, TemplateId};
/// use hpfc_runtime::{plan_redistribution, PlannedRemap};
///
/// let t = Template { id: TemplateId(0), name: "T".into(), shape: Extents::new(&[16]) };
/// let g = ProcGrid { id: GridId(0), name: "P".into(), shape: Extents::new(&[4]) };
/// let mk = |fmt| Mapping {
///     align: Alignment::identity(TemplateId(0), 1),
///     dist: Distribution::new(GridId(0), vec![fmt]),
/// }.normalize(&Extents::new(&[16]), &t, &g).unwrap();
///
/// let plan = plan_redistribution(&mk(DimFormat::Block(None)), &mk(DimFormat::Cyclic(None)), 8);
/// let copy = SpmdCopy { src: 0, planned: Arc::new(PlannedRemap::compile(plan)) };
/// assert_eq!(copy.schedule().messages.len(), 12); // all-to-all minus the diagonal
/// assert_eq!(copy.schedule().n_rounds(), 3);      // caterpillar: contention-free rounds
/// let program = copy.planned.program.as_ref().unwrap();
/// assert_eq!(program.n_elements(), 16);           // every element delivered once
/// ```
#[derive(Debug, Clone)]
pub struct SpmdCopy {
    /// The source version this copy reads from (the `status == src`
    /// guard arm of Fig. 20).
    pub src: u32,
    /// The compile-time-planned remapping: plan, caterpillar schedule,
    /// and compiled copy program, shared by `Arc` with the runtime
    /// cache seeding.
    pub planned: Arc<PlannedRemap>,
}

impl SpmdCopy {
    /// The per-pair packed messages in caterpillar rounds, with the
    /// per-dimension periodic descriptors driving each pack loop.
    pub fn schedule(&self) -> &CommSchedule {
        &self.planned.schedule
    }
}

impl PartialEq for SpmdCopy {
    fn eq(&self, other: &Self) -> bool {
        // The schedule determines the copy (the plan is its preimage,
        // the program its compiled form).
        self.src == other.src && self.planned.schedule == other.planned.schedule
    }
}

impl Eq for SpmdCopy {}

/// One statically compiled arm of a flow-dependent restore (Fig. 18):
/// if the saved status tag equals [`RestoreArm::target`], the restore
/// is a remap to that version, and these are its guarded copy sources —
/// planned, scheduled, and compiled at lowering time exactly like a
/// [`RemapOp`]'s copies. Run time *selects* an arm by the live tag; it
/// never plans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestoreArm {
    /// The saved version this arm restores to (the `reaching_s == v`
    /// guard of Fig. 18's if/elif chain).
    pub target: u32,
    /// Message-level SPMD copy code, one entry per version that may be
    /// current when the restore executes (every `r ∈ reaching`,
    /// `r ≠ target`). Empty when the restore moves no data.
    pub copies: Vec<SpmdCopy>,
}

/// A compiled flow-dependent status restore (Fig. 18) — the counterpart
/// of [`RemapOp`] for the save/restore path around calls. Where a
/// `RemapOp` has one statically known target, a restore's target is the
/// *saved* status tag, known only at run time — so lowering compiles
/// one [`RestoreArm`] per statically possible tag, and the rendered
/// code is a switch on the tag whose arms are ordinary guarded
/// message-level copies. Executing a restore therefore plans nothing:
/// the interpreter seeds every arm's `Arc<PlannedRemap>` into the
/// runtime cache and dispatch is a tag comparison.
///
/// ```
/// use std::sync::Arc;
/// use hpfc_codegen::ir::{RestoreArm, RestoreOp, SpmdCopy};
/// use hpfc_mapping::{ArrayId, DimFormat, testing::mapping_1d as mk};
/// use hpfc_runtime::{plan_redistribution, PlannedRemap};
///
/// // The callee's dummy version (2) can be live at the restore; the
/// // saved tag is 0 or 1. Each arm's copy is planned at compile time.
/// let vs = [
///     mk(16, 4, DimFormat::Block(None)),
///     mk(16, 4, DimFormat::Cyclic(Some(2))),
///     mk(16, 4, DimFormat::Cyclic(None)),
/// ];
/// let arm = |t: u32| RestoreArm {
///     target: t,
///     copies: vec![SpmdCopy {
///         src: 2,
///         planned: Arc::new(PlannedRemap::compile(plan_redistribution(&vs[2], &vs[t as usize], 8))),
///     }],
/// };
/// let op = RestoreOp {
///     array: ArrayId(0),
///     slot: 0,
///     possible: [0u32, 1].into_iter().collect(),
///     reaching: [2u32].into_iter().collect(),
///     may_live: Default::default(),
///     no_data: false,
///     arms: vec![arm(0), arm(1)],
/// };
/// // Run time only selects: the saved tag picks its precompiled arm.
/// assert_eq!(op.arm_for(1).unwrap().copies[0].src, 2);
/// assert!(op.arm_for(3).is_none()); // unforeseen tags fail loudly upstream
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestoreOp {
    /// The array.
    pub array: ArrayId,
    /// Save-slot index (paired with the [`SStmt::SaveStatus`] before
    /// the call).
    pub slot: u32,
    /// The statically possible restored versions — one arm each.
    pub possible: BTreeSet<u32>,
    /// Versions that may be current when the restore executes (the
    /// reaching set of the `ArgOut` vertex — the copy sources of every
    /// arm).
    pub reaching: BTreeSet<u32>,
    /// Copies to keep alive past the restore.
    pub may_live: BTreeSet<u32>,
    /// No data movement required (values dead or fully redefined before
    /// use) — every arm is allocation + status flip only.
    pub no_data: bool,
    /// One compiled arm per possible saved tag, ordered by target
    /// version. Each arm's copies carry the same
    /// `Arc<`[`PlannedRemap`]`>` triples the runtime cache replays.
    pub arms: Vec<RestoreArm>,
}

impl RestoreOp {
    /// The arm selected by a saved status tag, if the tag was
    /// statically foreseen.
    pub fn arm_for(&self, tag: u32) -> Option<&RestoreArm> {
        self.arms.iter().find(|a| a.target == tag)
    }
}

/// An explicit remapping operation — one (vertex, array) slot of the
/// remapping graph, compiled per Fig. 19.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemapOp {
    /// The array being remapped.
    pub array: ArrayId,
    /// Target version (`L_A(v)`).
    pub target: u32,
    /// Versions that may reach this point (`R_A(v)`) — the guarded copy
    /// sources of Fig. 20.
    pub reaching: BTreeSet<u32>,
    /// Copies to keep alive past this point (`M_A(v)`, App. D).
    pub may_live: BTreeSet<u32>,
    /// No data movement required: the leaving copy is fully redefined
    /// before use (`U = D`, Fig. 19's test) or the values are dead
    /// (`KILL` upstream).
    pub no_data: bool,
    /// Partial-impact guard: if the current status is one of these
    /// versions, this execution is unaffected by the directive (the
    /// array's alignment does not involve the redistributed template on
    /// this path) — skip the remap, keep the status.
    pub skip_if_current: BTreeSet<u32>,
    /// Message-level SPMD copy code, one entry per data-moving source
    /// version (every `r ∈ reaching`, `r ≠ target`). Empty when
    /// `no_data` — there is nothing to move. Ordered by source version.
    pub copies: Vec<SpmdCopy>,
}

/// A directive-level remap group (the paper's Fig. 3 situation): one
/// `REDISTRIBUTE`/`REALIGN` directive remaps *several* arrays at the
/// same program vertex, and their copies are aggregated into **one**
/// schedule. Lowering collects every data-moving, single-source
/// [`RemapOp`] of the directive (members keep their full Fig. 19/20
/// semantics — liveness sets, partial-impact guards, per-member stats),
/// merges the member plans' messages so same-(sender, receiver)-pair
/// messages of different arrays share a caterpillar round and a wire
/// buffer, and compiles one round-aligned group copy program.
///
/// The whole aggregate — merged schedule, member programs, makespan —
/// is one static object resolved at lowering time: the rendered SPMD
/// text, the costed rounds
/// ([`hpfc_runtime::Machine::account_schedule`]-style masked
/// accounting), and the replayed group program
/// ([`hpfc_runtime::remap_group`]) cannot disagree. Members whose
/// runtime state turns out not to move data (status noop, live-copy
/// reuse, partial-impact skip) drop out of the coalesced buffers; each
/// member's solo [`PlannedRemap`] is still seeded into the runtime
/// cache, so even a full fallback never plans at run time.
#[derive(Debug, Clone)]
pub struct RemapGroupOp {
    /// Member remaps in array order. Every member moves data from
    /// exactly one statically known source version
    /// (`copies.len() == 1`); multi-source or data-free remaps of the
    /// same directive are emitted as ordinary solo [`SStmt::Remap`]s.
    pub members: Vec<RemapOp>,
    /// The compile-time aggregate: merged caterpillar schedule over all
    /// members' messages plus the round-aligned group copy program,
    /// shared by `Arc` with the runtime executor.
    pub planned: Arc<PlannedGroup>,
}

/// A statement of the static program.
#[derive(Debug, Clone)]
pub enum SStmt {
    /// An assignment (references use each array's *current* copy; the
    /// compiler guarantees the current version at this point — recorded
    /// in `expected` and asserted by the interpreter).
    Assign {
        /// Target.
        lhs: LValue,
        /// Source expression.
        rhs: Expr,
        /// Compiler-predicted (array, version) pairs at this reference.
        expected: Vec<(ArrayId, u32)>,
    },
    /// Conditional.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_body: Vec<SStmt>,
        /// Else branch.
        else_body: Vec<SStmt>,
    },
    /// Counted loop.
    Do {
        /// Loop variable.
        var: String,
        /// Lower bound.
        lo: Expr,
        /// Upper bound.
        hi: Expr,
        /// Step (default 1).
        step: Option<Expr>,
        /// Body.
        body: Vec<SStmt>,
    },
    /// A call; argument copies are separate [`SStmt::Remap`] /
    /// [`SStmt::RestoreStatus`] statements around it.
    Call {
        /// Callee name.
        name: String,
        /// Actual arguments.
        args: Vec<Expr>,
        /// Mapped array arguments with their intents and the dummy
        /// version the callee sees.
        mapped: Vec<(ArrayId, Intent, u32)>,
    },
    /// A compiled remapping (Fig. 19/20).
    Remap(RemapOp),
    /// A directive-level remap group (Fig. 3): several arrays'
    /// same-directive remaps moved over one merged caterpillar
    /// schedule with coalesced same-pair wire messages.
    RemapGroup(RemapGroupOp),
    /// Save the current status of an array before a call whose restore
    /// is flow-dependent (Fig. 18, `reaching_A = status_A`).
    SaveStatus {
        /// The array.
        array: ArrayId,
        /// Save-slot index (per routine).
        slot: u32,
    },
    /// Restore the saved mapping after the call (Fig. 18's if/elif
    /// chain): a switch on the saved status tag whose arms are
    /// compile-time-planned remaps to each statically possible version.
    RestoreStatus(RestoreOp),
    /// Early return.
    Return,
    /// Exit cleanup: free every local copy; dummies keep their current
    /// copy ("which belongs to the caller", Sec. 5.2).
    ExitCleanup,
}

/// A fully lowered routine.
#[derive(Debug, Clone)]
pub struct StaticProgram {
    /// Routine name.
    pub routine: String,
    /// Scalar dummy argument names (arrays are in `arrays`).
    pub params: Vec<String>,
    /// All arrays with their version tables.
    pub arrays: Vec<ArrayDecl>,
    /// Number of processors of the largest grid in use.
    pub nprocs: u64,
    /// The body.
    pub body: Vec<SStmt>,
    /// The exit block: dummy-argument restores (the `v_e` vertex) and
    /// final cleanup. Always executed, including on early RETURN.
    pub exit_block: Vec<SStmt>,
    /// Number of status save slots used.
    pub n_slots: u32,
    /// All dummy argument names in positional order (scalars and
    /// arrays), for interprocedural argument binding.
    pub param_order: Vec<String>,
}

impl StaticProgram {
    /// Array declaration by id.
    pub fn array(&self, a: ArrayId) -> &ArrayDecl {
        &self.arrays[a.0 as usize]
    }

    /// Visit every statement of the program (body and exit block, all
    /// nesting levels, pre-order) — the single traversal behind
    /// [`StaticProgram::for_each_planned_copy`] and
    /// [`StaticProgram::count_remaps`], so a future statement kind
    /// with a nested body only needs its recursion added here.
    pub fn for_each_stmt(&self, mut f: impl FnMut(&SStmt)) {
        fn go(body: &[SStmt], f: &mut impl FnMut(&SStmt)) {
            for s in body {
                f(s);
                match s {
                    SStmt::If { then_body, else_body, .. } => {
                        go(then_body, f);
                        go(else_body, f);
                    }
                    SStmt::Do { body, .. } => go(body, f),
                    _ => {}
                }
            }
        }
        go(&self.body, &mut f);
        go(&self.exit_block, &mut f);
    }

    /// Visit every compile-time-planned copy of the program — the
    /// guarded arms of plain remaps *and* the per-tag arms of
    /// flow-dependent restores — as `(array, target version, copy)`.
    /// The interpreter uses this to seed each array's runtime plan
    /// cache before execution starts, so no statement (including a
    /// Fig. 18 restore) ever plans at run time.
    pub fn for_each_planned_copy(&self, mut f: impl FnMut(ArrayId, u32, &SpmdCopy)) {
        self.for_each_stmt(|s| match s {
            SStmt::Remap(op) => {
                for copy in &op.copies {
                    f(op.array, op.target, copy);
                }
            }
            SStmt::RemapGroup(g) => {
                for op in &g.members {
                    for copy in &op.copies {
                        f(op.array, op.target, copy);
                    }
                }
            }
            SStmt::RestoreStatus(op) => {
                for arm in &op.arms {
                    for copy in &arm.copies {
                        f(op.array, arm.target, copy);
                    }
                }
            }
            _ => {}
        });
    }

    /// Total number of `Remap` statements (static count; flow-dependent
    /// restores count as one remap each, remap groups as one per
    /// member — grouping changes the schedule, not how many remapping
    /// slots exist).
    pub fn count_remaps(&self) -> usize {
        let mut n = 0;
        self.for_each_stmt(|s| match s {
            SStmt::Remap(_) | SStmt::RestoreStatus { .. } => n += 1,
            SStmt::RemapGroup(g) => n += g.members.len(),
            _ => {}
        });
        n
    }
}
