//! Copy-code generation (paper Sec. 5.2, Fig. 19) — lowering a routine
//! plus its optimized remapping graph into a **static program**: a
//! statement tree in which every dynamic mapping has been replaced by
//! statically mapped versions, every remapping by an explicit guarded
//! copy operation, and every flow-dependent argument restore by the
//! Fig. 18 status save/restore.
//!
//! The output [`ir::StaticProgram`] is what the interpreter executes on
//! the simulated machine, and what [`render`] pretty-prints in the
//! shape of the paper's Fig. 20 — with every copy arm lowered to
//! message granularity ([`ir::SpmdCopy`]): per (sender, receiver) pair
//! a packed send/recv loop nest over periodic interval runs, scheduled
//! into contention-free caterpillar rounds shared verbatim with the
//! runtime ([`hpfc_runtime::CommSchedule`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ir;
pub mod lower;
pub mod render;

pub use ir::{RemapGroupOp, RemapOp, SStmt, SpmdCopy, StaticProgram};
pub use lower::{lower, lower_with, CodegenStats, LowerOptions};
