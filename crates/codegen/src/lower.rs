//! The lowering walk: AST × remapping graph → static program.

use std::collections::{BTreeMap, BTreeSet};

use hpfc_cfg::graph::{NodeId, NodeKind};
use hpfc_lang::ast::{Directive, Stmt};
use hpfc_lang::sema::RoutineUnit;
use hpfc_lang::Span;
use hpfc_mapping::ArrayId;
use hpfc_rgraph::build::{Rg, VertexId};
use hpfc_rgraph::label::{Leaving, UseInfo};

use hpfc_mapping::VersionId;
use hpfc_runtime::{plan_redistribution, PlanRegistry, PlannedGroup, PlannedRemap};
use std::sync::Arc;

use crate::ir::{
    ArrayDecl, RemapGroupOp, RemapOp, RestoreArm, RestoreOp, SStmt, SpmdCopy, StaticProgram,
};

/// Static accounting of what lowering emitted — the compile-time side
/// of the experiment tables.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CodegenStats {
    /// `Remap` statements emitted.
    pub emitted_remaps: usize,
    /// Remapping slots suppressed because App. C removed them.
    pub suppressed_removed: usize,
    /// Emitted remaps that are statically trivial (runtime status check
    /// will skip them).
    pub emitted_trivial: usize,
    /// Fig. 18 save/restore pairs.
    pub save_restores: usize,
    /// Remaps emitted with no data movement (`U = D` or dead values).
    pub no_data_remaps: usize,
    /// Compile-time-planned restore arms (one per statically possible
    /// saved tag of every flow-dependent restore).
    pub restore_arms: usize,
    /// Directive-level remap groups emitted (Fig. 3: ≥2 arrays of one
    /// directive aggregated into a merged schedule).
    pub remap_groups: usize,
    /// Total member remaps inside those groups.
    pub grouped_members: usize,
}

/// Lowering knobs.
#[derive(Debug, Clone, Copy)]
pub struct LowerOptions {
    /// Aggregate the remaps of one directive into a [`RemapGroupOp`]
    /// with a merged caterpillar schedule (on by default; off lowers
    /// each array's remap as a solo [`SStmt::Remap`], the pre-grouping
    /// behavior — useful as a baseline).
    pub group_remaps: bool,
}

impl Default for LowerOptions {
    fn default() -> Self {
        LowerOptions { group_remaps: true }
    }
}

/// Lower a routine to its static program, consuming the (optimized)
/// remapping graph, with default [`LowerOptions`].
pub fn lower(unit: &RoutineUnit, rg: &Rg) -> (StaticProgram, CodegenStats) {
    lower_with(unit, rg, &LowerOptions::default())
}

/// [`lower`] with explicit options.
pub fn lower_with(
    unit: &RoutineUnit,
    rg: &Rg,
    options: &LowerOptions,
) -> (StaticProgram, CodegenStats) {
    let mut stats = CodegenStats::default();

    // --- indices from source spans to CFG nodes / vertices.
    let mut directive_vertex: BTreeMap<(usize, usize), VertexId> = BTreeMap::new();
    let mut call_groups: BTreeMap<(usize, usize), CallGroup> = BTreeMap::new();
    let mut assign_nodes: BTreeMap<(usize, usize), NodeId> = BTreeMap::new();
    for v in rg.vertex_ids() {
        let n = rg.node_of(v);
        let span = rg.cfg.node(n).span;
        match rg.cfg.node(n).kind {
            NodeKind::Realign { .. } | NodeKind::Redistribute { .. } => {
                directive_vertex.insert(key(span), v);
            }
            NodeKind::ArgIn { .. } => {
                call_groups.entry(key(span)).or_default().arg_ins.push(v);
            }
            NodeKind::ArgOut { .. } => {
                call_groups.entry(key(span)).or_default().arg_outs.push(v);
            }
            _ => {}
        }
    }
    for n in rg.cfg.node_ids() {
        if matches!(rg.cfg.node(n).kind, NodeKind::Assign { .. }) {
            assign_nodes.insert(key(rg.cfg.node(n).span), n);
        }
    }

    let elem_sizes: BTreeMap<ArrayId, u64> =
        unit.env.arrays().iter().map(|info| (info.id, info.elem_size)).collect();
    let mut lowerer = Lowerer {
        rg,
        directive_vertex,
        call_groups,
        assign_nodes,
        elem_sizes,
        stats: &mut stats,
        n_slots: 0,
        group_remaps: options.group_remaps,
    };
    let body = lowerer.lower_body(&unit.ast.body);

    // Exit block: dummy restores (the v_e vertex), then cleanup —
    // executed on every path out of the routine, including RETURN.
    let exit_v = rg
        .vertex_ids()
        .find(|&v| matches!(rg.cfg.node(rg.node_of(v)).kind, NodeKind::Exit))
        .expect("exit vertex");
    let mut exit_block = Vec::new();
    for (a, label) in rg.labels[exit_v.idx()].clone() {
        if let Some(op) = lowerer.remap_op_from_label(a, &label) {
            exit_block.push(SStmt::Remap(op));
        }
    }
    exit_block.push(SStmt::ExitCleanup);
    let n_slots = lowerer.n_slots;

    // --- array declarations with version tables.
    let dummies: BTreeSet<ArrayId> =
        unit.ast.params.iter().filter_map(|p| unit.array(p)).collect();
    let mut arrays = Vec::new();
    for info in unit.env.arrays() {
        let mut versions: Vec<_> = rg
            .versions
            .versions_of(info.id)
            .into_iter()
            .map(|v| rg.versions.mapping_of(v).clone())
            .collect();
        if versions.is_empty() {
            // Never remapped nor referenced: a single static version.
            versions.push(unit.env.normalize(info.id, &unit.initial[&info.id]).expect(
                "initial mappings were validated by sema",
            ));
        }
        arrays.push(ArrayDecl {
            id: info.id,
            name: info.name.clone(),
            elem_size: info.elem_size,
            versions,
            entry_version: 0,
            is_dummy: dummies.contains(&info.id),
        });
    }

    let nprocs = unit.env.grids().iter().map(|g| g.nprocs()).max().unwrap_or(1);
    let params: Vec<String> = unit
        .ast
        .params
        .iter()
        .filter(|p| unit.array(p).is_none())
        .cloned()
        .collect();

    (
        StaticProgram {
            routine: unit.name.clone(),
            params,
            arrays,
            nprocs,
            body,
            exit_block,
            n_slots,
            param_order: unit.ast.params.clone(),
        },
        stats,
    )
}

fn key(s: Span) -> (usize, usize) {
    (s.start, s.end)
}

#[derive(Default)]
struct CallGroup {
    arg_ins: Vec<VertexId>,
    arg_outs: Vec<VertexId>,
}

struct Lowerer<'a> {
    rg: &'a Rg,
    directive_vertex: BTreeMap<(usize, usize), VertexId>,
    call_groups: BTreeMap<(usize, usize), CallGroup>,
    assign_nodes: BTreeMap<(usize, usize), NodeId>,
    elem_sizes: BTreeMap<ArrayId, u64>,
    stats: &'a mut CodegenStats,
    n_slots: u32,
    group_remaps: bool,
}

impl<'a> Lowerer<'a> {
    fn lower_body(&mut self, body: &[Stmt]) -> Vec<SStmt> {
        let mut out = Vec::new();
        for s in body {
            self.lower_stmt(s, &mut out);
        }
        out
    }

    /// Plan, schedule, and compile the guarded copy arm for every
    /// data-moving source version (`r ∈ reaching`, `r ≠ target`),
    /// ordered by source version — shared by plain remaps and by each
    /// arm of a flow-dependent restore. Compilation goes through the
    /// process-wide plan registry when enabled: lowering the same
    /// mapping pair twice (two programs, or one program recompiled)
    /// serves the registered artifact instead of replanning, so the
    /// whole process holds one compiled pipeline per distinct pair.
    fn planned_copies(&self, a: ArrayId, reaching: &BTreeSet<u32>, target: u32) -> Vec<SpmdCopy> {
        let elem = self.elem_sizes[&a];
        let dst = self.rg.versions.mapping_of(VersionId { array: a, index: target });
        reaching
            .iter()
            .filter(|&&r| r != target)
            .map(|&r| {
                let src = self.rg.versions.mapping_of(VersionId { array: a, index: r });
                let planned = match PlanRegistry::global() {
                    // Symbolic keying first (`HPFC_SYMBOLIC`, default
                    // on): a registered concrete artifact (seeded or
                    // installed) is always honored, then the
                    // format-pair table instantiates at this pair's
                    // `(P, extent)` point; shapes it declines compile
                    // on the concrete keys as before.
                    Some(reg) if hpfc_runtime::symbolic::enabled_from_env() => reg
                        .probe(src, dst, elem)
                        .0
                        .or_else(|| reg.get_or_instantiate(src, dst, elem).map(|(p, _)| p))
                        .unwrap_or_else(|| reg.get_or_compile(src, dst, elem).0),
                    Some(reg) => reg.get_or_compile(src, dst, elem).0,
                    None => Arc::new(PlannedRemap::compile(plan_redistribution(src, dst, elem))),
                };
                SpmdCopy { src: r, planned }
            })
            .collect()
    }

    fn remap_op_from_label(
        &mut self,
        a: ArrayId,
        label: &hpfc_rgraph::label::Label,
    ) -> Option<RemapOp> {
        match &label.leaving {
            None => {
                if label.is_removed() {
                    self.stats.suppressed_removed += 1;
                }
                None
            }
            Some(Leaving::One(v)) => {
                let reaching: std::collections::BTreeSet<u32> =
                    label.reaching.iter().map(|x| x.index).collect();
                let no_data = label.values_dead || label.use_info == UseInfo::D;
                // Message-level lowering: one packed send/recv schedule
                // per data-moving source version, planned *and compiled
                // to an executable copy program* at compile time — the
                // mapping pair is static, and the interpreter seeds the
                // runtime plan cache from these Arcs instead of
                // replanning.
                let copies = if no_data {
                    Vec::new()
                } else {
                    self.planned_copies(a, &reaching, v.index)
                };
                let op = RemapOp {
                    array: a,
                    target: v.index,
                    skip_if_current: label
                        .passthrough
                        .iter()
                        .map(|x| x.index)
                        .filter(|i| !reaching.contains(i))
                        .collect(),
                    reaching,
                    may_live: label.may_live.iter().map(|x| x.index).collect(),
                    no_data,
                    copies,
                };
                self.stats.emitted_remaps += 1;
                if label.is_trivial() {
                    self.stats.emitted_trivial += 1;
                }
                if op.no_data {
                    self.stats.no_data_remaps += 1;
                }
                Some(op)
            }
            Some(Leaving::Restore(_)) => {
                unreachable!("restores are emitted by the call path")
            }
        }
    }

    /// Emit one directive's remap operations: the data-moving,
    /// single-source members are aggregated into a [`RemapGroupOp`]
    /// per element size (Fig. 3's template impact — their same-pair
    /// messages share merged caterpillar rounds and wire buffers);
    /// everything else (no-data remaps, flow-merged multi-source
    /// remaps) stays a solo [`SStmt::Remap`]. With grouping off, every
    /// op is emitted solo — the pre-grouping baseline.
    fn emit_directive_ops(&mut self, ops: Vec<RemapOp>, out: &mut Vec<SStmt>) {
        if !self.group_remaps {
            out.extend(ops.into_iter().map(SStmt::Remap));
            return;
        }
        // Candidates bucketed by element size (a merged schedule's wire
        // buffers are homogeneous); ops arrive in array order and stay
        // in array order within each bucket.
        let mut buckets: BTreeMap<u64, Vec<RemapOp>> = BTreeMap::new();
        let mut solos = Vec::new();
        for op in ops {
            if !op.no_data && op.copies.len() == 1 {
                buckets.entry(self.elem_sizes[&op.array]).or_default().push(op);
            } else {
                solos.push(op);
            }
        }
        // The runtime's mover mask is a u64, so a group coalesces at
        // most 64 members; a larger directive (65+ aligned arrays) is
        // emitted as several groups, each coalescing internally.
        const MAX_GROUP_MEMBERS: usize = 64;
        for (_, mut members) in buckets {
            while !members.is_empty() {
                let rest = if members.len() > MAX_GROUP_MEMBERS {
                    members.split_off(MAX_GROUP_MEMBERS)
                } else {
                    Vec::new()
                };
                if members.len() < 2 {
                    solos.extend(members);
                } else {
                    // Group artifacts share through the registry too,
                    // keyed by the ordered member pair identities.
                    let member_plans: Vec<_> =
                        members.iter().map(|m| Arc::clone(&m.copies[0].planned)).collect();
                    let planned = match PlanRegistry::global() {
                        Some(reg) => reg.get_or_compile_group(member_plans).0,
                        None => Arc::new(PlannedGroup::compile(member_plans)),
                    };
                    self.stats.remap_groups += 1;
                    self.stats.grouped_members += members.len();
                    out.push(SStmt::RemapGroup(RemapGroupOp { members, planned }));
                }
                members = rest;
            }
        }
        solos.sort_by_key(|op| op.array);
        out.extend(solos.into_iter().map(SStmt::Remap));
    }

    fn lower_stmt(&mut self, s: &Stmt, out: &mut Vec<SStmt>) {
        match s {
            Stmt::Assign { lhs, rhs, span } => {
                let expected = self
                    .assign_nodes
                    .get(&key(*span))
                    .map(|n| {
                        self.rg
                            .ref_versions
                            .iter()
                            .filter(|((node, _), _)| node == n)
                            .map(|((_, a), v)| (*a, v.index))
                            .collect()
                    })
                    .unwrap_or_default();
                out.push(SStmt::Assign { lhs: lhs.clone(), rhs: rhs.clone(), expected });
            }
            Stmt::If { cond, then_body, else_body, .. } => {
                let then_body = self.lower_body(then_body);
                let else_body = self.lower_body(else_body);
                out.push(SStmt::If { cond: cond.clone(), then_body, else_body });
            }
            Stmt::Do { var, lo, hi, step, body, .. } => {
                let body = self.lower_body(body);
                out.push(SStmt::Do {
                    var: var.clone(),
                    lo: lo.clone(),
                    hi: hi.clone(),
                    step: step.clone(),
                    body,
                });
            }
            Stmt::Return { .. } => out.push(SStmt::Return),
            Stmt::Call { name, args, span } => {
                let group = self.call_groups.remove(&key(*span)).unwrap_or_default();
                // Fig. 18: save the reaching status of every array whose
                // restore is flow-dependent, *before* remapping it.
                let mut slots: BTreeMap<ArrayId, u32> = BTreeMap::new();
                for &vo in &group.arg_outs {
                    let NodeKind::ArgOut { array, .. } = rg_kind(self.rg, vo) else { continue };
                    let label = &self.rg.labels[vo.idx()][&array];
                    if matches!(label.leaving, Some(Leaving::Restore(_))) {
                        let slot = self.n_slots;
                        self.n_slots += 1;
                        slots.insert(array, slot);
                        out.push(SStmt::SaveStatus { array, slot });
                        self.stats.save_restores += 1;
                    }
                }
                // ArgIn remaps.
                let mut mapped = Vec::new();
                for &vi in &group.arg_ins {
                    let NodeKind::ArgIn { array, intent, .. } = rg_kind(self.rg, vi) else {
                        continue;
                    };
                    let label = self.rg.labels[vi.idx()][&array].clone();
                    if let Some(op) = self.remap_op_from_label(array, &label) {
                        mapped.push((array, intent, op.target));
                        out.push(SStmt::Remap(op));
                    } else if let Some(Leaving::One(v)) = &label.original_leaving {
                        // Removed ArgIn cannot happen (a call always uses
                        // its argument), but keep the dummy version for
                        // the Call record defensively.
                        mapped.push((array, intent, v.index));
                    }
                }
                out.push(SStmt::Call { name: name.clone(), args: args.clone(), mapped });
                // ArgOut restores.
                for &vo in &group.arg_outs {
                    let NodeKind::ArgOut { array, .. } = rg_kind(self.rg, vo) else { continue };
                    let label = self.rg.labels[vo.idx()][&array].clone();
                    match &label.leaving {
                        None => {
                            if label.is_removed() {
                                self.stats.suppressed_removed += 1;
                            }
                        }
                        Some(Leaving::One(_)) => {
                            if let Some(op) = self.remap_op_from_label(array, &label) {
                                out.push(SStmt::Remap(op));
                            }
                        }
                        Some(Leaving::Restore(set)) => {
                            // Fig. 18, statically lowered: one compiled
                            // arm per possible saved tag, each planned
                            // from the versions reaching the ArgOut —
                            // run time selects an arm by the tag and
                            // never plans.
                            let possible: BTreeSet<u32> =
                                set.iter().map(|x| x.index).collect();
                            let reaching: BTreeSet<u32> =
                                label.reaching.iter().map(|x| x.index).collect();
                            let no_data =
                                label.values_dead || label.use_info == UseInfo::D;
                            let arms: Vec<RestoreArm> = possible
                                .iter()
                                .map(|&v| RestoreArm {
                                    target: v,
                                    copies: if no_data {
                                        Vec::new()
                                    } else {
                                        self.planned_copies(array, &reaching, v)
                                    },
                                })
                                .collect();
                            self.stats.restore_arms += arms.len();
                            out.push(SStmt::RestoreStatus(RestoreOp {
                                array,
                                slot: slots[&array],
                                possible,
                                reaching,
                                may_live: label.may_live.iter().map(|x| x.index).collect(),
                                no_data,
                                arms,
                            }));
                            self.stats.emitted_remaps += 1;
                        }
                    }
                }
            }
            Stmt::Directive(d) => match d {
                Directive::Realign { span, .. } | Directive::Redistribute { span, .. } => {
                    let Some(&v) = self.directive_vertex.get(&key(*span)) else {
                        return; // unreachable directive (dead code)
                    };
                    let mut ops = Vec::new();
                    for (a, label) in self.rg.labels[v.idx()].clone() {
                        if let Some(op) = self.remap_op_from_label(a, &label) {
                            ops.push(op);
                        }
                    }
                    self.emit_directive_ops(ops, out);
                }
                // KILL is an analysis fact, not executable code.
                Directive::Kill { .. } => {}
                _ => {}
            },
        }
    }
}

fn rg_kind(rg: &Rg, v: VertexId) -> NodeKind {
    rg.cfg.node(rg.node_of(v)).kind.clone()
}
