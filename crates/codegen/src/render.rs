//! Pretty-printing of the static program, including the Fig. 20-style
//! guarded copy code for each remapping.

use crate::ir::{RemapOp, SStmt, StaticProgram};
use hpfc_lang::pretty::expr_to_string;

/// Fig. 20: the runtime copy code of one remapping, as the paper's code
/// generation phase would emit it.
///
/// ```text
/// if (status_a /= 2) then
///   allocate a_2 if needed
///   if (.not. live_a(2)) then
///     if (status_a == 0) a_2 = a_0
///     if (status_a == 1) a_2 = a_1
///     live_a(2) = .true.
///   endif
///   status_a = 2
/// endif
/// ```
pub fn remap_text(p: &StaticProgram, op: &RemapOp) -> String {
    let name = &p.array(op.array).name;
    let t = op.target;
    let mut s = String::new();
    s.push_str(&format!("if (status_{name} /= {t}) then\n"));
    s.push_str(&format!("  allocate {name}_{t} if needed\n"));
    s.push_str(&format!("  if (.not. live_{name}({t})) then\n"));
    if op.no_data {
        s.push_str("    ! values dead or fully redefined: no copy\n");
    } else {
        for r in op.reaching.iter().filter(|&&r| r != t) {
            s.push_str(&format!("    if (status_{name} == {r}) {name}_{t} = {name}_{r}\n"));
        }
    }
    s.push_str(&format!("    live_{name}({t}) = .true.\n"));
    s.push_str("  endif\n");
    s.push_str(&format!("  status_{name} = {t}\n"));
    s.push_str("endif\n");
    // Cleaning (Fig. 19's second loop).
    let all: Vec<u32> = (0..p.array(op.array).versions.len() as u32).collect();
    for v in all {
        if v != op.target && !op.may_live.contains(&v) {
            s.push_str(&format!(
                "if (live_{name}({v})) then\n  free {name}_{v}\n  live_{name}({v}) = .false.\nendif\n"
            ));
        }
    }
    s
}

/// Whole-program listing.
pub fn program_text(p: &StaticProgram) -> String {
    let mut s = format!("! static program for `{}` on {} processors\n", p.routine, p.nprocs);
    for a in &p.arrays {
        s.push_str(&format!(
            "! array {}: {} version(s){}\n",
            a.name,
            a.versions.len(),
            if a.is_dummy { " (dummy)" } else { "" }
        ));
        for (i, v) in a.versions.iter().enumerate() {
            s.push_str(&format!("!   {}_{i}: {v}\n", a.name));
        }
    }
    body_text(p, &p.body, 0, &mut s);
    s.push_str("! exit block\n");
    body_text(p, &p.exit_block, 0, &mut s);
    s
}

fn body_text(p: &StaticProgram, body: &[SStmt], depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    for s in body {
        match s {
            SStmt::Assign { lhs, rhs, .. } => {
                let subs = if lhs.subs.is_empty() {
                    String::new()
                } else {
                    format!(
                        "({})",
                        lhs.subs.iter().map(expr_to_string).collect::<Vec<_>>().join(", ")
                    )
                };
                out.push_str(&format!("{pad}{}{subs} = {}\n", lhs.name, expr_to_string(rhs)));
            }
            SStmt::If { cond, then_body, else_body } => {
                out.push_str(&format!("{pad}if ({}) then\n", expr_to_string(cond)));
                body_text(p, then_body, depth + 1, out);
                if !else_body.is_empty() {
                    out.push_str(&format!("{pad}else\n"));
                    body_text(p, else_body, depth + 1, out);
                }
                out.push_str(&format!("{pad}endif\n"));
            }
            SStmt::Do { var, lo, hi, step, body } => {
                let st = step
                    .as_ref()
                    .map(|e| format!(", {}", expr_to_string(e)))
                    .unwrap_or_default();
                out.push_str(&format!(
                    "{pad}do {var} = {}, {}{st}\n",
                    expr_to_string(lo),
                    expr_to_string(hi)
                ));
                body_text(p, body, depth + 1, out);
                out.push_str(&format!("{pad}enddo\n"));
            }
            SStmt::Call { name, args, .. } => {
                out.push_str(&format!(
                    "{pad}call {name}({})\n",
                    args.iter().map(expr_to_string).collect::<Vec<_>>().join(", ")
                ));
            }
            SStmt::Remap(op) => {
                for line in remap_text(p, op).lines() {
                    out.push_str(&format!("{pad}{line}\n"));
                }
            }
            SStmt::SaveStatus { array, slot } => {
                out.push_str(&format!(
                    "{pad}reaching_{slot} = status_{}\n",
                    p.array(*array).name
                ));
            }
            SStmt::RestoreStatus { array, slot, possible, .. } => {
                let name = &p.array(*array).name;
                let mut first = true;
                for v in possible {
                    let kw = if first { "if" } else { "elif" };
                    first = false;
                    out.push_str(&format!(
                        "{pad}{kw} (reaching_{slot} == {v}) remap {name} -> {name}_{v}\n"
                    ));
                }
            }
            SStmt::Return => out.push_str(&format!("{pad}return\n")),
            SStmt::ExitCleanup => out.push_str(&format!("{pad}! exit: free local copies\n")),
        }
    }
}
