//! Pretty-printing of the static program, including the Fig. 19/20-style
//! guarded copy code for each remapping — with every copy lowered to
//! message-granularity SPMD: per (sender, receiver) pair a pack loop
//! over the periodic intersection runs, one contiguous send/recv with a
//! closed-form byte count, and the mirror unpack loop, ordered into
//! contention-free caterpillar rounds.

use std::collections::BTreeSet;

use crate::ir::{RemapGroupOp, RemapOp, RestoreOp, SStmt, SpmdCopy, StaticProgram};
use hpfc_lang::pretty::expr_to_string;
use hpfc_runtime::PackedMessage;

/// Fig. 20: the runtime copy code of one remapping, as the paper's code
/// generation phase would emit it — except that each guarded copy arm is
/// message-level SPMD code (packed send/recv loops driven by the
/// planner's periodic interval descriptors), not a whole-array copy
/// statement.
///
/// ```text
/// if (status_a /= 2) then
///   allocate a_2 if needed
///   if (.not. live_a(2)) then
///     if (status_a == 0) then    ! a_0 -> a_2: N messages, B bytes, R rounds
///       <per-pair packed send/recv loops>
///     endif
///     live_a(2) = .true.
///   endif
///   status_a = 2
/// endif
/// ```
pub fn remap_text(p: &StaticProgram, op: &RemapOp) -> String {
    let name = &p.array(op.array).name;
    let t = op.target;
    let mut s = String::new();
    s.push_str(&format!("if (status_{name} /= {t}) then\n"));
    s.push_str(&format!("  allocate {name}_{t} if needed\n"));
    s.push_str(&format!("  if (.not. live_{name}({t})) then\n"));
    if op.no_data {
        s.push_str("    ! values dead or fully redefined: no copy\n");
    } else {
        for copy in &op.copies {
            s.push_str(&spmd_copy_text(name, t, copy, 4));
        }
    }
    s.push_str(&format!("    live_{name}({t}) = .true.\n"));
    s.push_str("  endif\n");
    s.push_str(&format!("  status_{name} = {t}\n"));
    s.push_str("endif\n");
    s.push_str(&cleaning_text(p, op));
    s
}

/// Fig. 19's second loop: free every copy outside the target and the
/// may-live set.
fn cleaning_text(p: &StaticProgram, op: &RemapOp) -> String {
    let name = &p.array(op.array).name;
    let mut s = String::new();
    for v in 0..p.array(op.array).versions.len() as u32 {
        if v != op.target && !op.may_live.contains(&v) {
            s.push_str(&format!(
                "if (live_{name}({v})) then\n  free {name}_{v}\n  live_{name}({v}) = .false.\nendif\n"
            ));
        }
    }
    s
}

/// A Fig. 3 remap group as message-level SPMD pseudo-code: the
/// all-members-move guard (the steady-state fast path), then the
/// **merged** caterpillar rounds — per round, one coalesced wire
/// message per communicating pair whose parts are the member arrays'
/// packed loops. The solo back-to-back per-array remap texts are gone.
/// At run time, members that would not move data are *masked out* of
/// the coalesced buffers (the `else` arm's note); only below two
/// movers does the group degrade to solo guarded remaps — the same
/// compiled plans either way.
pub fn remap_group_text(p: &StaticProgram, op: &RemapGroupOp) -> String {
    let sched = &op.planned.schedule;
    let member_name = |i: usize| &p.array(op.members[i].array).name;
    let arrow = |i: usize| {
        let m = &op.members[i];
        format!("{n}_{s} -> {n}_{t}", n = member_name(i), s = m.copies[0].src, t = m.target)
    };
    let mut s = String::new();
    let list: Vec<String> = (0..op.members.len()).map(arrow).collect();
    s.push_str(&format!(
        "! remap group (one directive, {} arrays): {}\n",
        op.members.len(),
        list.join(", ")
    ));
    s.push_str(&format!(
        "! merged schedule: {} wire message(s), {} byte(s), {} round(s) (solo sum: {} round(s))\n",
        sched.n_wire_messages(),
        sched.total_bytes(),
        sched.n_rounds(),
        op.planned.solo_rounds(),
    ));
    let guard: Vec<String> = op
        .members
        .iter()
        .enumerate()
        .map(|(i, m)| {
            format!(
                "status_{n} == {s} .and. .not. live_{n}({t})",
                n = member_name(i),
                s = m.copies[0].src,
                t = m.target
            )
        })
        .collect();
    s.push_str(&format!("if ({}) then  ! coalesced bounce\n", guard.join(" .and. ")));
    let allocs: Vec<String> = op
        .members
        .iter()
        .enumerate()
        .map(|(i, m)| format!("{}_{}", member_name(i), m.target))
        .collect();
    s.push_str(&format!("  allocate {} if needed\n", allocs.join(", ")));
    for (i, m) in op.members.iter().enumerate() {
        let local = m.copies[0].schedule().local_elements;
        if local > 0 {
            s.push_str(&format!(
                "  copy local runs {n}_{src} \u{2229} {n}_{t} across ranks \
                 ({local} element(s) total, no communication)\n",
                n = member_name(i),
                src = m.copies[0].src,
                t = m.target,
            ));
        }
    }
    for (round_no, round) in sched.rounds.iter().enumerate() {
        s.push_str(&format!("  round {}:\n", round_no + 1));
        // Adjacent same-pair messages of a round are one wire buffer.
        let mut k = 0usize;
        while k < round.len() {
            let first = &sched.messages[round[k]];
            let (from, to) = (first.from, first.to);
            let mut end = k + 1;
            while end < round.len()
                && sched.messages[round[end]].from == from
                && sched.messages[round[end]].to == to
            {
                end += 1;
            }
            let elements: u64 =
                round[k..end].iter().map(|&mi| sched.messages[mi].elements).sum();
            s.push_str(&format!(
                "    p{from} -> p{to}: {elements} element(s), {} byte(s), one buffer \
                 coalescing {} message(s)\n",
                elements * sched.elem_size,
                end - k,
            ));
            for &mi in &round[k..end] {
                let m = &sched.messages[mi];
                s.push_str(&format!("      part {}:\n", arrow(m.member)));
                s.push_str(&message_text(
                    member_name(m.member),
                    op.members[m.member].copies[0].src,
                    op.members[m.member].target,
                    m,
                    sched.elem_size,
                    8,
                ));
            }
            k = end;
        }
    }
    for (i, m) in op.members.iter().enumerate() {
        s.push_str(&format!(
            "  live_{n}({t}) = .true.; status_{n} = {t}\n",
            n = member_name(i),
            t = m.target
        ));
    }
    s.push_str("else\n");
    s.push_str(
        "  ! partial group: non-moving members drop out of the coalesced buffers \
         (their wire parts are masked); below two movers every member runs its \
         solo guarded remap (same compiled plans, Fig. 20)\n",
    );
    s.push_str("endif\n");
    for m in &op.members {
        s.push_str(&cleaning_text(p, m));
    }
    s
}

/// Fig. 18, statically lowered: the flow-dependent restore as a switch
/// on the saved status tag. Each arm is a full Fig. 20 guarded remap to
/// one statically possible version, with its own compile-time-planned
/// packed send/recv loops — the restore carries no opaque "remap at run
/// time" step anywhere.
///
/// ```text
/// if (reaching_0 == 0) then  ! restore a -> a_0
///   if (status_a /= 0) then
///     allocate a_0 if needed
///     if (.not. live_a(0)) then
///       if (status_a == 2) then    ! a_2 -> a_0: N messages, B bytes, R rounds
///         <per-pair packed send/recv loops>
///       endif
///       live_a(0) = .true.
///     endif
///     status_a = 0
///   endif
///   <cleaning>
/// elif (reaching_0 == 1) then  ! restore a -> a_1
///   ...
/// endif
/// ```
pub fn restore_text(p: &StaticProgram, op: &RestoreOp) -> String {
    let name = &p.array(op.array).name;
    let mut s = String::new();
    let mut first = true;
    for arm in &op.arms {
        let kw = if first { "if" } else { "elif" };
        first = false;
        s.push_str(&format!(
            "{kw} (reaching_{} == {t}) then  ! restore {name} -> {name}_{t}\n",
            op.slot,
            t = arm.target
        ));
        // Each arm is an ordinary guarded remap to its tag's version.
        let body = remap_text(
            p,
            &RemapOp {
                array: op.array,
                target: arm.target,
                reaching: op.reaching.clone(),
                may_live: op.may_live.clone(),
                no_data: op.no_data,
                skip_if_current: BTreeSet::new(),
                copies: arm.copies.clone(),
            },
        );
        for line in body.lines() {
            s.push_str(&format!("  {line}\n"));
        }
    }
    s.push_str("endif\n");
    s
}

/// One guarded copy arm as message-level SPMD pseudo-code: the header
/// comment summarizes the schedule, then local runs, then one block per
/// caterpillar round with every pair's packed send/recv loops.
pub fn spmd_copy_text(name: &str, target: u32, copy: &SpmdCopy, indent: usize) -> String {
    let pad = " ".repeat(indent);
    let sched = copy.schedule();
    let r = copy.src;
    let mut s = String::new();
    s.push_str(&format!(
        "{pad}if (status_{name} == {r}) then  ! {name}_{r} -> {name}_{target}: \
         {} message(s), {} byte(s), {} round(s)\n",
        sched.messages.len(),
        sched.total_bytes(),
        sched.n_rounds(),
    ));
    if sched.local_elements > 0 {
        s.push_str(&format!(
            "{pad}  copy local runs {name}_{r} ∩ {name}_{target} across ranks \
             ({} element(s) total, no communication)\n",
            sched.local_elements
        ));
    }
    for (round_no, round) in sched.rounds.iter().enumerate() {
        s.push_str(&format!("{pad}  round {}:\n", round_no + 1));
        for &mi in round {
            s.push_str(&message_text(name, r, target, &sched.messages[mi], sched.elem_size, indent + 4));
        }
    }
    s.push_str(&format!("{pad}endif\n"));
    s
}

/// One packed point-to-point message: sender-side pack loop over the
/// periodic intersection runs, a single contiguous send with its
/// closed-form byte count, the matching recv, and the receiver-side
/// unpack loop. Local buffer positions are closed-form
/// (`pos_v(g)` = owned indices of version `v` below `g`, i.e.
/// `PeriodicSet::count_below`), so the loops are guard-free.
fn message_text(
    name: &str,
    src: u32,
    dst: u32,
    m: &PackedMessage,
    elem_size: u64,
    indent: usize,
) -> String {
    let pad = " ".repeat(indent);
    let bytes = m.bytes(elem_size);
    let mut s = String::new();
    s.push_str(&format!(
        "{pad}p{} -> p{}: {} element(s), {} byte(s)\n",
        m.from, m.to, m.elements, bytes
    ));
    if m.dims.is_empty() {
        // Oracle-built schedule: sized message, no loop structure.
        s.push_str(&format!("{pad}  send/recv opaque buffer ({bytes} bytes)\n"));
        return s;
    }
    let rank = m.dims.len();
    let last = rank - 1;
    // Loop headers: outer dimensions walk runs element by element, the
    // innermost dimension moves whole runs.
    let mut depth = indent + 2;
    let mut lines_open: Vec<String> = Vec::new();
    for (d, dim) in m.dims.iter().enumerate() {
        let pad_d = " ".repeat(depth);
        lines_open.push(format!(
            "{pad_d}do (lo{d}, hi{d}) in runs(d{d}: {} ∩ {})\n",
            dim.src_set, dim.dst_set
        ));
        depth += 2;
        if d < last {
            let pad_i = " ".repeat(depth);
            lines_open.push(format!("{pad_i}do i{d} = lo{d}, hi{d}-1\n"));
            depth += 2;
        }
    }
    let body_pad = " ".repeat(depth);
    let outer: Vec<String> = (0..last).map(|d| format!("i{d}, ")).collect();
    let outer = outer.concat();
    // Sender side.
    s.push_str(&format!("{pad}  on p{}:  ! pack\n", m.from));
    s.push_str(&format!("{pad}    k = 0\n"));
    for l in &lines_open {
        // Shift loop headers two deeper than the `on pX:` line.
        s.push_str(&format!("  {l}"));
    }
    s.push_str(&format!(
        "  {body_pad}sbuf(k : k+hi{last}-lo{last}) = \
         {name}_{src}(pos_{src}({outer}lo{last}) : pos_{src}({outer}hi{last})); \
         k += hi{last}-lo{last}\n"
    ));
    s.push_str(&format!("{pad}    send sbuf(0:{}) -> p{}  ! {} bytes\n", m.elements, m.to, bytes));
    // Receiver side.
    s.push_str(&format!("{pad}  on p{}:  ! unpack\n", m.to));
    s.push_str(&format!("{pad}    recv rbuf(0:{}) <- p{}  ! {} bytes\n", m.elements, m.from, bytes));
    s.push_str(&format!("{pad}    k = 0\n"));
    for l in &lines_open {
        s.push_str(&format!("  {l}"));
    }
    s.push_str(&format!(
        "  {body_pad}{name}_{dst}(pos_{dst}({outer}lo{last}) : pos_{dst}({outer}hi{last})) = \
         rbuf(k : k+hi{last}-lo{last}); k += hi{last}-lo{last}\n"
    ));
    s
}

/// Whole-program listing.
pub fn program_text(p: &StaticProgram) -> String {
    let mut s = format!("! static program for `{}` on {} processors\n", p.routine, p.nprocs);
    for a in &p.arrays {
        s.push_str(&format!(
            "! array {}: {} version(s){}\n",
            a.name,
            a.versions.len(),
            if a.is_dummy { " (dummy)" } else { "" }
        ));
        for (i, v) in a.versions.iter().enumerate() {
            s.push_str(&format!("!   {}_{i}: {v}\n", a.name));
        }
    }
    body_text(p, &p.body, 0, &mut s);
    s.push_str("! exit block\n");
    body_text(p, &p.exit_block, 0, &mut s);
    s
}

fn body_text(p: &StaticProgram, body: &[SStmt], depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    for s in body {
        match s {
            SStmt::Assign { lhs, rhs, .. } => {
                let subs = if lhs.subs.is_empty() {
                    String::new()
                } else {
                    format!(
                        "({})",
                        lhs.subs.iter().map(expr_to_string).collect::<Vec<_>>().join(", ")
                    )
                };
                out.push_str(&format!("{pad}{}{subs} = {}\n", lhs.name, expr_to_string(rhs)));
            }
            SStmt::If { cond, then_body, else_body } => {
                out.push_str(&format!("{pad}if ({}) then\n", expr_to_string(cond)));
                body_text(p, then_body, depth + 1, out);
                if !else_body.is_empty() {
                    out.push_str(&format!("{pad}else\n"));
                    body_text(p, else_body, depth + 1, out);
                }
                out.push_str(&format!("{pad}endif\n"));
            }
            SStmt::Do { var, lo, hi, step, body } => {
                let st = step
                    .as_ref()
                    .map(|e| format!(", {}", expr_to_string(e)))
                    .unwrap_or_default();
                out.push_str(&format!(
                    "{pad}do {var} = {}, {}{st}\n",
                    expr_to_string(lo),
                    expr_to_string(hi)
                ));
                body_text(p, body, depth + 1, out);
                out.push_str(&format!("{pad}enddo\n"));
            }
            SStmt::Call { name, args, .. } => {
                out.push_str(&format!(
                    "{pad}call {name}({})\n",
                    args.iter().map(expr_to_string).collect::<Vec<_>>().join(", ")
                ));
            }
            SStmt::Remap(op) => {
                for line in remap_text(p, op).lines() {
                    out.push_str(&format!("{pad}{line}\n"));
                }
            }
            SStmt::RemapGroup(op) => {
                for line in remap_group_text(p, op).lines() {
                    out.push_str(&format!("{pad}{line}\n"));
                }
            }
            SStmt::SaveStatus { array, slot } => {
                out.push_str(&format!(
                    "{pad}reaching_{slot} = status_{}\n",
                    p.array(*array).name
                ));
            }
            SStmt::RestoreStatus(op) => {
                for line in restore_text(p, op).lines() {
                    out.push_str(&format!("{pad}{line}\n"));
                }
            }
            SStmt::Return => out.push_str(&format!("{pad}return\n")),
            SStmt::ExitCleanup => out.push_str(&format!("{pad}! exit: free local copies\n")),
        }
    }
}
