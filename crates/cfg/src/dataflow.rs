//! A small worklist solver for the may-forward / may-backward dataflow
//! problems of App. B–D.
//!
//! All six analyses in the paper are *may* problems over union
//! semilattices, so the solver only needs: a bottom value, a join that
//! reports change, and a transfer function. Facts are tracked per node
//! (the "out" side in the analysis direction); the "in" side is the
//! join over the neighbours and is recomputed on demand.

use crate::graph::{Cfg, NodeId};

/// Analysis direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow along edges (predecessors → node).
    Forward,
    /// Facts flow against edges (successors → node).
    Backward,
}

/// A may-dataflow problem over the CFG.
pub trait Dataflow {
    /// The lattice value attached to each node.
    type Fact: Clone;

    /// Which way facts flow.
    fn direction(&self) -> Direction;

    /// Bottom (initial) fact for every node.
    fn bottom(&self) -> Self::Fact;

    /// Join `b` into `a`; return whether `a` changed. Must be monotone.
    fn join(&self, a: &mut Self::Fact, b: &Self::Fact) -> bool;

    /// Transfer: compute the node's out-fact from its in-fact (the join
    /// of neighbour facts in the analysis direction). `outs` exposes the
    /// current out-fact of every node — needed by transfer functions
    /// with non-local dependencies (the ArgOut restore vertex reads the
    /// facts at its paired ArgIn's predecessors); reads must be
    /// monotone in those facts.
    fn transfer(&self, node: NodeId, input: &Self::Fact, outs: &[Self::Fact]) -> Self::Fact;

    /// Extra seed applied to the node's *input* before transfer (e.g.
    /// boundary facts at entry/exit). Default: nothing.
    fn seed(&self, _node: NodeId, _input: &mut Self::Fact) {}
}

/// Solve to fixpoint; returns the out-fact of every node.
pub fn solve<D: Dataflow>(cfg: &Cfg, problem: &D) -> Vec<D::Fact> {
    let n = cfg.len();
    let mut out: Vec<D::Fact> = (0..n).map(|_| problem.bottom()).collect();

    // Iteration order: RPO for forward, reverse-RPO for backward.
    let mut order = cfg.reverse_postorder();
    if problem.direction() == Direction::Backward {
        order.reverse();
    }

    let mut in_worklist = vec![true; n];
    let mut worklist: std::collections::VecDeque<NodeId> = order.iter().copied().collect();

    while let Some(v) = worklist.pop_front() {
        in_worklist[v.idx()] = false;
        // Input = join of neighbour outputs.
        let mut input = problem.bottom();
        let neighbours = match problem.direction() {
            Direction::Forward => &cfg.preds[v.idx()],
            Direction::Backward => &cfg.succs[v.idx()],
        };
        for nb in neighbours {
            problem.join(&mut input, &out[nb.idx()]);
        }
        problem.seed(v, &mut input);
        let new_out = problem.transfer(v, &input, &out);
        // Did the out-fact grow?
        let mut tmp = out[v.idx()].clone();
        let changed = problem.join(&mut tmp, &new_out);
        if changed {
            out[v.idx()] = tmp;
            let downstream = match problem.direction() {
                Direction::Forward => &cfg.succs[v.idx()],
                Direction::Backward => &cfg.preds[v.idx()],
            };
            for d in downstream {
                if !in_worklist[d.idx()] {
                    in_worklist[d.idx()] = true;
                    worklist.push_back(*d);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{build_cfg, NodeKind};
    use hpfc_lang::frontend;
    use std::collections::BTreeSet;

    /// Forward reachability-from-entry as a trivial may-problem: the
    /// fact is the set of Cond nodes passed through.
    struct PassedConds<'a> {
        cfg: &'a crate::graph::Cfg,
    }

    impl<'a> Dataflow for PassedConds<'a> {
        type Fact = BTreeSet<u32>;
        fn direction(&self) -> Direction {
            Direction::Forward
        }
        fn bottom(&self) -> Self::Fact {
            BTreeSet::new()
        }
        fn join(&self, a: &mut Self::Fact, b: &Self::Fact) -> bool {
            let before = a.len();
            a.extend(b.iter().copied());
            a.len() != before
        }
        fn transfer(&self, node: NodeId, input: &Self::Fact, _outs: &[Self::Fact]) -> Self::Fact {
            let mut f = input.clone();
            if matches!(self.cfg.node(node).kind, NodeKind::Cond { .. }) {
                f.insert(node.0);
            }
            f
        }
    }

    #[test]
    fn forward_fixpoint_through_branches_and_loops() {
        let src = "subroutine s\nreal :: a(8)\n\
                   if (a(1) > 0.0) then\na = 1.0\nendif\n\
                   do i = 1, 3\nif (a(2) > 0.0) then\na = 2.0\nendif\nenddo\nend";
        let m = frontend(src).unwrap();
        let cfg = build_cfg(m.main()).unwrap();
        let out = solve(&cfg, &PassedConds { cfg: &cfg });
        // At exit, both conds have been passed (may).
        let conds: BTreeSet<u32> = cfg
            .node_ids()
            .filter(|&id| matches!(cfg.node(id).kind, NodeKind::Cond { .. }))
            .map(|id| id.0)
            .collect();
        assert_eq!(out[cfg.exit.idx()], conds);
        assert_eq!(conds.len(), 2);
    }

    /// Backward: set of LoopTest nodes reachable *from* a node.
    struct ReachesTests<'a> {
        cfg: &'a crate::graph::Cfg,
    }

    impl<'a> Dataflow for ReachesTests<'a> {
        type Fact = BTreeSet<u32>;
        fn direction(&self) -> Direction {
            Direction::Backward
        }
        fn bottom(&self) -> Self::Fact {
            BTreeSet::new()
        }
        fn join(&self, a: &mut Self::Fact, b: &Self::Fact) -> bool {
            let before = a.len();
            a.extend(b.iter().copied());
            a.len() != before
        }
        fn transfer(&self, node: NodeId, input: &Self::Fact, _outs: &[Self::Fact]) -> Self::Fact {
            let mut f = input.clone();
            if matches!(self.cfg.node(node).kind, NodeKind::LoopTest { .. }) {
                f.insert(node.0);
            }
            f
        }
    }

    #[test]
    fn backward_fixpoint_sees_loop() {
        let src = "subroutine s\nreal :: a(8)\na = 0.0\ndo i = 1, 3\na(i) = 1.0\nenddo\nend";
        let m = frontend(src).unwrap();
        let cfg = build_cfg(m.main()).unwrap();
        let out = solve(&cfg, &ReachesTests { cfg: &cfg });
        // From entry, the loop test is reachable.
        assert_eq!(out[cfg.entry.idx()].len(), 1);
        // From exit, nothing is.
        assert!(out[cfg.exit.idx()].is_empty());
    }
}
