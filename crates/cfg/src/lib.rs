//! Control-flow graph and dataflow machinery for the remapping-graph
//! construction (paper App. B).
//!
//! The CFG is built from an analyzed routine
//! ([`hpfc_lang::sema::RoutineUnit`]) with three properties the paper
//! relies on:
//!
//! 1. **Synthetic call/entry/exit vertices** `v_c`, `v_0`, `v_e`
//!    (App. B "Updating G_C arguments").
//! 2. **Call-site expansion** (Fig. 24): a `CALL` with mapped array
//!    arguments becomes `ArgIn* → Call → ArgOut*`, the explicit
//!    remappings that realize HPF's implicit argument remapping in the
//!    caller.
//! 3. **Zero-trip loops**: `DO` lowers to `LoopInit → LoopTest ⇄ body`,
//!    so a path skipping the body exists — the source of the paper's
//!    "loop may have no iteration" edges in Fig. 11.
//!
//! [`dataflow`] provides the may-forward/may-backward worklist solver
//! the four construction analyses and the two optimizations share.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataflow;
pub mod effects;
pub mod graph;
pub mod transform;

pub use dataflow::{solve, Dataflow, Direction};
pub use effects::{node_effects, Access};
pub use graph::{build_cfg, Cfg, NodeId, NodeKind};
