//! CFG construction from an analyzed routine.

use hpfc_lang::ast::{Directive, Expr, Intent, LValue, Stmt};
use hpfc_lang::diag::{codes, Diagnostic};
use hpfc_lang::sema::{resolve_align_spec, resolve_distribution, RoutineUnit, Symbol};
use hpfc_lang::Span;
use hpfc_mapping::{Alignment, ArrayId, Distribution, Mapping, TemplateId};

/// A node index in the CFG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// As a usize for indexing.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// What a CFG node does.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeKind {
    /// `v_c` — models the caller's context for dummy arguments.
    CallCtx,
    /// `v_0` — routine entry (initial mappings of local arrays).
    Entry,
    /// `v_e` — routine exit (dummies restored to their declared
    /// mappings, exported values attached intent effects).
    Exit,
    /// An assignment.
    Assign {
        /// Target.
        lhs: LValue,
        /// Source.
        rhs: Expr,
    },
    /// A two-way branch on `cond`: successor 0 = then, successor 1 = else.
    Cond {
        /// The condition (evaluated here: a *read* of its operands).
        cond: Expr,
    },
    /// `var = lo` before a loop.
    LoopInit {
        /// Loop variable.
        var: String,
        /// Initial value.
        lo: Expr,
    },
    /// Loop trip test: successor 0 = body, successor 1 = after-loop.
    LoopTest {
        /// Loop variable.
        var: String,
        /// Upper bound.
        hi: Expr,
    },
    /// `var = var + step` at the bottom of a loop body.
    LoopIncr {
        /// Loop variable.
        var: String,
        /// Step (`None` = 1).
        step: Option<Expr>,
    },
    /// The call itself (argument copies live in `ArgIn`/`ArgOut`).
    Call {
        /// Callee name.
        name: String,
        /// Actual arguments.
        args: Vec<Expr>,
        /// Per mapped array argument: (array, intent) — the effect the
        /// call has on its current (dummy-mapped) copy, per Fig. 25.
        mapped: Vec<(ArrayId, Intent)>,
    },
    /// Explicit remapping of an actual into the callee's dummy mapping
    /// (the paper's `v_b`, Fig. 24).
    ArgIn {
        /// The actual argument array.
        array: ArrayId,
        /// The mapping the callee prescribes (in caller terms).
        mapping: Mapping,
        /// The dummy's intent.
        intent: Intent,
        /// Callee name (display only).
        callee: String,
    },
    /// Restore of the actual's pre-call mapping after return (the
    /// paper's `v_a`, Fig. 24; flow-dependent restores are the Fig. 18
    /// status save/restore).
    ArgOut {
        /// The actual argument array.
        array: ArrayId,
        /// The matching `ArgIn` node (whose *reaching* mappings are what
        /// this node restores).
        arg_in: NodeId,
        /// The dummy's intent.
        intent: Intent,
        /// Callee name (display only).
        callee: String,
    },
    /// `!HPF$ REALIGN`, resolved.
    Realign {
        /// Per-array new alignments.
        pairs: Vec<(ArrayId, Alignment)>,
    },
    /// `!HPF$ REDISTRIBUTE`, resolved.
    Redistribute {
        /// The redistributed template.
        template: TemplateId,
        /// The new distribution.
        dist: Distribution,
    },
    /// `!HPF$ KILL` — values of these arrays die here (Sec. 4.3).
    Kill {
        /// The killed arrays.
        arrays: Vec<ArrayId>,
    },
}

impl NodeKind {
    /// Whether this node is a remapping vertex of the remapping graph
    /// (the paper's `V_R`, including the synthetic context vertices).
    ///
    /// `KILL` is *not* one: we realize the paper's "remapping vertex
    /// tagged D" (Sec. 4.3) as a value-deadness effect — backward it
    /// acts like a full redefinition (upstream vertices see `D`),
    /// forward it marks values dead so the next remapping moves no data.
    pub fn is_remap_vertex(&self) -> bool {
        matches!(
            self,
            NodeKind::CallCtx
                | NodeKind::Entry
                | NodeKind::Exit
                | NodeKind::ArgIn { .. }
                | NodeKind::ArgOut { .. }
                | NodeKind::Realign { .. }
                | NodeKind::Redistribute { .. }
        )
    }
}

/// One CFG node.
#[derive(Debug, Clone)]
pub struct Node {
    /// What it does.
    pub kind: NodeKind,
    /// Source location (synthetic for `v_c`/`v_0`/`v_e`).
    pub span: Span,
}

/// The control-flow graph of one routine.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Nodes; `NodeId` indexes into this.
    pub nodes: Vec<Node>,
    /// Successors per node. Branch nodes order successors as documented
    /// on [`NodeKind`].
    pub succs: Vec<Vec<NodeId>>,
    /// Predecessors per node.
    pub preds: Vec<Vec<NodeId>>,
    /// `v_c`.
    pub call_ctx: NodeId,
    /// `v_0`.
    pub entry: NodeId,
    /// `v_e`.
    pub exit: NodeId,
}

impl Cfg {
    /// Node lookup.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.idx()]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Ids of all nodes, in construction order (roughly topological for
    /// the acyclic parts).
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// All remapping vertices (`V_R`), in construction order.
    pub fn remap_vertices(&self) -> Vec<NodeId> {
        self.node_ids().filter(|&v| self.node(v).kind.is_remap_vertex()).collect()
    }

    /// A reverse-postorder over the graph from `v_c` (cycles broken at
    /// back edges); good iteration order for forward problems.
    pub fn reverse_postorder(&self) -> Vec<NodeId> {
        let mut state = vec![0u8; self.len()]; // 0 unvisited, 1 on stack, 2 done
        let mut order = Vec::with_capacity(self.len());
        // Iterative DFS.
        let mut stack = vec![(self.call_ctx, 0usize)];
        state[self.call_ctx.idx()] = 1;
        while let Some(&mut (v, ref mut i)) = stack.last_mut() {
            if *i < self.succs[v.idx()].len() {
                // Iterate successors in reverse so that the *first*
                // successor (then-branch, loop body) comes first in the
                // final reverse-postorder — this is what makes vertex
                // and version numbering match the paper's figures.
                let s = self.succs[v.idx()][self.succs[v.idx()].len() - 1 - *i];
                *i += 1;
                if state[s.idx()] == 0 {
                    state[s.idx()] = 1;
                    stack.push((s, 0));
                }
            } else {
                state[v.idx()] = 2;
                order.push(v);
                stack.pop();
            }
        }
        order.reverse();
        order
    }

    fn add_node(&mut self, kind: NodeKind, span: Span) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node { kind, span });
        self.succs.push(Vec::new());
        self.preds.push(Vec::new());
        id
    }

    fn add_edge(&mut self, from: NodeId, to: NodeId) {
        if !self.succs[from.idx()].contains(&to) {
            self.succs[from.idx()].push(to);
            self.preds[to.idx()].push(from);
        }
    }

    /// Render the CFG in graphviz dot format (debugging aid).
    pub fn to_dot(&self) -> String {
        let mut s = String::from("digraph cfg {\n");
        for id in self.node_ids() {
            let label = match &self.node(id).kind {
                NodeKind::CallCtx => "v_c".into(),
                NodeKind::Entry => "v_0".into(),
                NodeKind::Exit => "v_e".into(),
                NodeKind::Assign { lhs, .. } => format!("{} = …", lhs.name),
                NodeKind::Cond { .. } => "if".into(),
                NodeKind::LoopInit { var, .. } => format!("{var} = lo"),
                NodeKind::LoopTest { var, .. } => format!("{var} <= hi?"),
                NodeKind::LoopIncr { var, .. } => format!("{var}++"),
                NodeKind::Call { name, .. } => format!("call {name}"),
                NodeKind::ArgIn { callee, .. } => format!("arg_in {callee}"),
                NodeKind::ArgOut { callee, .. } => format!("arg_out {callee}"),
                NodeKind::Realign { .. } => "realign".into(),
                NodeKind::Redistribute { .. } => "redistribute".into(),
                NodeKind::Kill { .. } => "kill".into(),
            };
            s.push_str(&format!("  n{} [label=\"{}: {label}\"];\n", id.0, id.0));
        }
        for id in self.node_ids() {
            for t in &self.succs[id.idx()] {
                s.push_str(&format!("  n{} -> n{};\n", id.0, t.0));
            }
        }
        s.push_str("}\n");
        s
    }
}

/// Build the CFG of an analyzed routine. Errors are resolution failures
/// inside executable directives (sema already validated them, so these
/// indicate inconsistent inputs).
pub fn build_cfg(unit: &RoutineUnit) -> Result<Cfg, Vec<Diagnostic>> {
    let mut cfg = Cfg {
        nodes: Vec::new(),
        succs: Vec::new(),
        preds: Vec::new(),
        call_ctx: NodeId(0),
        entry: NodeId(0),
        exit: NodeId(0),
    };
    let call_ctx = cfg.add_node(NodeKind::CallCtx, Span::synthetic());
    let entry = cfg.add_node(NodeKind::Entry, Span::synthetic());
    let exit = cfg.add_node(NodeKind::Exit, Span::synthetic());
    cfg.call_ctx = call_ctx;
    cfg.entry = entry;
    cfg.exit = exit;
    cfg.add_edge(call_ctx, entry);

    let mut b = Builder { unit, cfg, errs: Vec::new() };
    let frontier = b.lower_body(&unit.ast.body, vec![entry]);
    for f in frontier {
        b.cfg.add_edge(f, exit);
    }
    if b.errs.is_empty() {
        Ok(b.cfg)
    } else {
        Err(b.errs)
    }
}

struct Builder<'a> {
    unit: &'a RoutineUnit,
    cfg: Cfg,
    errs: Vec<Diagnostic>,
}

impl<'a> Builder<'a> {
    /// Add a node with edges from every node in `frontier`.
    fn seq(&mut self, frontier: &[NodeId], kind: NodeKind, span: Span) -> NodeId {
        let n = self.cfg.add_node(kind, span);
        for &f in frontier {
            self.cfg.add_edge(f, n);
        }
        n
    }

    /// Lower a statement list. `frontier` is the set of nodes control
    /// may arrive from; returns the outgoing frontier (empty when the
    /// tail is unreachable, e.g. after RETURN).
    fn lower_body(&mut self, body: &[Stmt], mut frontier: Vec<NodeId>) -> Vec<NodeId> {
        for s in body {
            if frontier.is_empty() {
                break; // unreachable code after RETURN: dropped
            }
            frontier = self.lower_stmt(s, frontier);
        }
        frontier
    }

    fn lower_stmt(&mut self, s: &Stmt, frontier: Vec<NodeId>) -> Vec<NodeId> {
        match s {
            Stmt::Assign { lhs, rhs, span } => {
                let n = self.seq(
                    &frontier,
                    NodeKind::Assign { lhs: lhs.clone(), rhs: rhs.clone() },
                    *span,
                );
                vec![n]
            }
            Stmt::Return { .. } => {
                let exit = self.cfg.exit;
                for f in frontier {
                    self.cfg.add_edge(f, exit);
                }
                Vec::new()
            }
            Stmt::If { cond, then_body, else_body, span } => {
                let c = self.seq(&frontier, NodeKind::Cond { cond: cond.clone() }, *span);
                // Successor order contract: index 0 = then, 1 = else.
                // `lower_body` adds the first edge out of `c` when it
                // lowers the first then-statement; an empty then-branch
                // contributes `c` itself to the frontier, preserving
                // the fall-through edge.
                let then_out = self.lower_body(then_body, vec![c]);
                let else_out = self.lower_body(else_body, vec![c]);
                let mut out: Vec<NodeId> = Vec::new();
                for t in then_out.into_iter().chain(else_out) {
                    if !out.contains(&t) {
                        out.push(t);
                    }
                }
                out
            }
            Stmt::Do { var, lo, hi, step, body, span } => {
                let init = self.seq(
                    &frontier,
                    NodeKind::LoopInit { var: var.clone(), lo: lo.clone() },
                    *span,
                );
                let test = self.seq(
                    &[init],
                    NodeKind::LoopTest { var: var.clone(), hi: hi.clone() },
                    *span,
                );
                // Body (successor 0 of the test).
                let body_out = self.lower_body(body, vec![test]);
                if !body_out.is_empty() {
                    let incr = self.seq(
                        &body_out,
                        NodeKind::LoopIncr { var: var.clone(), step: step.clone() },
                        *span,
                    );
                    self.cfg.add_edge(incr, test); // back edge
                }
                // After-loop (successor 1 of the test; also the
                // zero-trip path the paper's Fig. 11 relies on).
                vec![test]
            }
            Stmt::Call { name, args, span } => self.lower_call(name, args, *span, frontier),
            Stmt::Directive(d) => self.lower_directive(d, frontier),
        }
    }

    fn lower_call(
        &mut self,
        name: &str,
        args: &[Expr],
        span: Span,
        frontier: Vec<NodeId>,
    ) -> Vec<NodeId> {
        let Some(sig) = self.unit.callees.get(name) else {
            // sema already reported NO_INTERFACE; keep a call node so
            // downstream phases see the reference effects.
            let n = self.seq(
                &frontier,
                NodeKind::Call { name: name.to_string(), args: args.to_vec(), mapped: vec![] },
                span,
            );
            return vec![n];
        };
        // Mapped array arguments, in positional order.
        let mut mapped: Vec<(ArrayId, Intent, Mapping)> = Vec::new();
        for (dummy, actual) in sig.dummies.iter().zip(args) {
            if let (Some(m), Expr::Var(n, _)) = (&dummy.mapping, actual) {
                if let Some(Symbol::Array(a)) = self.unit.symbols.get(n) {
                    mapped.push((*a, dummy.intent, m.clone()));
                }
            }
        }
        // v_b chain: one ArgIn per mapped argument (paper Fig. 24).
        let mut cur = frontier;
        let mut arg_ins = Vec::new();
        for (a, intent, m) in &mapped {
            let n = self.seq(
                &cur,
                NodeKind::ArgIn {
                    array: *a,
                    mapping: m.clone(),
                    intent: *intent,
                    callee: name.to_string(),
                },
                span,
            );
            arg_ins.push(n);
            cur = vec![n];
        }
        // The call itself.
        let call = self.seq(
            &cur,
            NodeKind::Call {
                name: name.to_string(),
                args: args.to_vec(),
                mapped: mapped.iter().map(|(a, i, _)| (*a, *i)).collect(),
            },
            span,
        );
        cur = vec![call];
        // v_a chain: restore pre-call mappings.
        for ((a, intent, _), arg_in) in mapped.iter().zip(arg_ins) {
            let n = self.seq(
                &cur,
                NodeKind::ArgOut {
                    array: *a,
                    arg_in,
                    intent: *intent,
                    callee: name.to_string(),
                },
                span,
            );
            cur = vec![n];
        }
        cur
    }

    fn lower_directive(&mut self, d: &Directive, frontier: Vec<NodeId>) -> Vec<NodeId> {
        match d {
            Directive::Realign { spec, span } => {
                match resolve_align_spec(&self.unit.env, &self.unit.symbols, spec) {
                    Ok(pairs) => {
                        let n = self.seq(&frontier, NodeKind::Realign { pairs }, *span);
                        vec![n]
                    }
                    Err(msg) => {
                        self.errs.push(Diagnostic::error(codes::BAD_DIRECTIVE, *span, msg));
                        frontier
                    }
                }
            }
            Directive::Redistribute { target, formats, onto, span } => {
                let template = match self.unit.symbols.get(target) {
                    Some(Symbol::Template(t)) => *t,
                    Some(Symbol::Array(a)) => self.unit.env.implicit_template(*a),
                    _ => {
                        self.errs.push(Diagnostic::error(
                            codes::UNRESOLVED,
                            *span,
                            format!("unknown object `{target}`"),
                        ));
                        return frontier;
                    }
                };
                match resolve_distribution(
                    &self.unit.env,
                    &self.unit.symbols,
                    Some(self.unit.default_grid),
                    template,
                    formats,
                    onto.as_deref(),
                ) {
                    Ok(dist) => {
                        let n =
                            self.seq(&frontier, NodeKind::Redistribute { template, dist }, *span);
                        vec![n]
                    }
                    Err(msg) => {
                        self.errs.push(Diagnostic::error(codes::BAD_DIRECTIVE, *span, msg));
                        frontier
                    }
                }
            }
            Directive::Kill { names, span } => {
                let arrays: Vec<ArrayId> =
                    names.iter().filter_map(|n| self.unit.array(n)).collect();
                let n = self.seq(&frontier, NodeKind::Kill { arrays }, *span);
                vec![n]
            }
            other => {
                // Static directives cannot appear in a body (parser
                // invariant).
                self.errs.push(Diagnostic::error(
                    codes::BAD_DIRECTIVE,
                    other.span(),
                    "non-executable directive in routine body",
                ));
                frontier
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpfc_lang::figures;
    use hpfc_lang::frontend;

    fn cfg_of(src: &str) -> Cfg {
        let m = frontend(src).unwrap();
        build_cfg(m.main()).unwrap()
    }

    #[test]
    fn straight_line_shape() {
        let cfg = cfg_of("subroutine s\nreal :: a(8)\na = 1.0\na = 2.0\nend");
        // v_c -> v_0 -> assign -> assign -> v_e
        assert_eq!(cfg.len(), 5);
        assert_eq!(cfg.succs[cfg.call_ctx.idx()], vec![cfg.entry]);
        assert_eq!(cfg.preds[cfg.exit.idx()].len(), 1);
    }

    #[test]
    fn if_join_has_two_preds() {
        let cfg = cfg_of(
            "subroutine s\nreal :: a(8)\nif (a(1) > 0.0) then\na = 1.0\nelse\na = 2.0\nendif\na = 3.0\nend",
        );
        // The statement after the IF must have two predecessors.
        let last_assign = cfg
            .node_ids()
            .filter(|&id| matches!(cfg.node(id).kind, NodeKind::Assign { .. }))
            .last()
            .unwrap();
        assert_eq!(cfg.preds[last_assign.idx()].len(), 2);
    }

    #[test]
    fn empty_else_falls_through() {
        let cfg = cfg_of(
            "subroutine s\nreal :: a(8)\nif (a(1) > 0.0) then\na = 1.0\nendif\na = 3.0\nend",
        );
        let cond = cfg
            .node_ids()
            .find(|&id| matches!(cfg.node(id).kind, NodeKind::Cond { .. }))
            .unwrap();
        // Cond has two successors: the then-assign and the join-assign.
        assert_eq!(cfg.succs[cond.idx()].len(), 2);
    }

    #[test]
    fn loop_has_zero_trip_edge_and_back_edge() {
        let cfg = cfg_of(
            "subroutine s\nreal :: a(8)\ndo i = 1, 4\na(i) = 0.0\nenddo\na = 1.0\nend",
        );
        let test = cfg
            .node_ids()
            .find(|&id| matches!(cfg.node(id).kind, NodeKind::LoopTest { .. }))
            .unwrap();
        let incr = cfg
            .node_ids()
            .find(|&id| matches!(cfg.node(id).kind, NodeKind::LoopIncr { .. }))
            .unwrap();
        // Test: succ 0 = body, succ 1 = after-loop (zero-trip path).
        assert_eq!(cfg.succs[test.idx()].len(), 2);
        // Incr feeds back to the test.
        assert!(cfg.succs[incr.idx()].contains(&test));
        // And the test has 2 preds: init and incr.
        assert_eq!(cfg.preds[test.idx()].len(), 2);
    }

    #[test]
    fn call_expands_to_argin_call_argout() {
        let cfg = cfg_of(figures::FIG8_CALL);
        let kinds: Vec<_> = cfg
            .node_ids()
            .map(|id| match &cfg.node(id).kind {
                NodeKind::ArgIn { .. } => "in",
                NodeKind::Call { .. } => "call",
                NodeKind::ArgOut { .. } => "out",
                _ => "-",
            })
            .filter(|k| *k != "-")
            .collect();
        assert_eq!(kinds, vec!["in", "call", "out"]);
        // ArgOut points back at its ArgIn.
        let (arg_in, arg_out) = {
            let i = cfg
                .node_ids()
                .find(|&id| matches!(cfg.node(id).kind, NodeKind::ArgIn { .. }))
                .unwrap();
            let o = cfg
                .node_ids()
                .find(|&id| matches!(cfg.node(id).kind, NodeKind::ArgOut { .. }))
                .unwrap();
            (i, o)
        };
        match cfg.node(arg_out).kind {
            NodeKind::ArgOut { arg_in: linked, .. } => assert_eq!(linked, arg_in),
            _ => unreachable!(),
        }
    }

    #[test]
    fn fig10_has_four_explicit_remap_statements() {
        let cfg = cfg_of(figures::FIG10_ADI);
        let redists = cfg
            .node_ids()
            .filter(|&id| matches!(cfg.node(id).kind, NodeKind::Redistribute { .. }))
            .count();
        assert_eq!(redists, 4);
        // Plus v_c, v_0, v_e: seven remap vertices total (paper Sec. 3.3).
        assert_eq!(cfg.remap_vertices().len(), 7);
    }

    #[test]
    fn fig4_expands_three_calls() {
        let cfg = cfg_of(figures::FIG4_ARGS);
        let ins = cfg
            .node_ids()
            .filter(|&id| matches!(cfg.node(id).kind, NodeKind::ArgIn { .. }))
            .count();
        let outs = cfg
            .node_ids()
            .filter(|&id| matches!(cfg.node(id).kind, NodeKind::ArgOut { .. }))
            .count();
        assert_eq!((ins, outs), (3, 3));
        // 3 ArgIn + 3 ArgOut + v_c + v_0 + v_e = 9 remap vertices.
        assert_eq!(cfg.remap_vertices().len(), 9);
    }

    #[test]
    fn reverse_postorder_visits_everything_once() {
        let cfg = cfg_of(figures::FIG10_ADI);
        let rpo = cfg.reverse_postorder();
        assert_eq!(rpo.len(), cfg.len());
        let mut seen = std::collections::BTreeSet::new();
        for v in &rpo {
            assert!(seen.insert(*v));
        }
        // Entry appears before exit.
        let pos = |n: NodeId| rpo.iter().position(|&x| x == n).unwrap();
        assert!(pos(cfg.call_ctx) < pos(cfg.entry));
        assert!(pos(cfg.entry) < pos(cfg.exit));
    }

    #[test]
    fn return_connects_to_exit_and_drops_dead_code() {
        let cfg = cfg_of("subroutine s\nreal :: a(8)\nreturn\na = 1.0\nend");
        // v_c, v_0, v_e only: the assignment after RETURN is unreachable
        // and dropped.
        assert_eq!(cfg.len(), 3);
        assert!(cfg.succs[cfg.entry.idx()].contains(&cfg.exit));
    }

    #[test]
    fn dot_export_is_wellformed() {
        let cfg = cfg_of(figures::FIG10_ADI);
        let dot = cfg.to_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("v_c") && dot.contains("v_e"));
    }
}
