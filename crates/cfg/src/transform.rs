//! Source-level loop-invariant remapping motion (paper Sec. 4.3,
//! Fig. 16 → Fig. 17).
//!
//! The transform moves *trailing* remapping directives of a `DO` body
//! to just after the loop. The paper's rationale:
//!
//! * the **initial** in-loop remapping is *not* moved above the loop —
//!   hoisting it would insert a useless remapping when the trip count
//!   is zero;
//! * the **trailing** remapping only matters on the loop-exit path (on
//!   the back edge its result is immediately remapped again), so moving
//!   it after the loop preserves semantics, and from the second
//!   iteration on, the leading in-loop remapping finds the array already
//!   in the right mapping — a cheap runtime status check (Sec. 5.1).
//!
//! Safety condition implemented here: the moved directive must be the
//! last statement of the body, and every array it may impact must not
//! be *referenced* in the body before the body's first remapping
//! statement that covers it (otherwise the reference on iterations ≥ 2
//! would see the wrong mapping). The remapping-graph construction
//! re-checks reference unambiguity afterwards, so the transform can
//! never silently miscompile — worst case it produces a program the
//! compiler then rejects, and we only apply it when provably safe.

use hpfc_lang::ast::{AlignSpec, Directive, Routine, Stmt};

/// Apply the Fig. 16→17 motion everywhere in a routine; returns the
/// transformed routine and how many directives were moved.
pub fn hoist_trailing_loop_remaps(routine: &Routine) -> (Routine, usize) {
    let mut r = routine.clone();
    let mut moved = 0;
    r.body = hoist_in_body(std::mem::take(&mut r.body), &mut moved);
    (r, moved)
}

fn hoist_in_body(body: Vec<Stmt>, moved: &mut usize) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(body.len());
    for s in body {
        match s {
            Stmt::Do { var, lo, hi, step, body: inner, span } => {
                let inner = hoist_in_body(inner, moved);
                let (kept, hoisted) = split_trailing_remaps(inner);
                out.push(Stmt::Do { var, lo, hi, step, body: kept, span });
                for d in hoisted {
                    *moved += 1;
                    out.push(Stmt::Directive(d));
                }
            }
            Stmt::If { cond, then_body, else_body, span } => {
                let then_body = hoist_in_body(then_body, moved);
                let else_body = hoist_in_body(else_body, moved);
                out.push(Stmt::If { cond, then_body, else_body, span });
            }
            other => out.push(other),
        }
    }
    out
}

/// Split trailing remapping directives off a loop body when the motion
/// is safe (see module docs). Returns (kept body, hoisted directives in
/// original order).
fn split_trailing_remaps(body: Vec<Stmt>) -> (Vec<Stmt>, Vec<Directive>) {
    // Find the trailing run of executable remapping directives.
    let mut split = body.len();
    while split > 0 {
        match &body[split - 1] {
            Stmt::Directive(Directive::Realign { .. } | Directive::Redistribute { .. }) => {
                split -= 1
            }
            _ => break,
        }
    }
    if split == body.len() || split == 0 {
        // Nothing trailing, or the body is *only* remappings (no point).
        return (body, Vec::new());
    }
    // Safety: each array (or redistribution target) named by a trailing
    // directive must be re-remapped before any reference in the body
    // prefix. We approximate "covered by a remapping first" by: the
    // first statement of the body is a remapping directive naming the
    // same target (the Fig. 16 shape). More general cases are left in
    // place — missing the motion is only a lost optimization.
    let prefix_first_remap: Vec<String> = match body.first() {
        Some(Stmt::Directive(d)) => directive_targets(d),
        _ => Vec::new(),
    };
    let trailing: Vec<&Directive> = body[split..]
        .iter()
        .map(|s| match s {
            Stmt::Directive(d) => d,
            _ => unreachable!(),
        })
        .collect();
    let safe = trailing
        .iter()
        .all(|d| directive_targets(d).iter().all(|t| prefix_first_remap.contains(t)));
    if !safe {
        return (body, Vec::new());
    }
    let mut kept = body;
    let tail = kept.split_off(split);
    let hoisted = tail
        .into_iter()
        .map(|s| match s {
            Stmt::Directive(d) => d,
            _ => unreachable!(),
        })
        .collect();
    (kept, hoisted)
}

/// The names a remapping directive targets (arrays for REALIGN, the
/// distributee for REDISTRIBUTE).
fn directive_targets(d: &Directive) -> Vec<String> {
    match d {
        Directive::Realign { spec, .. } => match spec {
            AlignSpec::Explicit { array, .. } => vec![array.clone()],
            AlignSpec::With { arrays, .. } => arrays.clone(),
        },
        Directive::Redistribute { target, .. } => vec![target.clone()],
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpfc_lang::figures;
    use hpfc_lang::parser::parse_program;

    #[test]
    fn fig16_trailing_restore_is_moved_out() {
        let p = parse_program(figures::FIG16_LOOP).unwrap();
        let (r, moved) = hoist_trailing_loop_remaps(&p.routines[0]);
        assert_eq!(moved, 1);
        // The loop body now has 2 statements (redistribute + assign)...
        let Stmt::Do { body, .. } = &r.body[1] else { panic!("expected DO") };
        assert_eq!(body.len(), 2);
        // ...and the moved directive follows the loop.
        assert!(matches!(&r.body[2], Stmt::Directive(Directive::Redistribute { .. })));
    }

    #[test]
    fn unsafe_motion_is_not_applied() {
        // The array is referenced before the first in-loop remapping:
        // moving the trailing restore would change what iteration ≥ 2
        // reads. Must stay in place.
        let src = "subroutine s(t)\ninteger :: t\nreal :: a(8)\n!hpf$ processors p(4)\n\
                   !hpf$ dynamic a\n!hpf$ distribute a(block) onto p\n\
                   do i = 1, t\n  a = a + 1.0\n!hpf$ redistribute a(cyclic)\n\
                   x = a(1)\n!hpf$ redistribute a(block)\nenddo\nend";
        let p = parse_program(src).unwrap();
        let (r, moved) = hoist_trailing_loop_remaps(&p.routines[0]);
        assert_eq!(moved, 0);
        let Stmt::Do { body, .. } = &r.body[0] else { panic!() };
        assert_eq!(body.len(), 4);
    }

    #[test]
    fn nested_loops_are_handled_inside_out() {
        let src = "subroutine s(t)\ninteger :: t\nreal :: a(8)\n!hpf$ processors p(4)\n\
                   !hpf$ dynamic a\n!hpf$ distribute a(block) onto p\n\
                   do j = 1, t\ndo i = 1, t\n!hpf$ redistribute a(cyclic)\na = a + 1.0\n\
                   !hpf$ redistribute a(block)\nenddo\nenddo\nx = a(1)\nend";
        let p = parse_program(src).unwrap();
        let (r, moved) = hoist_trailing_loop_remaps(&p.routines[0]);
        // Inner restore moves after the inner loop; it then forms the
        // trailing directive of the *outer* body... whose first stmt is
        // the inner DO, not a covering remap → outer motion not applied.
        assert_eq!(moved, 1);
        let Stmt::Do { body: outer, .. } = &r.body[0] else { panic!() };
        assert_eq!(outer.len(), 2); // inner do + moved redistribute
    }

    #[test]
    fn loop_without_remaps_is_untouched() {
        let src = "subroutine s\nreal :: a(8)\ndo i = 1, 4\na(i) = 1.0\nenddo\nend";
        let p = parse_program(src).unwrap();
        let (r, moved) = hoist_trailing_loop_remaps(&p.routines[0]);
        assert_eq!(moved, 0);
        assert_eq!(r.body.len(), p.routines[0].body.len());
    }
}
