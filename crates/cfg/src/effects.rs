//! Per-node reference effects on distributed arrays — the paper's
//! `EffectsOf(v)` basic information ("assumed to be available", App. B).
//!
//! For each CFG node we compute which arrays it reads and writes, and
//! whether a write fully redefines the array. The remapping-graph
//! construction folds these into the `N < D < R < W` use qualifiers.

use hpfc_lang::ast::{Expr, Intent, LValue};
use hpfc_lang::sema::{is_intrinsic, RoutineUnit, Symbol};
use hpfc_mapping::ArrayId;

use crate::graph::{Cfg, NodeId, NodeKind};

/// How a node touches one array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// The array is read (any element).
    pub read: bool,
    /// The array is written (any element).
    pub write: bool,
    /// The write covers the whole array (whole-array assignment), so
    /// the previous values are dead afterwards.
    pub write_full: bool,
}

impl Access {
    /// No access.
    pub const NONE: Access = Access { read: false, write: false, write_full: false };

    /// Merge two accesses to the same array within one node.
    pub fn merge(self, other: Access) -> Access {
        Access {
            read: self.read || other.read,
            write: self.write || other.write,
            // A full write only survives if nothing else partial-writes;
            // conservatively: full iff some full write and the array is
            // not also read (read-then-overwrite still *uses* the copy).
            write_full: self.write_full || other.write_full,
        }
    }
}

/// Effects of one CFG node on distributed arrays, as (array, access)
/// pairs sorted by array id.
pub fn node_effects(unit: &RoutineUnit, cfg: &Cfg, id: NodeId) -> Vec<(ArrayId, Access)> {
    let mut map: std::collections::BTreeMap<ArrayId, Access> = std::collections::BTreeMap::new();
    let read = |map: &mut std::collections::BTreeMap<ArrayId, Access>, a: ArrayId| {
        let e = map.entry(a).or_insert(Access::NONE);
        e.read = true;
    };
    let node = cfg.node(id);
    match &node.kind {
        NodeKind::Assign { lhs, rhs } => {
            for a in expr_arrays(unit, rhs) {
                read(&mut map, a);
            }
            for sub in &lhs.subs {
                for a in expr_arrays(unit, sub) {
                    read(&mut map, a);
                }
            }
            if let Some(a) = lvalue_array(unit, lhs) {
                let e = map.entry(a).or_insert(Access::NONE);
                e.write = true;
                // Whole-array assignment (no subscripts) fully
                // redefines the array.
                e.write_full = lhs.subs.is_empty();
            }
        }
        NodeKind::Cond { cond } => {
            for a in expr_arrays(unit, cond) {
                read(&mut map, a);
            }
        }
        NodeKind::LoopInit { lo, .. } => {
            for a in expr_arrays(unit, lo) {
                read(&mut map, a);
            }
        }
        NodeKind::LoopTest { hi, .. } => {
            for a in expr_arrays(unit, hi) {
                read(&mut map, a);
            }
        }
        NodeKind::LoopIncr { step, .. } => {
            if let Some(e) = step {
                for a in expr_arrays(unit, e) {
                    read(&mut map, a);
                }
            }
        }
        NodeKind::Call { args, mapped, .. } => {
            // Scalar/expression arguments are reads. Whole-array actuals
            // that are *mapped* arguments are excluded here: their
            // data movement is the ArgIn copy and their use is the
            // intent effect below (attributing a read would wrongly
            // upgrade OUT dummies).
            for e in args {
                let skip = matches!(e, Expr::Var(n, _)
                    if matches!(unit.symbols.get(n), Some(Symbol::Array(a))
                        if mapped.iter().any(|(m, _)| m == a)));
                if skip {
                    continue;
                }
                for a in expr_arrays(unit, e) {
                    read(&mut map, a);
                }
            }
            // Mapped array arguments take the intent effect (Fig. 25):
            // IN → read, INOUT → read+write, OUT → full write.
            for (a, intent) in mapped {
                let e = map.entry(*a).or_insert(Access::NONE);
                match intent {
                    Intent::In => e.read = true,
                    Intent::InOut => {
                        e.read = true;
                        e.write = true;
                    }
                    Intent::Out => {
                        e.write = true;
                        e.write_full = true;
                    }
                }
            }
        }
        NodeKind::Kill { arrays } => {
            // The paper's Sec. 4.3 KILL: the values die here. Backward,
            // that is exactly a full redefinition with no read — any
            // remapping upstream sees `D` and skips the data movement.
            for a in arrays {
                let e = map.entry(*a).or_insert(Access::NONE);
                e.write = true;
                e.write_full = true;
            }
        }
        // Remapping vertices have no proper effects (App. B), except the
        // intent effects attached to v_c / v_e which the remapping-graph
        // construction adds itself.
        NodeKind::CallCtx
        | NodeKind::Entry
        | NodeKind::Exit
        | NodeKind::ArgIn { .. }
        | NodeKind::ArgOut { .. }
        | NodeKind::Realign { .. }
        | NodeKind::Redistribute { .. } => {}
    }
    map.into_iter().collect()
}

/// Arrays referenced anywhere in an expression.
pub fn expr_arrays(unit: &RoutineUnit, e: &Expr) -> Vec<ArrayId> {
    let mut refs = Vec::new();
    e.collect_refs(&mut refs);
    let mut out = Vec::new();
    for (name, subscripted, _) in refs {
        if subscripted && is_intrinsic(&name) {
            continue;
        }
        if let Some(Symbol::Array(a)) = unit.symbols.get(&name) {
            if !out.contains(a) {
                out.push(*a);
            }
        }
    }
    out
}

fn lvalue_array(unit: &RoutineUnit, lhs: &LValue) -> Option<ArrayId> {
    match unit.symbols.get(&lhs.name) {
        Some(Symbol::Array(a)) => Some(*a),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::build_cfg;
    use hpfc_lang::frontend;

    fn setup(src: &str) -> (hpfc_lang::sema::Module, Cfg) {
        let m = frontend(src).unwrap();
        let cfg = build_cfg(m.main()).unwrap();
        (m, cfg)
    }

    #[test]
    fn whole_array_assign_is_full_write() {
        let (m, cfg) = setup("subroutine s\nreal :: a(8), b(8)\na = b + 1.0\nend");
        let unit = m.main();
        let assign = cfg
            .node_ids()
            .find(|&id| matches!(cfg.node(id).kind, NodeKind::Assign { .. }))
            .unwrap();
        let eff = node_effects(unit, &cfg, assign);
        let a = unit.array("a").unwrap();
        let b = unit.array("b").unwrap();
        let ea = eff.iter().find(|(x, _)| *x == a).unwrap().1;
        let eb = eff.iter().find(|(x, _)| *x == b).unwrap().1;
        assert!(ea.write && ea.write_full && !ea.read);
        assert!(eb.read && !eb.write);
    }

    #[test]
    fn element_assign_is_partial_write_and_subscripts_are_reads() {
        let (m, cfg) = setup("subroutine s\nreal :: a(8), ix(8)\na(ix(1)) = 2.0\nend");
        let unit = m.main();
        let assign = cfg
            .node_ids()
            .find(|&id| matches!(cfg.node(id).kind, NodeKind::Assign { .. }))
            .unwrap();
        let eff = node_effects(unit, &cfg, assign);
        let a = unit.array("a").unwrap();
        let ix = unit.array("ix").unwrap();
        let ea = eff.iter().find(|(x, _)| *x == a).unwrap().1;
        assert!(ea.write && !ea.write_full);
        assert!(eff.iter().find(|(x, _)| *x == ix).unwrap().1.read);
    }

    #[test]
    fn self_update_reads_and_writes() {
        let (m, cfg) = setup("subroutine s\nreal :: a(8)\na = a * 2.0\nend");
        let unit = m.main();
        let assign = cfg
            .node_ids()
            .find(|&id| matches!(cfg.node(id).kind, NodeKind::Assign { .. }))
            .unwrap();
        let eff = node_effects(unit, &cfg, assign);
        let ea = eff[0].1;
        assert!(ea.read && ea.write && ea.write_full);
    }

    #[test]
    fn intrinsic_calls_are_not_array_refs() {
        let (m, cfg) = setup("subroutine s\nreal :: a(8)\nx = sqrt(a(1))\nend");
        let unit = m.main();
        let assign = cfg
            .node_ids()
            .find(|&id| matches!(cfg.node(id).kind, NodeKind::Assign { .. }))
            .unwrap();
        let eff = node_effects(unit, &cfg, assign);
        assert_eq!(eff.len(), 1); // only `a`, not `sqrt`
        assert!(eff[0].1.read);
    }

    #[test]
    fn call_intent_effects_follow_fig25() {
        let src = "subroutine s\nreal :: b(8)\n!hpf$ processors p(2)\ninterface\n\
                   subroutine f(x)\nreal :: x(8)\nintent(out) :: x\n\
                   !hpf$ distribute x(block) onto p\nend subroutine\nend interface\n\
                   call f(b)\nend";
        let (m, cfg) = setup(src);
        let unit = m.main();
        let call = cfg
            .node_ids()
            .find(|&id| matches!(cfg.node(id).kind, NodeKind::Call { .. }))
            .unwrap();
        let eff = node_effects(unit, &cfg, call);
        let eb = eff[0].1;
        // OUT: fully redefined, not read.
        assert!(eb.write && eb.write_full && !eb.read);
    }

    #[test]
    fn cond_reads_its_operands() {
        let (m, cfg) = setup(
            "subroutine s\nreal :: a(8)\nif (a(1) > 0.0) then\nx = 1.0\nendif\nend",
        );
        let unit = m.main();
        let cond = cfg
            .node_ids()
            .find(|&id| matches!(cfg.node(id).kind, NodeKind::Cond { .. }))
            .unwrap();
        let eff = node_effects(unit, &cfg, cond);
        assert!(eff[0].1.read);
    }
}
