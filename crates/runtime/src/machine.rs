//! The simulated SPMD machine: processors, network cost model, exact
//! traffic accounting, per-processor memory tracking.
//!
//! Accounting is allocation-free in steady state: the per-phase
//! send/receive tallies live in a reusable [`PhaseScratch`] arena on
//! the machine, so costing a cached remap schedule performs no heap
//! allocation (part of the zero-allocation remap path pinned by the
//! runtime's counting-allocator test).

use crate::exec::ExecMode;

/// Latency/bandwidth network model (per message: `latency_us +
/// bytes / bandwidth_bytes_per_us`), BSP-style per-phase accounting:
/// a communication phase costs the maximum per-processor time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Per-message latency in microseconds.
    pub latency_us: f64,
    /// Bandwidth in bytes per microsecond.
    pub bandwidth_bytes_per_us: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Mid-90s MPP ballpark (e.g. Paragon/SP2 class): ~40 µs latency,
        // ~60 MB/s per link — the regime in which the paper's remapping
        // costs were significant.
        CostModel { latency_us: 40.0, bandwidth_bytes_per_us: 60.0 }
    }
}

impl CostModel {
    /// Time for one message of `bytes`.
    pub fn message_time(&self, bytes: u64) -> f64 {
        self.latency_us + bytes as f64 / self.bandwidth_bytes_per_us
    }
}

/// Cumulative traffic statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NetStats {
    /// Point-to-point messages sent.
    pub messages: u64,
    /// Payload bytes moved between distinct processors.
    pub bytes: u64,
    /// Elements copied processor-locally (no network).
    pub local_elements: u64,
    /// Simulated elapsed communication time (µs, BSP per-phase max).
    pub time_us: f64,
    /// Remapping operations that actually moved data.
    pub remaps_performed: u64,
    /// Remapping operations skipped by the runtime status check
    /// ("already mapped as required", Sec. 4.3).
    pub remaps_skipped_noop: u64,
    /// Remapping operations satisfied by a live copy (no communication,
    /// App. D reuse).
    pub remaps_reused_live: u64,
    /// Remapping operations whose values were dead (`KILL`): copy
    /// allocated, nothing moved.
    pub remaps_dead_values: u64,
    /// Redistribution plans computed (closed-form planner invocations).
    pub plans_computed: u64,
    /// Redistribution plans served from the per-array cache.
    pub plan_cache_hits: u64,
    /// Payload bytes the copy engine actually wrote into destination
    /// blocks (every delivery counts, including processor-local copies
    /// and destination replicas) — the simulated-memory counterpart of
    /// the wire-level `bytes`. A remap moves exactly
    /// `(local_elements + remote_elements) × elem_size` of these.
    pub bytes_moved: u64,
    /// Contiguous runs the copy engine replayed (`copy_from_slice`
    /// granularity; only engines that track runs contribute).
    pub runs_copied: u64,
    /// Flow-dependent status restores dispatched through a
    /// compile-time-planned arm (Fig. 18): the run time selected the
    /// arm by the saved tag — never planned. Counts every dispatch;
    /// whether data then moves follows the ordinary remap rules (a
    /// status-check noop or live-copy reuse moves nothing, otherwise
    /// the arm's cached copy program is replayed).
    pub restores_replayed: u64,
    /// Directive-level remap groups executed over their merged
    /// caterpillar schedule (≥2 member arrays moved coalesced — each
    /// member still counts in `remaps_performed`; a group whose members
    /// fall back to solo remaps does not count here).
    pub remap_groups_coalesced: u64,
    /// Faults injected by the configured [`crate::FaultPlan`] (chaos
    /// testing only; zero in production runs).
    pub faults_injected: u64,
    /// Replay rounds retried by the recovery ladder after a detected
    /// fault (rung 1).
    pub rounds_retried: u64,
    /// Copy programs recompiled from their cached plan after a round
    /// could not be healed by retrying, or after a cached program
    /// failed its integrity check (rung 2).
    pub programs_recompiled: u64,
    /// Remaps that fell back to the table engine — either because no
    /// program could be compiled (rank-0 / position-overflow declines)
    /// or because the recovery ladder exhausted the compiled rungs
    /// (rung 3).
    pub fallbacks_to_tables: u64,
    /// Parallel rounds degraded to serial replay after a worker panic
    /// was caught.
    pub parallel_degradations: u64,
    /// Compiled artifacts this machine was served by the shared
    /// [`crate::PlanRegistry`] (a local plan-cache miss answered
    /// without compiling anything).
    pub registry_hits: u64,
    /// Registry lookups by this machine that found no entry — the
    /// artifact was compiled (or published) once, registry-wide.
    pub registry_misses: u64,
    /// LRU entries this machine's registry insertions pushed out.
    pub registry_evictions: u64,
    /// Solo remaps rolled back all-or-nothing: the recovery ladder
    /// surfaced a terminal [`crate::ExecError`] and the destination
    /// version was restored byte-identical to its pre-remap state.
    pub txn_rollbacks: u64,
    /// Remap groups un-committed as a whole: one member's failure
    /// rolled back every member — including siblings that had already
    /// replayed — before the typed error surfaced.
    pub group_rollbacks: u64,
    /// Mapping pairs the shared [`crate::PlanRegistry`] quarantined
    /// after repeated fingerprint/recompile repairs: later requests are
    /// served a program-stripped artifact that goes straight to the
    /// table engine instead of re-running the ladder.
    pub quarantined_pairs: u64,
    /// Registry lock acquisitions that recovered a poisoned shard lock
    /// (`Mutex::into_inner` instead of an `unwrap` panic).
    pub lock_poison_recoveries: u64,
    /// Concrete artifacts materialized from a symbolic (P-free) plan:
    /// a format-pair registry entry instantiated at a processor count
    /// it had not seen before, instead of re-running the planner.
    pub symbolic_instantiations: u64,
    /// Mapping pairs the symbolic normalizer declined (replication,
    /// constant alignments, multi-dimensional grids, degenerate
    /// placements) — those fall back to concrete per-pair plan keys.
    pub symbolic_declines: u64,
}

impl NetStats {
    /// Fold another stats block into this one.
    pub fn merge(&mut self, o: &NetStats) {
        self.messages += o.messages;
        self.bytes += o.bytes;
        self.local_elements += o.local_elements;
        self.time_us += o.time_us;
        self.remaps_performed += o.remaps_performed;
        self.remaps_skipped_noop += o.remaps_skipped_noop;
        self.remaps_reused_live += o.remaps_reused_live;
        self.remaps_dead_values += o.remaps_dead_values;
        self.plans_computed += o.plans_computed;
        self.plan_cache_hits += o.plan_cache_hits;
        self.bytes_moved += o.bytes_moved;
        self.runs_copied += o.runs_copied;
        self.restores_replayed += o.restores_replayed;
        self.remap_groups_coalesced += o.remap_groups_coalesced;
        self.faults_injected += o.faults_injected;
        self.rounds_retried += o.rounds_retried;
        self.programs_recompiled += o.programs_recompiled;
        self.fallbacks_to_tables += o.fallbacks_to_tables;
        self.parallel_degradations += o.parallel_degradations;
        self.registry_hits += o.registry_hits;
        self.registry_misses += o.registry_misses;
        self.registry_evictions += o.registry_evictions;
        self.txn_rollbacks += o.txn_rollbacks;
        self.group_rollbacks += o.group_rollbacks;
        self.quarantined_pairs += o.quarantined_pairs;
        self.lock_poison_recoveries += o.lock_poison_recoveries;
        self.symbolic_instantiations += o.symbolic_instantiations;
        self.symbolic_declines += o.symbolic_declines;
    }

    /// One-line human-readable digest (experiment drivers, examples).
    /// The registry segment (`registry ...`) and recovery tail
    /// (`faults ... degraded ...`) are appended only when something
    /// actually fired, so solo fault-free runs read as before.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "msgs {} | wire {} B | moved {} B in {} runs | local els {} | time {:.1} µs | \
             remaps {} (noop {}, live {}, dead {}) | restores {} | groups {} | \
             plans {} (+{} cache hits)",
            self.messages,
            self.bytes,
            self.bytes_moved,
            self.runs_copied,
            self.local_elements,
            self.time_us,
            self.remaps_performed,
            self.remaps_skipped_noop,
            self.remaps_reused_live,
            self.remaps_dead_values,
            self.restores_replayed,
            self.remap_groups_coalesced,
            self.plans_computed,
            self.plan_cache_hits,
        );
        let registry = self.registry_hits + self.registry_misses + self.registry_evictions;
        if registry > 0 {
            s.push_str(&format!(
                " | registry {} hits / {} misses / {} evicted",
                self.registry_hits, self.registry_misses, self.registry_evictions,
            ));
        }
        let recovery = self.faults_injected
            + self.rounds_retried
            + self.programs_recompiled
            + self.fallbacks_to_tables
            + self.parallel_degradations;
        if recovery > 0 {
            s.push_str(&format!(
                " | faults {} (retried {}, recompiled {}, tables {}, degraded {})",
                self.faults_injected,
                self.rounds_retried,
                self.programs_recompiled,
                self.fallbacks_to_tables,
                self.parallel_degradations,
            ));
        }
        let txn = self.txn_rollbacks
            + self.group_rollbacks
            + self.quarantined_pairs
            + self.lock_poison_recoveries;
        if txn > 0 {
            s.push_str(&format!(
                " | txn rolled back {} solo / {} group, quarantined {}, locks recovered {}",
                self.txn_rollbacks,
                self.group_rollbacks,
                self.quarantined_pairs,
                self.lock_poison_recoveries,
            ));
        }
        let symbolic = self.symbolic_instantiations + self.symbolic_declines;
        if symbolic > 0 {
            s.push_str(&format!(
                " | symbolic {} instantiated / {} declined",
                self.symbolic_instantiations, self.symbolic_declines,
            ));
        }
        s
    }
}

/// The `HPFC_TXN` knob: transactional remaps are **on** unless the
/// variable opts out (`off` / `0` / `false` / `no`). Anything else —
/// including unset, empty, or garbage — selects the default (on):
/// misconfiguration must never silently drop the rollback guarantee.
fn txn_from_env() -> bool {
    !matches!(
        std::env::var("HPFC_TXN").as_deref().map(str::trim),
        Ok("off") | Ok("0") | Ok("false") | Ok("no")
    )
}

/// The `HPFC_SYMBOLIC` knob: symbolic (P-free) plan keying is **on**
/// unless the variable opts out (`off` / `0` / `false` / `no`).
/// Anything else — including unset, empty, or garbage — selects the
/// default (on), mirroring `HPFC_TXN`: declines always fall back to
/// concrete keys, so the symbolic path is never less correct, only
/// smaller-keyed.
pub(crate) fn symbolic_from_env() -> bool {
    !matches!(
        std::env::var("HPFC_SYMBOLIC").as_deref().map(str::trim),
        Ok("off") | Ok("0") | Ok("false") | Ok("no")
    )
}

/// Reusable per-phase tallies for [`Machine::account_phase`] — grown
/// once to the processor count, then zero-filled per phase instead of
/// reallocated.
#[derive(Debug, Clone, Default)]
pub struct PhaseScratch {
    send_bytes: Vec<u64>,
    recv_bytes: Vec<u64>,
    send_msgs: Vec<u64>,
    recv_msgs: Vec<u64>,
}

impl PhaseScratch {
    fn reset(&mut self, n: usize) {
        for v in [&mut self.send_bytes, &mut self.recv_bytes, &mut self.send_msgs, &mut self.recv_msgs]
        {
            v.resize(n, 0);
            v[..n].fill(0);
        }
    }
}

/// Per-processor memory accounting.
#[derive(Debug, Clone, Default)]
pub struct MemTracker {
    /// Currently allocated bytes per processor.
    pub current: Vec<u64>,
    /// High-water mark per processor.
    pub peak: Vec<u64>,
}

impl MemTracker {
    fn ensure(&mut self, nprocs: usize) {
        if self.current.len() < nprocs {
            self.current.resize(nprocs, 0);
            self.peak.resize(nprocs, 0);
        }
    }

    /// Record an allocation of `bytes` on processor `p`.
    pub fn alloc(&mut self, p: usize, bytes: u64) {
        self.ensure(p + 1);
        self.current[p] += bytes;
        if self.current[p] > self.peak[p] {
            self.peak[p] = self.current[p];
        }
    }

    /// Record a free of `bytes` on processor `p`.
    pub fn free(&mut self, p: usize, bytes: u64) {
        self.ensure(p + 1);
        self.current[p] = self.current[p].saturating_sub(bytes);
    }

    /// Largest per-processor peak.
    pub fn max_peak(&self) -> u64 {
        self.peak.iter().copied().max().unwrap_or(0)
    }
}

/// The simulated machine. Grids of different shapes share the same
/// physical processors (ranks are row-major grid positions, as in HPF
/// implementations mapping all `PROCESSORS` arrangements onto one
/// partition).
#[derive(Debug, Clone)]
pub struct Machine {
    /// Number of physical processors (max over the grids in use).
    pub nprocs: u64,
    /// Network model.
    pub cost: CostModel,
    /// Cumulative statistics.
    pub stats: NetStats,
    /// Memory accounting.
    pub mem: MemTracker,
    /// How compiled copy programs execute their rounds (serial replay
    /// or scoped worker threads). Defaults to the `HPFC_THREADS`
    /// environment variable via [`ExecMode::from_env`].
    pub exec_mode: ExecMode,
    /// Deterministic fault injection for chaos testing (`HPFC_FAULTS`
    /// env or [`Machine::with_faults`]); `None` in production runs.
    pub faults: Option<crate::fault::FaultPlan>,
    /// How much the guarded replay verifies per round
    /// (`HPFC_VALIDATE` env or [`Machine::with_validation`]). With
    /// faults unset and validation [`crate::ValidationLevel::Off`], the
    /// remap path is the unguarded allocation-free fast path.
    pub validation: crate::fault::ValidationLevel,
    /// The shared plan registry this machine seeds from and publishes
    /// to on local plan-cache misses. Defaults to the process-wide
    /// instance ([`crate::PlanRegistry::global`], `HPFC_REGISTRY`);
    /// `None` plans solo — the pre-registry behavior, kept for A/B.
    pub registry: Option<std::sync::Arc<crate::registry::PlanRegistry>>,
    /// Whether remaps are transactional: before a guarded data-moving
    /// replay the destination's rollback record is captured, and any
    /// terminal [`crate::ExecError`] restores the array (and every
    /// group sibling) byte-identical to its pre-remap state. On by
    /// default (`HPFC_TXN=off` or [`Machine::with_txn`] disables it for
    /// A/B runs). The snapshot only arms on the *guarded* path — the
    /// default fault-free cached bounce is untouched.
    pub txn: bool,
    /// Whether plan lookups go through the symbolic (P-free) layer:
    /// registry entries are keyed by interned `(format, format)` pairs
    /// and re-provisioning to a new processor count instantiates the
    /// parametric plan instead of recompiling. On by default
    /// (`HPFC_SYMBOLIC=off` or [`Machine::with_symbolic`] restores the
    /// concrete per-mapping-pair keying for A/B). Shapes the symbolic
    /// normalizer declines always fall back to concrete keys.
    pub symbolic: bool,
    /// Reusable per-phase accounting buffers.
    scratch: PhaseScratch,
    /// Reusable solo-remap rollback record (capacity persists across
    /// remaps, keeping the armed snapshot allocation-free).
    pub(crate) txn_scratch: crate::store::TxnScratch,
    /// Reusable per-member rollback records for group remaps.
    pub(crate) group_txn_scratch: Vec<crate::store::TxnScratch>,
    /// Monotonic counter handed to the fault plan: one epoch per
    /// data-moving remap, making injection deterministic per operation
    /// regardless of execution mode.
    fault_epoch: u64,
}

impl Machine {
    /// A machine with `nprocs` processors and the default cost model.
    pub fn new(nprocs: u64) -> Self {
        Machine {
            nprocs,
            cost: CostModel::default(),
            stats: NetStats::default(),
            mem: MemTracker::default(),
            exec_mode: ExecMode::from_env(),
            faults: crate::fault::FaultPlan::from_env(),
            validation: crate::fault::ValidationLevel::from_env(),
            registry: crate::registry::PlanRegistry::global().cloned(),
            txn: txn_from_env(),
            symbolic: symbolic_from_env(),
            scratch: PhaseScratch::default(),
            txn_scratch: crate::store::TxnScratch::default(),
            group_txn_scratch: Vec::new(),
            fault_epoch: 0,
        }
    }

    /// A machine with a custom cost model.
    pub fn with_cost(nprocs: u64, cost: CostModel) -> Self {
        Machine { cost, ..Machine::new(nprocs) }
    }

    /// Builder-style override of the copy-engine execution mode.
    pub fn with_exec_mode(mut self, mode: ExecMode) -> Self {
        self.exec_mode = mode;
        self
    }

    /// Builder-style fault-injection plan (chaos testing).
    pub fn with_faults(mut self, plan: crate::fault::FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Builder-style validation level for the guarded replay.
    pub fn with_validation(mut self, level: crate::fault::ValidationLevel) -> Self {
        self.validation = level;
        self
    }

    /// Builder-style override of transactional remaps (`HPFC_TXN`).
    /// `false` restores the pre-transactional behavior: a terminal
    /// error leaves the destination partially written (A/B baseline).
    pub fn with_txn(mut self, txn: bool) -> Self {
        self.txn = txn;
        self
    }

    /// Builder-style override of symbolic plan keying
    /// (`HPFC_SYMBOLIC`). `false` restores concrete per-mapping-pair
    /// registry keys — the O(mapping pairs) baseline the symbolic
    /// layer's O(format pairs) registry is pinned against.
    pub fn with_symbolic(mut self, symbolic: bool) -> Self {
        self.symbolic = symbolic;
        self
    }

    /// Builder-style shared plan registry — sessions handed the same
    /// `Arc` share compiled artifacts. Tests use isolated instances so
    /// their hit/miss/eviction counters are exact.
    pub fn with_registry(
        mut self,
        registry: std::sync::Arc<crate::registry::PlanRegistry>,
    ) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Builder-style opt-out of the shared registry: this machine
    /// plans solo in its per-array caches (the pre-registry path, the
    /// A/B baseline for `HPFC_REGISTRY=off`).
    pub fn without_registry(mut self) -> Self {
        self.registry = None;
        self
    }

    /// The next fault epoch — bumped once per data-moving remap so the
    /// stateless [`crate::FaultPlan`] decides deterministically per
    /// operation.
    pub(crate) fn next_fault_epoch(&mut self) -> u64 {
        let e = self.fault_epoch;
        self.fault_epoch += 1;
        e
    }

    /// Account one communication phase given per-(sender, receiver)
    /// transfer sizes; returns the phase time.
    ///
    /// BSP-style: every processor sends/receives its messages
    /// concurrently; the phase costs the maximum per-processor time.
    /// Takes any `(from, to, bytes)` stream (e.g.
    /// [`crate::RedistPlan::phase_triples`]) so callers never
    /// materialize a triple vector.
    pub fn account_phase(
        &mut self,
        transfers: impl IntoIterator<Item = (u64, u64, u64)>,
    ) -> f64 {
        // (from, to, bytes); from == to entries are local copies. The
        // tallies live in the machine's scratch arena: steady-state
        // schedule accounting allocates nothing.
        let n = self.nprocs as usize;
        self.scratch.reset(n);
        for (from, to, bytes) in transfers {
            if from == to {
                self.stats.local_elements += bytes / 8;
                continue;
            }
            self.stats.messages += 1;
            self.stats.bytes += bytes;
            self.scratch.send_bytes[from as usize] += bytes;
            self.scratch.recv_bytes[to as usize] += bytes;
            self.scratch.send_msgs[from as usize] += 1;
            self.scratch.recv_msgs[to as usize] += 1;
        }
        let mut phase = 0.0f64;
        for p in 0..n {
            let t = self.cost.latency_us
                * (self.scratch.send_msgs[p] + self.scratch.recv_msgs[p]) as f64
                + (self.scratch.send_bytes[p] + self.scratch.recv_bytes[p]) as f64
                    / self.cost.bandwidth_bytes_per_us;
            phase = phase.max(t);
        }
        self.stats.time_us += phase;
        phase
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_accounting_takes_per_proc_max() {
        let mut m = Machine::with_cost(4, CostModel { latency_us: 10.0, bandwidth_bytes_per_us: 100.0 });
        // p0 sends 1000B to p1 and p2; p3 idle.
        let t = m.account_phase([(0, 1, 1000), (0, 2, 1000)]);
        // p0: 2 msgs * 10 + 2000/100 = 40. p1: 10 + 10 = 20.
        assert!((t - 40.0).abs() < 1e-9);
        assert_eq!(m.stats.messages, 2);
        assert_eq!(m.stats.bytes, 2000);
    }

    #[test]
    fn local_transfers_cost_nothing() {
        let mut m = Machine::new(2);
        let t = m.account_phase([(1, 1, 800)]);
        assert_eq!(t, 0.0);
        assert_eq!(m.stats.messages, 0);
        assert_eq!(m.stats.local_elements, 100);
    }

    #[test]
    fn memory_peak_tracking() {
        let mut mt = MemTracker::default();
        mt.alloc(0, 100);
        mt.alloc(0, 50);
        mt.free(0, 120);
        mt.alloc(1, 10);
        assert_eq!(mt.current[0], 30);
        assert_eq!(mt.peak[0], 150);
        assert_eq!(mt.max_peak(), 150);
    }

    #[test]
    fn stats_merge() {
        let mut a = NetStats { messages: 1, bytes: 10, ..Default::default() };
        let b = NetStats { messages: 2, bytes: 5, time_us: 1.0, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.messages, 3);
        assert_eq!(a.bytes, 15);
        assert!((a.time_us - 1.0).abs() < 1e-12);
    }

    /// Every counter set, no `..Default::default()` anywhere: adding a
    /// `NetStats` field without wiring it through `merge()` (and this
    /// test) fails to compile here, and a field `merge()` silently
    /// drops fails the per-field assertions — the way `faults_injected`
    /// and friends could once have been lost.
    #[test]
    fn stats_merge_and_summary_carry_every_field() {
        let mk = |base: u64| NetStats {
            messages: base + 1,
            bytes: base + 2,
            local_elements: base + 3,
            time_us: base as f64 + 0.5,
            remaps_performed: base + 4,
            remaps_skipped_noop: base + 5,
            remaps_reused_live: base + 6,
            remaps_dead_values: base + 7,
            plans_computed: base + 8,
            plan_cache_hits: base + 9,
            bytes_moved: base + 10,
            runs_copied: base + 11,
            restores_replayed: base + 12,
            remap_groups_coalesced: base + 13,
            faults_injected: base + 14,
            rounds_retried: base + 15,
            programs_recompiled: base + 16,
            fallbacks_to_tables: base + 17,
            parallel_degradations: base + 18,
            registry_hits: base + 19,
            registry_misses: base + 20,
            registry_evictions: base + 21,
            txn_rollbacks: base + 22,
            group_rollbacks: base + 23,
            quarantined_pairs: base + 24,
            lock_poison_recoveries: base + 25,
            symbolic_instantiations: base + 26,
            symbolic_declines: base + 27,
        };
        let mut merged = mk(100);
        merged.merge(&mk(1000));
        // Exhaustive destructuring — a new field breaks this pattern
        // until it is added (and to merge(), or the sum check fails).
        let NetStats {
            messages,
            bytes,
            local_elements,
            time_us,
            remaps_performed,
            remaps_skipped_noop,
            remaps_reused_live,
            remaps_dead_values,
            plans_computed,
            plan_cache_hits,
            bytes_moved,
            runs_copied,
            restores_replayed,
            remap_groups_coalesced,
            faults_injected,
            rounds_retried,
            programs_recompiled,
            fallbacks_to_tables,
            parallel_degradations,
            registry_hits,
            registry_misses,
            registry_evictions,
            txn_rollbacks,
            group_rollbacks,
            quarantined_pairs,
            lock_poison_recoveries,
            symbolic_instantiations,
            symbolic_declines,
        } = merged;
        assert_eq!(messages, 101 + 1001);
        assert_eq!(bytes, 102 + 1002);
        assert_eq!(local_elements, 103 + 1003);
        assert!((time_us - (100.5 + 1000.5)).abs() < 1e-12);
        assert_eq!(remaps_performed, 104 + 1004);
        assert_eq!(remaps_skipped_noop, 105 + 1005);
        assert_eq!(remaps_reused_live, 106 + 1006);
        assert_eq!(remaps_dead_values, 107 + 1007);
        assert_eq!(plans_computed, 108 + 1008);
        assert_eq!(plan_cache_hits, 109 + 1009);
        assert_eq!(bytes_moved, 110 + 1010);
        assert_eq!(runs_copied, 111 + 1011);
        assert_eq!(restores_replayed, 112 + 1012);
        assert_eq!(remap_groups_coalesced, 113 + 1013);
        assert_eq!(faults_injected, 114 + 1014);
        assert_eq!(rounds_retried, 115 + 1015);
        assert_eq!(programs_recompiled, 116 + 1016);
        assert_eq!(fallbacks_to_tables, 117 + 1017);
        assert_eq!(parallel_degradations, 118 + 1018);
        assert_eq!(registry_hits, 119 + 1019);
        assert_eq!(registry_misses, 120 + 1020);
        assert_eq!(registry_evictions, 121 + 1021);
        assert_eq!(txn_rollbacks, 122 + 1022);
        assert_eq!(group_rollbacks, 123 + 1023);
        assert_eq!(quarantined_pairs, 124 + 1024);
        assert_eq!(lock_poison_recoveries, 125 + 1025);
        assert_eq!(symbolic_instantiations, 126 + 1026);
        assert_eq!(symbolic_declines, 127 + 1027);
        // With every counter nonzero, all conditional summary segments
        // print, and every u64 counter's value appears verbatim —
        // summary() cannot silently omit a field either.
        let s = mk(200).summary();
        for v in 201..=227u64 {
            assert!(s.contains(&v.to_string()), "summary misses {v}: {s}");
        }
        assert!(s.contains("200.5"), "summary misses time_us: {s}");
    }
}
