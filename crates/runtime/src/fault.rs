//! Fault injection, detection, and the self-healing recovery ladder of
//! the remap engine.
//!
//! The engine trusts artifacts it compiled earlier: cached
//! [`crate::CopyProgram`]s are replayed with no integrity check, and a
//! worker panic inside a parallel round would unwind through
//! `thread::scope`. Before the plan cache is shared between sessions
//! (the ROADMAP's remap-as-a-service leg) the engine needs a failure
//! model: a poisoned cache entry or one bad round must degrade, not
//! take down every session. This module provides the three pieces:
//!
//! * **Injection** — a seedable, deterministic [`FaultPlan`]
//!   (`Machine::with_faults` or the `HPFC_FAULTS` environment
//!   variable). Faults are decided by a pure hash of
//!   `(seed, remap epoch, round, attempt)`, so a failing execution
//!   replays bit-identically, and a *retry* of the same round rolls a
//!   fresh decision — exactly the recoverable-transient regime the
//!   ladder is built for. The deterministic caterpillar round structure
//!   makes the injection points well-defined: a fault hits *a chosen
//!   round of a chosen remap*, never a vague interleaving.
//! * **Detection** — per-round conservation counts (elements replayed
//!   vs. schedule-planned), optional per-unit checksums over the copied
//!   words ([`ValidationLevel::Checksums`]), and a compile-time
//!   fingerprint over every cached program's triples
//!   ([`crate::CopyProgram::integrity_ok`]).
//! * **Recovery** — the ladder in `remap_guarded` / `remap_group`:
//!   bounded retry of the failed round → recompile the program from the
//!   cached plan (and repair the cache entry) → fall back to the table
//!   engine → a typed [`ExecError`]. Worker panics are caught with
//!   `catch_unwind` and degrade `Parallel(t)` → `Serial` for that round
//!   only.
//!
//! When no faults are configured and validation is
//! [`ValidationLevel::Off`], none of this is on the remap path: the
//! cached bounce takes the exact pre-existing unguarded replay
//! (allocation-free, pinned by `alloc_free.rs` and the
//! `redist/fault_overhead` bench).

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::exec::{
    flip_unit_word, mix64, pair_round_units, replay_chunked_guarded, replay_unit, unit_dst_sum,
    unit_src_sum, CopyProgram, CopyRun, CopyUnit, ExecMode,
};
use crate::machine::Machine;
use crate::status::PlannedRemap;
use crate::store::VersionData;

/// One injectable fault class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Scribble one delivered word of the round after replaying it
    /// (a wire bit-flip). Detected by checksums.
    CorruptRound,
    /// Replay only the first half of the round's units (a short wire
    /// read). Detected by conservation counts.
    TruncateRound,
    /// Replay none of the round's units (a lost message batch).
    /// Detected by conservation counts.
    DropRound,
    /// Panic a parallel worker halfway through its chunk. Caught with
    /// `catch_unwind`; the round degrades to serial replay.
    WorkerPanic,
    /// Corrupt the cached compiled program before the replay starts.
    /// Detected by the program fingerprint; healed by recompiling from
    /// the cached plan.
    PoisonProgram,
    /// Panic the plan → schedule → program compile itself (decided once
    /// per remap, fires only on a cold compile). Contained by
    /// `catch_unwind` in the registry's compile-under-lock (the shard
    /// `Mutex` is **not** poisoned) and recovered by a clean solo
    /// compile — exercising the typed
    /// [`crate::CompileDecline::Panicked`] path.
    CompilePanic,
    /// Force the whole recovery ladder to fail: every round attempt is
    /// rejected and the table-engine rung is blocked, so the remap
    /// surfaces a terminal [`ExecError::Unrecovered`] *after* partial
    /// writes happened — the scenario transactional rollback exists
    /// for.
    Exhaust,
}

impl FaultKind {
    const ALL: [FaultKind; 7] = [
        FaultKind::CorruptRound,
        FaultKind::TruncateRound,
        FaultKind::DropRound,
        FaultKind::WorkerPanic,
        FaultKind::PoisonProgram,
        FaultKind::CompilePanic,
        FaultKind::Exhaust,
    ];

    fn bit(self) -> u8 {
        match self {
            FaultKind::CorruptRound => 1,
            FaultKind::TruncateRound => 2,
            FaultKind::DropRound => 4,
            FaultKind::WorkerPanic => 8,
            FaultKind::PoisonProgram => 16,
            FaultKind::CompilePanic => 32,
            FaultKind::Exhaust => 64,
        }
    }

    /// The wire-level (per-round) kinds; `PoisonProgram` is decided
    /// once per remap instead.
    const WIRE: [FaultKind; 4] = [
        FaultKind::CorruptRound,
        FaultKind::TruncateRound,
        FaultKind::DropRound,
        FaultKind::WorkerPanic,
    ];

    /// Every kind the recovery ladder heals on its own — [`Self::ALL`]
    /// minus the terminal `Exhaust`, which *forces* a typed failure.
    /// This is the set the `HPFC_FAULTS` defaults select, so blanket
    /// chaos runs (`HPFC_FAULTS=7 cargo test`) stay green: terminal
    /// faults must be asked for by name (`kinds=…+exhaust`).
    const RECOVERABLE: [FaultKind; 6] = [
        FaultKind::CorruptRound,
        FaultKind::TruncateRound,
        FaultKind::DropRound,
        FaultKind::WorkerPanic,
        FaultKind::PoisonProgram,
        FaultKind::CompilePanic,
    ];
}

/// A seedable, deterministic fault-injection plan. Decisions are a pure
/// hash of `(seed, remap epoch, round, attempt)`: the same execution
/// faults identically every run, and retrying a round re-rolls the
/// decision, so bounded retries converge unless the rate is 100%.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    /// Injection probability per decision point, in percent (0–100).
    rate: u32,
    kinds: u8,
}

impl FaultPlan {
    /// A plan injecting the given kinds at `rate` percent per decision
    /// point.
    pub fn new(seed: u64, rate: u32, kinds: &[FaultKind]) -> FaultPlan {
        let mask = kinds.iter().fold(0u8, |m, k| m | k.bit());
        FaultPlan { seed, rate: rate.min(100), kinds: mask }
    }

    /// A plan injecting **every** fault class at `rate` percent.
    pub fn all(seed: u64, rate: u32) -> FaultPlan {
        FaultPlan::new(seed, rate, &FaultKind::ALL)
    }

    /// The plan selected by the `HPFC_FAULTS` environment variable, if
    /// set. Accepted forms:
    ///
    /// * a bare integer — the seed, with a 10% rate and every
    ///   *recoverable* kind (the ladder heals them all, so a blanket
    ///   chaos run stays green);
    /// * a comma-separated list of `seed=N`, `rate=N` (percent) and
    ///   `kinds=a+b+c` with kinds among `corrupt`, `truncate`, `drop`,
    ///   `panic`, `poison`, `compilepanic`, `exhaust`. The terminal
    ///   `exhaust` — which forces the ladder to fail so the
    ///   transaction must roll back — is only injected when named
    ///   here explicitly.
    ///
    /// Unrecognized fragments are ignored (chaos configuration must
    /// never itself crash the engine). Realistic use pairs this with
    /// `HPFC_VALIDATE=checksums` so injected corruption is detected,
    /// not silently absorbed.
    pub fn from_env() -> Option<FaultPlan> {
        let raw = std::env::var("HPFC_FAULTS").ok()?;
        let raw = raw.trim();
        if raw.is_empty() {
            return None;
        }
        if let Ok(seed) = raw.parse::<u64>() {
            return Some(FaultPlan::new(seed, 10, &FaultKind::RECOVERABLE));
        }
        let mut plan = FaultPlan::new(0, 10, &FaultKind::RECOVERABLE);
        for part in raw.split(',') {
            let Some((key, value)) = part.split_once('=') else { continue };
            match key.trim() {
                "seed" => {
                    if let Ok(s) = value.trim().parse() {
                        plan.seed = s;
                    }
                }
                "rate" => {
                    if let Ok(r) = value.trim().parse::<u32>() {
                        plan.rate = r.min(100);
                    }
                }
                "kinds" => {
                    let mut mask = 0u8;
                    for k in value.split('+') {
                        mask |= match k.trim() {
                            "corrupt" => FaultKind::CorruptRound.bit(),
                            "truncate" => FaultKind::TruncateRound.bit(),
                            "drop" => FaultKind::DropRound.bit(),
                            "panic" => FaultKind::WorkerPanic.bit(),
                            "poison" => FaultKind::PoisonProgram.bit(),
                            "compilepanic" => FaultKind::CompilePanic.bit(),
                            "exhaust" => FaultKind::Exhaust.bit(),
                            _ => 0,
                        };
                    }
                    if mask != 0 {
                        plan.kinds = mask;
                    }
                }
                _ => {}
            }
        }
        Some(plan)
    }

    fn site_hash(&self, epoch: u64, stream: u32, round: u32, attempt: u32) -> u64 {
        let site = ((stream as u64) << 48) ^ ((round as u64) << 16) ^ attempt as u64;
        mix64(self.seed ^ mix64(epoch.wrapping_mul(0x9E37_79B9).wrapping_add(site)))
    }

    /// The wire-level fault (if any) for one `(remap epoch, round,
    /// attempt)` decision point, plus a salt for victim selection.
    /// `stream` separates the original program's decision stream from a
    /// recompiled one's.
    pub(crate) fn round_fault(
        &self,
        epoch: u64,
        stream: u32,
        round: u32,
        attempt: u32,
    ) -> Option<(FaultKind, u64)> {
        let h = self.site_hash(epoch, stream, round, attempt);
        if (h % 100) as u32 >= self.rate {
            return None;
        }
        let enabled: Vec<FaultKind> =
            FaultKind::WIRE.iter().copied().filter(|k| self.kinds & k.bit() != 0).collect();
        if enabled.is_empty() {
            return None;
        }
        let pick = ((h >> 32) as usize) % enabled.len();
        Some((enabled[pick], h))
    }

    /// Whether this remap's cached program gets poisoned (decided once
    /// per remap epoch, before the replay starts).
    pub(crate) fn poison_fires(&self, epoch: u64) -> bool {
        if self.kinds & FaultKind::PoisonProgram.bit() == 0 {
            return false;
        }
        let h = self.site_hash(epoch, 3, u32::MAX, 0);
        ((h % 100) as u32) < self.rate
    }

    /// Whether this remap's *compile* panics (decided once per remap
    /// epoch; only meaningful on a cold compile — a cache or registry
    /// hit never compiles).
    pub(crate) fn compile_panic_fires(&self, epoch: u64) -> bool {
        if self.kinds & FaultKind::CompilePanic.bit() == 0 {
            return false;
        }
        let h = self.site_hash(epoch, 4, u32::MAX, 0);
        ((h % 100) as u32) < self.rate
    }

    /// Whether this remap's entire recovery ladder is forced to fail
    /// (decided once per remap epoch): every round attempt is rejected
    /// and the table-engine rung is blocked, so the remap ends in a
    /// terminal [`ExecError::Unrecovered`].
    pub(crate) fn exhaust_fires(&self, epoch: u64) -> bool {
        if self.kinds & FaultKind::Exhaust.bit() == 0 {
            return false;
        }
        let h = self.site_hash(epoch, 5, u32::MAX, 0);
        ((h % 100) as u32) < self.rate
    }
}

/// How much the guarded replay verifies per round. `Checksums` implies
/// the conservation counts of `Counts`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum ValidationLevel {
    /// No verification — with no faults configured this selects the
    /// unguarded allocation-free fast path.
    #[default]
    Off,
    /// Per-round conservation counts: elements replayed must equal the
    /// round's planned elements (catches dropped/truncated rounds).
    Counts,
    /// `Counts` plus per-unit checksums over the copied words: the sum
    /// of source words read must equal the sum of destination words
    /// written (catches any single-word corruption).
    Checksums,
}

impl ValidationLevel {
    /// The level selected by the `HPFC_VALIDATE` environment variable:
    /// `counts`, `checksums`, anything else (or unset) is `Off`.
    pub fn from_env() -> ValidationLevel {
        match std::env::var("HPFC_VALIDATE").as_deref().map(str::trim) {
            Ok("counts") => ValidationLevel::Counts,
            Ok("checksums") => ValidationLevel::Checksums,
            _ => ValidationLevel::Off,
        }
    }
}

/// A typed execution error — what the remap engine returns when the
/// recovery ladder cannot produce a correct result, replacing the
/// panic sites on the execution path. The interpreter propagates these
/// across its boundary instead of aborting the process.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ExecError {
    /// Source and destination extents differ — the promoted form of the
    /// replay's shape debug-assertion.
    ShapeMismatch {
        /// Source-side extents (debug rendering).
        src: String,
        /// Destination-side extents (debug rendering).
        dst: String,
    },
    /// A version copy the remap needs is not allocated.
    MissingCopy {
        /// Array name.
        array: String,
        /// The missing version subscript.
        version: u32,
    },
    /// A local block a compiled program references is unallocated.
    MissingBlock {
        /// Processor rank of the missing block.
        rank: u64,
        /// `"provider"` or `"receiver"`.
        side: &'static str,
    },
    /// The recovery ladder was exhausted without a clean replay.
    Unrecovered {
        /// What was being replayed.
        context: String,
    },
    /// A remap group's runtime member list disagrees with its planned
    /// group.
    GroupMismatch {
        /// Planned member count.
        planned: usize,
        /// Runtime member count.
        got: usize,
    },
    /// An interpreter-level invariant violation, reported instead of
    /// panicked.
    Interp {
        /// Description of the violated invariant.
        what: String,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::ShapeMismatch { src, dst } => {
                write!(f, "shape mismatch: source extents {src}, destination extents {dst}")
            }
            ExecError::MissingCopy { array, version } => {
                write!(f, "array `{array}`: version {version} copy is not allocated")
            }
            ExecError::MissingBlock { rank, side } => {
                write!(f, "compiled program references unallocated {side} block on rank {rank}")
            }
            ExecError::Unrecovered { context } => {
                write!(f, "recovery ladder exhausted: {context}")
            }
            ExecError::GroupMismatch { planned, got } => {
                write!(f, "remap group has {got} members but {planned} were planned")
            }
            ExecError::Interp { what } => write!(f, "interpreter invariant violated: {what}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// The payload of an injected [`FaultKind::WorkerPanic`] — a marker
/// type so genuine panics remain distinguishable in captured output.
#[derive(Debug)]
pub struct InjectedPanic;

/// Corrupt a compiled program in place — the `PoisonProgram` fault.
/// Zeroing the source positions (family bases and residual triples
/// alike) keeps every run in bounds (because `pos + extent <=
/// block_len` implies the zero-based extent fits too) while changing
/// what the program copies; the fingerprint catches it either way.
pub(crate) fn poison_program(p: &mut CopyProgram) {
    for f in &mut p.fams {
        f.src_base = 0;
    }
    for r in &mut p.runs {
        r.src_pos = 0;
    }
    if p.integrity_ok() {
        // Degenerate program unchanged by the scribble (e.g. every
        // src_pos already 0): corrupt the fingerprint itself instead.
        p.fingerprint ^= 0x5A5A_5A5A;
    }
}

/// How one guarded round replay failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RoundFailure {
    /// Checksum mismatch between words read and words written.
    Mismatch,
    /// The replay (or one of its workers) panicked.
    Panicked,
}

/// Per-round facts the retry ladder needs to pick applicable faults
/// and validate conservation.
pub(crate) struct RoundCtx {
    /// Planned elements of the round (sum of its units' elements).
    pub expected: u64,
    /// Number of units in the round.
    pub units: usize,
    /// Round number for fault hashing (0 = the local group).
    pub round_no: u32,
}

/// Bound on replay attempts per round (1 initial + retries +
/// potentially one degraded re-run).
const MAX_ROUND_ATTEMPTS: u32 = 4;

/// Is `kind` a fault that can physically happen to this round under
/// this mode? (A worker can only panic if workers are actually
/// spawned; wire loss needs something on the wire.)
fn applicable(kind: FaultKind, mode: ExecMode, ctx: &RoundCtx) -> bool {
    match kind {
        FaultKind::WorkerPanic => {
            mode.threads() > 1 && !crate::exec::round_goes_inline(ctx.expected) && ctx.units > 0
        }
        FaultKind::CorruptRound | FaultKind::TruncateRound | FaultKind::DropRound => {
            ctx.expected > 0 && ctx.units > 0
        }
        // Decided per remap (not per round), so never drawn here.
        FaultKind::PoisonProgram | FaultKind::CompilePanic | FaultKind::Exhaust => false,
    }
}

/// The per-round rungs of the recovery ladder, shared by the solo and
/// group replays: decide an injected fault, run the round through
/// `replay`, validate counts, and on failure degrade a panicked
/// parallel round to serial or retry (bounded). Returns the round's
/// `(runs, elements)` on success, `Err(())` when the round is stuck
/// (the caller escalates: recompile, then the table engine).
pub(crate) fn run_round_ladder(
    machine: &mut Machine,
    ctx: &RoundCtx,
    epoch: u64,
    stream: u32,
    mut replay: impl FnMut(ExecMode, bool, Option<(FaultKind, u64)>) -> Result<(u64, u64), RoundFailure>,
) -> Result<(u64, u64), ()> {
    let mut mode = machine.exec_mode;
    let checksums = machine.validation == ValidationLevel::Checksums;
    let counts = machine.validation >= ValidationLevel::Counts;
    // An exhaust fault rejects every attempt of every round — the
    // writes still happen, so the destination is left partially
    // written, which is exactly what transactional rollback must undo.
    let exhaust = machine.faults.as_ref().is_some_and(|f| f.exhaust_fires(epoch));
    let mut attempt = 0u32;
    loop {
        let fault = machine
            .faults
            .as_ref()
            .and_then(|f| f.round_fault(epoch, stream, ctx.round_no, attempt))
            .filter(|(k, _)| applicable(*k, mode, ctx));
        if fault.is_some() {
            machine.stats.faults_injected += 1;
        }
        let outcome = replay(mode, checksums, fault);
        let failure = match outcome {
            Ok((runs, elements)) => {
                if !exhaust && (!counts || elements == ctx.expected) {
                    return Ok((runs, elements));
                }
                None // short round (or forced exhaustion): rejected
            }
            Err(f) => Some(f),
        };
        if failure == Some(RoundFailure::Panicked) && mode.threads() > 1 {
            // A panicked worker: degrade this round to serial replay.
            machine.stats.parallel_degradations += 1;
            mode = ExecMode::Serial;
        } else if attempt + 1 < MAX_ROUND_ATTEMPTS {
            machine.stats.rounds_retried += 1;
        } else {
            return Err(());
        }
        attempt += 1;
    }
}

/// Replay one round of a solo program under the guarded regime:
/// apply wire-loss faults to the unit list, catch panics from the copy
/// phase, scribble the corruption victim, and verify checksums.
#[allow(clippy::type_complexity, clippy::too_many_arguments)]
pub(crate) fn replay_round_guarded(
    fams: &[crate::exec::StrideFamily],
    runs: &[CopyRun],
    units: &[CopyUnit],
    src: &VersionData,
    dst: &mut VersionData,
    mode: ExecMode,
    checksums: bool,
    fault: Option<(FaultKind, u64)>,
) -> Result<(u64, u64), RoundFailure> {
    let effective: &[CopyUnit] = match fault {
        Some((FaultKind::DropRound, _)) => &[],
        Some((FaultKind::TruncateRound, _)) => &units[..units.len() / 2],
        _ => units,
    };
    let weight: u64 = effective.iter().map(|u| u.elements).sum();
    let copied = catch_unwind(AssertUnwindSafe(|| {
        if mode.threads() > 1 && !crate::exec::round_goes_inline(weight) {
            let mut paired = Vec::with_capacity(effective.len());
            pair_round_units(effective, fams, runs, src, dst, &mut paired);
            let boom = matches!(fault, Some((FaultKind::WorkerPanic, _))).then_some(0);
            replay_chunked_guarded(paired, weight, mode.threads(), boom);
        } else {
            for unit in effective {
                let sb = src.blocks[unit.provider as usize]
                    .as_ref()
                    .expect("provider holds the data");
                let db = dst.blocks[unit.receiver as usize]
                    .as_mut()
                    .expect("receiver allocates the data");
                replay_unit(fams, runs, *unit, sb, db);
            }
        }
    }));
    if copied.is_err() {
        return Err(RoundFailure::Panicked);
    }
    if let Some((FaultKind::CorruptRound, salt)) = fault {
        if !effective.is_empty() {
            let victim = effective[(salt % effective.len() as u64) as usize];
            let db = dst.blocks[victim.receiver as usize]
                .as_mut()
                .expect("receiver allocates the data");
            flip_unit_word(fams, runs, victim, db);
        }
    }
    if checksums {
        let mut read = 0u64;
        let mut written = 0u64;
        for unit in effective {
            let sb =
                src.blocks[unit.provider as usize].as_ref().expect("provider holds the data");
            let db =
                dst.blocks[unit.receiver as usize].as_ref().expect("receiver allocates the data");
            read = read.wrapping_add(unit_src_sum(fams, runs, *unit, sb));
            written = written.wrapping_add(unit_dst_sum(fams, runs, *unit, db));
        }
        if read != written {
            return Err(RoundFailure::Mismatch);
        }
    }
    let n_runs: u64 =
        effective.iter().map(|u| crate::exec::unit_n_runs(fams, *u)).sum();
    Ok((n_runs, weight))
}

/// All rounds of one solo program under the guarded regime. `stream`
/// separates the fault-decision stream of the original program from a
/// recompiled one's (so a full re-replay after recompilation rolls
/// fresh decisions).
fn replay_rounds_guarded(
    machine: &mut Machine,
    prog: &CopyProgram,
    src: &VersionData,
    dst: &mut VersionData,
    epoch: u64,
    stream: u32,
) -> Result<(u64, u64), ()> {
    let mut total_runs = 0u64;
    let mut total_elements = 0u64;
    for (ri, units) in
        std::iter::once(&prog.local).chain(prog.rounds.iter()).enumerate()
    {
        if units.is_empty() {
            continue;
        }
        let ctx = RoundCtx {
            expected: units.iter().map(|u| u.elements).sum(),
            units: units.len(),
            round_no: ri as u32,
        };
        let (r, e) = run_round_ladder(machine, &ctx, epoch, stream, |mode, checksums, fault| {
            replay_round_guarded(&prog.fams, &prog.runs, units, src, dst, mode, checksums, fault)
        })?;
        total_runs += r;
        total_elements += e;
    }
    Ok((total_runs, total_elements))
}

/// Every block a program references must exist before the replay
/// starts — the promoted form of the replay's `expect`s, returned as a
/// typed error instead of a panic.
fn validate_blocks(
    prog: &CopyProgram,
    src: &VersionData,
    dst: &mut VersionData,
) -> Result<(), ExecError> {
    for unit in prog.local.iter().chain(prog.rounds.iter().flatten()) {
        if src.blocks[unit.provider as usize].is_none() {
            return Err(ExecError::MissingBlock { rank: unit.provider, side: "provider" });
        }
        if dst.blocks[unit.receiver as usize].is_none() {
            return Err(ExecError::MissingBlock { rank: unit.receiver, side: "receiver" });
        }
    }
    Ok(())
}

/// What a recovered solo replay hands back to `remap_guarded`.
pub(crate) struct ReplayOutcome {
    /// Runs the authoritative copy replayed.
    pub runs: u64,
    /// Elements the authoritative copy delivered.
    pub elements: u64,
    /// A freshly compiled program, when the ladder recompiled — the
    /// caller repairs the plan-cache entry with it.
    pub repaired: Option<CopyProgram>,
}

/// The solo recovery ladder: replay `planned`'s data movement from
/// `src` into `dst`, healing injected or real faults.
///
/// Rungs: (1) bounded retry of a failed round (worker panics degrade
/// the round to serial first); (2) recompile the program from the
/// cached plan and re-replay (idempotent: every destination position is
/// rewritten); (3) fall back to the table engine, which shares no state
/// with the compiled program. When no faults are configured and
/// validation is off, this is exactly the pre-existing unguarded replay
/// (the allocation-free fast path).
pub(crate) fn replay_with_recovery(
    machine: &mut Machine,
    planned: &PlannedRemap,
    src: &VersionData,
    dst: &mut VersionData,
    epoch: u64,
) -> Result<ReplayOutcome, ExecError> {
    let guarded = machine.faults.is_some() || machine.validation != ValidationLevel::Off;
    if !guarded {
        let (runs, elements) = match &planned.program {
            Some(p) => dst.copy_values_from_program(src, p, machine.exec_mode),
            None => {
                machine.stats.fallbacks_to_tables += 1;
                dst.copy_values_from_plan(src, &planned.plan)
            }
        };
        return Ok(ReplayOutcome { runs, elements, repaired: None });
    }
    if src.mapping.array_extents != dst.mapping.array_extents {
        return Err(ExecError::ShapeMismatch {
            src: format!("{:?}", src.mapping.array_extents),
            dst: format!("{:?}", dst.mapping.array_extents),
        });
    }
    let exhaust = machine.faults.as_ref().is_some_and(|f| f.exhaust_fires(epoch));
    if exhaust {
        machine.stats.faults_injected += 1;
    }
    let mut repaired: Option<CopyProgram> = None;
    let mut active: Option<&CopyProgram> = planned.program.as_ref();
    if let Some(p) = active {
        if !p.compiled_for(src, dst) || !p.integrity_ok() {
            // Poisoned (or foreign) cached program: recompile from the
            // cached plan — rung 2 entered straight away.
            machine.stats.programs_recompiled += 1;
            repaired = CopyProgram::try_compile(&planned.plan, &planned.schedule)
                .filter(|f| f.compiled_for(src, dst));
            active = repaired.as_ref();
        }
    }
    let mut replayed: Option<(u64, u64)> = None;
    if let Some(prog) = active {
        validate_blocks(prog, src, dst)?;
        replayed = replay_rounds_guarded(machine, prog, src, dst, epoch, 0).ok();
    }
    if replayed.is_none() && planned.program.is_some() && repaired.is_none() {
        // Rung 2: recompile once and re-replay everything (idempotent).
        machine.stats.programs_recompiled += 1;
        if let Some(fresh) = CopyProgram::try_compile(&planned.plan, &planned.schedule)
            .filter(|f| f.compiled_for(src, dst))
        {
            replayed = replay_rounds_guarded(machine, &fresh, src, dst, epoch, 1).ok();
            repaired = Some(fresh);
        }
    }
    let (runs, elements) = match replayed {
        Some(t) => t,
        None => {
            if exhaust {
                // Forced exhaustion blocks the table rung too: the
                // remap surfaces a terminal typed error with the
                // destination partially written — the caller's
                // transactional rollback restores it.
                return Err(ExecError::Unrecovered {
                    context: format!("remap epoch {epoch}: injected ladder exhaustion"),
                });
            }
            // Rung 3: the table engine — re-derives every position from
            // the plan's descriptors, shares nothing with the compiled
            // program, and is never fault-injected.
            machine.stats.fallbacks_to_tables += 1;
            dst.copy_values_from_plan(src, &planned.plan)
        }
    };
    Ok(ReplayOutcome { runs, elements, repaired })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_decisions_are_deterministic_and_rate_bounded() {
        let plan = FaultPlan::all(42, 30);
        let mut fired = 0usize;
        for epoch in 0..200u64 {
            let a = plan.round_fault(epoch, 0, 1, 0);
            let b = plan.round_fault(epoch, 0, 1, 0);
            assert_eq!(a, b, "same site must decide identically");
            if a.is_some() {
                fired += 1;
            }
        }
        // ~30% of 200 decision points; generous determinism-safe bounds.
        assert!((20..=100).contains(&fired), "fired {fired} of 200 at rate 30");
        // A retry rolls a fresh decision (attempt is part of the site).
        let differs = (0..100u64).any(|e| {
            plan.round_fault(e, 0, 1, 0).map(|(k, _)| k)
                != plan.round_fault(e, 0, 1, 1).map(|(k, _)| k)
        });
        assert!(differs, "attempt must re-roll the decision");
    }

    #[test]
    fn rate_zero_and_disabled_kinds_never_fire() {
        let silent = FaultPlan::all(7, 0);
        assert!((0..500u64).all(|e| silent.round_fault(e, 0, 0, 0).is_none()));
        assert!((0..500u64).all(|e| !silent.poison_fires(e)));
        let poison_only = FaultPlan::new(7, 100, &[FaultKind::PoisonProgram]);
        assert!((0..100u64).all(|e| poison_only.round_fault(e, 0, 0, 0).is_none()));
        assert!(poison_only.poison_fires(3));
        let wire_only = FaultPlan::new(7, 100, &[FaultKind::DropRound]);
        assert!((0..100u64).all(|e| !wire_only.poison_fires(e)));
    }

    #[test]
    fn env_forms_parse() {
        // `from_env` reads the process environment, which is shared
        // across test threads — exercise the parser through a plan
        // constructed from the same fragments instead.
        let p = FaultPlan::new(9, 120, &[FaultKind::DropRound]);
        assert_eq!(p.rate, 100, "rate saturates at 100");
        assert_eq!(p.kinds, FaultKind::DropRound.bit());
        let all = FaultPlan::all(1, 10);
        assert_eq!(all.kinds, 0b111_1111);
        let env_default = FaultPlan::new(1, 10, &FaultKind::RECOVERABLE);
        assert_eq!(
            env_default.kinds,
            0b011_1111,
            "env defaults exclude the terminal Exhaust: blanket chaos runs must stay green"
        );
    }

    #[test]
    fn terminal_kinds_fire_on_their_own_streams() {
        let cp = FaultPlan::new(11, 100, &[FaultKind::CompilePanic]);
        assert!(cp.compile_panic_fires(5));
        assert!(!cp.exhaust_fires(5));
        assert!(!cp.poison_fires(5));
        assert!((0..100u64).all(|e| cp.round_fault(e, 0, 0, 0).is_none()));
        let ex = FaultPlan::new(11, 100, &[FaultKind::Exhaust]);
        assert!(ex.exhaust_fires(5));
        assert!(!ex.compile_panic_fires(5));
        let silent = FaultPlan::new(11, 0, &[FaultKind::CompilePanic, FaultKind::Exhaust]);
        assert!((0..200u64).all(|e| !silent.compile_panic_fires(e) && !silent.exhaust_fires(e)));
    }

    #[test]
    fn validation_levels_are_ordered() {
        assert!(ValidationLevel::Off < ValidationLevel::Counts);
        assert!(ValidationLevel::Counts < ValidationLevel::Checksums);
        assert_eq!(ValidationLevel::default(), ValidationLevel::Off);
    }

    #[test]
    fn exec_error_displays() {
        let e = ExecError::MissingCopy { array: "a".into(), version: 2 };
        assert!(e.to_string().contains("version 2"));
        let e = ExecError::Unrecovered { context: "round 3".into() };
        assert!(e.to_string().contains("round 3"));
    }
}
