//! Per-processor storage of one array version.
//!
//! A version's local block on processor `p` holds, for each array
//! dimension, the sorted list of global indices `p` owns along it; the
//! elements are stored row-major over those lists. Replicated mappings
//! store a full projection on every replica. This matches the local
//! addressing scheme the mapping layer's structural equality guarantees
//! (see `hpfc-mapping`), so two equal mappings have byte-identical
//! local layouts — the property live-copy reuse relies on.

use hpfc_mapping::NormalizedMapping;

/// One processor's slice of a version.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalBlock {
    /// Owned global indices per dimension (sorted).
    pub dims: Vec<Vec<u64>>,
    /// Row-major element data over `dims`.
    pub data: Vec<f64>,
}

impl LocalBlock {
    fn position(&self, point: &[u64]) -> Option<usize> {
        let mut idx = 0usize;
        for (d, list) in self.dims.iter().enumerate() {
            let k = list.binary_search(&point[d]).ok()?;
            idx = idx * list.len() + k;
        }
        Some(idx)
    }
}

/// The distributed storage of one array version.
#[derive(Debug, Clone, PartialEq)]
pub struct VersionData {
    /// The placement this storage realizes.
    pub mapping: NormalizedMapping,
    /// One optional block per processor rank (None = holds nothing).
    pub blocks: Vec<Option<LocalBlock>>,
    /// Element size in bytes (for accounting; data is simulated as f64).
    pub elem_size: u64,
}

impl VersionData {
    /// Allocate (zero-filled) storage for `mapping`.
    pub fn new(mapping: NormalizedMapping, elem_size: u64) -> Self {
        let nprocs = mapping.grid_shape.volume();
        let rank = mapping.array_extents.rank();
        let mut blocks = Vec::with_capacity(nprocs as usize);
        for r in 0..nprocs {
            let coords = mapping.grid_shape.delinearize(r);
            if !mapping.holds_anything(&coords) {
                blocks.push(None);
                continue;
            }
            let dims: Vec<Vec<u64>> =
                (0..rank).map(|d| mapping.owned_indices_along(d, &coords)).collect();
            let len: usize = dims.iter().map(|l| l.len()).product();
            blocks.push(Some(LocalBlock { dims, data: vec![0.0; len] }));
        }
        VersionData { mapping, blocks, elem_size }
    }

    /// Bytes allocated on processor `rank`.
    pub fn bytes_on(&self, rank: u64) -> u64 {
        self.blocks[rank as usize]
            .as_ref()
            .map(|b| b.data.len() as u64 * self.elem_size)
            .unwrap_or(0)
    }

    /// Total bytes across all processors (replicas count).
    pub fn total_bytes(&self) -> u64 {
        (0..self.blocks.len() as u64).map(|r| self.bytes_on(r)).sum()
    }

    /// Read an element (from its canonical owner).
    pub fn get(&self, point: &[u64]) -> f64 {
        let owner = crate::redist::canonical_owner(&self.mapping, point);
        let block = self.blocks[owner as usize].as_ref().expect("owner holds the element");
        block.data[block.position(point).expect("owned element")]
    }

    /// Write an element (to every replica).
    pub fn set(&mut self, point: &[u64], value: f64) {
        for owner in self.mapping.owners(point) {
            let block = self.blocks[owner as usize].as_mut().expect("owner holds the element");
            let pos = block.position(point).expect("owned element");
            block.data[pos] = value;
        }
    }

    /// Fill from a function of the global point.
    pub fn fill(&mut self, mut f: impl FnMut(&[u64]) -> f64) {
        let extents = self.mapping.array_extents.clone();
        for p in extents.points() {
            let v = f(&p);
            self.set(&p, v);
        }
    }

    /// Copy all values from another version of the same array (the data
    /// movement a redistribution performs; traffic is accounted
    /// separately from the plan).
    pub fn copy_values_from(&mut self, other: &VersionData) {
        assert_eq!(self.mapping.array_extents, other.mapping.array_extents);
        let extents = self.mapping.array_extents.clone();
        for p in extents.points() {
            let v = other.get(&p);
            self.set(&p, v);
        }
    }

    /// Gather the full array into a dense row-major vector (verification
    /// helper).
    pub fn to_dense(&self) -> Vec<f64> {
        self.mapping.array_extents.points().map(|p| self.get(&p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpfc_mapping::{
        Alignment, DimFormat, Distribution, Extents, GridId, Mapping, ProcGrid, Template,
        TemplateId,
    };

    fn mk2d(n: u64, p: u64, fmts: Vec<DimFormat>) -> NormalizedMapping {
        let t = Template { id: TemplateId(0), name: "T".into(), shape: Extents::new(&[n, n]) };
        let g = ProcGrid { id: GridId(0), name: "P".into(), shape: Extents::new(&[p]) };
        Mapping {
            align: Alignment::identity(TemplateId(0), 2),
            dist: Distribution::new(GridId(0), fmts),
        }
        .normalize(&Extents::new(&[n, n]), &t, &g)
        .unwrap()
    }

    #[test]
    fn get_set_roundtrip_rowblock() {
        let nm = mk2d(8, 4, vec![DimFormat::Block(None), DimFormat::Collapsed]);
        let mut v = VersionData::new(nm, 8);
        v.set(&[3, 5], 42.0);
        assert_eq!(v.get(&[3, 5]), 42.0);
        assert_eq!(v.get(&[0, 0]), 0.0);
    }

    #[test]
    fn fill_and_dense_are_consistent_across_mappings() {
        let row = mk2d(8, 4, vec![DimFormat::Block(None), DimFormat::Collapsed]);
        let col = mk2d(8, 4, vec![DimFormat::Collapsed, DimFormat::Cyclic(None)]);
        let f = |p: &[u64]| (p[0] * 8 + p[1]) as f64;
        let mut a = VersionData::new(row, 8);
        let mut b = VersionData::new(col, 8);
        a.fill(f);
        b.fill(f);
        assert_eq!(a.to_dense(), b.to_dense());
    }

    #[test]
    fn copy_values_preserves_content() {
        let row = mk2d(6, 3, vec![DimFormat::Block(None), DimFormat::Collapsed]);
        let col = mk2d(6, 3, vec![DimFormat::Collapsed, DimFormat::Block(None)]);
        let mut a = VersionData::new(row, 8);
        a.fill(|p| (p[0] * 100 + p[1]) as f64);
        let mut b = VersionData::new(col, 8);
        b.copy_values_from(&a);
        assert_eq!(a.to_dense(), b.to_dense());
    }

    #[test]
    fn replicated_version_stores_everywhere() {
        let repl = mk2d(4, 4, vec![DimFormat::Collapsed, DimFormat::Collapsed]);
        let mut v = VersionData::new(repl.clone(), 8);
        v.set(&[1, 1], 7.0);
        // All four processors hold the element.
        let full = 4 * 4 * 8;
        assert_eq!(v.total_bytes(), 4 * full);
        assert_eq!(v.get(&[1, 1]), 7.0);
    }

    #[test]
    fn bytes_accounting_partition() {
        let nm = mk2d(8, 4, vec![DimFormat::Cyclic(None), DimFormat::Collapsed]);
        let v = VersionData::new(nm, 8);
        assert_eq!(v.total_bytes(), 8 * 8 * 8);
        assert_eq!(v.bytes_on(0), 2 * 8 * 8);
    }
}
