//! Per-processor storage of one array version.
//!
//! A version's local block on processor `p` holds, for each array
//! dimension, the sorted list of global indices `p` owns along it; the
//! elements are stored row-major over those lists. Replicated mappings
//! store a full projection on every replica. This matches the local
//! addressing scheme the mapping layer's structural equality guarantees
//! (see `hpfc-mapping`), so two equal mappings have byte-identical
//! local layouts — the property live-copy reuse relies on.
//!
//! Data movement ([`VersionData::copy_values_from`]) is block-level: it
//! walks the planner's per-dimension periodic interval descriptors
//! ([`crate::redist::dim_contributions`]) and copies whole contiguous
//! runs with `copy_from_slice`, instead of routing every element
//! through a heap-allocated point and per-dimension binary searches.
//! The cached remap path goes further:
//! [`VersionData::copy_values_from_program`] replays a compiled
//! [`crate::CopyProgram`] whose positions were all resolved at plan
//! time — zero allocations per copy, optionally parallel per
//! caterpillar round (see [`crate::exec`]).
//! Result extraction ([`VersionData::to_dense`]) walks canonical blocks
//! the same run-level way — no per-element owner computation.

use hpfc_mapping::{intervals::intersect_runs, NormalizedMapping};

/// One processor's slice of a version.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalBlock {
    /// Owned global indices per dimension (sorted).
    pub dims: Vec<Vec<u64>>,
    /// Row-major element data over `dims`.
    pub data: Vec<f64>,
}

impl LocalBlock {
    fn position(&self, point: &[u64]) -> Option<usize> {
        let mut idx = 0usize;
        for (d, list) in self.dims.iter().enumerate() {
            let k = list.binary_search(&point[d]).ok()?;
            idx = idx * list.len() + k;
        }
        Some(idx)
    }
}

/// The distributed storage of one array version.
#[derive(Debug, Clone, PartialEq)]
pub struct VersionData {
    /// The placement this storage realizes.
    pub mapping: NormalizedMapping,
    /// One optional block per processor rank (None = holds nothing).
    pub blocks: Vec<Option<LocalBlock>>,
    /// Element size in bytes (for accounting; data is simulated as f64).
    pub elem_size: u64,
}

impl VersionData {
    /// Allocate (zero-filled) storage for `mapping`.
    pub fn new(mapping: NormalizedMapping, elem_size: u64) -> Self {
        let nprocs = mapping.grid_shape.volume();
        let rank = mapping.array_extents.rank();
        let mut blocks = Vec::with_capacity(nprocs as usize);
        for r in 0..nprocs {
            let coords = mapping.grid_shape.delinearize(r);
            if !mapping.holds_anything(&coords) {
                blocks.push(None);
                continue;
            }
            let dims: Vec<Vec<u64>> =
                (0..rank).map(|d| mapping.owned_indices_along(d, &coords)).collect();
            let len: usize = dims.iter().map(|l| l.len()).product();
            blocks.push(Some(LocalBlock { dims, data: vec![0.0; len] }));
        }
        VersionData { mapping, blocks, elem_size }
    }

    /// Bytes allocated on processor `rank`.
    pub fn bytes_on(&self, rank: u64) -> u64 {
        self.blocks[rank as usize]
            .as_ref()
            .map(|b| b.data.len() as u64 * self.elem_size)
            .unwrap_or(0)
    }

    /// Total bytes across all processors (replicas count).
    pub fn total_bytes(&self) -> u64 {
        (0..self.blocks.len() as u64).map(|r| self.bytes_on(r)).sum()
    }

    /// Read an element (from its canonical owner).
    pub fn get(&self, point: &[u64]) -> f64 {
        let owner = crate::redist::canonical_owner(&self.mapping, point);
        let block = self.blocks[owner as usize].as_ref().expect("owner holds the element");
        block.data[block.position(point).expect("owned element")]
    }

    /// Write an element (to every replica).
    pub fn set(&mut self, point: &[u64], value: f64) {
        for owner in self.mapping.owners(point) {
            let block = self.blocks[owner as usize].as_mut().expect("owner holds the element");
            let pos = block.position(point).expect("owned element");
            block.data[pos] = value;
        }
    }

    /// Fill from a function of the global point.
    ///
    /// Walks every block's local storage in order (sequential data
    /// index, no per-element owner computation or position search).
    /// Replicated blocks are each filled from the same function, so it
    /// must be a pure function of the point — `impl Fn` (not `FnMut`)
    /// makes stateful closures a compile error rather than a silent
    /// replica-coherence bug.
    pub fn fill(&mut self, f: impl Fn(&[u64]) -> f64) {
        let rank = self.mapping.array_extents.rank();
        let mut point = vec![0u64; rank];
        let mut pos = vec![0usize; rank];
        for block in self.blocks.iter_mut().flatten() {
            if block.data.is_empty() {
                continue;
            }
            if rank == 0 {
                block.data[0] = f(&point);
                continue;
            }
            pos.iter_mut().for_each(|p| *p = 0);
            for (p, dim) in point.iter_mut().zip(block.dims.iter()) {
                *p = dim[0];
            }
            let len = block.data.len();
            for i in 0..len {
                block.data[i] = f(&point);
                // Row-major advance, last dimension fastest.
                let mut d = rank;
                while d > 0 {
                    d -= 1;
                    pos[d] += 1;
                    if pos[d] < block.dims[d].len() {
                        point[d] = block.dims[d][pos[d]];
                        break;
                    }
                    pos[d] = 0;
                    point[d] = block.dims[d][0];
                }
            }
        }
    }

    /// Copy all values from another version of the same array — the
    /// data movement a redistribution performs (traffic is accounted
    /// separately, from the plan). Returns `(runs, elements)` copied.
    ///
    /// Computes the per-dimension descriptor tables itself; when a
    /// [`crate::RedistPlan`] for this pair is already at hand, use
    /// [`VersionData::copy_values_from_plan`] to reuse its tables — and
    /// when a compiled [`crate::CopyProgram`] exists (the cached remap
    /// path), [`VersionData::copy_values_from_program`] replays it
    /// without re-deriving anything.
    pub fn copy_values_from(&mut self, other: &VersionData) -> (u64, u64) {
        let per_dim = crate::redist::dim_contributions(&other.mapping, &self.mapping);
        self.copy_with_tables(other, &per_dim)
    }

    /// [`VersionData::copy_values_from`] driven by the interval
    /// descriptors a [`crate::RedistPlan`] already carries (the remap
    /// path plans and then moves; the tables are computed once).
    /// Returns `(runs, elements)` copied.
    ///
    /// Falls back to recomputing when the plan was not computed for
    /// exactly this (source, destination) mapping pair — a plan with no
    /// descriptors (e.g. one built by [`crate::plan_by_enumeration`])
    /// or one planned for different mappings.
    pub fn copy_values_from_plan(
        &mut self,
        other: &VersionData,
        plan: &crate::RedistPlan,
    ) -> (u64, u64) {
        let descriptors_match = plan.dims.len() == self.mapping.array_extents.rank()
            && plan
                .mappings
                .as_ref()
                .is_some_and(|m| m.0 == other.mapping && m.1 == self.mapping);
        if descriptors_match {
            self.copy_with_tables(other, &plan.dims)
        } else {
            self.copy_values_from(other)
        }
    }

    /// Replay a compiled [`crate::CopyProgram`]: every `(src_pos,
    /// dst_pos, len)` triple was resolved at plan time, so this is a
    /// bare `copy_from_slice` loop — zero heap allocations in
    /// [`crate::ExecMode::Serial`], scoped worker threads per
    /// caterpillar round in [`crate::ExecMode::Parallel`]. Returns
    /// `(runs, elements)` copied.
    ///
    /// Like [`VersionData::copy_values_from_plan`], this guards
    /// against mismatched inputs: a program compiled for a different
    /// (source, destination) mapping pair would apply its precompiled
    /// positions to the wrong block layouts, so the copy falls back to
    /// recomputing the descriptor tables instead. The check is an
    /// allocation-free structural comparison — the cached remap path
    /// stays allocation-free.
    pub fn copy_values_from_program(
        &mut self,
        other: &VersionData,
        program: &crate::CopyProgram,
        mode: crate::ExecMode,
    ) -> (u64, u64) {
        if !program.compiled_for(other, self) {
            return self.copy_values_from(other);
        }
        program.execute(self, other, mode);
        (program.n_runs(), program.n_elements())
    }

    /// The block-level copy engine: for every combination of
    /// per-dimension periodic interval descriptors, contiguous index
    /// runs shared by the provider and the receiver are moved with
    /// `copy_from_slice`; elements are never routed through per-point
    /// owner computation. Returns `(runs, elements)` copied.
    fn copy_with_tables(
        &mut self,
        other: &VersionData,
        per_dim: &[Vec<crate::redist::DimContribution>],
    ) -> (u64, u64) {
        assert_eq!(self.mapping.array_extents, other.mapping.array_extents);
        let src = &other.mapping;
        let dst = &self.mapping;
        let rank = src.array_extents.rank();
        if rank == 0 {
            // Scalars: one element, every destination replica.
            let v = other.get(&[]);
            self.set(&[], v);
            let replicas = self.mapping.owners(&[]).len() as u64;
            return (replicas, replicas);
        }
        if per_dim.iter().any(|e| e.is_empty()) {
            return (0, 0); // empty array
        }

        // Materialize every entry's runs once, up front — the
        // combination walk below revisits each (dimension, entry) pair
        // many times.
        let entry_runs: Vec<Vec<Vec<(u64, u64)>>> = per_dim
            .iter()
            .enumerate()
            .map(|(d, entries)| {
                let n = src.array_extents.extent(d);
                entries
                    .iter()
                    .map(|e| intersect_runs(&e.src_set, &e.dst_set, 0, n).collect())
                    .collect()
            })
            .collect();

        // The pair logic (rank assembly, replica fan-out, receiver
        // self-preference) lives in the planner's shared driver; this
        // engine only supplies the per-combination run copy.
        let dst_blocks = &mut self.blocks;
        let mut runs: Vec<&[(u64, u64)]> = vec![&[]; rank];
        let mut totals = (0u64, 0u64);
        crate::redist::for_each_pair_combination(src, dst, per_dim, |provider, to, idx| {
            for d in 0..rank {
                runs[d] = &entry_runs[d][idx[d]];
            }
            let src_block =
                other.blocks[provider as usize].as_ref().expect("provider holds the data");
            let dst_block =
                dst_blocks[to as usize].as_mut().expect("receiver allocates the data");
            let (r, e) = copy_runs(dst_block, src_block, &runs, per_dim, idx);
            totals.0 += r;
            totals.1 += e;
        });
        totals
    }

    /// Gather the full array into a dense row-major vector (verification
    /// helper, and the interpreter's result-extraction path).
    ///
    /// Walks each canonical block's storage directly — outer dimensions
    /// index by index, the contiguous innermost runs with
    /// `copy_from_slice` — instead of routing every element through
    /// [`VersionData::get`] (per-point owner computation plus a binary
    /// search per dimension). Extraction is O(runs) per local row and
    /// allocates nothing per element. Replicas beyond the canonical one
    /// (coordinate 0 on replicated axes) hold identical values by the
    /// storage invariants and are skipped.
    pub fn to_dense(&self) -> Vec<f64> {
        let ext = &self.mapping.array_extents;
        let rank = ext.rank();
        let mut out = vec![0.0; ext.volume() as usize];
        if rank == 0 {
            if !out.is_empty() {
                out[0] = self.get(&[]);
            }
            return out;
        }
        // Dense row-major strides of the global array.
        let mut stride = vec![1u64; rank];
        for d in (0..rank - 1).rev() {
            stride[d] = stride[d + 1] * ext.extent(d + 1);
        }
        let last = rank - 1;
        for (r, block) in self.blocks.iter().enumerate() {
            let Some(block) = block else { continue };
            if block.data.is_empty() {
                continue;
            }
            // Skip non-canonical replicas (identical contents).
            let coords = self.mapping.grid_shape.delinearize(r as u64);
            let canonical = self.mapping.axes.iter().enumerate().all(|(a, ax)| {
                !matches!(ax.source, hpfc_mapping::DimSource::Replicated) || coords[a] == 0
            });
            if !canonical {
                continue;
            }
            let rows: usize = block.dims[..last].iter().map(|l| l.len()).product();
            let row_len = block.dims[last].len();
            let list = &block.dims[last];
            let mut pos = vec![0usize; last];
            for row in 0..rows {
                let base: u64 =
                    (0..last).map(|d| block.dims[d][pos[d]] * stride[d]).sum();
                let data = &block.data[row * row_len..(row + 1) * row_len];
                // Copy maximal contiguous stretches of the innermost
                // owned-index list as whole runs.
                let mut i = 0usize;
                while i < row_len {
                    let mut j = i + 1;
                    while j < row_len && list[j] == list[j - 1] + 1 {
                        j += 1;
                    }
                    let at = (base + list[i]) as usize;
                    out[at..at + (j - i)].copy_from_slice(&data[i..j]);
                    i = j;
                }
                for d in (0..last).rev() {
                    pos[d] += 1;
                    if pos[d] < block.dims[d].len() {
                        break;
                    }
                    pos[d] = 0;
                }
            }
        }
        out
    }
}

/// The rollback record of one transactional remap: everything needed to
/// put the destination version back to its byte-identical pre-remap
/// state when the recovery ladder is exhausted mid-write.
///
/// A replay only ever writes inside the compiled program's destination
/// runs (every rung — the cached program, a recompiled one, a poisoned
/// one whose `src_pos`es were zeroed, the corruption scribble, and the
/// table engine's re-derived deliveries — targets the same destination
/// positions), so the snapshot is bounded by the bytes the remap would
/// move, not the array size. When no program can vouch for the write
/// set (table-only entries, foreign programs), the full destination
/// blocks are saved instead.
///
/// Lives in a per-[`crate::Machine`] scratch arena
/// (`std::mem::take`/put-back around the replay): the vectors keep
/// their capacity across remaps, so the armed snapshot allocates
/// nothing in steady state on the compiled path.
#[derive(Debug, Clone, Default)]
pub struct TxnScratch {
    /// The array's status before the remap.
    pub(crate) status: Option<u32>,
    /// The live flags before the remap.
    pub(crate) live: Vec<bool>,
    /// Whether the target copy existed before the remap — if not,
    /// rollback frees it instead of restoring bytes.
    pub(crate) target_preallocated: bool,
    /// Strided capture entries: `(receiver rank, dst_base, count,
    /// dst_step, len)` — one entry covers `count` destination runs of
    /// `len` words each, `dst_step` apart (a stride family's write
    /// set); a residual triple is the degenerate `count = 1, step = 0`
    /// case. One entry per family keeps the capture metadata O(pairs)
    /// like the artifact itself.
    ranges: Vec<(u64, u32, u32, u32, u32)>,
    /// The saved words, concatenated in `ranges` expansion order.
    words: Vec<f64>,
    /// Full-block fallback: `(rank, data)` clones of every destination
    /// block (used when no compiled program bounds the write set).
    full: Vec<(usize, Vec<f64>)>,
    /// Whether this scratch currently holds a capture; cleared by
    /// rollback and by the commit path.
    pub(crate) captured: bool,
}

impl TxnScratch {
    /// Record the rollback point: array state (`status`, `live`,
    /// whether the target copy pre-existed) plus the destination bytes
    /// the replay may overwrite. `program` (when compiled for exactly
    /// this `(src, dst)` pair) bounds the byte snapshot to its
    /// destination runs; otherwise the full destination blocks are
    /// cloned.
    pub(crate) fn capture(
        &mut self,
        status: Option<u32>,
        live: &[bool],
        target_preallocated: bool,
        src: Option<&VersionData>,
        dst: Option<&VersionData>,
        program: Option<&crate::CopyProgram>,
    ) {
        self.status = status;
        self.live.clear();
        self.live.extend_from_slice(live);
        self.target_preallocated = target_preallocated;
        self.ranges.clear();
        self.words.clear();
        self.full.clear();
        self.captured = true;
        if !target_preallocated {
            return; // rollback frees the fresh copy; no bytes to save
        }
        let Some(dst) = dst else { return };
        if let (Some(p), Some(s)) = (program, src) {
            if p.compiled_for(s, dst) && self.capture_runs(p, dst) {
                return;
            }
            self.ranges.clear();
            self.words.clear();
        }
        for (r, b) in dst.blocks.iter().enumerate() {
            if let Some(b) = b {
                self.full.push((r, b.data.clone()));
            }
        }
    }

    /// Save the words under every destination run of `p` — stride
    /// families and residual triples alike. Returns `false` (caller
    /// falls back to full blocks) if a referenced block is unallocated
    /// or a run is out of bounds — states the guarded replay rejects
    /// with a typed error before writing, but the snapshot must never
    /// panic on them.
    fn capture_runs(&mut self, p: &crate::CopyProgram, dst: &VersionData) -> bool {
        for unit in p.local.iter().chain(p.rounds.iter().flatten()) {
            let Some(block) = dst.blocks[unit.receiver as usize].as_ref() else {
                return false;
            };
            for f in &p.fams[unit.fams.0 as usize..unit.fams.1 as usize] {
                let mut at = f.dst_base as usize;
                let (step, len) = (f.dst_step as usize, f.len as usize);
                let words_start = self.words.len();
                for _ in 0..f.count {
                    let Some(words) = block.data.get(at..at + len) else {
                        self.words.truncate(words_start);
                        return false;
                    };
                    self.words.extend_from_slice(words);
                    at += step;
                }
                self.ranges.push((unit.receiver, f.dst_base, f.count, f.dst_step, f.len));
            }
            for run in &p.runs[unit.runs.0 as usize..unit.runs.1 as usize] {
                let (at, len) = (run.dst_pos as usize, run.len as usize);
                let Some(words) = block.data.get(at..at + len) else {
                    return false;
                };
                self.ranges.push((unit.receiver, run.dst_pos, 1, 0, run.len));
                self.words.extend_from_slice(words);
            }
        }
        true
    }

    /// Write the saved destination bytes back (strided capture entries
    /// or full blocks, whichever was captured), expanding each entry in
    /// the order it was captured. Array-level state (`status`, `live`,
    /// freeing a fresh copy) is the caller's half of the rollback — see
    /// `ArrayRt::rollback_remap`.
    pub(crate) fn restore_bytes(&self, dst: &mut VersionData) {
        for (rank, data) in &self.full {
            if let Some(b) = dst.blocks[*rank].as_mut() {
                b.data.copy_from_slice(data);
            }
        }
        let mut off = 0usize;
        for &(rank, base, count, step, len) in &self.ranges {
            let (step, len) = (step as usize, len as usize);
            let mut at = base as usize;
            if let Some(b) = dst.blocks[rank as usize].as_mut() {
                for _ in 0..count {
                    b.data[at..at + len].copy_from_slice(&self.words[off..off + len]);
                    at += step;
                    off += len;
                }
            } else {
                off += count as usize * len;
            }
        }
    }
}

/// Copy every element of the cartesian product of `runs` from
/// `src_block` into `dst_block`: outer dimensions are walked index by
/// index, the innermost dimension is moved run by run with
/// `copy_from_slice` (both sides hold each run contiguously, because a
/// run lies inside one owned interval on either side).
///
/// Local positions come from the periodic descriptors in closed form:
/// the position of global index `g` in an owned-index list is the
/// number of owned indices below `g` (`PeriodicSet::count_below`), so
/// no per-run binary search is needed.
fn copy_runs(
    dst_block: &mut LocalBlock,
    src_block: &LocalBlock,
    runs: &[&[(u64, u64)]],
    per_dim: &[Vec<crate::redist::DimContribution>],
    idx: &[usize],
) -> (u64, u64) {
    let mut runs_copied = 0u64;
    let mut elements_copied = 0u64;
    let rank = runs.len();
    let last = rank - 1;
    let LocalBlock { dims: d_dims, data: d_data } = dst_block;
    let (s_dims, s_data) = (&src_block.dims, &src_block.data);
    let d_last_len = d_dims[last].len();
    let s_last_len = s_dims[last].len();
    let e_last = &per_dim[last][idx[last]];

    // Odometer over the outer dimensions, one global index at a time:
    // per dimension, (run index, offset inside the run).
    let mut cur = vec![(0usize, 0u64); last];
    loop {
        // Row-major position prefixes of the current outer coordinates.
        let mut d_pref = 0usize;
        let mut s_pref = 0usize;
        for d in 0..last {
            let (ri, off) = cur[d];
            let g = runs[d][ri].0 + off;
            let e = &per_dim[d][idx[d]];
            d_pref = d_pref * d_dims[d].len() + e.dst_set.count_below(g) as usize;
            s_pref = s_pref * s_dims[d].len() + e.src_set.count_below(g) as usize;
        }
        for &(lo, hi) in runs[last] {
            let dp = e_last.dst_set.count_below(lo) as usize;
            let sp = e_last.src_set.count_below(lo) as usize;
            let len = (hi - lo) as usize;
            let d_at = d_pref * d_last_len + dp;
            let s_at = s_pref * s_last_len + sp;
            if len == 1 {
                // Cyclic(1)-style destinations degrade every run to a
                // single element; skip the slice machinery for those.
                d_data[d_at] = s_data[s_at];
            } else {
                d_data[d_at..d_at + len].copy_from_slice(&s_data[s_at..s_at + len]);
            }
            runs_copied += 1;
            elements_copied += len as u64;
        }
        // Advance the outer odometer (innermost outer dim fastest).
        let mut d = last;
        loop {
            if d == 0 {
                return (runs_copied, elements_copied);
            }
            d -= 1;
            let (ref mut ri, ref mut off) = cur[d];
            *off += 1;
            if runs[d][*ri].0 + *off < runs[d][*ri].1 {
                break;
            }
            *off = 0;
            *ri += 1;
            if *ri < runs[d].len() {
                break;
            }
            *ri = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpfc_mapping::{
        Alignment, DimFormat, Distribution, Extents, GridId, Mapping, ProcGrid, Template,
        TemplateId,
    };

    fn mk2d(n: u64, p: u64, fmts: Vec<DimFormat>) -> NormalizedMapping {
        let t = Template { id: TemplateId(0), name: "T".into(), shape: Extents::new(&[n, n]) };
        let g = ProcGrid { id: GridId(0), name: "P".into(), shape: Extents::new(&[p]) };
        Mapping {
            align: Alignment::identity(TemplateId(0), 2),
            dist: Distribution::new(GridId(0), fmts),
        }
        .normalize(&Extents::new(&[n, n]), &t, &g)
        .unwrap()
    }

    #[test]
    fn get_set_roundtrip_rowblock() {
        let nm = mk2d(8, 4, vec![DimFormat::Block(None), DimFormat::Collapsed]);
        let mut v = VersionData::new(nm, 8);
        v.set(&[3, 5], 42.0);
        assert_eq!(v.get(&[3, 5]), 42.0);
        assert_eq!(v.get(&[0, 0]), 0.0);
    }

    #[test]
    fn fill_and_dense_are_consistent_across_mappings() {
        let row = mk2d(8, 4, vec![DimFormat::Block(None), DimFormat::Collapsed]);
        let col = mk2d(8, 4, vec![DimFormat::Collapsed, DimFormat::Cyclic(None)]);
        let f = |p: &[u64]| (p[0] * 8 + p[1]) as f64;
        let mut a = VersionData::new(row, 8);
        let mut b = VersionData::new(col, 8);
        a.fill(f);
        b.fill(f);
        assert_eq!(a.to_dense(), b.to_dense());
    }

    #[test]
    fn copy_values_preserves_content() {
        let row = mk2d(6, 3, vec![DimFormat::Block(None), DimFormat::Collapsed]);
        let col = mk2d(6, 3, vec![DimFormat::Collapsed, DimFormat::Block(None)]);
        let mut a = VersionData::new(row, 8);
        a.fill(|p| (p[0] * 100 + p[1]) as f64);
        let mut b = VersionData::new(col, 8);
        b.copy_values_from(&a);
        assert_eq!(a.to_dense(), b.to_dense());
    }

    #[test]
    fn replicated_version_stores_everywhere() {
        let repl = mk2d(4, 4, vec![DimFormat::Collapsed, DimFormat::Collapsed]);
        let mut v = VersionData::new(repl.clone(), 8);
        v.set(&[1, 1], 7.0);
        // All four processors hold the element.
        let full = 4 * 4 * 8;
        assert_eq!(v.total_bytes(), 4 * full);
        assert_eq!(v.get(&[1, 1]), 7.0);
    }

    #[test]
    fn bytes_accounting_partition() {
        let nm = mk2d(8, 4, vec![DimFormat::Cyclic(None), DimFormat::Collapsed]);
        let v = VersionData::new(nm, 8);
        assert_eq!(v.total_bytes(), 8 * 8 * 8);
        assert_eq!(v.bytes_on(0), 2 * 8 * 8);
    }
}
