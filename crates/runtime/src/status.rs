//! The per-array runtime descriptor of Sec. 5.1 and the executable
//! semantics of the generated copy code (Fig. 19/20).
//!
//! Each dynamic array carries:
//! * a **status** — which version is current (may be referenced);
//! * per-version **live** flags — which copies hold the current values;
//!
//! [`ArrayRt::remap`] is Fig. 20 executed: skip if already mapped as
//! required; allocate the target lazily; if the target copy is not
//! live, copy from the status copy (real communication, through the
//! redistribution engine) unless the values are dead; then clean every
//! copy outside the may-live set. [`ArrayRt::evict`] models the
//! memory-pressure path: a live non-current copy may be dropped at any
//! time and is regenerated (with communication) if needed again.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use hpfc_mapping::NormalizedMapping;

use crate::exec::CopyProgram;
use crate::machine::Machine;
use crate::redist::{plan_redistribution, RedistPlan};
use crate::schedule::CommSchedule;
use crate::store::VersionData;

/// A memoized redistribution: the closed-form plan, its message-level
/// caterpillar schedule, and the compiled copy program — computed once
/// per `(source version, target version)` pair and reused by every
/// later remap between the same pair (remap loops stop replanning —
/// the mappings of a version never change, so the plan cannot either).
/// Lowering (`hpfc-codegen`) builds the same triple at compile time
/// and the interpreter seeds it into [`ArrayRt::plan_cache`] via
/// [`ArrayRt::seed_plan`], so executed programs never replan at all.
#[derive(Debug, Clone)]
pub struct PlannedRemap {
    /// The communication plan (carries the interval descriptors the
    /// block-level copy engine walks).
    pub plan: RedistPlan,
    /// The plan lowered to per-pair packed messages in caterpillar
    /// rounds — what [`Machine::account_schedule`] costs.
    pub schedule: CommSchedule,
    /// The executable form: precompiled `(src_pos, dst_pos, len)`
    /// triples grouped by round, replayed allocation-free by
    /// [`VersionData::copy_values_from_program`]. `None` when the plan
    /// cannot drive a program (rank-0 scalars, `u32` position
    /// overflow) — the table engine is the fallback.
    pub program: Option<CopyProgram>,
}

impl PlannedRemap {
    /// Plan → schedule → compiled program, the whole pipeline.
    pub fn compile(plan: RedistPlan) -> PlannedRemap {
        let schedule = CommSchedule::from_plan(&plan);
        let program = CopyProgram::try_compile(&plan, &schedule);
        PlannedRemap { plan, schedule, program }
    }
}

/// Runtime state of one dynamic array.
#[derive(Debug, Clone)]
pub struct ArrayRt {
    /// Display name (diagnostics).
    pub name: String,
    /// The statically known placements (index = version subscript).
    pub mappings: Vec<NormalizedMapping>,
    /// Allocated copies (lazy).
    pub copies: Vec<Option<VersionData>>,
    /// Which copies hold the current values.
    pub live: Vec<bool>,
    /// The current version, if any ("no initial mapping is imposed from
    /// entry" — instantiation is delayed to first use or remapping).
    pub status: Option<u32>,
    /// Element size in bytes.
    pub elem_size: u64,
    /// Memoized plans + schedules keyed by (source, target) version —
    /// i.e. by (source, destination) mapping pair, since a version *is*
    /// its mapping. Shared by reference: cloning the descriptor does
    /// not replan.
    pub plan_cache: BTreeMap<(u32, u32), Arc<PlannedRemap>>,
}

impl ArrayRt {
    /// New descriptor over the known versions.
    pub fn new(name: impl Into<String>, mappings: Vec<NormalizedMapping>, elem_size: u64) -> Self {
        let n = mappings.len();
        ArrayRt {
            name: name.into(),
            mappings,
            copies: vec![None; n],
            live: vec![false; n],
            status: None,
            elem_size,
            plan_cache: BTreeMap::new(),
        }
    }

    /// The memoized plan + schedule + compiled copy program for
    /// remapping version `src` to version `dst`. The per-array cache is
    /// the first level (a hit touches no lock); on a local miss the
    /// machine's shared [`crate::PlanRegistry`] serves the artifact if
    /// any session has registered it (`registry_hits`), otherwise the
    /// pipeline is compiled **once registry-wide** and registered
    /// (`registry_misses` + `plans_computed`). Without a registry the
    /// miss compiles solo, the pre-registry behavior.
    pub fn planned(&mut self, machine: &mut Machine, src: u32, dst: u32) -> Arc<PlannedRemap> {
        self.planned_with(machine, src, dst, false)
    }

    /// [`ArrayRt::planned`] with an injectable compile panic
    /// ([`crate::FaultKind::CompilePanic`]): the panic unwinds inside
    /// the registry's compile-under-lock, is contained to a typed
    /// [`crate::CompileDecline::Panicked`] (the shard lock stays
    /// healthy), and is recovered here by a clean solo compile that is
    /// then published registry-wide — so this method stays infallible.
    fn planned_with(
        &mut self,
        machine: &mut Machine,
        src: u32,
        dst: u32,
        inject_compile_panic: bool,
    ) -> Arc<PlannedRemap> {
        if let Some(p) = self.plan_cache.get(&(src, dst)) {
            machine.stats.plan_cache_hits += 1;
            return Arc::clone(p);
        }
        let entry = match machine.registry.clone() {
            Some(reg) => {
                // Symbolic keying (`HPFC_SYMBOLIC`, default on): probe
                // the concrete tables first — a seeded, adopted,
                // installed, or quarantined artifact is always served
                // as-is — then resolve through the per-format-pair
                // symbolic table. Shapes the symbolic normalizer
                // declines fall through to the concrete compile path
                // below. Injected compile panics stay on the concrete
                // path: the panic must unwind inside
                // compile-under-lock to exercise containment.
                if machine.symbolic && !inject_compile_panic {
                    let (found, out) = reg.probe(
                        &self.mappings[src as usize],
                        &self.mappings[dst as usize],
                        self.elem_size,
                    );
                    machine.stats.lock_poison_recoveries += out.lock_recoveries;
                    if let Some(planned) = found {
                        machine.stats.registry_hits += 1;
                        self.plan_cache.insert((src, dst), Arc::clone(&planned));
                        return planned;
                    }
                    if let Some((planned, sym)) = reg.get_or_instantiate(
                        &self.mappings[src as usize],
                        &self.mappings[dst as usize],
                        self.elem_size,
                    ) {
                        machine.stats.lock_poison_recoveries += sym.lock_recoveries;
                        if sym.hit {
                            machine.stats.registry_hits += 1;
                            if sym.instantiated {
                                machine.stats.symbolic_instantiations += 1;
                            }
                        } else {
                            // First sight of this format pair: billed
                            // exactly like a concrete compile, so
                            // compile-once accounting is identical
                            // under both keying schemes.
                            machine.stats.registry_misses += 1;
                            machine.stats.plans_computed += 1;
                        }
                        self.plan_cache.insert((src, dst), Arc::clone(&planned));
                        return planned;
                    }
                    machine.stats.symbolic_declines += 1;
                }
                let (res, out) = reg.try_get_or_compile(
                    &self.mappings[src as usize],
                    &self.mappings[dst as usize],
                    self.elem_size,
                    inject_compile_panic,
                );
                machine.stats.registry_evictions += out.evicted;
                machine.stats.lock_poison_recoveries += out.lock_recoveries;
                match res {
                    Ok(planned) => {
                        if out.hit {
                            machine.stats.registry_hits += 1;
                        } else {
                            machine.stats.registry_misses += 1;
                            machine.stats.plans_computed += 1;
                        }
                        planned
                    }
                    Err(_decline) => {
                        // Contained compile panic: recover with a clean
                        // solo compile outside any lock and publish it.
                        let plan = plan_redistribution(
                            &self.mappings[src as usize],
                            &self.mappings[dst as usize],
                            self.elem_size,
                        );
                        machine.stats.registry_misses += 1;
                        machine.stats.plans_computed += 1;
                        let planned = Arc::new(PlannedRemap::compile(plan));
                        reg.install(Arc::clone(&planned));
                        planned
                    }
                }
            }
            None => {
                if inject_compile_panic {
                    // No registry: contain the injected panic the same
                    // way (a caught unwind, then a clean compile).
                    let attempt = std::panic::catch_unwind(|| {
                        std::panic::panic_any(crate::fault::InjectedPanic)
                    });
                    debug_assert!(attempt.is_err());
                }
                let plan = plan_redistribution(
                    &self.mappings[src as usize],
                    &self.mappings[dst as usize],
                    self.elem_size,
                );
                machine.stats.plans_computed += 1;
                Arc::new(PlannedRemap::compile(plan))
            }
        };
        self.plan_cache.insert((src, dst), Arc::clone(&entry));
        entry
    }

    /// Seed the plan cache with a remapping planned elsewhere —
    /// lowering plans every (reaching source, target) pair at compile
    /// time and the interpreter hands those `Arc`s straight in, so
    /// executing a lowered program computes **zero** plans at run time
    /// (`NetStats::plans_computed` stays 0) and the executed schedule
    /// is *structurally* the one the code generator rendered. An
    /// already-cached pair is kept (same mapping pair ⇒ same plan).
    pub fn seed_plan(&mut self, src: u32, dst: u32, planned: Arc<PlannedRemap>) {
        self.plan_cache.entry((src, dst)).or_insert(planned);
    }

    /// [`ArrayRt::seed_plan`] through the machine's shared registry:
    /// the seeded artifact is published registry-wide (first publisher
    /// wins) and the **canonical** `Arc` is cached locally, so every
    /// session seeding equal pairs converges on one allocation. A pair
    /// already cached locally touches neither registry nor counters —
    /// steady-state re-seeding (each group remap re-seeds its members)
    /// stays lock-free and allocation-free.
    pub fn seed_plan_shared(
        &mut self,
        machine: &mut Machine,
        src: u32,
        dst: u32,
        planned: Arc<PlannedRemap>,
    ) {
        if self.plan_cache.contains_key(&(src, dst)) {
            return;
        }
        let canonical = match machine.registry.clone() {
            Some(reg) => {
                let (canon, out) = reg.adopt(planned);
                if out.hit {
                    machine.stats.registry_hits += 1;
                } else {
                    machine.stats.registry_misses += 1;
                }
                machine.stats.registry_evictions += out.evicted;
                machine.stats.lock_poison_recoveries += out.lock_recoveries;
                canon
            }
            None => planned,
        };
        self.plan_cache.insert((src, dst), canonical);
    }

    /// Ensure version `v` has storage (lazy allocation, with memory
    /// accounting).
    pub fn ensure_allocated(&mut self, machine: &mut Machine, v: u32) {
        if self.copies[v as usize].is_none() {
            let data = VersionData::new(self.mappings[v as usize].clone(), self.elem_size);
            for r in 0..machine.nprocs {
                machine.mem.alloc(r as usize, data.bytes_on(r));
            }
            self.copies[v as usize] = Some(data);
        }
    }

    /// Free version `v`'s storage and clear its live flag.
    pub fn free_copy(&mut self, machine: &mut Machine, v: u32) {
        if let Some(data) = self.copies[v as usize].take() {
            for r in 0..machine.nprocs {
                machine.mem.free(r as usize, data.bytes_on(r));
            }
        }
        self.live[v as usize] = false;
    }

    /// Memory-pressure eviction (Sec. 5.2 end): drop a live, non-current
    /// copy; it will be regenerated with communication if needed later.
    /// Returns whether anything was evicted.
    pub fn evict(&mut self, machine: &mut Machine, v: u32) -> bool {
        if Some(v) == self.status || self.copies[v as usize].is_none() {
            return false;
        }
        self.free_copy(machine, v);
        true
    }

    /// Fig. 20, executed: remap to `target`.
    ///
    /// * `may_live` — the compiler's `M_A(v)`: copies to keep; all other
    ///   copies are cleaned afterwards.
    /// * `values_dead` — the compiler proved the values need not move
    ///   (`U = D` downstream, or a `KILL` upstream).
    pub fn remap(
        &mut self,
        machine: &mut Machine,
        target: u32,
        may_live: &BTreeSet<u32>,
        values_dead: bool,
    ) {
        self.remap_guarded(machine, target, may_live, values_dead, &BTreeSet::new())
    }

    /// [`ArrayRt::remap`] returning a typed error instead of panicking
    /// when the remap cannot complete.
    pub fn try_remap(
        &mut self,
        machine: &mut Machine,
        target: u32,
        may_live: &BTreeSet<u32>,
        values_dead: bool,
    ) -> Result<(), crate::fault::ExecError> {
        self.try_remap_guarded(machine, target, may_live, values_dead, &BTreeSet::new())
    }

    /// [`ArrayRt::remap`] with a partial-impact guard: when the current
    /// status is in `skip_if_current`, this execution is unaffected by
    /// the directive (Fig. 5/6 flow-dependent alignment) — only the
    /// liveness cleaning runs. Panics on an unrecoverable execution
    /// error; [`ArrayRt::try_remap_guarded`] is the typed-error form.
    pub fn remap_guarded(
        &mut self,
        machine: &mut Machine,
        target: u32,
        may_live: &BTreeSet<u32>,
        values_dead: bool,
        skip_if_current: &BTreeSet<u32>,
    ) {
        if let Err(e) =
            self.try_remap_guarded(machine, target, may_live, values_dead, skip_if_current)
        {
            panic!("remap of `{}` to version {target}: {e}", self.name);
        }
    }

    /// The full remap semantics with the recovery ladder and typed
    /// errors. When the machine carries a [`crate::FaultPlan`] or a
    /// validation level, the data movement runs guarded: a poisoned
    /// cached program is detected by its fingerprint and recompiled
    /// from the cached plan (the cache entry is repaired in place),
    /// failed rounds are retried then escalated (recompile → table
    /// engine), and worker panics degrade the round to serial. With
    /// neither configured this is exactly the unguarded
    /// allocation-free path.
    ///
    /// **Transactional** (`HPFC_TXN`, default on): on the guarded path
    /// a rollback record is captured before the replay writes anything,
    /// and any terminal error restores the destination version —
    /// status, live flags, allocation, and bytes — to its exact
    /// pre-remap state (`NetStats::txn_rollbacks`). The unguarded fast
    /// path needs no snapshot: with no faults injected and no
    /// validation demanded, its replay cannot fail after writes begin.
    pub fn try_remap_guarded(
        &mut self,
        machine: &mut Machine,
        target: u32,
        may_live: &BTreeSet<u32>,
        values_dead: bool,
        skip_if_current: &BTreeSet<u32>,
    ) -> Result<(), crate::fault::ExecError> {
        self.try_remap_inner(machine, target, may_live, values_dead, skip_if_current, true, true)
    }

    /// Body of [`ArrayRt::try_remap_guarded`], parameterized for the
    /// group path: `clean` defers the liveness cleaning (a group cleans
    /// only after *every* member committed — cleaning frees copies a
    /// group rollback could not restore), and `txn` arms the solo
    /// rollback (the group captures its own per-member records
    /// instead).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn try_remap_inner(
        &mut self,
        machine: &mut Machine,
        target: u32,
        may_live: &BTreeSet<u32>,
        values_dead: bool,
        skip_if_current: &BTreeSet<u32>,
        clean: bool,
        txn: bool,
    ) -> Result<(), crate::fault::ExecError> {
        if self.status.is_some_and(|c| skip_if_current.contains(&c)) {
            machine.stats.remaps_skipped_noop += 1;
        } else if self.status == Some(target) {
            // "The runtime will notice that the array is already mapped
            // as required just by an inexpensive check of its status."
            machine.stats.remaps_skipped_noop += 1;
        } else {
            let target_preallocated = self.copies[target as usize].is_some();
            self.ensure_allocated(machine, target);
            if self.live[target as usize] {
                // Live-copy reuse: no communication at all (App. D).
                machine.stats.remaps_reused_live += 1;
            } else {
                match (self.status, values_dead) {
                    (Some(src), false) => {
                        // The actual remapping communication: the
                        // cached compiled program drives the copy, its
                        // caterpillar schedule the time accounting.
                        let epoch = machine.next_fault_epoch();
                        if machine.faults.is_some_and(|f| f.poison_fires(epoch)) {
                            // PoisonProgram: corrupt the cached entry's
                            // compiled program before it is served. The
                            // corrupt artifact is installed into the
                            // shared registry too — exactly what a
                            // damaged plan registry would hand out to
                            // every session.
                            if let Some(entry) = self.plan_cache.get_mut(&(src, target)) {
                                let mut bad = PlannedRemap::clone(entry);
                                if let Some(p) = bad.program.as_mut() {
                                    crate::fault::poison_program(p);
                                    machine.stats.faults_injected += 1;
                                    let bad = Arc::new(bad);
                                    if let Some(reg) = &machine.registry {
                                        reg.install(Arc::clone(&bad));
                                    }
                                    *entry = bad;
                                }
                            }
                        }
                        let inject_compile_panic = machine
                            .faults
                            .is_some_and(|f| f.compile_panic_fires(epoch))
                            && !self.plan_cache.contains_key(&(src, target));
                        if inject_compile_panic {
                            machine.stats.faults_injected += 1;
                        }
                        let planned =
                            self.planned_with(machine, src, target, inject_compile_panic);
                        machine.account_schedule(&planned.schedule);
                        machine.stats.remaps_performed += 1;
                        // Take the source copy out instead of cloning
                        // it (src != target here: the status==target
                        // case was handled above), then put it back.
                        let src_data = self.copies[src as usize].take().ok_or_else(|| {
                            crate::fault::ExecError::MissingCopy {
                                array: self.name.clone(),
                                version: src,
                            }
                        })?;
                        // Arm the rollback record only on the guarded
                        // path: the unguarded replay cannot fail after
                        // writes begin, so the default cached bounce
                        // never pays for a snapshot.
                        let armed = txn
                            && machine.txn
                            && (machine.faults.is_some()
                                || machine.validation != crate::ValidationLevel::Off);
                        let mut snap = std::mem::take(&mut machine.txn_scratch);
                        if armed {
                            snap.capture(
                                self.status,
                                &self.live,
                                target_preallocated,
                                Some(&src_data),
                                self.copies[target as usize].as_ref(),
                                planned.program.as_ref(),
                            );
                        }
                        let dst_data = self.copies[target as usize].as_mut().unwrap();
                        // Replay through the recovery ladder (which is
                        // the plain unguarded program replay — or table
                        // fallback — when no faults/validation are
                        // configured). The source copy goes back in
                        // before any error propagates.
                        let replayed = crate::fault::replay_with_recovery(
                            machine, &planned, &src_data, dst_data, epoch,
                        );
                        self.copies[src as usize] = Some(src_data);
                        let outcome = match replayed {
                            Ok(o) => {
                                // Commit: drop the capture, keep the
                                // scratch capacity for the next remap.
                                snap.captured = false;
                                machine.txn_scratch = snap;
                                o
                            }
                            Err(e) => {
                                if armed {
                                    self.rollback_remap(machine, target, &mut snap);
                                    machine.stats.txn_rollbacks += 1;
                                }
                                machine.txn_scratch = snap;
                                return Err(e);
                            }
                        };
                        machine.stats.runs_copied += outcome.runs;
                        machine.stats.bytes_moved += outcome.elements * self.elem_size;
                        drop(planned);
                        if let Some(fresh) = outcome.repaired {
                            // Cache repair, once registry-wide: the
                            // recompiled program replaces the
                            // poisoned/stale one locally *and* in the
                            // shared registry, so the next bounce is
                            // healthy again and no later session is
                            // ever served the corrupt artifact.
                            if let Some(entry) = self.plan_cache.get_mut(&(src, target)) {
                                let mut healthy = PlannedRemap::clone(entry);
                                healthy.program = Some(fresh);
                                let healthy = Arc::new(healthy);
                                if let Some(reg) = &machine.registry {
                                    reg.install(Arc::clone(&healthy));
                                    // Strike one against the pair: a
                                    // pair that keeps needing repair is
                                    // quarantined (served table-only).
                                    if reg.note_repair(&healthy) {
                                        machine.stats.quarantined_pairs += 1;
                                    }
                                }
                                *entry = healthy;
                            }
                        }
                    }
                    (Some(_), true) => {
                        // KILL: copy allocated, values dead — no data.
                        machine.stats.remaps_dead_values += 1;
                    }
                    (None, _) => {
                        // First instantiation: nothing to copy from.
                    }
                }
                self.live[target as usize] = true;
            }
            self.status = Some(target);
        }
        if clean {
            self.clean_copies(machine, target, may_live);
        }
        Ok(())
    }

    /// Cleaning (Fig. 20's tail): free copies that are live but not
    /// worth keeping. The status copy is never cleaned — on
    /// pass-through executions of a partial-impact vertex it differs
    /// from `target` and is still the current data. Group remaps run
    /// this only after the whole group committed: cleaning frees copies
    /// a rollback could not restore.
    pub(crate) fn clean_copies(
        &mut self,
        machine: &mut Machine,
        target: u32,
        may_live: &BTreeSet<u32>,
    ) {
        for v in 0..self.live.len() as u32 {
            if v != target
                && Some(v) != self.status
                && self.live[v as usize]
                && !may_live.contains(&v)
            {
                self.free_copy(machine, v);
            }
        }
    }

    /// The array half of a transactional rollback: paired with the
    /// byte restore in [`crate::store::TxnScratch`], it puts the array
    /// back to the captured pre-remap state — bytes (or the freed
    /// fresh allocation), live flags, and status. Idempotent via the
    /// `captured` flag; a no-op if nothing was captured.
    pub(crate) fn rollback_remap(
        &mut self,
        machine: &mut Machine,
        target: u32,
        snap: &mut crate::store::TxnScratch,
    ) {
        if !snap.captured {
            return;
        }
        if snap.target_preallocated {
            if let Some(dst) = self.copies[target as usize].as_mut() {
                snap.restore_bytes(dst);
            }
        } else {
            // The target copy did not exist before the remap: undo the
            // allocation (and its memory accounting) entirely.
            self.free_copy(machine, target);
        }
        self.live.copy_from_slice(&snap.live);
        self.status = snap.status;
        snap.captured = false;
    }

    /// Fig. 18's restore, executed: remap back to the `saved` status
    /// tag. Semantically a [`ArrayRt::remap_guarded`] whose target is
    /// the run-time tag — with the cache seeded from the statically
    /// compiled restore arms, the replay goes straight through the
    /// compiled-program path (the `(current, saved)` pair is a cache
    /// hit), so a restore plans nothing and allocates nothing in steady
    /// state, exactly like a plain cached remap. Every dispatch is
    /// counted in [`crate::NetStats::restores_replayed`], including
    /// ones the status check then skips.
    pub fn restore(
        &mut self,
        machine: &mut Machine,
        saved: u32,
        may_live: &BTreeSet<u32>,
        values_dead: bool,
    ) {
        if let Err(e) = self.try_restore(machine, saved, may_live, values_dead) {
            panic!("restore of `{}` to version {saved}: {e}", self.name);
        }
    }

    /// [`ArrayRt::restore`] returning a typed error instead of
    /// panicking when the underlying remap cannot complete.
    pub fn try_restore(
        &mut self,
        machine: &mut Machine,
        saved: u32,
        may_live: &BTreeSet<u32>,
        values_dead: bool,
    ) -> Result<(), crate::fault::ExecError> {
        machine.stats.restores_replayed += 1;
        self.try_remap(machine, saved, may_live, values_dead)
    }

    /// Current copy for reading, instantiating version `v_default`
    /// lazily if the array was never touched.
    pub fn current(&mut self, machine: &mut Machine, v_default: u32) -> &mut VersionData {
        let v = match self.status {
            Some(v) => v,
            None => {
                self.ensure_allocated(machine, v_default);
                self.live[v_default as usize] = true;
                self.status = Some(v_default);
                v_default
            }
        };
        self.copies[v as usize].as_mut().expect("status copy allocated")
    }

    /// Read one element through the current copy.
    pub fn get(&self, point: &[u64]) -> f64 {
        let v = self.status.expect("read of an array that was never defined");
        self.copies[v as usize].as_ref().expect("status copy allocated").get(point)
    }

    /// Write one element through the current copy. Any other live copy
    /// becomes stale and is invalidated — the defensive counterpart of
    /// the compiler's liveness reasoning (a correct compilation never
    /// reuses a copy this invalidates).
    pub fn set(&mut self, point: &[u64], value: f64) {
        let v = self.status.expect("write to an array with no current version");
        self.copies[v as usize].as_mut().expect("status copy allocated").set(point, value);
        for w in 0..self.live.len() {
            if w as u32 != v {
                self.live[w] = false;
            }
        }
    }

    /// Invalidate all non-status copies (bulk-write entry point used by
    /// the interpreter for whole-array assignments).
    pub fn invalidate_others(&mut self) {
        if let Some(v) = self.status {
            for w in 0..self.live.len() {
                if w as u32 != v {
                    self.live[w] = false;
                }
            }
        }
    }

    /// Allocated bytes across copies (one processor's view is
    /// `bytes / nprocs` only for perfectly balanced mappings; this is
    /// the global figure).
    pub fn allocated_bytes(&self) -> u64 {
        self.copies.iter().flatten().map(|c| c.total_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpfc_mapping::{
        Alignment, DimFormat, Distribution, Extents, GridId, Mapping, ProcGrid, Template,
        TemplateId,
    };

    fn mk(n: u64, p: u64, fmt: DimFormat) -> NormalizedMapping {
        let t = Template { id: TemplateId(0), name: "T".into(), shape: Extents::new(&[n]) };
        let g = ProcGrid { id: GridId(0), name: "P".into(), shape: Extents::new(&[p]) };
        Mapping {
            align: Alignment::identity(TemplateId(0), 1),
            dist: Distribution::new(GridId(0), vec![fmt]),
        }
        .normalize(&Extents::new(&[n]), &t, &g)
        .unwrap()
    }

    fn rt() -> (Machine, ArrayRt) {
        let m = Machine::new(4);
        let a = ArrayRt::new(
            "a",
            vec![
                mk(16, 4, DimFormat::Block(None)),  // 0
                mk(16, 4, DimFormat::Cyclic(None)), // 1
                mk(16, 4, DimFormat::Cyclic(Some(2))), // 2
            ],
            8,
        );
        (m, a)
    }

    #[test]
    fn lazy_instantiation_and_first_remap_moves_no_data() {
        let (mut m, mut a) = rt();
        // First remapping of a never-touched array: allocation only.
        a.remap(&mut m, 1, &[1u32].into_iter().collect(), false);
        assert_eq!(a.status, Some(1));
        assert_eq!(m.stats.messages, 0);
        assert_eq!(m.stats.remaps_performed, 0);
    }

    #[test]
    fn remap_moves_data_and_preserves_values() {
        let (mut m, mut a) = rt();
        a.current(&mut m, 0).fill(|p| p[0] as f64);
        a.remap(&mut m, 1, &[1u32].into_iter().collect(), false);
        assert_eq!(m.stats.remaps_performed, 1);
        assert!(m.stats.bytes > 0);
        // Values survived the remapping.
        for i in 0..16u64 {
            assert_eq!(a.get(&[i]), i as f64);
        }
    }

    #[test]
    fn status_check_skips_noop_remaps() {
        let (mut m, mut a) = rt();
        a.current(&mut m, 0);
        a.remap(&mut m, 1, &[1u32].into_iter().collect(), false);
        let bytes = m.stats.bytes;
        a.remap(&mut m, 1, &[1u32].into_iter().collect(), false);
        assert_eq!(m.stats.remaps_skipped_noop, 1);
        assert_eq!(m.stats.bytes, bytes, "no extra traffic");
    }

    #[test]
    fn live_copy_reuse_avoids_communication() {
        let (mut m, mut a) = rt();
        a.current(&mut m, 0).fill(|p| p[0] as f64);
        // Keep version 0 alive across the remapping (M = {0, 1}).
        let keep: BTreeSet<u32> = [0u32, 1].into_iter().collect();
        a.remap(&mut m, 1, &keep, false);
        let bytes_after_first = m.stats.bytes;
        assert!(a.live[0], "copy 0 kept live");
        // Remap back: version 0 is still live — zero communication.
        a.remap(&mut m, 0, &keep, false);
        assert_eq!(m.stats.remaps_reused_live, 1);
        assert_eq!(m.stats.bytes, bytes_after_first);
        assert_eq!(a.get(&[5]), 5.0);
    }

    #[test]
    fn write_invalidates_other_copies() {
        let (mut m, mut a) = rt();
        a.current(&mut m, 0).fill(|p| p[0] as f64);
        let keep: BTreeSet<u32> = [0u32, 1].into_iter().collect();
        a.remap(&mut m, 1, &keep, false);
        // Writing through the current (cyclic) copy kills copy 0.
        a.set(&[3], 99.0);
        assert!(!a.live[0]);
        // Remapping back now needs real communication again.
        a.remap(&mut m, 0, &keep, false);
        assert_eq!(m.stats.remaps_performed, 2);
        assert_eq!(a.get(&[3]), 99.0);
    }

    #[test]
    fn cleaning_frees_copies_outside_may_live() {
        let (mut m, mut a) = rt();
        a.current(&mut m, 0);
        // M = {1}: version 0 must be freed by the remapping.
        a.remap(&mut m, 1, &[1u32].into_iter().collect(), false);
        assert!(a.copies[0].is_none());
        assert!(!a.live[0]);
        // Memory accounting went down to one copy.
        let one_copy: u64 = a.allocated_bytes();
        assert_eq!(one_copy, 16 * 8);
    }

    #[test]
    fn eviction_and_regeneration() {
        let (mut m, mut a) = rt();
        a.current(&mut m, 0).fill(|p| 2.0 * p[0] as f64);
        let keep: BTreeSet<u32> = [0u32, 1].into_iter().collect();
        a.remap(&mut m, 1, &keep, false);
        // Pressure: drop the live copy 0.
        assert!(a.evict(&mut m, 0));
        assert!(!a.live[0]);
        // Status copy cannot be evicted.
        assert!(!a.evict(&mut m, 1));
        // Going back to 0 regenerates it with communication.
        let performed = m.stats.remaps_performed;
        a.remap(&mut m, 0, &keep, false);
        assert_eq!(m.stats.remaps_performed, performed + 1);
        assert_eq!(a.get(&[7]), 14.0);
    }

    #[test]
    fn remap_loop_plans_once_per_direction() {
        // An isolated registry: the process-wide one is shared with
        // every other test in this binary, which would make the
        // computed/hit split here nondeterministic.
        let registry = Arc::new(crate::PlanRegistry::new(2, 64));
        let (m, mut a) = rt();
        let mut m = m.with_registry(Arc::clone(&registry));
        a.current(&mut m, 0).fill(|p| p[0] as f64);
        let keep: BTreeSet<u32> = [0u32, 1].into_iter().collect();
        for i in 0..10 {
            a.remap(&mut m, 1, &keep, false);
            a.set(&[0], i as f64); // stale the other copy: every remap moves data
            a.remap(&mut m, 0, &keep, false);
            a.set(&[1], i as f64);
        }
        assert_eq!(m.stats.remaps_performed, 20);
        // The loop planned exactly once per direction; all later
        // remaps reused the cached plan + schedule. The two computes
        // registered registry-wide (misses); the local first-level
        // cache answered everything after, so the registry was never
        // consulted again.
        assert_eq!(m.stats.plans_computed, 2);
        assert_eq!(m.stats.plan_cache_hits, 18);
        assert_eq!(m.stats.registry_misses, 2);
        assert_eq!(m.stats.registry_hits, 0);
        // Same compile-once accounting under both keying schemes; only
        // where the two entries live differs (concrete shards vs the
        // symbolic format-pair table).
        if m.symbolic {
            assert_eq!((registry.len(), registry.sym_len()), (0, 2));
        } else {
            assert_eq!((registry.len(), registry.sym_len()), (2, 0));
        }
    }

    #[test]
    fn remap_accounts_caterpillar_schedule() {
        let (mut m, mut a) = rt();
        a.current(&mut m, 0).fill(|p| p[0] as f64);
        a.remap(&mut m, 1, &[1u32].into_iter().collect(), false);
        // block(4) -> cyclic over 4 procs: all-to-all, 12 messages in 3
        // contention-free rounds; totals match the plan exactly.
        let planned = a.planned(&mut m, 0, 1);
        assert_eq!(m.stats.messages, planned.plan.total_messages());
        assert_eq!(m.stats.bytes, planned.plan.total_bytes());
        assert_eq!(planned.schedule.n_rounds(), 3);
        // Local elements are credited from the schedule.
        assert_eq!(m.stats.local_elements, planned.plan.local_elements);
    }

    #[test]
    fn remap_moves_exactly_the_planned_byte_volume() {
        let (mut m, mut a) = rt();
        a.current(&mut m, 0).fill(|p| p[0] as f64);
        a.remap(&mut m, 1, &[1u32].into_iter().collect(), false);
        let planned = a.planned(&mut m, 0, 1);
        // The engine wrote exactly the plan's deliveries (local +
        // remote), and the compiled program predicted its run count.
        let expected =
            (planned.plan.local_elements + planned.plan.remote_elements()) * a.elem_size;
        assert_eq!(m.stats.bytes_moved, expected);
        let prog = planned.program.as_ref().expect("1-D plan compiles");
        assert_eq!(m.stats.runs_copied, prog.n_runs());
        assert_eq!(prog.n_elements() * a.elem_size, expected);
        // Merging stats folds the movement counters too.
        let mut folded = crate::NetStats::default();
        folded.merge(&m.stats);
        folded.merge(&m.stats);
        assert_eq!(folded.bytes_moved, 2 * expected);
        assert_eq!(folded.runs_copied, 2 * prog.n_runs());
        assert!(m.stats.summary().contains("moved"));
    }

    #[test]
    fn parallel_and_serial_remaps_agree() {
        let run = |mode: crate::ExecMode| {
            let (m, mut a) = rt();
            let mut m = m.with_exec_mode(mode);
            a.current(&mut m, 0).fill(|p| (3 * p[0] + 1) as f64);
            let keep: BTreeSet<u32> = [0u32, 1, 2].into_iter().collect();
            a.remap(&mut m, 1, &keep, false);
            a.set(&[2], 9.0);
            a.remap(&mut m, 2, &keep, false);
            a.set(&[3], 11.0);
            a.remap(&mut m, 0, &keep, false);
            (0..16).map(|i| a.get(&[i])).collect::<Vec<_>>()
        };
        assert_eq!(run(crate::ExecMode::Serial), run(crate::ExecMode::Parallel(4)));
    }

    #[test]
    fn planned_remap_shares_one_mapping_pair_between_plan_and_program() {
        // The (src, dst) mapping pair is stored once per cached
        // `PlannedRemap`: the compiled program's `mappings` is the very
        // Arc the plan carries, not a clone — with restore arms
        // multiplying cached entries, this halves the mapping storage
        // per entry. The mappings are unique to this test: pairs are
        // hash-consed process-wide, so a pair another test also plans
        // over would count that test's holders too.
        let mut m = Machine::new(4);
        let mut a = ArrayRt::new(
            "a",
            vec![mk(257, 4, DimFormat::Block(None)), mk(257, 4, DimFormat::Cyclic(Some(7)))],
            8,
        );
        a.current(&mut m, 0).fill(|p| p[0] as f64);
        a.remap(&mut m, 1, &[1u32].into_iter().collect(), false);
        let planned = a.planned(&mut m, 0, 1);
        let plan_pair = planned.plan.mappings.as_ref().expect("closed-form plan");
        let prog_pair = &planned.program.as_ref().expect("1-D plan compiles").mappings;
        assert!(Arc::ptr_eq(plan_pair, prog_pair), "pair must be shared, not cloned");
        // Exactly the two holders above (plan + program): neither
        // compiling, nor the interner (weak), nor the registry entry
        // (which holds the `PlannedRemap`, not extra pair clones) left
        // more behind.
        assert_eq!(Arc::strong_count(plan_pair), 2);
    }

    #[test]
    fn plans_over_equal_mappings_intern_one_pair() {
        // Hash-consing: two *independently computed* plans over equal
        // mappings carry pointer-identical pairs, and `strong_count`
        // reflects true sharing (2 plans + 2 programs = 4 holders).
        // Unique extents, for the same reason as above.
        let src = mk(263, 4, DimFormat::Block(None));
        let dst = mk(263, 4, DimFormat::Cyclic(Some(5)));
        let p1 = PlannedRemap::compile(plan_redistribution(&src, &dst, 8));
        let p2 = PlannedRemap::compile(plan_redistribution(&src.clone(), &dst.clone(), 8));
        let pair1 = p1.plan.mappings.as_ref().expect("closed-form plan");
        let pair2 = p2.plan.mappings.as_ref().expect("closed-form plan");
        assert!(Arc::ptr_eq(pair1, pair2), "equal pairs must intern to one Arc");
        assert_eq!(Arc::strong_count(pair1), 4);
        // Seeding those plans into arrays adds PlannedRemap holders,
        // never pair holders.
        let mut a = ArrayRt::new("a", vec![src, dst], 8);
        a.seed_plan(0, 1, Arc::new(p1));
        assert_eq!(Arc::strong_count(a.plan_cache[&(0, 1)].plan.mappings.as_ref().unwrap()), 4);
    }

    #[test]
    fn dead_values_move_no_data() {
        let (mut m, mut a) = rt();
        a.current(&mut m, 0).fill(|p| p[0] as f64);
        a.remap(&mut m, 1, &[1u32].into_iter().collect(), true);
        assert_eq!(m.stats.remaps_dead_values, 1);
        assert_eq!(m.stats.bytes, 0);
        assert_eq!(a.status, Some(1));
    }
}
