//! Directive-level remap groups: several arrays remapped by **one**
//! directive, moved over **one** aggregated caterpillar schedule.
//!
//! When a `distribute`/`align` directive hits a template, *every* array
//! aligned to it remaps at the same program vertex (the paper's Fig. 3
//! template-impact situation). Scheduled independently, each array pays
//! the full per-pair round latency on the same processor pairs, N times
//! over. A [`PlannedGroup`] instead merges the member plans' messages:
//! same-pair messages share a caterpillar round and a wire buffer
//! ([`CommSchedule::from_plans`]), so the group's makespan is one round
//! sweep — never more rounds than the members' solo sum, and strictly
//! fewer whenever two members talk over the same pairs.
//!
//! [`remap_group`] is the executable form: it checks, per member, that
//! the exact compile-time-planned copy is the one the runtime would
//! perform (current status is the planned source, target copy not
//! live). Members that would not move data (status noop, live-copy
//! reuse, partial-impact skip, first instantiation) are executed as
//! ordinary [`ArrayRt::remap_guarded`] no-ops and **masked out** of the
//! accounting — the coalesced wire buffers simply shrink — while the
//! remaining movers are costed over the merged rounds
//! ([`CommSchedule::round_triples_masked`]) and replayed round by round
//! from the group's compiled [`GroupCopyProgram`]. The replay is
//! allocation-free in steady state (same contract as a solo cached
//! remap) and safe under [`ExecMode::Parallel`]: within a merged round,
//! every receiving *block* is written by exactly one unit — receivers
//! are distinct per member, and different members write different
//! arrays' storage.

use std::collections::BTreeSet;
use std::sync::Arc;

use crate::exec::{pair_round_units, replay_chunked, replay_unit, CopyProgram, CopyUnit,
                  ExecMode, GroupCopyProgram, PairedUnit, PARALLEL_THRESHOLD};
use crate::machine::Machine;
use crate::redist::RedistPlan;
use crate::schedule::CommSchedule;
use crate::status::{ArrayRt, PlannedRemap};
use crate::store::VersionData;

/// The compile-time artifact of one directive's remap group: the
/// members' solo plans (shared `Arc`s with each member's own
/// [`PlannedRemap`], so nothing is planned twice), their messages
/// merged into one aggregated caterpillar schedule, and the group copy
/// program that replays every member's units round by round.
#[derive(Debug, Clone)]
pub struct PlannedGroup {
    /// The member remaps, in group order (one per array, each with its
    /// own plan + solo schedule + solo program — the fallback path).
    pub members: Vec<Arc<PlannedRemap>>,
    /// The merged schedule: all members' same-pair messages share
    /// rounds and wire buffers.
    pub schedule: CommSchedule,
    /// The group replay program, round-aligned to `schedule`. `None`
    /// when some member cannot drive a compiled program — the group
    /// then always falls back to solo remaps.
    pub program: Option<GroupCopyProgram>,
}

impl PlannedGroup {
    /// Merge the members' plans into the aggregated schedule and
    /// compile the group program. The members' plans are borrowed, not
    /// replanned.
    pub fn compile(members: Vec<Arc<PlannedRemap>>) -> PlannedGroup {
        let plans: Vec<&RedistPlan> = members.iter().map(|m| &m.plan).collect();
        let schedule = CommSchedule::from_plans(&plans);
        let program = GroupCopyProgram::try_compile(&plans, &schedule);
        PlannedGroup { members, schedule, program }
    }

    /// Sum of the members' *solo* round counts — what the same remaps
    /// would cost in rounds if scheduled one array at a time. The
    /// merged schedule has `schedule.n_rounds() <=` this, strictly less
    /// whenever members share processor pairs.
    pub fn solo_rounds(&self) -> usize {
        self.members.iter().map(|m| m.schedule.n_rounds()).sum()
    }
}

/// One member's runtime binding for [`remap_group`]: the array's
/// runtime descriptor plus the compile-time facts of its remap op
/// (single planned source, target, liveness sets — the fields of
/// `hpfc-codegen`'s `RemapOp` the runtime needs).
pub struct GroupMember<'a> {
    /// The array's runtime state.
    pub rt: &'a mut ArrayRt,
    /// The single compile-time-planned source version of this member's
    /// copy.
    pub src: u32,
    /// Target version.
    pub target: u32,
    /// Copies to keep alive past the remap (`M_A(v)`).
    pub may_live: &'a BTreeSet<u32>,
    /// Partial-impact guard: statuses under which this member skips.
    pub skip_if_current: &'a BTreeSet<u32>,
}

impl<'a> GroupMember<'a> {
    /// Would this member, right now, perform exactly its planned copy
    /// (source → target data movement)? Everything else — status noop,
    /// live-copy reuse, partial-impact skip, first instantiation —
    /// moves no data and is handled by the ordinary remap path.
    fn moves_data(&self) -> bool {
        self.rt.status == Some(self.src)
            && !self.rt.live[self.target as usize]
            && !self.skip_if_current.contains(&self.src)
    }
}

/// Execute one directive's remap group.
///
/// Members whose state matches their compile-time-planned copy are
/// moved **coalesced**: one masked accounting sweep over the merged
/// caterpillar rounds (each communicating pair pays one latency per
/// round, not one per array), one round-by-round replay of the group
/// copy program. All other members (and every member, if fewer than two
/// would move data or the group has no compiled program) go through
/// [`ArrayRt::remap_guarded`] — with their solo plan seeded into the
/// array's cache first, so even the fallback never plans at run time.
///
/// `members` must be in group order (matching `planned.members`).
/// Groups larger than 64 members never coalesce (the mover mask is a
/// `u64`); lowering emits groups of at most 64, so lowered programs
/// never hit that fallback. Returns the number of members that moved
/// through the coalesced path (0 when the group fell back entirely).
pub fn remap_group(
    machine: &mut Machine,
    members: &mut [GroupMember<'_>],
    planned: &PlannedGroup,
) -> usize {
    assert_eq!(members.len(), planned.members.len(), "group member mismatch");
    // Seed every member's solo plan (a no-op when already present):
    // whichever path executes below, nothing plans at run time.
    for (i, m) in members.iter_mut().enumerate() {
        m.rt.seed_plan(m.src, m.target, Arc::clone(&planned.members[i]));
    }
    let mut mask = 0u64;
    let mut movers = 0usize;
    if planned.program.is_some() && members.len() <= 64 {
        for (i, m) in members.iter().enumerate() {
            if m.moves_data() {
                mask |= 1 << i;
                movers += 1;
            }
        }
    }
    if movers < 2 {
        // Nothing to coalesce: ordinary guarded remaps (cache hits).
        for m in members.iter_mut() {
            m.rt.remap_guarded(machine, m.target, m.may_live, false, m.skip_if_current);
        }
        return 0;
    }
    // Non-movers first: their remap is a no-op plus cleaning, fully
    // independent of the movers (different arrays).
    for (i, m) in members.iter_mut().enumerate() {
        if mask & (1 << i) == 0 {
            m.rt.remap_guarded(machine, m.target, m.may_live, false, m.skip_if_current);
        }
    }
    // The coalesced movement: allocate targets, cost the merged rounds
    // restricted to the movers, replay the group program.
    for (i, m) in members.iter_mut().enumerate() {
        if mask & (1 << i) != 0 {
            m.rt.ensure_allocated(machine, m.target);
        }
    }
    for r in 0..planned.schedule.rounds.len() {
        machine.account_phase(planned.schedule.round_triples_masked(r, mask));
    }
    let prog = planned.program.as_ref().expect("movers imply a compiled group program");
    let mode = machine.exec_mode;
    match mode {
        ExecMode::Parallel(t) if t > 1 => replay_parallel(members, prog, mask, t),
        _ => replay_serial(members, prog, mask),
    }
    machine.stats.remap_groups_coalesced += 1;
    for (i, m) in members.iter_mut().enumerate() {
        if mask & (1 << i) == 0 {
            continue;
        }
        let mp = &prog.members[i];
        machine.stats.remaps_performed += 1;
        machine.stats.runs_copied += mp.n_runs();
        machine.stats.bytes_moved += mp.n_elements() * m.rt.elem_size;
        machine.stats.local_elements += planned.members[i].plan.local_elements;
        m.rt.live[m.target as usize] = true;
        m.rt.status = Some(m.target);
        // Cleaning, exactly as `remap_guarded`'s tail.
        for v in 0..m.rt.live.len() as u32 {
            if v != m.target && m.rt.live[v as usize] && !m.may_live.contains(&v) {
                m.rt.free_copy(machine, v);
            }
        }
    }
    movers
}

/// The member's (source, destination) version storage, borrowed
/// simultaneously from its copies table (the two versions are distinct
/// by construction — a planned copy never has `src == target`).
fn member_pair<'a>(
    rt: &'a mut ArrayRt,
    src: u32,
    dst: u32,
) -> (&'a VersionData, &'a mut VersionData) {
    let (s, d) = (src as usize, dst as usize);
    debug_assert_ne!(s, d, "planned copies move between distinct versions");
    if s < d {
        let (lo, hi) = rt.copies.split_at_mut(d);
        (
            lo[s].as_ref().expect("source copy is allocated"),
            hi[0].as_mut().expect("target copy is allocated"),
        )
    } else {
        let (lo, hi) = rt.copies.split_at_mut(s);
        (
            hi[0].as_ref().expect("source copy is allocated"),
            lo[d].as_mut().expect("target copy is allocated"),
        )
    }
}

/// A member program's units of one group round (`None` = the local,
/// never-on-the-wire group).
fn units_of(mp: &CopyProgram, round: Option<usize>) -> &[CopyUnit] {
    match round {
        None => &mp.local,
        Some(r) => &mp.rounds[r],
    }
}

/// Serial group replay: walk the merged rounds (local group first) and
/// move every masked-in member's units of that round. Allocation-free —
/// the steady-state coalesced bounce performs zero heap allocations,
/// like a solo cached remap.
fn replay_serial(members: &mut [GroupMember<'_>], prog: &GroupCopyProgram, mask: u64) {
    for round in std::iter::once(None).chain((0..prog.n_rounds).map(Some)) {
        replay_round_inline(members, prog, mask, round);
    }
}

/// One round of serial (or inline-parallel) replay.
fn replay_round_inline(
    members: &mut [GroupMember<'_>],
    prog: &GroupCopyProgram,
    mask: u64,
    round: Option<usize>,
) {
    for (i, m) in members.iter_mut().enumerate() {
        if mask & (1 << i) == 0 {
            continue;
        }
        let mp = &prog.members[i];
        let units = units_of(mp, round);
        if units.is_empty() {
            continue;
        }
        let (src, dst) = member_pair(m.rt, m.src, m.target);
        for unit in units {
            let sb = src.blocks[unit.provider as usize]
                .as_ref()
                .expect("provider holds the data");
            let db = dst.blocks[unit.receiver as usize]
                .as_mut()
                .expect("receiver allocates the data");
            replay_unit(&mp.runs, *unit, sb, db);
        }
    }
}

/// Parallel group replay: per merged round, pair every masked-in
/// member's units with their receiving blocks — distinct per member
/// (schedule contention-freedom) and across members (different arrays'
/// storage) — then split the round into weight-balanced chunks across
/// scoped worker threads. Rounds below [`PARALLEL_THRESHOLD`] elements
/// replay inline, spawning nothing.
fn replay_parallel(
    members: &mut [GroupMember<'_>],
    prog: &GroupCopyProgram,
    mask: u64,
    threads: usize,
) {
    for round in std::iter::once(None).chain((0..prog.n_rounds).map(Some)) {
        let total: u64 = prog
            .members
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, mp)| units_of(mp, round).iter().map(|u| u.elements).sum::<u64>())
            .sum();
        if total == 0 {
            continue;
        }
        if total < PARALLEL_THRESHOLD {
            replay_round_inline(members, prog, mask, round);
            continue;
        }
        // Pool every masked-in member's round units, paired with their
        // receiving blocks (distinct per member by contention-freedom,
        // distinct across members because each member writes its own
        // array's storage), then split across scoped workers.
        let mut paired: Vec<PairedUnit<'_>> = Vec::new();
        for (i, m) in members.iter_mut().enumerate() {
            if mask & (1 << i) == 0 {
                continue;
            }
            let mp = &prog.members[i];
            let units = units_of(mp, round);
            if units.is_empty() {
                continue;
            }
            let (src, dst) = member_pair(m.rt, m.src, m.target);
            pair_round_units(units, &mp.runs, src, dst, &mut paired);
        }
        replay_chunked(paired, total, threads);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::redist::plan_redistribution;
    use hpfc_mapping::{testing::mapping_1d as mk, DimFormat, NormalizedMapping};

    fn planned_pair(
        src: &NormalizedMapping,
        dst: &NormalizedMapping,
    ) -> Arc<PlannedRemap> {
        Arc::new(PlannedRemap::compile(plan_redistribution(src, dst, 8)))
    }

    fn two_array_group(
        n: u64,
        p: u64,
        f0: DimFormat,
        f1: DimFormat,
    ) -> (Machine, ArrayRt, ArrayRt, PlannedGroup, PlannedGroup) {
        let v0 = mk(n, p, f0);
        let v1 = mk(n, p, f1);
        let m = Machine::new(p);
        let mut a = ArrayRt::new("a", vec![v0.clone(), v1.clone()], 8);
        let mut b = ArrayRt::new("b", vec![v0.clone(), v1.clone()], 8);
        let mut machine = m;
        a.current(&mut machine, 0).fill(|pt| pt[0] as f64);
        b.current(&mut machine, 0).fill(|pt| 1000.0 + pt[0] as f64);
        let fwd = PlannedGroup::compile(vec![planned_pair(&v0, &v1), planned_pair(&v0, &v1)]);
        let back = PlannedGroup::compile(vec![planned_pair(&v1, &v0), planned_pair(&v1, &v0)]);
        (machine, a, b, fwd, back)
    }

    #[test]
    fn merged_schedule_has_fewer_rounds_and_same_bytes() {
        let (_, _, _, fwd, _) =
            two_array_group(16, 4, DimFormat::Block(None), DimFormat::Cyclic(None));
        // Two identical block->cyclic all-to-alls: solo 3 rounds each,
        // merged still 3 rounds — strictly fewer than the solo sum of 6.
        assert_eq!(fwd.schedule.n_rounds(), 3);
        assert_eq!(fwd.solo_rounds(), 6);
        // Bytes are the sum of the members'; wire messages coalesce to
        // one per pair per round (12, not 24).
        let solo_bytes: u64 = fwd.members.iter().map(|m| m.plan.total_bytes()).sum();
        assert_eq!(fwd.schedule.total_bytes(), solo_bytes);
        assert_eq!(fwd.schedule.messages.len(), 24);
        assert_eq!(fwd.schedule.n_wire_messages(), 12);
        // The group program delivers every member's (local + remote)
        // elements exactly once.
        let prog = fwd.program.as_ref().expect("1-D members compile");
        let deliveries: u64 = fwd
            .members
            .iter()
            .map(|m| m.plan.local_elements + m.plan.remote_elements())
            .sum();
        assert_eq!(prog.total_elements, deliveries);
    }

    #[test]
    fn coalesced_group_moves_both_arrays_with_one_latency_per_pair_round() {
        let (mut machine, mut a, mut b, fwd, _) =
            two_array_group(16, 4, DimFormat::Block(None), DimFormat::Cyclic(None));
        let keep: BTreeSet<u32> = [0u32, 1].into_iter().collect();
        let skip = BTreeSet::new();
        let moved = {
            let mut members = [
                GroupMember { rt: &mut a, src: 0, target: 1, may_live: &keep, skip_if_current: &skip },
                GroupMember { rt: &mut b, src: 0, target: 1, may_live: &keep, skip_if_current: &skip },
            ];
            remap_group(&mut machine, &mut members, &fwd)
        };
        assert_eq!(moved, 2);
        assert_eq!(machine.stats.remap_groups_coalesced, 1);
        assert_eq!(machine.stats.remaps_performed, 2);
        // 12 coalesced wire messages (not 24), each carrying 2 arrays'
        // elements; bytes are both plans' sums.
        assert_eq!(machine.stats.messages, 12);
        assert_eq!(machine.stats.bytes, 2 * 12 * 8);
        // Values arrived intact for both arrays.
        for i in 0..16u64 {
            assert_eq!(a.get(&[i]), i as f64);
            assert_eq!(b.get(&[i]), 1000.0 + i as f64);
        }
        // Time is 3 merged rounds, one send+recv latency per processor
        // per round, 2 x 16 bytes per direction.
        let cost = machine.cost;
        let per_round = 2.0 * cost.latency_us + 2.0 * 16.0 / cost.bandwidth_bytes_per_us;
        assert!((machine.stats.time_us - 3.0 * per_round).abs() < 1e-9,
            "time {} != 3 x {per_round}", machine.stats.time_us);
        // Nothing planned at run time (solo plans were seeded).
        assert_eq!(machine.stats.plans_computed, 0);
    }

    #[test]
    fn ineligible_member_masks_out_of_the_coalesced_accounting() {
        let (mut machine, mut a, mut b, fwd, back) =
            two_array_group(16, 4, DimFormat::Block(None), DimFormat::Cyclic(None));
        let keep: BTreeSet<u32> = [0u32, 1].into_iter().collect();
        let skip = BTreeSet::new();
        {
            let mut members = [
                GroupMember { rt: &mut a, src: 0, target: 1, may_live: &keep, skip_if_current: &skip },
                GroupMember { rt: &mut b, src: 0, target: 1, may_live: &keep, skip_if_current: &skip },
            ];
            remap_group(&mut machine, &mut members, &fwd);
        }
        // Stale only a's old copy: on the way back, b's version-0 copy
        // is still live — b reuses it and must not be billed.
        a.set(&[0], 99.0);
        let bytes_before = machine.stats.bytes;
        let moved = {
            let mut members = [
                GroupMember { rt: &mut a, src: 1, target: 0, may_live: &keep, skip_if_current: &skip },
                GroupMember { rt: &mut b, src: 1, target: 0, may_live: &keep, skip_if_current: &skip },
            ];
            remap_group(&mut machine, &mut members, &back)
        };
        // Only one mover: the group falls back to solo guarded remaps.
        assert_eq!(moved, 0);
        assert_eq!(machine.stats.remaps_reused_live, 1);
        // a's solo return trip is 12 messages of 8 bytes.
        assert_eq!(machine.stats.bytes, bytes_before + 12 * 8);
        assert_eq!(machine.stats.plans_computed, 0, "fallback was seeded, never plans");
        assert_eq!(a.get(&[0]), 99.0);
        assert_eq!(b.get(&[3]), 1003.0);
    }

    #[test]
    fn serial_and_parallel_group_replay_agree() {
        // Large enough that parallel rounds cross the inline threshold
        // and really spawn scoped workers across both arrays' units.
        let run = |mode: ExecMode| {
            let (machine, mut a, mut b, fwd, back) =
                two_array_group(1 << 18, 4, DimFormat::Block(None), DimFormat::Cyclic(Some(3)));
            let mut machine = machine.with_exec_mode(mode);
            let keep: BTreeSet<u32> = [0u32, 1].into_iter().collect();
            let skip = BTreeSet::new();
            for round in 0..3 {
                {
                    let mut members = [
                        GroupMember { rt: &mut a, src: 0, target: 1, may_live: &keep, skip_if_current: &skip },
                        GroupMember { rt: &mut b, src: 0, target: 1, may_live: &keep, skip_if_current: &skip },
                    ];
                    assert_eq!(remap_group(&mut machine, &mut members, &fwd), 2);
                }
                a.set(&[0], round as f64);
                b.set(&[1], round as f64);
                {
                    let mut members = [
                        GroupMember { rt: &mut a, src: 1, target: 0, may_live: &keep, skip_if_current: &skip },
                        GroupMember { rt: &mut b, src: 1, target: 0, may_live: &keep, skip_if_current: &skip },
                    ];
                    assert_eq!(remap_group(&mut machine, &mut members, &back), 2);
                }
                a.set(&[2], round as f64);
                b.set(&[3], round as f64);
            }
            let av = a.copies[a.status.unwrap() as usize].as_ref().unwrap().to_dense();
            let bv = b.copies[b.status.unwrap() as usize].as_ref().unwrap().to_dense();
            (av, bv, machine.stats.bytes, machine.stats.messages)
        };
        assert_eq!(run(ExecMode::Serial), run(ExecMode::Parallel(4)));
    }
}
