//! Directive-level remap groups: several arrays remapped by **one**
//! directive, moved over **one** aggregated caterpillar schedule.
//!
//! When a `distribute`/`align` directive hits a template, *every* array
//! aligned to it remaps at the same program vertex (the paper's Fig. 3
//! template-impact situation). Scheduled independently, each array pays
//! the full per-pair round latency on the same processor pairs, N times
//! over. A [`PlannedGroup`] instead merges the member plans' messages:
//! same-pair messages share a caterpillar round and a wire buffer
//! ([`CommSchedule::from_plans`]), so the group's makespan is one round
//! sweep — never more rounds than the members' solo sum, and strictly
//! fewer whenever two members talk over the same pairs.
//!
//! [`remap_group`] is the executable form: it checks, per member, that
//! the exact compile-time-planned copy is the one the runtime would
//! perform (current status is the planned source, target copy not
//! live). Members that would not move data (status noop, live-copy
//! reuse, partial-impact skip, first instantiation) are executed as
//! ordinary [`ArrayRt::remap_guarded`] no-ops and **masked out** of the
//! accounting — the coalesced wire buffers simply shrink — while the
//! remaining movers are costed over the merged rounds
//! ([`CommSchedule::round_triples_masked`]) and replayed round by round
//! from the group's compiled [`GroupCopyProgram`]. The replay is
//! allocation-free in steady state (same contract as a solo cached
//! remap) and safe under [`ExecMode::Parallel`]: within a merged round,
//! every receiving *block* is written by exactly one unit — receivers
//! are distinct per member, and different members write different
//! arrays' storage.

use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use crate::exec::{flip_unit_word, pair_round_units, replay_chunked, replay_chunked_guarded,
                  replay_unit, unit_dst_sum, unit_src_sum, CopyProgram, CopyUnit, ExecMode,
                  round_goes_inline, unit_n_runs, GroupCopyProgram, PairedUnit};
use crate::fault::{poison_program, run_round_ladder, ExecError, FaultKind, RoundCtx,
                   RoundFailure, ValidationLevel};
use crate::machine::Machine;
use crate::redist::RedistPlan;
use crate::schedule::CommSchedule;
use crate::status::{ArrayRt, PlannedRemap};
use crate::store::VersionData;

/// The compile-time artifact of one directive's remap group: the
/// members' solo plans (shared `Arc`s with each member's own
/// [`PlannedRemap`], so nothing is planned twice), their messages
/// merged into one aggregated caterpillar schedule, and the group copy
/// program that replays every member's units round by round.
#[derive(Debug, Clone)]
pub struct PlannedGroup {
    /// The member remaps, in group order (one per array, each with its
    /// own plan + solo schedule + solo program — the fallback path).
    pub members: Vec<Arc<PlannedRemap>>,
    /// The merged schedule: all members' same-pair messages share
    /// rounds and wire buffers.
    pub schedule: CommSchedule,
    /// The group replay program, round-aligned to `schedule`. `None`
    /// when some member cannot drive a compiled program — the group
    /// then always falls back to solo remaps.
    pub program: Option<GroupCopyProgram>,
}

impl PlannedGroup {
    /// Merge the members' plans into the aggregated schedule and
    /// compile the group program. The members' plans are borrowed, not
    /// replanned.
    pub fn compile(members: Vec<Arc<PlannedRemap>>) -> PlannedGroup {
        let plans: Vec<&RedistPlan> = members.iter().map(|m| &m.plan).collect();
        let schedule = CommSchedule::from_plans(&plans);
        let program = GroupCopyProgram::try_compile(&plans, &schedule);
        PlannedGroup { members, schedule, program }
    }

    /// Sum of the members' *solo* round counts — what the same remaps
    /// would cost in rounds if scheduled one array at a time. The
    /// merged schedule has `schedule.n_rounds() <=` this, strictly less
    /// whenever members share processor pairs.
    pub fn solo_rounds(&self) -> usize {
        self.members.iter().map(|m| m.schedule.n_rounds()).sum()
    }
}

/// One member's runtime binding for [`remap_group`]: the array's
/// runtime descriptor plus the compile-time facts of its remap op
/// (single planned source, target, liveness sets — the fields of
/// `hpfc-codegen`'s `RemapOp` the runtime needs).
pub struct GroupMember<'a> {
    /// The array's runtime state.
    pub rt: &'a mut ArrayRt,
    /// The single compile-time-planned source version of this member's
    /// copy.
    pub src: u32,
    /// Target version.
    pub target: u32,
    /// Copies to keep alive past the remap (`M_A(v)`).
    pub may_live: &'a BTreeSet<u32>,
    /// Partial-impact guard: statuses under which this member skips.
    pub skip_if_current: &'a BTreeSet<u32>,
}

impl<'a> GroupMember<'a> {
    /// Would this member, right now, perform exactly its planned copy
    /// (source → target data movement)? Everything else — status noop,
    /// live-copy reuse, partial-impact skip, first instantiation —
    /// moves no data and is handled by the ordinary remap path.
    fn moves_data(&self) -> bool {
        self.rt.status == Some(self.src)
            && !self.rt.live[self.target as usize]
            && !self.skip_if_current.contains(&self.src)
    }
}

/// Execute one directive's remap group.
///
/// Members whose state matches their compile-time-planned copy are
/// moved **coalesced**: one masked accounting sweep over the merged
/// caterpillar rounds (each communicating pair pays one latency per
/// round, not one per array), one round-by-round replay of the group
/// copy program. All other members (and every member, if fewer than two
/// would move data or the group has no compiled program) go through
/// [`ArrayRt::remap_guarded`] — with their solo plan seeded into the
/// array's cache first, so even the fallback never plans at run time.
///
/// `members` must be in group order (matching `planned.members`).
/// Groups larger than 64 members never coalesce (the mover mask is a
/// `u64`); lowering emits groups of at most 64, so lowered programs
/// never hit that fallback. Returns the number of members that moved
/// through the coalesced path (0 when the group fell back entirely).
pub fn remap_group(
    machine: &mut Machine,
    members: &mut [GroupMember<'_>],
    planned: &PlannedGroup,
) -> usize {
    match try_remap_group(machine, members, planned) {
        Ok(n) => n,
        Err(e) => panic!("remap group: {e}"),
    }
}

/// [`remap_group`] returning a typed [`ExecError`] instead of
/// panicking: a member-count mismatch with the planned group and any
/// unrecoverable member remap surface as errors. With faults or
/// validation configured on the machine, the coalesced replay runs
/// through the same recovery ladder as a solo remap (retry failed
/// rounds → recompile the group program → per-member table-engine
/// fallback), with worker panics degrading the round to serial.
///
/// **Atomic** (`HPFC_TXN`, default on): the group commits all members
/// or none. On the guarded path a rollback record is captured per
/// member before anything executes, liveness cleaning is deferred until
/// every member committed (cleaning frees copies a rollback could not
/// restore), and any member's terminal error rolls *every* member —
/// already-replayed siblings included — back to its byte-identical
/// pre-group state before the error surfaces
/// (`NetStats::group_rollbacks`).
pub fn try_remap_group(
    machine: &mut Machine,
    members: &mut [GroupMember<'_>],
    planned: &PlannedGroup,
) -> Result<usize, ExecError> {
    if members.len() != planned.members.len() {
        return Err(ExecError::GroupMismatch {
            planned: planned.members.len(),
            got: members.len(),
        });
    }
    // Seed every member's solo plan (a no-op when already present),
    // publishing through the machine's shared registry so sessions
    // executing the same group converge on one artifact per member:
    // whichever path executes below, nothing plans at run time.
    for (i, m) in members.iter_mut().enumerate() {
        m.rt.seed_plan_shared(machine, m.src, m.target, Arc::clone(&planned.members[i]));
    }
    let mut mask = 0u64;
    let mut movers = 0usize;
    if planned.program.is_some() && members.len() <= 64 {
        for (i, m) in members.iter().enumerate() {
            if m.moves_data() {
                mask |= 1 << i;
                movers += 1;
            }
        }
    }
    if movers < 2 {
        // The members fall back to solo remaps, whose write sets the
        // group program does not describe: capture full blocks instead.
        mask = 0;
    }
    let guarded = machine.faults.is_some() || machine.validation != ValidationLevel::Off;
    let armed = machine.txn && guarded;
    // Phase 1 (guarded path only): capture every member's rollback
    // record before anything executes. Movers are bounded by their
    // member program's destination runs; everyone else saves full
    // destination blocks (their remaps are no-ops or solo fallbacks).
    let mut snaps = std::mem::take(&mut machine.group_txn_scratch);
    if armed {
        if snaps.len() < members.len() {
            snaps.resize_with(members.len(), Default::default);
        }
        for (i, m) in members.iter().enumerate() {
            let program = if mask & (1 << i) != 0 {
                planned.program.as_ref().map(|g| &g.members[i])
            } else {
                None
            };
            snaps[i].capture(
                m.rt.status,
                &m.rt.live,
                m.rt.copies[m.target as usize].is_some(),
                m.rt.copies[m.src as usize].as_ref(),
                m.rt.copies[m.target as usize].as_ref(),
                program,
            );
        }
    }
    // Phase 2: execute with cleaning deferred, then commit or roll
    // back the whole group.
    match remap_group_body(machine, members, planned, mask, movers) {
        Ok(n) => {
            for s in snaps.iter_mut() {
                s.captured = false;
            }
            machine.group_txn_scratch = snaps;
            // Every member committed: now (and only now) clean — a
            // freed copy cannot be restored by any rollback.
            for m in members.iter_mut() {
                m.rt.clean_copies(machine, m.target, m.may_live);
            }
            Ok(n)
        }
        Err(e) => {
            if armed {
                machine.stats.group_rollbacks += 1;
                for (i, m) in members.iter_mut().enumerate().rev() {
                    m.rt.rollback_remap(machine, m.target, &mut snaps[i]);
                }
            }
            machine.group_txn_scratch = snaps;
            Err(e)
        }
    }
}

/// The execution half of [`try_remap_group`], with liveness cleaning
/// deferred to the caller's commit: solo fallbacks and non-movers run
/// [`ArrayRt::try_remap_inner`] un-cleaned and un-armed (the group's
/// per-member records already cover them), movers replay coalesced.
fn remap_group_body(
    machine: &mut Machine,
    members: &mut [GroupMember<'_>],
    planned: &PlannedGroup,
    mask: u64,
    movers: usize,
) -> Result<usize, ExecError> {
    if movers < 2 {
        // Nothing to coalesce: ordinary guarded remaps (cache hits).
        for m in members.iter_mut() {
            m.rt.try_remap_inner(
                machine,
                m.target,
                m.may_live,
                false,
                m.skip_if_current,
                false,
                false,
            )?;
        }
        return Ok(0);
    }
    // Non-movers first: their remap is a no-op plus cleaning, fully
    // independent of the movers (different arrays).
    for (i, m) in members.iter_mut().enumerate() {
        if mask & (1 << i) == 0 {
            m.rt.try_remap_inner(
                machine,
                m.target,
                m.may_live,
                false,
                m.skip_if_current,
                false,
                false,
            )?;
        }
    }
    // The coalesced movement: allocate targets, cost the merged rounds
    // restricted to the movers, replay the group program.
    for (i, m) in members.iter_mut().enumerate() {
        if mask & (1 << i) != 0 {
            m.rt.ensure_allocated(machine, m.target);
        }
    }
    for r in 0..planned.schedule.rounds.len() {
        machine.account_phase(planned.schedule.round_triples_masked(r, mask));
    }
    let epoch = machine.next_fault_epoch();
    // `None`: the fast path ran — bill the compiled program's planned
    // per-member figures. `Some`: the guarded ladder ran and reports
    // what the authoritative replay actually delivered per member.
    let per_member = replay_group_with_recovery(machine, members, planned, mask, epoch)?;
    machine.stats.remap_groups_coalesced += 1;
    for (i, m) in members.iter_mut().enumerate() {
        if mask & (1 << i) == 0 {
            continue;
        }
        let (runs, elements) = match &per_member {
            Some(v) => v[i],
            None => {
                let mp = &planned.program.as_ref().expect("movers imply a program").members[i];
                (mp.n_runs(), mp.n_elements())
            }
        };
        machine.stats.remaps_performed += 1;
        machine.stats.runs_copied += runs;
        machine.stats.bytes_moved += elements * m.rt.elem_size;
        machine.stats.local_elements += planned.members[i].plan.local_elements;
        m.rt.live[m.target as usize] = true;
        m.rt.status = Some(m.target);
        // Cleaning deferred to the caller's group commit.
    }
    Ok(movers)
}

/// The member's (source, destination) version storage, borrowed
/// simultaneously from its copies table (the two versions are distinct
/// by construction — a planned copy never has `src == target`).
fn member_pair(rt: &mut ArrayRt, src: u32, dst: u32) -> (&VersionData, &mut VersionData) {
    let (s, d) = (src as usize, dst as usize);
    debug_assert_ne!(s, d, "planned copies move between distinct versions");
    if s < d {
        let (lo, hi) = rt.copies.split_at_mut(d);
        (
            lo[s].as_ref().expect("source copy is allocated"),
            hi[0].as_mut().expect("target copy is allocated"),
        )
    } else {
        let (lo, hi) = rt.copies.split_at_mut(s);
        (
            hi[0].as_ref().expect("source copy is allocated"),
            lo[d].as_mut().expect("target copy is allocated"),
        )
    }
}

/// A member program's units of one group round (`None` = the local,
/// never-on-the-wire group).
fn units_of(mp: &CopyProgram, round: Option<usize>) -> &[CopyUnit] {
    match round {
        None => &mp.local,
        Some(r) => &mp.rounds[r],
    }
}

/// Serial group replay: walk the merged rounds (local group first) and
/// move every masked-in member's units of that round. Allocation-free —
/// the steady-state coalesced bounce performs zero heap allocations,
/// like a solo cached remap.
fn replay_serial(members: &mut [GroupMember<'_>], prog: &GroupCopyProgram, mask: u64) {
    for round in std::iter::once(None).chain((0..prog.n_rounds).map(Some)) {
        replay_round_inline(members, prog, mask, round);
    }
}

/// One round of serial (or inline-parallel) replay.
fn replay_round_inline(
    members: &mut [GroupMember<'_>],
    prog: &GroupCopyProgram,
    mask: u64,
    round: Option<usize>,
) {
    for (i, m) in members.iter_mut().enumerate() {
        if mask & (1 << i) == 0 {
            continue;
        }
        let mp = &prog.members[i];
        let units = units_of(mp, round);
        if units.is_empty() {
            continue;
        }
        let (src, dst) = member_pair(m.rt, m.src, m.target);
        for unit in units {
            let sb = src.blocks[unit.provider as usize]
                .as_ref()
                .expect("provider holds the data");
            let db = dst.blocks[unit.receiver as usize]
                .as_mut()
                .expect("receiver allocates the data");
            replay_unit(&mp.fams, &mp.runs, *unit, sb, db);
        }
    }
}

/// Parallel group replay: per merged round, pair every masked-in
/// member's units with their receiving blocks — distinct per member
/// (schedule contention-freedom) and across members (different arrays'
/// storage) — then split the round into weight-balanced chunks across
/// scoped worker threads. Rounds below the shared inline threshold
/// ([`round_goes_inline`]) replay inline, spawning nothing.
fn replay_parallel(
    members: &mut [GroupMember<'_>],
    prog: &GroupCopyProgram,
    mask: u64,
    threads: usize,
) {
    for round in std::iter::once(None).chain((0..prog.n_rounds).map(Some)) {
        let total: u64 = prog
            .members
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, mp)| units_of(mp, round).iter().map(|u| u.elements).sum::<u64>())
            .sum();
        if total == 0 {
            continue;
        }
        if round_goes_inline(total) {
            replay_round_inline(members, prog, mask, round);
            continue;
        }
        // Pool every masked-in member's round units, paired with their
        // receiving blocks (distinct per member by contention-freedom,
        // distinct across members because each member writes its own
        // array's storage), then split across scoped workers.
        let mut paired: Vec<PairedUnit<'_>> = Vec::new();
        for (i, m) in members.iter_mut().enumerate() {
            if mask & (1 << i) == 0 {
                continue;
            }
            let mp = &prog.members[i];
            let units = units_of(mp, round);
            if units.is_empty() {
                continue;
            }
            let (src, dst) = member_pair(m.rt, m.src, m.target);
            pair_round_units(units, &mp.fams, &mp.runs, src, dst, &mut paired);
        }
        replay_chunked(paired, total, threads);
    }
}

/// Replay the coalesced movement, guarded when the machine carries
/// faults or a validation level (otherwise the pre-existing
/// allocation-free fast path, returning `Ok(None)`). Guarded:
/// integrity-check the group program (a poisoned program is recompiled
/// from the cached member plans), run every merged round through the
/// shared retry ladder, and escalate a stuck round to a one-shot group
/// recompile and finally to per-member table-engine copies — unless an
/// injected [`FaultKind::Exhaust`] blocks the table rung too, which
/// surfaces the terminal error [`try_remap_group`]'s rollback exists
/// for. Returns the per-member `(runs, elements)` the authoritative
/// replay delivered.
fn replay_group_with_recovery(
    machine: &mut Machine,
    members: &mut [GroupMember<'_>],
    planned: &PlannedGroup,
    mask: u64,
    epoch: u64,
) -> Result<Option<Vec<(u64, u64)>>, ExecError> {
    let base = planned.program.as_ref().expect("movers imply a compiled group program");
    let guarded = machine.faults.is_some() || machine.validation != ValidationLevel::Off;
    if !guarded {
        match machine.exec_mode {
            ExecMode::Parallel(t) if t > 1 => replay_parallel(members, base, mask, t),
            _ => replay_serial(members, base, mask),
        }
        return Ok(None);
    }
    let exhaust = machine.faults.as_ref().is_some_and(|f| f.exhaust_fires(epoch));
    if exhaust {
        machine.stats.faults_injected += 1;
    }
    let blocked_tables = |machine: &mut Machine,
                          members: &mut [GroupMember<'_>]|
     -> Result<Option<Vec<(u64, u64)>>, ExecError> {
        if exhaust {
            return Err(ExecError::Unrecovered {
                context: format!("group remap epoch {epoch}: injected ladder exhaustion"),
            });
        }
        Ok(Some(group_tables_fallback(machine, members, planned, mask)))
    };
    // PoisonProgram: replay a corrupted clone of the group program —
    // what a damaged shared plan registry would serve. (The planned
    // group itself is borrowed, so unlike the solo cache the poison
    // cannot persist past this call.)
    let mut poisoned: Option<GroupCopyProgram> = None;
    if machine.faults.is_some_and(|f| f.poison_fires(epoch)) {
        let mut bad = base.clone();
        for mp in &mut bad.members {
            poison_program(mp);
        }
        machine.stats.faults_injected += 1;
        poisoned = Some(bad);
    }
    let mut active: &GroupCopyProgram = poisoned.as_ref().unwrap_or(base);
    let recompiled: Option<GroupCopyProgram>;
    if !active.integrity_ok() {
        machine.stats.programs_recompiled += 1;
        let plans: Vec<&RedistPlan> = planned.members.iter().map(|m| &m.plan).collect();
        recompiled = GroupCopyProgram::try_compile(&plans, &planned.schedule);
        match &recompiled {
            Some(fresh) => active = fresh,
            None => return blocked_tables(machine, members),
        }
    } else {
        recompiled = None;
    }
    if let Ok(v) = replay_group_rounds_guarded(machine, members, active, mask, epoch, 0) {
        return Ok(Some(v));
    }
    if recompiled.is_none() {
        // Rung 2: recompile the whole group once and re-replay
        // (idempotent: every destination position is rewritten).
        machine.stats.programs_recompiled += 1;
        let plans: Vec<&RedistPlan> = planned.members.iter().map(|m| &m.plan).collect();
        if let Some(fresh) = GroupCopyProgram::try_compile(&plans, &planned.schedule) {
            if let Ok(v) = replay_group_rounds_guarded(machine, members, &fresh, mask, epoch, 1) {
                return Ok(Some(v));
            }
        }
    }
    blocked_tables(machine, members)
}

/// The group's last rung: an independent full table-engine copy per
/// masked member (re-derives every position from the plan descriptors,
/// shares nothing with the compiled programs, never fault-injected).
fn group_tables_fallback(
    machine: &mut Machine,
    members: &mut [GroupMember<'_>],
    planned: &PlannedGroup,
    mask: u64,
) -> Vec<(u64, u64)> {
    let mut out = vec![(0u64, 0u64); members.len()];
    for (i, m) in members.iter_mut().enumerate() {
        if mask & (1 << i) == 0 {
            continue;
        }
        machine.stats.fallbacks_to_tables += 1;
        let (src, dst) = member_pair(m.rt, m.src, m.target);
        out[i] = dst.copy_values_from_plan(src, &planned.members[i].plan);
    }
    out
}

/// All merged rounds of the group under the guarded regime, each
/// through the shared retry ladder. Per-member `(runs, elements)`
/// totals count only the authoritative (final successful) attempt of
/// every round.
fn replay_group_rounds_guarded(
    machine: &mut Machine,
    members: &mut [GroupMember<'_>],
    prog: &GroupCopyProgram,
    mask: u64,
    epoch: u64,
    stream: u32,
) -> Result<Vec<(u64, u64)>, ()> {
    let mut per_member = vec![(0u64, 0u64); members.len()];
    let mut scratch = vec![(0u64, 0u64); members.len()];
    for (ri, round) in std::iter::once(None).chain((0..prog.n_rounds).map(Some)).enumerate() {
        let mut expected = 0u64;
        let mut n_units = 0usize;
        for (i, mp) in prog.members.iter().enumerate() {
            if mask & (1 << i) == 0 {
                continue;
            }
            let us = units_of(mp, round);
            n_units += us.len();
            expected += us.iter().map(|u| u.elements).sum::<u64>();
        }
        if n_units == 0 {
            continue;
        }
        let ctx = RoundCtx { expected, units: n_units, round_no: ri as u32 };
        run_round_ladder(machine, &ctx, epoch, stream, |mode, checksums, fault| {
            scratch.iter_mut().for_each(|s| *s = (0, 0));
            replay_group_round_guarded(
                members, prog, mask, round, mode, checksums, fault, &mut scratch,
            )
        })?;
        for (acc, s) in per_member.iter_mut().zip(scratch.iter()) {
            acc.0 += s.0;
            acc.1 += s.1;
        }
    }
    Ok(per_member)
}

/// One merged round under the guarded regime. Wire-loss faults apply
/// to the round's **concatenated** unit list (members in group order,
/// units in program order): truncation replays the first half of that
/// list, corruption picks its victim by global index — so a fault can
/// land on any member, exactly like a fault on the shared wire buffer.
/// Writes each member's delivered `(runs, elements)` into `per_member`.
#[allow(clippy::too_many_arguments)]
fn replay_group_round_guarded(
    members: &mut [GroupMember<'_>],
    prog: &GroupCopyProgram,
    mask: u64,
    round: Option<usize>,
    mode: ExecMode,
    checksums: bool,
    fault: Option<(FaultKind, u64)>,
    per_member: &mut [(u64, u64)],
) -> Result<(u64, u64), RoundFailure> {
    let masked = |i: usize| mask & (1 << i) != 0;
    let total_units: usize = prog
        .members
        .iter()
        .enumerate()
        .filter(|(i, _)| masked(*i))
        .map(|(_, mp)| units_of(mp, round).len())
        .sum();
    let cut = match fault {
        Some((FaultKind::DropRound, _)) => 0,
        Some((FaultKind::TruncateRound, _)) => total_units / 2,
        _ => total_units,
    };
    // taken[i]: member i's prefix of units under the concatenated cut.
    let mut taken = vec![0usize; members.len()];
    let mut idx = 0usize;
    for (i, mp) in prog.members.iter().enumerate() {
        let n = if masked(i) { units_of(mp, round).len() } else { 0 };
        taken[i] = n.min(cut.saturating_sub(idx));
        idx += n;
    }
    let weight: u64 = prog
        .members
        .iter()
        .enumerate()
        .map(|(i, mp)| units_of(mp, round)[..taken[i]].iter().map(|u| u.elements).sum::<u64>())
        .sum();
    let copied = catch_unwind(AssertUnwindSafe(|| {
        if mode.threads() > 1 && !round_goes_inline(weight) {
            let mut paired: Vec<PairedUnit<'_>> = Vec::new();
            for (i, m) in members.iter_mut().enumerate() {
                if taken[i] == 0 {
                    continue;
                }
                let mp = &prog.members[i];
                let units = &units_of(mp, round)[..taken[i]];
                let (src, dst) = member_pair(m.rt, m.src, m.target);
                pair_round_units(units, &mp.fams, &mp.runs, src, dst, &mut paired);
            }
            let boom = matches!(fault, Some((FaultKind::WorkerPanic, _))).then_some(0);
            replay_chunked_guarded(paired, weight, mode.threads(), boom);
        } else {
            for (i, m) in members.iter_mut().enumerate() {
                if taken[i] == 0 {
                    continue;
                }
                let mp = &prog.members[i];
                let units = &units_of(mp, round)[..taken[i]];
                let (src, dst) = member_pair(m.rt, m.src, m.target);
                for unit in units {
                    let sb = src.blocks[unit.provider as usize]
                        .as_ref()
                        .expect("provider holds the data");
                    let db = dst.blocks[unit.receiver as usize]
                        .as_mut()
                        .expect("receiver allocates the data");
                    replay_unit(&mp.fams, &mp.runs, *unit, sb, db);
                }
            }
        }
    }));
    if copied.is_err() {
        return Err(RoundFailure::Panicked);
    }
    if let Some((FaultKind::CorruptRound, salt)) = fault {
        if total_units > 0 {
            let mut v = (salt % total_units as u64) as usize;
            for (i, m) in members.iter_mut().enumerate() {
                if !masked(i) {
                    continue;
                }
                let units = units_of(&prog.members[i], round);
                if v < units.len() {
                    let victim = units[v];
                    let (_, dst) = member_pair(m.rt, m.src, m.target);
                    let db = dst.blocks[victim.receiver as usize]
                        .as_mut()
                        .expect("receiver allocates the data");
                    let mp = &prog.members[i];
                    flip_unit_word(&mp.fams, &mp.runs, victim, db);
                    break;
                }
                v -= units.len();
            }
        }
    }
    let mut read = 0u64;
    let mut written = 0u64;
    let mut runs_total = 0u64;
    let mut elems_total = 0u64;
    for (i, m) in members.iter_mut().enumerate() {
        if taken[i] == 0 {
            continue;
        }
        let mp = &prog.members[i];
        let units = &units_of(mp, round)[..taken[i]];
        let (src, dst) = member_pair(m.rt, m.src, m.target);
        let mut mruns = 0u64;
        let mut melems = 0u64;
        for unit in units {
            mruns += unit_n_runs(&mp.fams, *unit);
            melems += unit.elements;
            if checksums {
                let sb = src.blocks[unit.provider as usize]
                    .as_ref()
                    .expect("provider holds the data");
                let db = dst.blocks[unit.receiver as usize]
                    .as_ref()
                    .expect("receiver allocates the data");
                read = read.wrapping_add(unit_src_sum(&mp.fams, &mp.runs, *unit, sb));
                written = written.wrapping_add(unit_dst_sum(&mp.fams, &mp.runs, *unit, db));
            }
        }
        per_member[i].0 += mruns;
        per_member[i].1 += melems;
        runs_total += mruns;
        elems_total += melems;
    }
    if checksums && read != written {
        return Err(RoundFailure::Mismatch);
    }
    Ok((runs_total, elems_total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::redist::plan_redistribution;
    use hpfc_mapping::{testing::mapping_1d as mk, DimFormat, NormalizedMapping};

    fn planned_pair(
        src: &NormalizedMapping,
        dst: &NormalizedMapping,
    ) -> Arc<PlannedRemap> {
        Arc::new(PlannedRemap::compile(plan_redistribution(src, dst, 8)))
    }

    fn two_array_group(
        n: u64,
        p: u64,
        f0: DimFormat,
        f1: DimFormat,
    ) -> (Machine, ArrayRt, ArrayRt, PlannedGroup, PlannedGroup) {
        let v0 = mk(n, p, f0);
        let v1 = mk(n, p, f1);
        let m = Machine::new(p);
        let mut a = ArrayRt::new("a", vec![v0.clone(), v1.clone()], 8);
        let mut b = ArrayRt::new("b", vec![v0.clone(), v1.clone()], 8);
        let mut machine = m;
        a.current(&mut machine, 0).fill(|pt| pt[0] as f64);
        b.current(&mut machine, 0).fill(|pt| 1000.0 + pt[0] as f64);
        let fwd = PlannedGroup::compile(vec![planned_pair(&v0, &v1), planned_pair(&v0, &v1)]);
        let back = PlannedGroup::compile(vec![planned_pair(&v1, &v0), planned_pair(&v1, &v0)]);
        (machine, a, b, fwd, back)
    }

    #[test]
    fn merged_schedule_has_fewer_rounds_and_same_bytes() {
        let (_, _, _, fwd, _) =
            two_array_group(16, 4, DimFormat::Block(None), DimFormat::Cyclic(None));
        // Two identical block->cyclic all-to-alls: solo 3 rounds each,
        // merged still 3 rounds — strictly fewer than the solo sum of 6.
        assert_eq!(fwd.schedule.n_rounds(), 3);
        assert_eq!(fwd.solo_rounds(), 6);
        // Bytes are the sum of the members'; wire messages coalesce to
        // one per pair per round (12, not 24).
        let solo_bytes: u64 = fwd.members.iter().map(|m| m.plan.total_bytes()).sum();
        assert_eq!(fwd.schedule.total_bytes(), solo_bytes);
        assert_eq!(fwd.schedule.messages.len(), 24);
        assert_eq!(fwd.schedule.n_wire_messages(), 12);
        // The group program delivers every member's (local + remote)
        // elements exactly once.
        let prog = fwd.program.as_ref().expect("1-D members compile");
        let deliveries: u64 = fwd
            .members
            .iter()
            .map(|m| m.plan.local_elements + m.plan.remote_elements())
            .sum();
        assert_eq!(prog.total_elements, deliveries);
    }

    #[test]
    fn coalesced_group_moves_both_arrays_with_one_latency_per_pair_round() {
        let (mut machine, mut a, mut b, fwd, _) =
            two_array_group(16, 4, DimFormat::Block(None), DimFormat::Cyclic(None));
        let keep: BTreeSet<u32> = [0u32, 1].into_iter().collect();
        let skip = BTreeSet::new();
        let moved = {
            let mut members = [
                GroupMember { rt: &mut a, src: 0, target: 1, may_live: &keep, skip_if_current: &skip },
                GroupMember { rt: &mut b, src: 0, target: 1, may_live: &keep, skip_if_current: &skip },
            ];
            remap_group(&mut machine, &mut members, &fwd)
        };
        assert_eq!(moved, 2);
        assert_eq!(machine.stats.remap_groups_coalesced, 1);
        assert_eq!(machine.stats.remaps_performed, 2);
        // 12 coalesced wire messages (not 24), each carrying 2 arrays'
        // elements; bytes are both plans' sums.
        assert_eq!(machine.stats.messages, 12);
        assert_eq!(machine.stats.bytes, 2 * 12 * 8);
        // Values arrived intact for both arrays.
        for i in 0..16u64 {
            assert_eq!(a.get(&[i]), i as f64);
            assert_eq!(b.get(&[i]), 1000.0 + i as f64);
        }
        // Time is 3 merged rounds, one send+recv latency per processor
        // per round, 2 x 16 bytes per direction.
        let cost = machine.cost;
        let per_round = 2.0 * cost.latency_us + 2.0 * 16.0 / cost.bandwidth_bytes_per_us;
        assert!((machine.stats.time_us - 3.0 * per_round).abs() < 1e-9,
            "time {} != 3 x {per_round}", machine.stats.time_us);
        // Nothing planned at run time (solo plans were seeded).
        assert_eq!(machine.stats.plans_computed, 0);
    }

    #[test]
    fn ineligible_member_masks_out_of_the_coalesced_accounting() {
        let (mut machine, mut a, mut b, fwd, back) =
            two_array_group(16, 4, DimFormat::Block(None), DimFormat::Cyclic(None));
        let keep: BTreeSet<u32> = [0u32, 1].into_iter().collect();
        let skip = BTreeSet::new();
        {
            let mut members = [
                GroupMember { rt: &mut a, src: 0, target: 1, may_live: &keep, skip_if_current: &skip },
                GroupMember { rt: &mut b, src: 0, target: 1, may_live: &keep, skip_if_current: &skip },
            ];
            remap_group(&mut machine, &mut members, &fwd);
        }
        // Stale only a's old copy: on the way back, b's version-0 copy
        // is still live — b reuses it and must not be billed.
        a.set(&[0], 99.0);
        let bytes_before = machine.stats.bytes;
        let moved = {
            let mut members = [
                GroupMember { rt: &mut a, src: 1, target: 0, may_live: &keep, skip_if_current: &skip },
                GroupMember { rt: &mut b, src: 1, target: 0, may_live: &keep, skip_if_current: &skip },
            ];
            remap_group(&mut machine, &mut members, &back)
        };
        // Only one mover: the group falls back to solo guarded remaps.
        assert_eq!(moved, 0);
        assert_eq!(machine.stats.remaps_reused_live, 1);
        // a's solo return trip is 12 messages of 8 bytes.
        assert_eq!(machine.stats.bytes, bytes_before + 12 * 8);
        assert_eq!(machine.stats.plans_computed, 0, "fallback was seeded, never plans");
        assert_eq!(a.get(&[0]), 99.0);
        assert_eq!(b.get(&[3]), 1003.0);
    }

    #[test]
    fn threshold_boundary_round_takes_the_same_engine_solo_and_group() {
        use crate::exec::PARALLEL_THRESHOLD;
        // Solo: Block → Cyclic(n/4) on 2 ranks puts the local group AND
        // the single caterpillar round at exactly PARALLEL_THRESHOLD
        // elements — the boundary the shared predicate pins.
        let n = 2 * PARALLEL_THRESHOLD;
        let src = mk(n, 2, DimFormat::Block(None));
        let dst = mk(n, 2, DimFormat::Cyclic(Some(n / 4)));
        let plan = plan_redistribution(&src, &dst, 8);
        let schedule = CommSchedule::from_plan(&plan);
        let prog = crate::CopyProgram::try_compile(&plan, &schedule).expect("compiles");
        for round in std::iter::once(&prog.local).chain(prog.rounds.iter()) {
            let w: u64 = round.iter().map(|u| u.elements).sum();
            assert_eq!(w, PARALLEL_THRESHOLD, "round sits exactly at the boundary");
            assert!(
                !crate::exec::round_goes_inline(w),
                "a boundary round takes the parallel engine everywhere"
            );
        }
        let mut a = VersionData::new(src, 8);
        a.fill(|p| (p[0] % 8191) as f64);
        let mut serial = VersionData::new(dst.clone(), 8);
        serial.copy_values_from_program(&a, &prog, ExecMode::Serial);
        let mut par = VersionData::new(dst, 8);
        par.copy_values_from_program(&a, &prog, ExecMode::Parallel(4));
        assert_eq!(serial, par);

        // Group: two members at half the extent, so every *merged*
        // round (local group and the wire round) also totals exactly
        // PARALLEL_THRESHOLD — the group dispatcher must agree with
        // the solo one at the boundary.
        let gn = PARALLEL_THRESHOLD;
        let run = |mode: ExecMode| {
            let (machine, mut a, mut b, fwd, _back) = two_array_group(
                gn,
                2,
                DimFormat::Block(None),
                DimFormat::Cyclic(Some(gn / 4)),
            );
            let gp = fwd.program.as_ref().expect("members compile");
            for round in std::iter::once(None).chain((0..gp.n_rounds).map(Some)) {
                let w: u64 = gp
                    .members
                    .iter()
                    .map(|mp| units_of(mp, round).iter().map(|u| u.elements).sum::<u64>())
                    .sum();
                assert_eq!(w, PARALLEL_THRESHOLD, "merged round sits exactly at the boundary");
            }
            let mut machine = machine.with_exec_mode(mode);
            let keep: BTreeSet<u32> = [0u32, 1].into_iter().collect();
            let skip = BTreeSet::new();
            {
                let mut members = [
                    GroupMember { rt: &mut a, src: 0, target: 1, may_live: &keep, skip_if_current: &skip },
                    GroupMember { rt: &mut b, src: 0, target: 1, may_live: &keep, skip_if_current: &skip },
                ];
                assert_eq!(remap_group(&mut machine, &mut members, &fwd), 2);
            }
            let av = a.copies[1].as_ref().unwrap().to_dense();
            let bv = b.copies[1].as_ref().unwrap().to_dense();
            (av, bv)
        };
        assert_eq!(run(ExecMode::Serial), run(ExecMode::Parallel(4)));
    }

    #[test]
    fn serial_and_parallel_group_replay_agree() {
        // Large enough that parallel rounds cross the inline threshold
        // and really spawn scoped workers across both arrays' units.
        let run = |mode: ExecMode| {
            let (machine, mut a, mut b, fwd, back) =
                two_array_group(1 << 18, 4, DimFormat::Block(None), DimFormat::Cyclic(Some(3)));
            let mut machine = machine.with_exec_mode(mode);
            let keep: BTreeSet<u32> = [0u32, 1].into_iter().collect();
            let skip = BTreeSet::new();
            for round in 0..3 {
                {
                    let mut members = [
                        GroupMember { rt: &mut a, src: 0, target: 1, may_live: &keep, skip_if_current: &skip },
                        GroupMember { rt: &mut b, src: 0, target: 1, may_live: &keep, skip_if_current: &skip },
                    ];
                    assert_eq!(remap_group(&mut machine, &mut members, &fwd), 2);
                }
                a.set(&[0], round as f64);
                b.set(&[1], round as f64);
                {
                    let mut members = [
                        GroupMember { rt: &mut a, src: 1, target: 0, may_live: &keep, skip_if_current: &skip },
                        GroupMember { rt: &mut b, src: 1, target: 0, may_live: &keep, skip_if_current: &skip },
                    ];
                    assert_eq!(remap_group(&mut machine, &mut members, &back), 2);
                }
                a.set(&[2], round as f64);
                b.set(&[3], round as f64);
            }
            let av = a.copies[a.status.unwrap() as usize].as_ref().unwrap().to_dense();
            let bv = b.copies[b.status.unwrap() as usize].as_ref().unwrap().to_dense();
            (av, bv, machine.stats.bytes, machine.stats.messages)
        };
        assert_eq!(run(ExecMode::Serial), run(ExecMode::Parallel(4)));
    }
}
