//! The redistribution engine: exact communication sets between two
//! composed mappings of the same array.
//!
//! This is the substrate the paper delegates to its SPMD code
//! generation phase (and that refs like Prylli & Tourancheau's
//! block-cyclic redistribution library provide): given source and
//! target [`NormalizedMapping`]s, compute, in closed form, how many
//! elements every processor pair exchanges — and *which* index
//! intervals, so data movement can copy whole runs.
//!
//! # Cost model
//!
//! Ownership factorizes per array dimension (each dimension feeds at
//! most one grid axis on each side through an affine map into a
//! block-cyclic layout), so per-dimension owned index sets are
//! [`PeriodicSet`]s — periodic unions of intervals with period
//! `b·P / gcd(|stride|, b·P)` — and the (sender, receiver) element
//! count is a product of per-dimension periodic-intersection sizes.
//!
//! A previous incarnation of this planner materialized, for every grid
//! coordinate, the full `O(extent / (b·P))` interval list and
//! intersected the lists pairwise (recomputing the destination side
//! once per source coordinate), making "closed-form" planning scale
//! with the array: `O(P_s·P_d · extent/(b·P))` per dimension. Planning
//! now intersects one *hyper-period* (`lcm` of the two sides' periods)
//! plus tail, so a dimension costs `O(P_s·P_d · runs(hyper-period))`,
//! independent of the extent; the pair accumulation runs over a dense
//! `P_s × P_d` count matrix with reusable scratch buffers instead of a
//! `BTreeMap` keyed by freshly allocated coordinate vectors. The plan
//! additionally carries the per-dimension [`PeriodicSet`] descriptors
//! (see [`DimContribution`]), which the storage layer's block-level
//! copy engine ([`crate::store::VersionData::copy_values_from`])
//! expands into `copy_from_slice` runs.
//!
//! Replication is handled by a **canonical source** rule: the replica
//! at coordinate 0 of every replicated source axis sends (deterministic
//! and factorizable); every replica on the destination side receives.
//! [`plan_by_enumeration`] is the O(n·P) brute-force oracle used by the
//! property tests.

use std::collections::BTreeMap;
use std::sync::Arc;

use hpfc_mapping::{DimSource, Extents, NormalizedMapping, PeriodicSet};

/// One processor-pair transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// Sender rank (row-major in the source grid).
    pub from: u64,
    /// Receiver rank (row-major in the destination grid).
    pub to: u64,
    /// Number of elements.
    pub elements: u64,
}

/// The contribution of one array dimension to the communication set:
/// the elements owned along it by source grid coordinate `src` and
/// destination grid coordinate `dst` (`None` = the dimension does not
/// drive that side, i.e. the whole extent is held).
///
/// `src_set ∩ dst_set` is the exact index set moved for any pair built
/// from this entry; both are compact periodic descriptors whose size is
/// independent of the extent.
#[derive(Debug, Clone)]
pub struct DimContribution {
    /// Driven source axis and coordinate, if any.
    pub src: Option<(usize, u64)>,
    /// Driven destination axis and coordinate, if any.
    pub dst: Option<(usize, u64)>,
    /// `|src_set ∩ dst_set|`, closed form.
    pub count: u64,
    /// Indices owned on the source side (full range when not driven).
    pub src_set: PeriodicSet,
    /// Indices owned on the destination side (full range when not driven).
    pub dst_set: PeriodicSet,
}

/// A complete redistribution plan.
///
/// Equality compares the *communication content* (transfers, local
/// element count, element size); the `dims` descriptor tables are
/// derived data carried for the block-level copy engine and are
/// excluded, so a closed-form plan compares equal to the enumeration
/// oracle (which has no descriptors).
#[derive(Debug, Clone)]
pub struct RedistPlan {
    /// Remote transfers (`from != to`), sorted by (from, to).
    pub transfers: Vec<Transfer>,
    /// Elements that stay on their processor.
    pub local_elements: u64,
    /// Element size in bytes.
    pub elem_size: u64,
    /// Per-dimension contribution tables (interval descriptors); empty
    /// for oracle-built plans.
    pub dims: Vec<Vec<DimContribution>>,
    /// The (source, destination) mapping pair this plan was computed
    /// for — the copy engine refuses to apply `dims` to any other pair.
    /// Shared by `Arc` with the compiled [`crate::CopyProgram`] of the
    /// same pair, so a cached `PlannedRemap` stores the two mappings
    /// once, not twice.
    pub mappings: Option<Arc<(NormalizedMapping, NormalizedMapping)>>,
}

impl PartialEq for RedistPlan {
    fn eq(&self, other: &Self) -> bool {
        self.transfers == other.transfers
            && self.local_elements == other.local_elements
            && self.elem_size == other.elem_size
    }
}

impl Eq for RedistPlan {}

impl RedistPlan {
    /// Total bytes crossing the network.
    pub fn total_bytes(&self) -> u64 {
        self.transfers.iter().map(|t| t.elements * self.elem_size).sum()
    }

    /// Number of point-to-point messages (one per communicating pair,
    /// as a packing redistribution library would send).
    pub fn total_messages(&self) -> u64 {
        self.transfers.len() as u64
    }

    /// Total elements moved remotely.
    pub fn remote_elements(&self) -> u64 {
        self.transfers.iter().map(|t| t.elements).sum()
    }

    /// The (from, to, bytes) triples for
    /// [`crate::Machine::account_phase`], without materializing them.
    pub fn phase_triples(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.transfers.iter().map(|t| (t.from, t.to, t.elements * self.elem_size))
    }
}

/// The canonical owner of a point under a mapping: its owner with
/// coordinate 0 substituted on replicated axes.
///
/// Computed directly from the per-axis sources (no [`hpfc_mapping::Locus`]
/// materialization): this sits on the per-element read path
/// ([`crate::VersionData::get`]), where a heap allocation per point used
/// to dominate.
pub fn canonical_owner(nm: &NormalizedMapping, point: &[u64]) -> u64 {
    let mut rank = 0u64;
    for (a, ax) in nm.axes.iter().enumerate() {
        let coord = match ax.source {
            hpfc_mapping::DimSource::Replicated => 0,
            hpfc_mapping::DimSource::FixedCoord(q) => q,
            hpfc_mapping::DimSource::ArrayAxis { dim, stride, offset } => {
                let t = stride * point[dim] as i64 + offset;
                debug_assert!(t >= 0, "alignment image validated non-negative");
                ax.layout.expect("axis source has layout").owner(t as u64)
            }
        };
        rank = rank * nm.grid_shape.extent(a) + coord;
    }
    rank
}

/// The source a receiver actually reads a point from: itself if it
/// holds the point under `src`, else the canonical owner.
pub fn source_for(src: &NormalizedMapping, receiver: u64, point: &[u64]) -> u64 {
    if receiver < src.grid_shape.volume() && src.is_owned(point, receiver) {
        receiver
    } else {
        canonical_owner(src, point)
    }
}

/// All owners of a point (replicas expanded).
pub fn all_owners(nm: &NormalizedMapping, point: &[u64]) -> Vec<u64> {
    nm.owners(point)
}

// --- the planner -------------------------------------------------------

/// Which grid axis (if any) array dimension `d` drives, with the affine
/// map and layout.
pub(crate) fn axis_driven_by_dim(
    nm: &NormalizedMapping,
    d: usize,
) -> Option<(usize, i64, i64, hpfc_mapping::DimLayout)> {
    for (axis, ax) in nm.axes.iter().enumerate() {
        if let DimSource::ArrayAxis { dim, stride, offset } = ax.source {
            if dim == d {
                return Some((axis, stride, offset, ax.layout.expect("axis source has layout")));
            }
        }
    }
    None
}

/// Per-dimension contribution tables: for every array dimension, the
/// non-empty (source coord, destination coord) interval intersections.
/// The destination side's periodic sets are computed once per
/// coordinate and shared across all source coordinates.
pub fn dim_contributions(
    src: &NormalizedMapping,
    dst: &NormalizedMapping,
) -> Vec<Vec<DimContribution>> {
    let rank = src.array_extents.rank();
    let mut per_dim = Vec::with_capacity(rank);
    for d in 0..rank {
        let n = src.array_extents.extent(d);
        let s_axis = axis_driven_by_dim(src, d);
        let d_axis = axis_driven_by_dim(dst, d);
        let mut entries = Vec::new();
        match (s_axis, d_axis) {
            (None, None) => {
                if n > 0 {
                    entries.push(DimContribution {
                        src: None,
                        dst: None,
                        count: n,
                        src_set: PeriodicSet::full(n),
                        dst_set: PeriodicSet::full(n),
                    });
                }
            }
            (Some((ax, st, of, lay)), None) => {
                let full = PeriodicSet::full(n);
                for c in 0..lay.nprocs {
                    let set = PeriodicSet::owned(st, of, lay, c, n);
                    let count = set.count();
                    if count > 0 {
                        entries.push(DimContribution {
                            src: Some((ax, c)),
                            dst: None,
                            count,
                            src_set: set,
                            dst_set: full.clone(),
                        });
                    }
                }
            }
            (None, Some((ax, st, of, lay))) => {
                let full = PeriodicSet::full(n);
                for c in 0..lay.nprocs {
                    let set = PeriodicSet::owned(st, of, lay, c, n);
                    let count = set.count();
                    if count > 0 {
                        entries.push(DimContribution {
                            src: None,
                            dst: Some((ax, c)),
                            count,
                            src_set: full.clone(),
                            dst_set: set,
                        });
                    }
                }
            }
            (Some((sax, sst, sof, slay)), Some((dax, dst_, dof, dlay))) => {
                let s_sets: Vec<PeriodicSet> =
                    (0..slay.nprocs).map(|c| PeriodicSet::owned(sst, sof, slay, c, n)).collect();
                let d_sets: Vec<PeriodicSet> =
                    (0..dlay.nprocs).map(|c| PeriodicSet::owned(dst_, dof, dlay, c, n)).collect();
                for (cs, s_set) in s_sets.iter().enumerate() {
                    if s_set.base.is_empty() {
                        continue;
                    }
                    for (cd, d_set) in d_sets.iter().enumerate() {
                        let count = s_set.intersect_count(d_set);
                        if count > 0 {
                            entries.push(DimContribution {
                                src: Some((sax, cs as u64)),
                                dst: Some((dax, cd as u64)),
                                count,
                                src_set: s_set.clone(),
                                dst_set: d_set.clone(),
                            });
                        }
                    }
                }
            }
        }
        per_dim.push(entries);
    }
    per_dim
}

/// Row-major strides of a grid shape (rank contribution of coordinate
/// `c` on axis `a` is `c * strides[a]`).
fn rank_strides(shape: &Extents) -> Vec<u64> {
    let rank = shape.rank();
    let mut strides = vec![1u64; rank];
    for a in (0..rank.saturating_sub(1)).rev() {
        strides[a] = strides[a + 1] * shape.extent(a + 1);
    }
    strides
}

/// Static per-mapping assembly data: which axes are driven by array
/// dimensions, the rank contribution of undriven axes, and (for the
/// destination) the precomputed replicated-axis rank offsets. Shared
/// by the planner and the storage layer's copy engine so the two can
/// never disagree on rank assembly.
pub(crate) struct SideInfo {
    pub(crate) strides: Vec<u64>,
    /// Rank contribution of all `FixedCoord` axes.
    pub(crate) fixed_base: u64,
    /// For the source-holds check: per axis, `Some(coord)` when the
    /// coordinate is pinned (`FixedCoord`), `None` when the axis is
    /// replicated (matches anything) or driven (filled per combination).
    pub(crate) want: Vec<Option<u64>>,
    /// Whether each axis is replicated (matches any coordinate).
    pub(crate) replicated: Vec<bool>,
}

pub(crate) fn side_info(nm: &NormalizedMapping) -> SideInfo {
    let strides = rank_strides(&nm.grid_shape);
    let mut fixed_base = 0u64;
    let mut want = vec![None; nm.axes.len()];
    let mut replicated = vec![false; nm.axes.len()];
    for (axis, ax) in nm.axes.iter().enumerate() {
        match ax.source {
            DimSource::FixedCoord(q) => {
                fixed_base += q * strides[axis];
                want[axis] = Some(q);
            }
            DimSource::Replicated => replicated[axis] = true,
            DimSource::ArrayAxis { .. } => {} // filled per combination
        }
    }
    SideInfo { strides, fixed_base, want, replicated }
}

/// Rank offsets of every combination of replicated destination axes
/// (the broadcast fan-out), precomputed once per plan.
pub(crate) fn replicated_offsets(nm: &NormalizedMapping, strides: &[u64]) -> Vec<u64> {
    let mut offsets = vec![0u64];
    for (axis, ax) in nm.axes.iter().enumerate() {
        if matches!(ax.source, DimSource::Replicated) {
            let n = nm.grid_shape.extent(axis);
            let old_len = offsets.len();
            let mut next = Vec::with_capacity(old_len * n as usize);
            for &o in &offsets {
                for c in 0..n {
                    next.push(o + c * strides[axis]);
                }
            }
            offsets = next;
        }
    }
    offsets
}

/// Whether rank `to`, interpreted in the source grid, matches the
/// per-axis source-owner coordinates `want` (axes flagged in
/// `replicated` match anything). `scratch` receives the delinearized
/// coordinates — no per-call allocation.
pub(crate) fn receiver_holds_under_src(
    src: &NormalizedMapping,
    replicated: &[bool],
    want: &[Option<u64>],
    to: u64,
    scratch: &mut [u64],
) -> bool {
    if to >= src.grid_shape.volume() {
        return false;
    }
    let mut rem = to;
    for a in (0..scratch.len()).rev() {
        let n = src.grid_shape.extent(a);
        scratch[a] = rem % n;
        rem /= n;
    }
    replicated
        .iter()
        .zip(want)
        .zip(scratch.iter())
        .all(|((&repl, want), &have)| repl || *want == Some(have))
}

/// The shared (sender, receiver) combination walk: the odometer over
/// every per-dimension [`DimContribution`] combination and every
/// replicated-destination rank offset, with the **receiver
/// self-preference** rule applied (a receiver that already holds the
/// combination's elements under the source mapping is its own
/// provider — all elements of a combination share their source-owner
/// coordinates, so one check covers them all).
///
/// `f(provider, receiver, idx)` is called once per (combination,
/// destination replica); `idx[d]` selects the dimension-`d` entry of
/// `per_dim`. At least one combination always runs, which is what
/// makes rank-0 scalars work.
///
/// This single driver is what the closed-form planner
/// ([`plan_redistribution`]), the descriptor-table copy engine
/// (`VersionData::copy_with_tables`), and the program compiler
/// ([`crate::CopyProgram::try_compile`]) all iterate — they cannot
/// disagree on who provides what to whom, because the pair logic
/// exists exactly once.
pub(crate) fn for_each_pair_combination(
    src: &NormalizedMapping,
    dst: &NormalizedMapping,
    per_dim: &[Vec<DimContribution>],
    mut f: impl FnMut(u64, u64, &[usize]),
) {
    debug_assert!(per_dim.iter().all(|e| !e.is_empty()), "caller filters empty arrays");
    let rank = per_dim.len();
    let src_info = side_info(src);
    let dst_info = side_info(dst);
    let repl_offsets = replicated_offsets(dst, &dst_info.strides);
    // Reusable scratch: the per-combination driven source coordinates
    // (for the receiver-holds check) and the delinearization buffer.
    let mut s_want = src_info.want.clone();
    let mut delin = vec![0u64; src.grid_shape.rank()];

    let mut idx = vec![0usize; rank];
    loop {
        // Current combination.
        let mut from_base = src_info.fixed_base;
        let mut to_base = dst_info.fixed_base;
        for d in 0..rank {
            let e = &per_dim[d][idx[d]];
            if let Some((ax, c)) = e.src {
                from_base += c * src_info.strides[ax];
                s_want[ax] = Some(c);
            }
            if let Some((ax, c)) = e.dst {
                to_base += c * dst_info.strides[ax];
            }
        }
        for &off in &repl_offsets {
            let to = to_base + off;
            let holds =
                receiver_holds_under_src(src, &src_info.replicated, &s_want, to, &mut delin);
            let from = if holds { to } else { from_base };
            f(from, to, &idx);
        }
        // Advance the odometer.
        let mut d = 0;
        loop {
            if d == rank {
                return;
            }
            idx[d] += 1;
            if idx[d] < per_dim[d].len() {
                break;
            }
            idx[d] = 0;
            d += 1;
        }
    }
}

/// Closed-form redistribution plan between two mappings of one array.
///
/// Panics if the mappings disagree on the array extents (they are
/// versions of the same array by construction).
pub fn plan_redistribution(
    src: &NormalizedMapping,
    dst: &NormalizedMapping,
    elem_size: u64,
) -> RedistPlan {
    assert_eq!(
        src.array_extents, dst.array_extents,
        "redistribution between different arrays"
    );
    let per_dim = dim_contributions(src, dst);
    let vd = dst.grid_shape.volume();

    if per_dim.iter().any(|e| e.is_empty()) {
        // Some dimension contributes nothing: the array is empty.
        return RedistPlan {
            transfers: Vec::new(),
            local_elements: 0,
            elem_size,
            dims: per_dim,
            mappings: Some(hpfc_mapping::intern::pair(src, dst)),
        };
    }

    // Dense (sender, receiver) count matrix; compacted at the end.
    let vs = src.grid_shape.volume();
    let mut matrix = vec![0u64; (vs * vd) as usize];
    for_each_pair_combination(src, dst, &per_dim, |from, to, idx| {
        let count: u64 = idx.iter().enumerate().map(|(d, &i)| per_dim[d][i].count).product();
        matrix[(from * vd + to) as usize] += count;
    });
    compact(matrix, vd, elem_size, per_dim, src, dst)
}

/// Compact the dense count matrix into sorted transfers.
fn compact(
    matrix: Vec<u64>,
    vd: u64,
    elem_size: u64,
    dims: Vec<Vec<DimContribution>>,
    src: &NormalizedMapping,
    dst: &NormalizedMapping,
) -> RedistPlan {
    let mut transfers = Vec::new();
    let mut local = 0u64;
    for (i, &elements) in matrix.iter().enumerate() {
        if elements == 0 {
            continue;
        }
        let from = i as u64 / vd;
        let to = i as u64 % vd;
        if from == to {
            local += elements;
        } else {
            transfers.push(Transfer { from, to, elements });
        }
    }
    RedistPlan {
        transfers,
        local_elements: local,
        elem_size,
        dims,
        // Hash-consed: every plan over an equal (src, dst) pair shares
        // one pointer-identical Arc — the identity the shared plan
        // registry keys by.
        mappings: Some(hpfc_mapping::intern::pair(src, dst)),
    }
}

/// Brute-force oracle: enumerate every element, canonical source, all
/// destination replicas. O(n · replicas).
pub fn plan_by_enumeration(
    src: &NormalizedMapping,
    dst: &NormalizedMapping,
    elem_size: u64,
) -> RedistPlan {
    let mut pairs: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    for p in src.array_extents.points() {
        for to in all_owners(dst, &p) {
            let from = source_for(src, to, &p);
            *pairs.entry((from, to)).or_insert(0) += 1;
        }
    }
    let mut transfers = Vec::new();
    let mut local = 0u64;
    for ((from, to), elements) in pairs {
        if from == to {
            local += elements;
        } else {
            transfers.push(Transfer { from, to, elements });
        }
    }
    RedistPlan { transfers, local_elements: local, elem_size, dims: Vec::new(), mappings: None }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpfc_mapping::{
        Alignment, DimFormat, Distribution, Extents, GridId, Mapping, ProcGrid, Template,
        TemplateId,
    };

    fn mk(n: u64, p: u64, fmt: DimFormat) -> NormalizedMapping {
        let t = Template { id: TemplateId(0), name: "T".into(), shape: Extents::new(&[n]) };
        let g = ProcGrid { id: GridId(0), name: "P".into(), shape: Extents::new(&[p]) };
        Mapping {
            align: Alignment::identity(TemplateId(0), 1),
            dist: Distribution::new(GridId(0), vec![fmt]),
        }
        .normalize(&Extents::new(&[n]), &t, &g)
        .unwrap()
    }

    #[test]
    fn block_to_cyclic_1d() {
        let src = mk(16, 4, DimFormat::Block(None)); // blocks of 4
        let dst = mk(16, 4, DimFormat::Cyclic(None));
        let plan = plan_redistribution(&src, &dst, 8);
        let oracle = plan_by_enumeration(&src, &dst, 8);
        assert_eq!(plan, oracle);
        // Each proc keeps exactly 1 of its 4 elements (the one whose
        // cyclic owner == block owner).
        assert_eq!(plan.local_elements, 4);
        assert_eq!(plan.remote_elements(), 12);
        // All-to-all among 4 procs minus diagonal: 12 messages.
        assert_eq!(plan.total_messages(), 12);
        assert_eq!(plan.total_bytes(), 12 * 8);
    }

    #[test]
    fn identity_redistribution_is_all_local() {
        let src = mk(20, 4, DimFormat::Cyclic(Some(2)));
        let plan = plan_redistribution(&src, &src, 8);
        assert_eq!(plan.total_messages(), 0);
        assert_eq!(plan.local_elements, 20);
    }

    #[test]
    fn replication_broadcast() {
        // src: block over 4; dst: fully replicated.
        let src = mk(8, 4, DimFormat::Block(None));
        let dst = mk(8, 4, DimFormat::Collapsed);
        let plan = plan_redistribution(&src, &dst, 8);
        let oracle = plan_by_enumeration(&src, &dst, 8);
        assert_eq!(plan, oracle);
        // Every proc must receive the 6 elements it does not own, and
        // keeps its own 2: 8 local, 24 remote.
        assert_eq!(plan.local_elements, 8);
        assert_eq!(plan.remote_elements(), 24);
    }

    #[test]
    fn replicated_source_needs_no_communication() {
        let src = mk(8, 4, DimFormat::Collapsed); // replicated everywhere
        let dst = mk(8, 4, DimFormat::Block(None));
        let plan = plan_redistribution(&src, &dst, 8);
        let oracle = plan_by_enumeration(&src, &dst, 8);
        assert_eq!(plan, oracle);
        // Every receiver already holds everything under the replicated
        // source: all copies are local.
        assert_eq!(plan.local_elements, 8);
        assert_eq!(plan.total_messages(), 0);
    }

    #[test]
    fn two_dim_transpose_style() {
        // (BLOCK, *) -> (*, BLOCK) on a 2-D array: the classic FFT
        // transpose-by-redistribution.
        let n = 12u64;
        let p = 3u64;
        let t = Template { id: TemplateId(0), name: "T".into(), shape: Extents::new(&[n, n]) };
        let g = ProcGrid { id: GridId(0), name: "P".into(), shape: Extents::new(&[p]) };
        let e = Extents::new(&[n, n]);
        let row = Mapping {
            align: Alignment::identity(TemplateId(0), 2),
            dist: Distribution::new(GridId(0), vec![DimFormat::Block(None), DimFormat::Collapsed]),
        }
        .normalize(&e, &t, &g)
        .unwrap();
        let col = Mapping {
            align: Alignment::identity(TemplateId(0), 2),
            dist: Distribution::new(GridId(0), vec![DimFormat::Collapsed, DimFormat::Block(None)]),
        }
        .normalize(&e, &t, &g)
        .unwrap();
        let plan = plan_redistribution(&row, &col, 8);
        let oracle = plan_by_enumeration(&row, &col, 8);
        assert_eq!(plan, oracle);
        // Each proc keeps its diagonal tile (n/p × n/p) and sends the
        // rest of its rows.
        assert_eq!(plan.local_elements, p * (n / p) * (n / p));
        assert_eq!(plan.total_messages(), p * (p - 1));
    }

    #[test]
    fn strided_alignment_plan_matches_oracle() {
        // ALIGN A(i) WITH T(2*i+1): stride-2 alignment into a template
        // twice as large, BLOCK vs CYCLIC(3).
        let n = 10u64;
        let t = Template { id: TemplateId(0), name: "T".into(), shape: Extents::new(&[24]) };
        let g = ProcGrid { id: GridId(0), name: "P".into(), shape: Extents::new(&[4]) };
        let e = Extents::new(&[n]);
        let al = Alignment {
            template: TemplateId(0),
            targets: vec![hpfc_mapping::AlignTarget::Axis { array_dim: 0, stride: 2, offset: 1 }],
        };
        let src = Mapping {
            align: al.clone(),
            dist: Distribution::new(GridId(0), vec![DimFormat::Block(None)]),
        }
        .normalize(&e, &t, &g)
        .unwrap();
        let dst = Mapping {
            align: al,
            dist: Distribution::new(GridId(0), vec![DimFormat::Cyclic(Some(3))]),
        }
        .normalize(&e, &t, &g)
        .unwrap();
        let plan = plan_redistribution(&src, &dst, 8);
        let oracle = plan_by_enumeration(&src, &dst, 8);
        assert_eq!(plan, oracle);
        // Conservation: every element lands somewhere exactly once.
        assert_eq!(plan.local_elements + plan.remote_elements(), n);
    }

    #[test]
    fn plan_carries_interval_descriptors() {
        let src = mk(16, 4, DimFormat::Block(None));
        let dst = mk(16, 4, DimFormat::Cyclic(None));
        let plan = plan_redistribution(&src, &dst, 8);
        assert_eq!(plan.dims.len(), 1);
        // 4x4 coordinate pairs, all non-empty for block->cyclic on 16.
        assert_eq!(plan.dims[0].len(), 16);
        for e in &plan.dims[0] {
            assert_eq!(e.src_set.intersect_count(&e.dst_set), e.count);
        }
        // Descriptor sizes depend on the layouts, not the extent.
        let big_src = mk(1 << 22, 4, DimFormat::Block(None));
        let big_dst = mk(1 << 22, 4, DimFormat::Cyclic(None));
        let big = plan_redistribution(&big_src, &big_dst, 8);
        for e in &big.dims[0] {
            assert!(e.src_set.base.len() <= 2, "src descriptor stays O(1)");
            assert!(e.dst_set.base.len() <= 2, "dst descriptor stays O(1)");
        }
    }
}
