//! The redistribution engine: exact communication sets between two
//! composed mappings of the same array.
//!
//! This is the substrate the paper delegates to its SPMD code
//! generation phase (and that refs like Prylli & Tourancheau's
//! block-cyclic redistribution library provide): given source and
//! target [`NormalizedMapping`]s, compute, in closed form, how many
//! elements every processor pair exchanges.
//!
//! The closed form exploits the product structure of composed HPF
//! mappings: ownership factorizes per array dimension (each dimension
//! feeds at most one grid axis on each side through an affine map into
//! a block-cyclic layout), so per-dimension owned index sets are unions
//! of intervals and the (sender, receiver) element count is a product
//! of per-dimension interval-intersection sizes.
//!
//! Replication is handled by a **canonical source** rule: the replica
//! at coordinate 0 of every replicated source axis sends (deterministic
//! and factorizable); every replica on the destination side receives.
//! [`plan_by_enumeration`] is the O(n·P) brute-force oracle used by the
//! property tests.

use std::collections::BTreeMap;

use hpfc_mapping::{DimSource, NormalizedMapping};

/// One processor-pair transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// Sender rank (row-major in the source grid).
    pub from: u64,
    /// Receiver rank (row-major in the destination grid).
    pub to: u64,
    /// Number of elements.
    pub elements: u64,
}

/// A complete redistribution plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RedistPlan {
    /// Remote transfers (`from != to`), sorted by (from, to).
    pub transfers: Vec<Transfer>,
    /// Elements that stay on their processor.
    pub local_elements: u64,
    /// Element size in bytes.
    pub elem_size: u64,
}

impl RedistPlan {
    /// Total bytes crossing the network.
    pub fn total_bytes(&self) -> u64 {
        self.transfers.iter().map(|t| t.elements * self.elem_size).sum()
    }

    /// Number of point-to-point messages (one per communicating pair,
    /// as a packing redistribution library would send).
    pub fn total_messages(&self) -> u64 {
        self.transfers.len() as u64
    }

    /// Total elements moved remotely.
    pub fn remote_elements(&self) -> u64 {
        self.transfers.iter().map(|t| t.elements).sum()
    }

    /// As (from, to, bytes) triples for [`crate::Machine::account_phase`].
    pub fn phase_triples(&self) -> Vec<(u64, u64, u64)> {
        self.transfers.iter().map(|t| (t.from, t.to, t.elements * self.elem_size)).collect()
    }
}

/// The canonical owner of a point under a mapping: its owner with
/// coordinate 0 substituted on replicated axes.
pub fn canonical_owner(nm: &NormalizedMapping, point: &[u64]) -> u64 {
    let locus = nm.locus(point);
    let coords: Vec<u64> = locus.proc.iter().map(|c| c.unwrap_or(0)).collect();
    nm.grid_shape.linearize(&coords)
}

/// The source a receiver actually reads a point from: itself if it
/// holds the point under `src`, else the canonical owner.
pub fn source_for(src: &NormalizedMapping, receiver: u64, point: &[u64]) -> u64 {
    if receiver < src.grid_shape.volume() && src.is_owned(point, receiver) {
        receiver
    } else {
        canonical_owner(src, point)
    }
}

/// Whether rank `to`, interpreted in the source grid, matches the
/// per-axis source-owner coordinates `s_coords` (replicated axes match
/// anything).
fn receiver_holds_under_src(
    src: &NormalizedMapping,
    to: u64,
    s_coords: &[Option<u64>],
) -> bool {
    if to >= src.grid_shape.volume() {
        return false;
    }
    let tc = src.grid_shape.delinearize(to);
    src.axes.iter().enumerate().all(|(axis, ax)| match ax.source {
        DimSource::Replicated => true,
        _ => s_coords[axis] == Some(tc[axis]),
    })
}

/// All owners of a point (replicas expanded).
pub fn all_owners(nm: &NormalizedMapping, point: &[u64]) -> Vec<u64> {
    nm.owners(point)
}

// --- interval math ----------------------------------------------------

fn floor_div(a: i64, b: i64) -> i64 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

fn ceil_div(a: i64, b: i64) -> i64 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) == (b < 0)) {
        q + 1
    } else {
        q
    }
}

/// Array-index intervals (sorted, disjoint, half-open) owned along one
/// dimension by grid coordinate `coord`, for an `ArrayAxis` dim-map.
fn owned_array_intervals(
    stride: i64,
    offset: i64,
    layout: hpfc_mapping::DimLayout,
    coord: u64,
    extent: u64,
) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    for (lo, hi) in layout.owned_intervals(coord) {
        // { a : lo <= stride*a + offset < hi, 0 <= a < extent }
        let (lo_i, hi_i) = (lo as i64, hi as i64);
        let (a_lo, a_hi) = if stride > 0 {
            (ceil_div(lo_i - offset, stride), ceil_div(hi_i - offset, stride))
        } else {
            (floor_div(hi_i - offset, stride) + 1, floor_div(lo_i - offset, stride) + 1)
        };
        let a_lo = a_lo.max(0) as u64;
        let a_hi = a_hi.max(0) as u64;
        let a_hi = a_hi.min(extent);
        if a_lo < a_hi {
            out.push((a_lo, a_hi));
        }
    }
    out.sort_unstable();
    out
}

/// Size of the intersection of two sorted disjoint interval lists.
fn intersect_count(a: &[(u64, u64)], b: &[(u64, u64)]) -> u64 {
    let (mut i, mut j, mut total) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if lo < hi {
            total += hi - lo;
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    total
}

// --- the planner -------------------------------------------------------

/// Which grid axis (if any) each array dimension drives, with the
/// interval generator.
fn axis_driven_by_dim(nm: &NormalizedMapping, d: usize) -> Option<(usize, i64, i64, hpfc_mapping::DimLayout)> {
    for (axis, ax) in nm.axes.iter().enumerate() {
        if let DimSource::ArrayAxis { dim, stride, offset } = ax.source {
            if dim == d {
                return Some((axis, stride, offset, ax.layout.expect("axis source has layout")));
            }
        }
    }
    None
}

/// Closed-form redistribution plan between two mappings of one array.
///
/// Panics if the mappings disagree on the array extents (they are
/// versions of the same array by construction).
pub fn plan_redistribution(
    src: &NormalizedMapping,
    dst: &NormalizedMapping,
    elem_size: u64,
) -> RedistPlan {
    assert_eq!(
        src.array_extents, dst.array_extents,
        "redistribution between different arrays"
    );
    let rank = src.array_extents.rank();

    // Per-dimension contribution table: (src axis coord, dst axis coord,
    // count) triples with None = this dim does not drive that side.
    #[allow(clippy::type_complexity)]
    let mut per_dim: Vec<Vec<(Option<(usize, u64)>, Option<(usize, u64)>, u64)>> =
        Vec::with_capacity(rank);

    for d in 0..rank {
        let n = src.array_extents.extent(d);
        let s_axis = axis_driven_by_dim(src, d);
        let d_axis = axis_driven_by_dim(dst, d);
        let mut entries = Vec::new();
        match (&s_axis, &d_axis) {
            (None, None) => entries.push((None, None, n)),
            (Some((ax, st, of, lay)), None) => {
                for c in 0..lay.nprocs {
                    let iv = owned_array_intervals(*st, *of, *lay, c, n);
                    let count: u64 = iv.iter().map(|(a, b)| b - a).sum();
                    if count > 0 {
                        entries.push((Some((*ax, c)), None, count));
                    }
                }
            }
            (None, Some((ax, st, of, lay))) => {
                for c in 0..lay.nprocs {
                    let iv = owned_array_intervals(*st, *of, *lay, c, n);
                    let count: u64 = iv.iter().map(|(a, b)| b - a).sum();
                    if count > 0 {
                        entries.push((None, Some((*ax, c)), count));
                    }
                }
            }
            (Some((sax, sst, sof, slay)), Some((dax, dst_, dof, dlay))) => {
                for cs in 0..slay.nprocs {
                    let siv = owned_array_intervals(*sst, *sof, *slay, cs, n);
                    if siv.is_empty() {
                        continue;
                    }
                    for cd in 0..dlay.nprocs {
                        let div = owned_array_intervals(*dst_, *dof, *dlay, cd, n);
                        let count = intersect_count(&siv, &div);
                        if count > 0 {
                            entries.push((Some((*sax, cs)), Some((*dax, cd)), count));
                        }
                    }
                }
            }
        }
        per_dim.push(entries);
    }

    // Assemble (sender, receiver) counts: cartesian product over
    // per-dim entries, then fill undriven axes (FixedCoord, canonical
    // replicas) and expand destination replication.
    let mut pairs: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    let mut idx = vec![0usize; rank];
    loop {
        // Current combination.
        let mut count: u64 = 1;
        let mut s_coords: Vec<Option<u64>> = vec![None; src.grid_shape.rank()];
        let mut d_coords: Vec<Option<u64>> = vec![None; dst.grid_shape.rank()];
        for d in 0..rank {
            let (s, t, c) = per_dim[d][idx[d]];
            count *= c;
            if let Some((ax, coord)) = s {
                s_coords[ax] = Some(coord);
            }
            if let Some((ax, coord)) = t {
                d_coords[ax] = Some(coord);
            }
        }
        if count > 0 {
            // Fill source axes not driven by any dim.
            for (axis, ax) in src.axes.iter().enumerate() {
                if s_coords[axis].is_none() {
                    s_coords[axis] = Some(match ax.source {
                        DimSource::FixedCoord(q) => q,
                        // Canonical replica sends.
                        DimSource::Replicated => 0,
                        DimSource::ArrayAxis { .. } => 0, // driven; unreachable
                    });
                }
            }
            let canonical =
                src.grid_shape.linearize(&s_coords.iter().map(|c| c.unwrap()).collect::<Vec<_>>());
            // Destination: expand replicated axes (broadcast).
            let mut receivers: Vec<Vec<u64>> = vec![Vec::new()];
            for (axis, ax) in dst.axes.iter().enumerate() {
                let choices: Vec<u64> = match (d_coords[axis], ax.source) {
                    (Some(c), _) => vec![c],
                    (None, DimSource::FixedCoord(q)) => vec![q],
                    (None, DimSource::Replicated) => (0..dst.grid_shape.extent(axis)).collect(),
                    (None, DimSource::ArrayAxis { .. }) => vec![0], // driven; unreachable
                };
                let mut next = Vec::with_capacity(receivers.len() * choices.len());
                for r in &receivers {
                    for &c in &choices {
                        let mut rr = r.clone();
                        rr.push(c);
                        next.push(rr);
                    }
                }
                receivers = next;
            }
            for r in receivers {
                let to = dst.grid_shape.linearize(&r);
                // Receiver self-preference: if the receiver already
                // holds these elements under the source mapping, the
                // copy is local. All elements of this combination share
                // the same source-owner coordinates, so the check is
                // per-combination.
                let from = if receiver_holds_under_src(src, to, &s_coords) {
                    to
                } else {
                    canonical
                };
                *pairs.entry((from, to)).or_insert(0) += count;
            }
        }
        // Advance the odometer.
        let mut d = 0;
        loop {
            if d == rank {
                // Done.
                let mut transfers = Vec::new();
                let mut local = 0u64;
                for ((from, to), elements) in pairs {
                    if from == to {
                        local += elements;
                    } else {
                        transfers.push(Transfer { from, to, elements });
                    }
                }
                return RedistPlan { transfers, local_elements: local, elem_size };
            }
            idx[d] += 1;
            if idx[d] < per_dim[d].len() {
                break;
            }
            idx[d] = 0;
            d += 1;
        }
        if rank == 0 {
            unreachable!("rank-0 arrays are scalars, not distributed");
        }
    }
}

/// Brute-force oracle: enumerate every element, canonical source, all
/// destination replicas. O(n · replicas).
pub fn plan_by_enumeration(
    src: &NormalizedMapping,
    dst: &NormalizedMapping,
    elem_size: u64,
) -> RedistPlan {
    let mut pairs: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    for p in src.array_extents.points() {
        for to in all_owners(dst, &p) {
            let from = source_for(src, to, &p);
            *pairs.entry((from, to)).or_insert(0) += 1;
        }
    }
    let mut transfers = Vec::new();
    let mut local = 0u64;
    for ((from, to), elements) in pairs {
        if from == to {
            local += elements;
        } else {
            transfers.push(Transfer { from, to, elements });
        }
    }
    RedistPlan { transfers, local_elements: local, elem_size }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpfc_mapping::{
        Alignment, DimFormat, Distribution, Extents, GridId, Mapping, ProcGrid, Template,
        TemplateId,
    };

    fn mk(n: u64, p: u64, fmt: DimFormat) -> NormalizedMapping {
        let t = Template { id: TemplateId(0), name: "T".into(), shape: Extents::new(&[n]) };
        let g = ProcGrid { id: GridId(0), name: "P".into(), shape: Extents::new(&[p]) };
        Mapping {
            align: Alignment::identity(TemplateId(0), 1),
            dist: Distribution::new(GridId(0), vec![fmt]),
        }
        .normalize(&Extents::new(&[n]), &t, &g)
        .unwrap()
    }

    #[test]
    fn block_to_cyclic_1d() {
        let src = mk(16, 4, DimFormat::Block(None)); // blocks of 4
        let dst = mk(16, 4, DimFormat::Cyclic(None));
        let plan = plan_redistribution(&src, &dst, 8);
        let oracle = plan_by_enumeration(&src, &dst, 8);
        assert_eq!(plan, oracle);
        // Each proc keeps exactly 1 of its 4 elements (the one whose
        // cyclic owner == block owner).
        assert_eq!(plan.local_elements, 4);
        assert_eq!(plan.remote_elements(), 12);
        // All-to-all among 4 procs minus diagonal: 12 messages.
        assert_eq!(plan.total_messages(), 12);
        assert_eq!(plan.total_bytes(), 12 * 8);
    }

    #[test]
    fn identity_redistribution_is_all_local() {
        let src = mk(20, 4, DimFormat::Cyclic(Some(2)));
        let plan = plan_redistribution(&src, &src, 8);
        assert_eq!(plan.total_messages(), 0);
        assert_eq!(plan.local_elements, 20);
    }

    #[test]
    fn replication_broadcast() {
        // src: block over 4; dst: fully replicated.
        let src = mk(8, 4, DimFormat::Block(None));
        let dst = mk(8, 4, DimFormat::Collapsed);
        let plan = plan_redistribution(&src, &dst, 8);
        let oracle = plan_by_enumeration(&src, &dst, 8);
        assert_eq!(plan, oracle);
        // Every proc must receive the 6 elements it does not own, and
        // keeps its own 2: 8 local, 24 remote.
        assert_eq!(plan.local_elements, 8);
        assert_eq!(plan.remote_elements(), 24);
    }

    #[test]
    fn replicated_source_needs_no_communication() {
        let src = mk(8, 4, DimFormat::Collapsed); // replicated everywhere
        let dst = mk(8, 4, DimFormat::Block(None));
        let plan = plan_redistribution(&src, &dst, 8);
        let oracle = plan_by_enumeration(&src, &dst, 8);
        assert_eq!(plan, oracle);
        // Every receiver already holds everything under the replicated
        // source: all copies are local.
        assert_eq!(plan.local_elements, 8);
        assert_eq!(plan.total_messages(), 0);
    }

    #[test]
    fn two_dim_transpose_style() {
        // (BLOCK, *) -> (*, BLOCK) on a 2-D array: the classic FFT
        // transpose-by-redistribution.
        let n = 12u64;
        let p = 3u64;
        let t = Template { id: TemplateId(0), name: "T".into(), shape: Extents::new(&[n, n]) };
        let g = ProcGrid { id: GridId(0), name: "P".into(), shape: Extents::new(&[p]) };
        let e = Extents::new(&[n, n]);
        let row = Mapping {
            align: Alignment::identity(TemplateId(0), 2),
            dist: Distribution::new(GridId(0), vec![DimFormat::Block(None), DimFormat::Collapsed]),
        }
        .normalize(&e, &t, &g)
        .unwrap();
        let col = Mapping {
            align: Alignment::identity(TemplateId(0), 2),
            dist: Distribution::new(GridId(0), vec![DimFormat::Collapsed, DimFormat::Block(None)]),
        }
        .normalize(&e, &t, &g)
        .unwrap();
        let plan = plan_redistribution(&row, &col, 8);
        let oracle = plan_by_enumeration(&row, &col, 8);
        assert_eq!(plan, oracle);
        // Each proc keeps its diagonal tile (n/p × n/p) and sends the
        // rest of its rows.
        assert_eq!(plan.local_elements, p * (n / p) * (n / p));
        assert_eq!(plan.total_messages(), (p * (p - 1)) as u64);
    }

    #[test]
    fn strided_alignment_plan_matches_oracle() {
        // ALIGN A(i) WITH T(2*i+1): stride-2 alignment into a template
        // twice as large, BLOCK vs CYCLIC(3).
        let n = 10u64;
        let t = Template { id: TemplateId(0), name: "T".into(), shape: Extents::new(&[24]) };
        let g = ProcGrid { id: GridId(0), name: "P".into(), shape: Extents::new(&[4]) };
        let e = Extents::new(&[n]);
        let al = Alignment {
            template: TemplateId(0),
            targets: vec![hpfc_mapping::AlignTarget::Axis { array_dim: 0, stride: 2, offset: 1 }],
        };
        let src = Mapping {
            align: al.clone(),
            dist: Distribution::new(GridId(0), vec![DimFormat::Block(None)]),
        }
        .normalize(&e, &t, &g)
        .unwrap();
        let dst = Mapping {
            align: al,
            dist: Distribution::new(GridId(0), vec![DimFormat::Cyclic(Some(3))]),
        }
        .normalize(&e, &t, &g)
        .unwrap();
        let plan = plan_redistribution(&src, &dst, 8);
        let oracle = plan_by_enumeration(&src, &dst, 8);
        assert_eq!(plan, oracle);
        // Conservation: every element lands somewhere exactly once.
        assert_eq!(plan.local_elements + plan.remote_elements(), n);
    }

    #[test]
    fn interval_helpers() {
        assert_eq!(floor_div(-3, 2), -2);
        assert_eq!(floor_div(3, 2), 1);
        assert_eq!(ceil_div(-3, 2), -1);
        assert_eq!(ceil_div(3, 2), 2);
        assert_eq!(
            intersect_count(&[(0, 5), (10, 15)], &[(3, 12)]),
            2 + 2 // [3,5) and [10,12)
        );
    }
}
