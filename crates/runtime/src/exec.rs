//! Compiled copy programs: the data-movement half of a remap, resolved
//! once at plan time into stride-encoded run families
//! ([`StrideFamily`]) plus an irregular residue of flat
//! `(src_pos, dst_pos, len)` triples, each unit tagged with the replay
//! [`Kernel`] its shape compiles to — then replayed allocation-free
//! ever after, optionally with the caterpillar rounds executed across
//! `std::thread::scope` workers.
//!
//! # Before / after
//!
//! The block-level engine of [`crate::VersionData::copy_values_from`]
//! already moves whole `copy_from_slice` runs, but it re-derives the
//! *positions* of those runs on every copy: per copy it rebuilds the
//! side-assembly tables, re-materializes every `(dimension, entry)` run
//! vector, and calls [`PeriodicSet::count_below`] twice per run — a
//! handful of divisions per copied run, plus `O(runs)` fresh heap
//! allocations, on the hot path of every remap bounce. A
//! [`CopyProgram`] does all of that exactly once, when the plan enters
//! the per-array cache:
//!
//! * **compile** ([`CopyProgram::try_compile`], `O(total runs)`, once
//!   per (source, destination) version pair): walk the same descriptor
//!   odometer the table engine walks, but *record* each run's closed-form
//!   local positions instead of copying — producing one flat
//!   [`CopyRun`] list, grouped into per-(provider, receiver)
//!   [`CopyUnit`]s;
//! * **replay** ([`crate::VersionData::copy_values_from_program`],
//!   every later copy): a loop of
//!   `copy_from_slice` over the precompiled triples. No positions are
//!   recomputed, nothing is allocated — the steady-state remap path
//!   performs zero heap allocations (pinned by the counting-allocator
//!   test `alloc_free.rs`).
//!
//! # Parallel rounds
//!
//! Units are grouped exactly like the [`crate::CommSchedule`]'s
//! caterpillar rounds (plus one round-like group for the local,
//! never-on-the-wire copies). Within a round every processor has at
//! most one partner, so the round's receivers are pairwise distinct —
//! each destination block is written by exactly one unit, and the round
//! can be split across `std::thread::scope` workers without locks or
//! aliasing ([`ExecMode::Parallel`]). The `HPFC_THREADS` environment
//! variable picks the default mode ([`ExecMode::from_env`]); serial
//! replay stays available so both engines are continuously tested.
//!
//! [`PeriodicSet::count_below`]: hpfc_mapping::PeriodicSet::count_below

use std::collections::BTreeMap;

use hpfc_mapping::intervals::intersect_runs;

use crate::redist::{DimContribution, RedistPlan};
use crate::schedule::CommSchedule;
use crate::store::{LocalBlock, VersionData};

/// How a [`CopyProgram`] replay runs the rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// One thread replays every unit in order (allocation-free).
    Serial,
    /// Each round's units are split across this many scoped worker
    /// threads (receivers within a round are disjoint, so no locks).
    /// `Parallel(0 | 1)` degrades to [`ExecMode::Serial`].
    Parallel(usize),
}

impl ExecMode {
    /// Parse an `HPFC_THREADS`-style value: `0` or `1` mean
    /// [`ExecMode::Serial`], any larger value means that many workers
    /// per round, and anything unparsable is `None` (the caller decides
    /// the fallback).
    pub fn parse(s: &str) -> Option<ExecMode> {
        match s.trim().parse::<usize>() {
            Ok(t) if t > 1 => Some(ExecMode::Parallel(t)),
            Ok(_) => Some(ExecMode::Serial),
            Err(_) => None,
        }
    }

    /// The mode selected by the `HPFC_THREADS` environment variable:
    /// unset, `0` or `1` mean [`ExecMode::Serial`]; any larger value
    /// means that many workers per round. An **unparsable** value also
    /// falls back to [`ExecMode::Serial`], but emits a one-time warning
    /// on stderr — a typo in `HPFC_THREADS` silently serializing every
    /// replay is exactly the kind of quiet misconfiguration the fault
    /// model exists to surface.
    pub fn from_env() -> ExecMode {
        match std::env::var("HPFC_THREADS") {
            Ok(s) => ExecMode::parse(&s).unwrap_or_else(|| {
                static WARNED: std::sync::Once = std::sync::Once::new();
                WARNED.call_once(|| {
                    eprintln!(
                        "hpfc: unparsable HPFC_THREADS value {s:?}; \
                         falling back to serial replay"
                    );
                });
                ExecMode::Serial
            }),
            Err(_) => ExecMode::Serial,
        }
    }

    /// Worker count this mode uses.
    pub fn threads(self) -> usize {
        match self {
            ExecMode::Serial => 1,
            ExecMode::Parallel(t) => t.max(1),
        }
    }
}

/// One precompiled contiguous copy: `len` elements from local position
/// `src_pos` of the provider's block to local position `dst_pos` of the
/// receiver's block. Positions are `u32` deliberately — half the memory
/// and twice the cache density of `usize` triples; blocks larger than
/// `u32::MAX` elements make [`CopyProgram::try_compile`] decline (the
/// table engine then serves as the fallback).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CopyRun {
    /// Element offset in the provider's local data.
    pub src_pos: u32,
    /// Element offset in the receiver's local data.
    pub dst_pos: u32,
    /// Run length in elements.
    pub len: u32,
}

/// A stride-encoded family of copy runs: `count` runs of `len`
/// elements each, whose `(src_pos, dst_pos)` pairs form an arithmetic
/// progression starting at `(src_base, dst_base)` with per-run steps
/// `(src_step, dst_step)`. One 24-byte descriptor replaces `count`
/// 12-byte triples — for a cyclic(1) destination (one triple per
/// *element* in the flat encoding) the whole (provider, receiver) pair
/// collapses to a single family, shrinking the n=4M artifact from
/// O(n) triples to O(P_src × P_dst) descriptors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrideFamily {
    /// Element offset of the first run in the provider's local data.
    pub src_base: u32,
    /// Element offset of the first run in the receiver's local data.
    pub dst_base: u32,
    /// Number of runs in the family (≥ `MIN_FAMILY`).
    pub count: u32,
    /// Source offset advance between consecutive runs.
    pub src_step: u32,
    /// Destination offset advance between consecutive runs.
    pub dst_step: u32,
    /// Length of every run in the family, in elements.
    pub len: u32,
}

/// Which replay loop a [`CopyUnit`] dispatches to — chosen once at
/// compile time from the shape of the unit's encoded runs, so the
/// steady-state replay pays zero per-run classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Exactly one contiguous residual run: a single
    /// `copy_from_slice` (memcpy) moves the whole unit.
    Memcpy,
    /// Families only, every run one element long (the cyclic(1)
    /// shape): a tight scalar gather/scatter loop, no slice machinery.
    Gather,
    /// Families only, general run length: a blocked strided loop of
    /// `copy_from_slice` per run.
    Strided,
    /// Residual triples only (or an empty unit): the flat triple loop.
    Triples,
    /// Both families and residual triples: strided loop then triples.
    Mixed,
}

/// All runs of one (provider, receiver) pair: `fams` and `runs` are
/// half-open index ranges into [`CopyProgram::fams`] /
/// [`CopyProgram::runs`], and `kernel` picks the replay loop compiled
/// for their shape. Local units have `provider == receiver` (the
/// receiver already holds the elements under the source mapping);
/// remote units correspond one-to-one to the schedule's packed
/// messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CopyUnit {
    /// Rank whose *source-version* block is read.
    pub provider: u64,
    /// Rank whose *destination-version* block is written.
    pub receiver: u64,
    /// Half-open range into the program's stride-family list.
    pub fams: (u32, u32),
    /// Half-open range into the program's residual flat run list.
    pub runs: (u32, u32),
    /// Replay kernel chosen at compile time for this unit's shape.
    pub kernel: Kernel,
    /// Total elements this unit moves (the load-balancing weight).
    pub elements: u64,
}

/// A compiled copy program: the executable form of one redistribution's
/// data movement. Built once per (source, destination) version pair and
/// cached in [`crate::ArrayRt::plan_cache`] (or attached at compile
/// time by `hpfc-codegen`'s lowering), then replayed by
/// [`crate::VersionData::copy_values_from_program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CopyProgram {
    /// The (source, destination) mapping pair the triples were
    /// compiled for — replay refuses to apply them to any other pair
    /// (precompiled positions are meaningless against different block
    /// layouts). The `Arc` is shared with
    /// [`crate::RedistPlan::mappings`]: a cached
    /// [`crate::PlannedRemap`] stores the pair once, halving its
    /// mapping footprint.
    pub mappings: std::sync::Arc<(hpfc_mapping::NormalizedMapping, hpfc_mapping::NormalizedMapping)>,
    /// Stride-encoded run families, unit `fams` ranges index this.
    pub fams: Vec<StrideFamily>,
    /// Residual flat `(src_pos, dst_pos, len)` triples — only the
    /// genuinely irregular remainder that no arithmetic progression
    /// covers; unit `runs` ranges index this.
    pub runs: Vec<CopyRun>,
    /// Local units (`provider == receiver`), sorted by receiver — one
    /// round-like group whose receivers are all distinct.
    pub local: Vec<CopyUnit>,
    /// Remote units grouped by caterpillar round (mirrors
    /// [`CommSchedule::rounds`]); within a round receivers are
    /// pairwise distinct, each round's units sorted by receiver.
    pub rounds: Vec<Vec<CopyUnit>>,
    /// Total elements delivered (local + remote, replicas counted) —
    /// equals `plan.local_elements + plan.remote_elements()`.
    pub total_elements: u64,
    /// Integrity fingerprint over the triples and units, computed at
    /// compile time. The guarded replay path recomputes it before
    /// trusting a cached program ([`CopyProgram::integrity_ok`]): a
    /// poisoned cache entry cannot keep its fingerprint consistent, so
    /// corruption is detected *before* any position is dereferenced.
    pub fingerprint: u64,
}

/// Why [`CopyProgram::compile_checked`] declined to compile a plan —
/// the former silent `None` reasons, promoted to a typed result so the
/// fallback decision is auditable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompileDecline {
    /// The plan carries no per-dimension descriptors (e.g. one built by
    /// [`crate::plan_by_enumeration`]) or no mapping pair.
    NoDescriptors,
    /// Rank-0 scalar: the replica walk of the table engine is cheaper
    /// than a compiled program.
    Rank0,
    /// Some local position or run index overflows `u32` (blocks beyond
    /// 4 Gi elements); the table engine's `u64` arithmetic is the
    /// fallback.
    PositionOverflow,
    /// The plan → schedule → program compile panicked and was caught
    /// (`catch_unwind` around the registry's compile-under-lock), so
    /// the shard lock stays healthy and the caller retries a clean solo
    /// compile or falls back to the table engine.
    Panicked,
}

impl std::fmt::Display for CompileDecline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileDecline::NoDescriptors => write!(f, "plan carries no descriptors"),
            CompileDecline::Rank0 => write!(f, "rank-0 scalar"),
            CompileDecline::PositionOverflow => write!(f, "local position overflows u32"),
            CompileDecline::Panicked => write!(f, "plan compilation panicked (contained)"),
        }
    }
}

impl CopyProgram {
    /// Number of precompiled runs: every run a stride family encodes
    /// plus the residual triples — the same logical copy count the
    /// pre-stride flat encoding stored (modulo contiguous coalescing).
    pub fn n_runs(&self) -> u64 {
        self.fams.iter().map(|f| f.count as u64).sum::<u64>() + self.runs.len() as u64
    }

    /// Bytes the compiled artifact's run encoding occupies — the
    /// cache-residency number the stride encoding exists to shrink
    /// (families + residual triples + unit descriptors).
    pub fn artifact_bytes(&self) -> usize {
        self.fams.len() * std::mem::size_of::<StrideFamily>()
            + self.runs.len() * std::mem::size_of::<CopyRun>()
            + (self.local.len() + self.rounds.iter().map(Vec::len).sum::<usize>())
                * std::mem::size_of::<CopyUnit>()
    }

    /// Total elements the program delivers (each destination replica
    /// counts once).
    pub fn n_elements(&self) -> u64 {
        self.total_elements
    }

    /// Compile the plan's descriptor tables into an executable program.
    ///
    /// Returns `None` when the plan cannot drive a compiled program:
    /// it carries no descriptors (the enumeration oracle), it is a
    /// rank-0 scalar (the replica walk is cheaper than a program), or
    /// some local position overflows `u32` (blocks beyond 4 Gi
    /// elements). Callers fall back to the table engine
    /// ([`crate::VersionData::copy_values_from_plan`]). The typed
    /// reason is available from [`CopyProgram::compile_checked`].
    pub fn try_compile(plan: &RedistPlan, schedule: &CommSchedule) -> Option<CopyProgram> {
        CopyProgram::compile_checked(plan, schedule).ok()
    }

    /// [`CopyProgram::try_compile`] with the decline reason made
    /// explicit — the rank-0 / `u32`-overflow / no-descriptor debug
    /// assumptions promoted into a typed result.
    pub fn compile_checked(
        plan: &RedistPlan,
        schedule: &CommSchedule,
    ) -> Result<CopyProgram, CompileDecline> {
        CopyProgram::compile_inner(plan, schedule, false)
    }

    /// Whether the stored fingerprint still matches the program's
    /// contents — the cheap integrity check the guarded replay path
    /// applies before trusting a cached program.
    pub fn integrity_ok(&self) -> bool {
        self.fingerprint
            == program_fingerprint(
                &self.fams,
                &self.runs,
                &self.local,
                &self.rounds,
                self.total_elements,
            )
    }

    /// [`CopyProgram::try_compile`], parameterized over whether empty
    /// rounds are kept: a member program of a [`GroupCopyProgram`] is
    /// compiled against the *merged* schedule of its whole remap group,
    /// and must keep one (possibly empty) unit list per merged round so
    /// round `r` means the same wire round for every member.
    fn compile_inner(
        plan: &RedistPlan,
        schedule: &CommSchedule,
        keep_empty_rounds: bool,
    ) -> Result<CopyProgram, CompileDecline> {
        let (src, dst) = plan.mappings.as_deref().ok_or(CompileDecline::NoDescriptors)?;
        let rank = src.array_extents.rank();
        if rank == 0 {
            return Err(CompileDecline::Rank0);
        }
        if plan.dims.len() != rank {
            return Err(CompileDecline::NoDescriptors);
        }
        let mappings = std::sync::Arc::clone(plan.mappings.as_ref().expect("checked above"));
        if plan.dims.iter().any(|e| e.is_empty()) {
            // Empty array: a program with nothing to do (round-aligned
            // when asked, so group replay can still index by round).
            let rounds = if keep_empty_rounds {
                vec![Vec::new(); schedule.rounds.len()]
            } else {
                Vec::new()
            };
            let fingerprint = program_fingerprint(&[], &[], &[], &rounds, 0);
            return Ok(CopyProgram {
                mappings,
                fams: Vec::new(),
                runs: Vec::new(),
                local: Vec::new(),
                rounds,
                total_elements: 0,
                fingerprint,
            });
        }
        let per_dim = &plan.dims;

        // Message (from, to) -> caterpillar round, from the schedule.
        let round_of: BTreeMap<(u64, u64), usize> = schedule.round_of_pairs().collect();

        // Per entry, the local extent of the owning block along that
        // dimension on each side (`|src_set|` / `|dst_set|` — identical
        // to the block dim-list lengths the storage layer allocates).
        let s_lens: Vec<Vec<u64>> =
            per_dim.iter().map(|es| es.iter().map(|e| e.src_set.count()).collect()).collect();
        let d_lens: Vec<Vec<u64>> =
            per_dim.iter().map(|es| es.iter().map(|e| e.dst_set.count()).collect()).collect();

        // Decline closed-form BEFORE materializing any intersection
        // run: every recorded position is a prefix count into one
        // rank's local block, bounded by that rank's per-dim count
        // product — so when any side's largest local volume exceeds
        // the u32 triple format, some position must overflow, and the
        // program is refused in O(descriptor entries) instead of after
        // enumerating gigabytes of runs. This pre-check, the per-push
        // backstop in `record_combination`, the unit-range assembly,
        // and the stride-family counts all funnel through the single
        // [`fit_u32`] gate, so every >4Gi shape declines via the same
        // `CompileDecline::PositionOverflow` path.
        let max_local = |lens: &[Vec<u64>]| {
            lens.iter()
                .map(|ls| ls.iter().copied().max().unwrap_or(0))
                .fold(1u64, u64::saturating_mul)
        };
        fit_u32(max_local(&s_lens))?;
        fit_u32(max_local(&d_lens))?;

        // Materialize every entry's intersection runs.
        let n_of = |d: usize| src.array_extents.extent(d);
        let entry_runs: Vec<Vec<Vec<(u64, u64)>>> = per_dim
            .iter()
            .enumerate()
            .map(|(d, entries)| {
                entries
                    .iter()
                    .map(|e| intersect_runs(&e.src_set, &e.dst_set, 0, n_of(d)).collect())
                    .collect()
            })
            .collect();

        // Accumulate runs per (provider, receiver) pair — the planner's
        // shared combination walk (rank assembly, replica fan-out,
        // receiver self-preference live there exactly once), with the
        // copy replaced by position recording.
        let mut acc: BTreeMap<(u64, u64), Vec<CopyRun>> = BTreeMap::new();
        let mut runs_ref: Vec<&[(u64, u64)]> = vec![&[]; rank];
        let mut entries_ref: Vec<&DimContribution> = Vec::with_capacity(rank);
        let mut s_len = vec![0u64; rank];
        let mut d_len = vec![0u64; rank];
        let mut fits_u32 = true;
        crate::redist::for_each_pair_combination(src, dst, per_dim, |provider, to, idx| {
            if !fits_u32 {
                return;
            }
            entries_ref.clear();
            for d in 0..rank {
                entries_ref.push(&per_dim[d][idx[d]]);
                runs_ref[d] = &entry_runs[d][idx[d]];
                s_len[d] = s_lens[d][idx[d]];
                d_len[d] = d_lens[d][idx[d]];
            }
            if record_combination(
                &runs_ref,
                &entries_ref,
                &s_len,
                &d_len,
                acc.entry((provider, to)).or_default(),
            )
            .is_none()
            {
                fits_u32 = false;
            }
        });
        if !fits_u32 {
            return Err(CompileDecline::PositionOverflow);
        }

        // Assemble: stride-encode each (provider, receiver) pair's
        // triples into families plus an irregular residual, and
        // partition units into the local group and the schedule's
        // rounds. BTreeMap iteration gives (provider, receiver) order;
        // re-sorting each group by receiver keeps the parallel
        // executor's block walk a single pass.
        let mut fams = Vec::new();
        let mut runs = Vec::new();
        let mut local = Vec::new();
        let mut rounds: Vec<Vec<CopyUnit>> = vec![Vec::new(); schedule.rounds.len()];
        let mut total_elements = 0u64;
        for ((provider, receiver), rs) in acc {
            let f_start = fit_u32(fams.len() as u64)?;
            let r_start = fit_u32(runs.len() as u64)?;
            let elements: u64 = rs.iter().map(|r| r.len as u64).sum();
            encode_runs(rs, &mut fams, &mut runs)?;
            let f_end = fit_u32(fams.len() as u64)?;
            let r_end = fit_u32(runs.len() as u64)?;
            total_elements += elements;
            let kernel =
                choose_kernel(&fams[f_start as usize..], &runs[r_start as usize..]);
            let unit = CopyUnit {
                provider,
                receiver,
                fams: (f_start, f_end),
                runs: (r_start, r_end),
                kernel,
                elements,
            };
            if provider == receiver {
                local.push(unit);
            } else {
                let r = *round_of
                    .get(&(provider, receiver))
                    .expect("every remote pair has a scheduled message");
                rounds[r].push(unit);
            }
        }
        for round in &mut rounds {
            round.sort_by_key(|u| u.receiver);
        }
        if !keep_empty_rounds {
            rounds.retain(|r| !r.is_empty());
        }
        debug_assert_eq!(
            total_elements,
            plan.local_elements + plan.remote_elements(),
            "compiled program delivers exactly the planned volume"
        );
        let fingerprint = program_fingerprint(&fams, &runs, &local, &rounds, total_elements);
        Ok(CopyProgram { mappings, fams, runs, local, rounds, total_elements, fingerprint })
    }

    /// Expand the stride families back into flat triples — the
    /// pre-stride encoding, kept as the A/B baseline for the
    /// `redist/kernel_dispatch` bench and the encoder's equivalence
    /// tests. Every unit's kernel becomes [`Kernel::Triples`]; the
    /// replayed bytes are identical by construction.
    #[doc(hidden)]
    pub fn expand_to_triples(&self) -> CopyProgram {
        fn expand_unit(p: &CopyProgram, u: &CopyUnit, runs: &mut Vec<CopyRun>) -> CopyUnit {
            let start = runs.len() as u32;
            for f in &p.fams[u.fams.0 as usize..u.fams.1 as usize] {
                let (mut s, mut d) = (f.src_base as u64, f.dst_base as u64);
                for _ in 0..f.count {
                    runs.push(CopyRun { src_pos: s as u32, dst_pos: d as u32, len: f.len });
                    s += f.src_step as u64;
                    d += f.dst_step as u64;
                }
            }
            runs.extend_from_slice(&p.runs[u.runs.0 as usize..u.runs.1 as usize]);
            CopyUnit {
                provider: u.provider,
                receiver: u.receiver,
                fams: (0, 0),
                runs: (start, runs.len() as u32),
                kernel: Kernel::Triples,
                elements: u.elements,
            }
        }
        let mut runs = Vec::with_capacity(self.n_runs() as usize);
        let local: Vec<CopyUnit> =
            self.local.iter().map(|u| expand_unit(self, u, &mut runs)).collect();
        let rounds: Vec<Vec<CopyUnit>> = self
            .rounds
            .iter()
            .map(|r| r.iter().map(|u| expand_unit(self, u, &mut runs)).collect())
            .collect();
        let fingerprint = program_fingerprint(&[], &runs, &local, &rounds, self.total_elements);
        CopyProgram {
            mappings: std::sync::Arc::clone(&self.mappings),
            fams: Vec::new(),
            runs,
            local,
            rounds,
            total_elements: self.total_elements,
            fingerprint,
        }
    }

    /// Whether this program was compiled for exactly the
    /// (`src`, `dst`) mapping pair — the guard
    /// [`crate::VersionData::copy_values_from_program`] applies before
    /// replaying (an allocation-free structural comparison).
    pub fn compiled_for(&self, src: &VersionData, dst: &VersionData) -> bool {
        self.mappings.0 == src.mapping && self.mappings.1 == dst.mapping
    }

    /// Replay the program: move every precompiled run from `src`'s
    /// blocks into `dst`'s. The caller guarantees `dst`/`src` are the
    /// version pair the program was compiled for (checked by
    /// [`CopyProgram::compiled_for`] in the public entry point).
    pub(crate) fn execute(&self, dst: &mut VersionData, src: &VersionData, mode: ExecMode) {
        debug_assert_eq!(dst.mapping.array_extents, src.mapping.array_extents);
        match mode {
            ExecMode::Parallel(t) if t > 1 => self.execute_parallel(dst, src, t),
            _ => self.execute_serial(dst, src),
        }
    }

    /// Serial replay — the allocation-free steady-state path.
    fn execute_serial(&self, dst: &mut VersionData, src: &VersionData) {
        for unit in self.local.iter().chain(self.rounds.iter().flatten()) {
            let src_block =
                src.blocks[unit.provider as usize].as_ref().expect("provider holds the data");
            let dst_block = dst.blocks[unit.receiver as usize]
                .as_mut()
                .expect("receiver allocates the data");
            replay_unit(&self.fams, &self.runs, *unit, src_block, dst_block);
        }
    }

    /// Parallel replay: per round (local group first), pair each unit
    /// with its receiver's block in one pass over the block table —
    /// receivers within a round are pairwise distinct, so every `&mut`
    /// handed to a worker is unique — then split the units into
    /// `threads` contiguous chunks balanced by element count. Rounds
    /// below [`PARALLEL_THRESHOLD`] elements replay inline
    /// ([`round_goes_inline`]): a thread spawn costs tens of
    /// microseconds, which only a round with real volume can amortize.
    fn execute_parallel(&self, dst: &mut VersionData, src: &VersionData, threads: usize) {
        for round in std::iter::once(&self.local).chain(self.rounds.iter()) {
            if round.is_empty() {
                continue;
            }
            let total: u64 = round.iter().map(|u| u.elements).sum();
            if round_goes_inline(total) {
                for unit in round {
                    let src_block = src.blocks[unit.provider as usize]
                        .as_ref()
                        .expect("provider holds the data");
                    let dst_block = dst.blocks[unit.receiver as usize]
                        .as_mut()
                        .expect("receiver allocates the data");
                    replay_unit(&self.fams, &self.runs, *unit, src_block, dst_block);
                }
                continue;
            }
            let mut paired: Vec<PairedUnit<'_>> = Vec::with_capacity(round.len());
            pair_round_units(round, &self.fams, &self.runs, src, dst, &mut paired);
            replay_chunked(paired, total, threads);
        }
    }
}

/// One parallel-replay work item: the receiving block, the providing
/// block, the unit, and the family/run tables its ranges index.
pub(crate) type PairedUnit<'a> =
    (&'a mut LocalBlock, &'a LocalBlock, CopyUnit, &'a [StrideFamily], &'a [CopyRun]);

/// Pair one program's round units with their receiving blocks in a
/// single pass over the destination block table — valid because units
/// are sorted by receiver and receivers within a round are distinct
/// (the caterpillar contention-freedom), so every `&mut` handed out is
/// unique. Appends to `out` so callers can pool several programs'
/// units (the group replay) before spawning.
pub(crate) fn pair_round_units<'a>(
    units: &'a [CopyUnit],
    fams: &'a [StrideFamily],
    runs: &'a [CopyRun],
    src: &'a VersionData,
    dst: &'a mut VersionData,
    out: &mut Vec<PairedUnit<'a>>,
) {
    let mut it = units.iter().peekable();
    for (rank, slot) in dst.blocks.iter_mut().enumerate() {
        match it.peek() {
            Some(u) if u.receiver == rank as u64 => {
                let db = slot.as_mut().expect("receiver allocates the data");
                let sb = src.blocks[u.provider as usize]
                    .as_ref()
                    .expect("provider holds the data");
                out.push((db, sb, **u, fams, runs));
                it.next();
            }
            Some(_) => {}
            None => break,
        }
    }
    debug_assert!(it.next().is_none(), "round receivers are sorted and distinct");
}

/// Split paired units into contiguous chunks balanced by element count
/// (`total` elements across `threads` workers) and replay each chunk
/// on a scoped worker thread. Receivers are pairwise distinct across
/// the whole `paired` list by construction, so no locks are needed.
pub(crate) fn replay_chunked(paired: Vec<PairedUnit<'_>>, total: u64, threads: usize) {
    let target = total.div_ceil(threads as u64).max(1);
    std::thread::scope(|scope| {
        let mut rest = paired;
        while !rest.is_empty() {
            let mut weight = 0u64;
            let mut take = 0usize;
            while take < rest.len() && (take == 0 || weight < target) {
                weight += rest[take].2.elements;
                take += 1;
            }
            let tail = rest.split_off(take);
            let chunk = std::mem::replace(&mut rest, tail);
            scope.spawn(move || {
                for (db, sb, unit, fams, runs) in chunk {
                    replay_unit(fams, runs, unit, sb, db);
                }
            });
        }
    });
}

/// The compiled data movement of a whole remap group: one round-aligned
/// member [`CopyProgram`] per member plan of the group's merged
/// [`CommSchedule`]. Every member's `rounds[r]` holds its units of
/// merged wire round `r` (empty rounds kept), so the group replay
/// ([`crate::group::remap_group`]) can walk the rounds once and move
/// every member array's units of that round together — serially in
/// member order (receiving *blocks* are distinct across members: each
/// member writes its own array's storage) or split across scoped worker
/// threads in [`ExecMode::Parallel`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupCopyProgram {
    /// One round-aligned program per member plan, in group order; every
    /// member has exactly `n_rounds` round unit lists.
    pub members: Vec<CopyProgram>,
    /// Merged wire round count (`== merged schedule's rounds.len()`).
    pub n_rounds: usize,
    /// Total elements delivered across all members (local + remote,
    /// replicas counted).
    pub total_elements: u64,
}

impl GroupCopyProgram {
    /// Compile every member plan against the group's merged schedule.
    /// Returns `None` if any member cannot drive a compiled program
    /// (the group then falls back to per-member solo remaps).
    pub fn try_compile(plans: &[&RedistPlan], merged: &CommSchedule) -> Option<GroupCopyProgram> {
        let members: Vec<CopyProgram> = plans
            .iter()
            .map(|p| CopyProgram::compile_inner(p, merged, true).ok())
            .collect::<Option<_>>()?;
        debug_assert!(members.iter().all(|m| m.rounds.len() == merged.rounds.len()));
        let total_elements = members.iter().map(|m| m.total_elements).sum();
        Some(GroupCopyProgram { members, n_rounds: merged.rounds.len(), total_elements })
    }

    /// Whether every member program's fingerprint still matches its
    /// contents (see [`CopyProgram::integrity_ok`]).
    pub fn integrity_ok(&self) -> bool {
        self.members.iter().all(CopyProgram::integrity_ok)
    }
}

/// Below this many elements a round is replayed inline even in
/// [`ExecMode::Parallel`] — the scoped-thread spawns would cost more
/// than the copy itself.
pub(crate) const PARALLEL_THRESHOLD: u64 = 1 << 15;

/// The one inline-vs-parallel decision: a round of `total` elements
/// replays inline iff it is strictly below [`PARALLEL_THRESHOLD`].
/// Every round dispatcher — the solo and group replays, guarded and
/// unguarded — routes through this predicate, so a round of exactly
/// threshold size takes the same engine everywhere.
#[inline]
pub(crate) fn round_goes_inline(total: u64) -> bool {
    total < PARALLEL_THRESHOLD
}

/// Fewest runs an arithmetic progression must cover before the encoder
/// emits a [`StrideFamily`] instead of residual triples — below this a
/// 24-byte descriptor plus loop control beats 12-byte triples by too
/// little to matter.
pub(crate) const MIN_FAMILY: usize = 4;

/// The single u32-overflow gate of program compilation: every local
/// position, run index, family index, and family count funnels through
/// here, so any >4Gi shape declines via one
/// [`CompileDecline::PositionOverflow`] path (the table engine's u64
/// arithmetic is the fallback).
#[inline]
fn fit_u32(x: u64) -> Result<u32, CompileDecline> {
    u32::try_from(x).map_err(|_| CompileDecline::PositionOverflow)
}

/// Stride-encode one (provider, receiver) pair's triples: coalesce
/// adjacent contiguous-in-both runs, then greedily detect arithmetic
/// progressions in `(src_pos, dst_pos)` of equal-length runs. Runs of
/// ≥ [`MIN_FAMILY`] progressions become [`StrideFamily`] descriptors
/// in `fams`; the genuinely irregular remainder lands in `runs` as
/// explicit triples. Positions within one pair are produced in
/// ascending destination order by the combination walk, so steps are
/// non-negative; combination boundaries (where positions may jump
/// backward) simply break the progression.
fn encode_runs(
    rs: Vec<CopyRun>,
    fams: &mut Vec<StrideFamily>,
    runs: &mut Vec<CopyRun>,
) -> Result<(), CompileDecline> {
    // Pass 1: merge runs contiguous on BOTH sides — a unit-stride
    // span is one memcpy at replay, however the walk sliced it.
    let mut co: Vec<CopyRun> = Vec::with_capacity(rs.len());
    for r in rs {
        match co.last_mut() {
            Some(last)
                if last.src_pos + last.len == r.src_pos
                    && last.dst_pos + last.len == r.dst_pos =>
            {
                last.len += r.len;
            }
            _ => co.push(r),
        }
    }
    // Pass 2: greedy arithmetic-progression detection.
    let mut i = 0usize;
    while i < co.len() {
        let mut j = i;
        let mut src_step = 0u32;
        let mut dst_step = 0u32;
        if let Some(next) = co.get(i + 1) {
            if next.len == co[i].len {
                if let (Some(ss), Some(ds)) = (
                    next.src_pos.checked_sub(co[i].src_pos),
                    next.dst_pos.checked_sub(co[i].dst_pos),
                ) {
                    src_step = ss;
                    dst_step = ds;
                    j = i + 1;
                    while j + 1 < co.len()
                        && co[j + 1].len == co[i].len
                        && co[j + 1].src_pos.checked_sub(co[j].src_pos) == Some(src_step)
                        && co[j + 1].dst_pos.checked_sub(co[j].dst_pos) == Some(dst_step)
                    {
                        j += 1;
                    }
                }
            }
        }
        let count = j - i + 1;
        if count >= MIN_FAMILY {
            fams.push(StrideFamily {
                src_base: co[i].src_pos,
                dst_base: co[i].dst_pos,
                count: fit_u32(count as u64)?,
                src_step,
                dst_step,
                len: co[i].len,
            });
            i = j + 1;
        } else {
            runs.push(co[i]);
            i += 1;
        }
    }
    Ok(())
}

/// Pick the replay kernel for one unit's encoded runs — decided once
/// at compile time so replay pays zero per-run classification.
fn choose_kernel(fams: &[StrideFamily], runs: &[CopyRun]) -> Kernel {
    match (fams.is_empty(), runs.is_empty()) {
        // A unit-stride span coalesces to a single residual triple:
        // the whole unit is one memcpy.
        (true, false) if runs.len() == 1 => Kernel::Memcpy,
        (true, _) => Kernel::Triples,
        (false, true) if fams.iter().all(|f| f.len == 1) => Kernel::Gather,
        (false, true) => Kernel::Strided,
        (false, false) => Kernel::Mixed,
    }
}

/// Replay every run of one stride family.
#[inline]
fn replay_family(f: &StrideFamily, src: &LocalBlock, dst: &mut LocalBlock) {
    let (mut s, mut d) = (f.src_base as usize, f.dst_base as usize);
    let (ss, ds, len) = (f.src_step as usize, f.dst_step as usize, f.len as usize);
    if len == 1 {
        for _ in 0..f.count {
            dst.data[d] = src.data[s];
            s += ss;
            d += ds;
        }
    } else {
        for _ in 0..f.count {
            dst.data[d..d + len].copy_from_slice(&src.data[s..s + len]);
            s += ss;
            d += ds;
        }
    }
}

/// Replay one unit's residual triples (the pre-stride flat loop).
#[inline]
fn replay_triples(runs: &[CopyRun], unit: CopyUnit, src: &LocalBlock, dst: &mut LocalBlock) {
    let (lo, hi) = unit.runs;
    for r in &runs[lo as usize..hi as usize] {
        let (s, d, len) = (r.src_pos as usize, r.dst_pos as usize, r.len as usize);
        if len == 1 {
            dst.data[d] = src.data[s];
        } else {
            dst.data[d..d + len].copy_from_slice(&src.data[s..s + len]);
        }
    }
}

/// Replay one unit by dispatching to the kernel chosen at compile
/// time: unit-stride → one `copy_from_slice` (memcpy), single-element
/// families → a tight scalar gather/scatter loop, general families →
/// a blocked strided loop, irregular residue → the flat triple loop.
#[inline]
pub(crate) fn replay_unit(
    fams: &[StrideFamily],
    runs: &[CopyRun],
    unit: CopyUnit,
    src: &LocalBlock,
    dst: &mut LocalBlock,
) {
    match unit.kernel {
        Kernel::Memcpy => {
            let r = runs[unit.runs.0 as usize];
            let (s, d, len) = (r.src_pos as usize, r.dst_pos as usize, r.len as usize);
            dst.data[d..d + len].copy_from_slice(&src.data[s..s + len]);
        }
        Kernel::Gather => {
            for f in &fams[unit.fams.0 as usize..unit.fams.1 as usize] {
                let (mut s, mut d) = (f.src_base as usize, f.dst_base as usize);
                let (ss, ds) = (f.src_step as usize, f.dst_step as usize);
                for _ in 0..f.count {
                    dst.data[d] = src.data[s];
                    s += ss;
                    d += ds;
                }
            }
        }
        Kernel::Strided => {
            for f in &fams[unit.fams.0 as usize..unit.fams.1 as usize] {
                replay_family(f, src, dst);
            }
        }
        Kernel::Triples => replay_triples(runs, unit, src, dst),
        Kernel::Mixed => {
            for f in &fams[unit.fams.0 as usize..unit.fams.1 as usize] {
                replay_family(f, src, dst);
            }
            replay_triples(runs, unit, src, dst);
        }
    }
}

/// Record the `(src_pos, dst_pos, len)` triples of one descriptor
/// combination — the position arithmetic of the table engine's
/// `copy_runs`, evaluated once at compile time. `s_len`/`d_len` are the
/// per-dimension local extents of the provider/receiver blocks
/// (`|src_set|` / `|dst_set|` of the combination's entries). Returns
/// `None` when a position overflows `u32`.
fn record_combination(
    runs_by_dim: &[&[(u64, u64)]],
    entries: &[&DimContribution],
    s_len: &[u64],
    d_len: &[u64],
    out: &mut Vec<CopyRun>,
) -> Option<()> {
    let rank = runs_by_dim.len();
    let last = rank - 1;
    let e_last = entries[last];
    let mut push = |s_at: u64, d_at: u64, len: u64| -> Option<()> {
        out.push(CopyRun {
            src_pos: u32::try_from(s_at).ok()?,
            dst_pos: u32::try_from(d_at).ok()?,
            len: u32::try_from(len).ok()?,
        });
        Some(())
    };
    // Odometer over the outer dimensions, one global index at a time:
    // per dimension, (run index, offset inside the run).
    let mut cur = vec![(0usize, 0u64); last];
    loop {
        let mut d_pref = 0u64;
        let mut s_pref = 0u64;
        for d in 0..last {
            let (ri, off) = cur[d];
            let g = runs_by_dim[d][ri].0 + off;
            d_pref = d_pref * d_len[d] + entries[d].dst_set.count_below(g);
            s_pref = s_pref * s_len[d] + entries[d].src_set.count_below(g);
        }
        for &(lo, hi) in runs_by_dim[last] {
            let dp = e_last.dst_set.count_below(lo);
            let sp = e_last.src_set.count_below(lo);
            push(s_pref * s_len[last] + sp, d_pref * d_len[last] + dp, hi - lo)?;
        }
        // Advance the outer odometer (innermost outer dim fastest).
        let mut d = last;
        loop {
            if d == 0 {
                return Some(());
            }
            d -= 1;
            let (ref mut ri, ref mut off) = cur[d];
            *off += 1;
            if runs_by_dim[d][*ri].0 + *off < runs_by_dim[d][*ri].1 {
                break;
            }
            *off = 0;
            *ri += 1;
            if *ri < runs_by_dim[d].len() {
                break;
            }
            *ri = 0;
        }
    }
}

/// One 64-bit mixing step (splitmix64 finalizer) — shared by the
/// program fingerprint and the fault plan's site hashing.
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Fingerprint of a program's executable content: every stride family,
/// every residual triple, every unit boundary (family and run ranges,
/// kernel tag), and the totals. Any single-field corruption of a
/// cached program changes the value, and memory corruption cannot keep
/// the stored fingerprint consistent with recomputation.
fn program_fingerprint(
    fams: &[StrideFamily],
    runs: &[CopyRun],
    local: &[CopyUnit],
    rounds: &[Vec<CopyUnit>],
    total_elements: u64,
) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    h = mix64(h ^ total_elements);
    h = mix64(h ^ fams.len() as u64);
    for f in fams {
        h = mix64(h ^ (((f.src_base as u64) << 32) | f.dst_base as u64));
        h = mix64(h ^ (((f.src_step as u64) << 32) | f.dst_step as u64));
        h = mix64(h ^ (((f.count as u64) << 32) | f.len as u64));
    }
    h = mix64(h ^ runs.len() as u64);
    for r in runs {
        h = mix64(h ^ (((r.src_pos as u64) << 32) | r.dst_pos as u64));
        h = mix64(h ^ r.len as u64);
    }
    h = mix64(h ^ rounds.len() as u64);
    for u in local.iter().chain(rounds.iter().flatten()) {
        h = mix64(h ^ (u.provider.rotate_left(32) ^ u.receiver));
        h = mix64(h ^ (((u.fams.0 as u64) << 32) | u.fams.1 as u64));
        h = mix64(h ^ (((u.runs.0 as u64) << 32) | u.runs.1 as u64));
        h = mix64(h ^ u.elements);
        h = mix64(h ^ u.kernel as u64);
    }
    h
}

/// Number of logical copy runs one unit performs: every run its
/// stride families encode plus its residual triples — the per-unit
/// slice of [`CopyProgram::n_runs`], used by the guarded replay's
/// accounting.
pub(crate) fn unit_n_runs(fams: &[StrideFamily], unit: CopyUnit) -> u64 {
    let (flo, fhi) = unit.fams;
    fams[flo as usize..fhi as usize].iter().map(|f| f.count as u64).sum::<u64>()
        + (unit.runs.1 - unit.runs.0) as u64
}

/// Sum of the *source* words one unit reads, as raw `f64` bits
/// (wrapping). Together with [`unit_dst_sum`] this is the per-unit
/// checksum of `HPFC_VALIDATE=checksums`: after a clean replay the two
/// sums are equal; any scribbled destination word breaks the equality.
pub(crate) fn unit_src_sum(
    fams: &[StrideFamily],
    runs: &[CopyRun],
    unit: CopyUnit,
    src: &LocalBlock,
) -> u64 {
    let mut sum = 0u64;
    for f in &fams[unit.fams.0 as usize..unit.fams.1 as usize] {
        let (mut s, ss, len) = (f.src_base as usize, f.src_step as usize, f.len as usize);
        for _ in 0..f.count {
            for w in &src.data[s..s + len] {
                sum = sum.wrapping_add(w.to_bits());
            }
            s += ss;
        }
    }
    let (lo, hi) = unit.runs;
    for r in &runs[lo as usize..hi as usize] {
        let (s, len) = (r.src_pos as usize, r.len as usize);
        for w in &src.data[s..s + len] {
            sum = sum.wrapping_add(w.to_bits());
        }
    }
    sum
}

/// Sum of the *destination* words one unit wrote (see [`unit_src_sum`]).
pub(crate) fn unit_dst_sum(
    fams: &[StrideFamily],
    runs: &[CopyRun],
    unit: CopyUnit,
    dst: &LocalBlock,
) -> u64 {
    let mut sum = 0u64;
    for f in &fams[unit.fams.0 as usize..unit.fams.1 as usize] {
        let (mut d, ds, len) = (f.dst_base as usize, f.dst_step as usize, f.len as usize);
        for _ in 0..f.count {
            for w in &dst.data[d..d + len] {
                sum = sum.wrapping_add(w.to_bits());
            }
            d += ds;
        }
    }
    let (lo, hi) = unit.runs;
    for r in &runs[lo as usize..hi as usize] {
        let (d, len) = (r.dst_pos as usize, r.len as usize);
        for w in &dst.data[d..d + len] {
            sum = sum.wrapping_add(w.to_bits());
        }
    }
    sum
}

/// Flip one bit of the first word a unit delivered — the
/// `CorruptRound` fault's scribble. Returns `false` when the unit has
/// no runs to corrupt.
pub(crate) fn flip_unit_word(
    fams: &[StrideFamily],
    runs: &[CopyRun],
    unit: CopyUnit,
    dst: &mut LocalBlock,
) -> bool {
    if let Some(f) = fams[unit.fams.0 as usize..unit.fams.1 as usize]
        .iter()
        .find(|f| f.count > 0 && f.len > 0)
    {
        let d = f.dst_base as usize;
        dst.data[d] = f64::from_bits(dst.data[d].to_bits() ^ 1);
        return true;
    }
    let (lo, hi) = unit.runs;
    for r in &runs[lo as usize..hi as usize] {
        if r.len > 0 {
            let d = r.dst_pos as usize;
            dst.data[d] = f64::from_bits(dst.data[d].to_bits() ^ 1);
            return true;
        }
    }
    false
}

/// [`replay_chunked`], with fault-injection hooks: when `panic_chunk`
/// is `Some(i)`, the worker running chunk `i` panics halfway through
/// its units (the `WorkerPanic` fault) — `std::thread::scope`
/// propagates that panic to the caller at join, where the guarded
/// replay catches it with `catch_unwind` and degrades the round.
pub(crate) fn replay_chunked_guarded(
    paired: Vec<PairedUnit<'_>>,
    total: u64,
    threads: usize,
    panic_chunk: Option<usize>,
) {
    let target = total.div_ceil(threads as u64).max(1);
    std::thread::scope(|scope| {
        let mut rest = paired;
        let mut idx = 0usize;
        while !rest.is_empty() {
            let mut weight = 0u64;
            let mut take = 0usize;
            while take < rest.len() && (take == 0 || weight < target) {
                weight += rest[take].2.elements;
                take += 1;
            }
            let tail = rest.split_off(take);
            let chunk = std::mem::replace(&mut rest, tail);
            let boom = panic_chunk == Some(idx);
            scope.spawn(move || {
                let half = chunk.len() / 2;
                for (i, (db, sb, unit, fams, runs)) in chunk.into_iter().enumerate() {
                    if boom && i == half {
                        std::panic::panic_any(crate::fault::InjectedPanic);
                    }
                    replay_unit(fams, runs, unit, sb, db);
                }
            });
            idx += 1;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::redist::plan_redistribution;
    use hpfc_mapping::{testing::mapping_1d as mk, DimFormat, NormalizedMapping};

    fn compiled(src: &NormalizedMapping, dst: &NormalizedMapping) -> (RedistPlan, CopyProgram) {
        let plan = plan_redistribution(src, dst, 8);
        let schedule = CommSchedule::from_plan(&plan);
        let prog = CopyProgram::try_compile(&plan, &schedule).expect("compiles");
        (plan, prog)
    }

    #[test]
    fn program_replays_block_to_cyclic() {
        let src = mk(16, 4, DimFormat::Block(None));
        let dst = mk(16, 4, DimFormat::Cyclic(None));
        let (plan, prog) = compiled(&src, &dst);
        assert_eq!(prog.n_elements(), plan.local_elements + plan.remote_elements());
        let mut a = VersionData::new(src, 8);
        a.fill(|p| p[0] as f64 + 1.0);
        let mut b = VersionData::new(dst, 8);
        b.copy_values_from_program(&a, &prog, ExecMode::Serial);
        assert_eq!(a.to_dense(), b.to_dense());
        // Parallel replay writes the identical bytes.
        let mut c = VersionData::new(b.mapping.clone(), 8);
        c.copy_values_from_program(&a, &prog, ExecMode::Parallel(3));
        assert_eq!(b, c);
    }

    #[test]
    fn program_rounds_mirror_schedule_and_are_receiver_disjoint() {
        let src = mk(60, 4, DimFormat::Cyclic(Some(3)));
        let dst = mk(60, 5, DimFormat::Cyclic(Some(2)));
        let plan = plan_redistribution(&src, &dst, 8);
        let schedule = CommSchedule::from_plan(&plan);
        let prog = CopyProgram::try_compile(&plan, &schedule).expect("compiles");
        // One remote unit per scheduled message.
        let n_units: usize = prog.rounds.iter().map(Vec::len).sum();
        assert_eq!(n_units, schedule.messages.len());
        for round in &prog.rounds {
            let mut receivers: Vec<u64> = round.iter().map(|u| u.receiver).collect();
            receivers.dedup();
            assert_eq!(receivers.len(), round.len(), "receivers distinct within a round");
        }
        // Local units: one per receiver, distinct by construction.
        let mut local: Vec<u64> = prog.local.iter().map(|u| u.receiver).collect();
        local.dedup();
        assert_eq!(local.len(), prog.local.len());
    }

    #[test]
    fn threaded_replay_above_threshold_matches_serial() {
        // Rounds of ~65k elements: well above PARALLEL_THRESHOLD, so
        // Parallel(3) really spawns scoped workers with split blocks.
        let n = 1u64 << 18;
        let src = mk(n, 4, DimFormat::Block(None));
        let dst = mk(n, 4, DimFormat::Cyclic(Some(2)));
        let (plan, prog) = compiled(&src, &dst);
        assert!(
            prog.rounds.iter().any(|r| r.iter().map(|u| u.elements).sum::<u64>()
                >= PARALLEL_THRESHOLD),
            "test must cross the inline threshold"
        );
        let mut a = VersionData::new(src, 8);
        a.fill(|p| (p[0] % 509) as f64);
        let mut serial = VersionData::new(dst, 8);
        serial.copy_values_from_program(&a, &prog, ExecMode::Serial);
        let mut parallel = VersionData::new(serial.mapping.clone(), 8);
        parallel.copy_values_from_program(&a, &prog, ExecMode::Parallel(3));
        assert_eq!(serial, parallel);
        assert_eq!(prog.n_elements(), plan.local_elements + plan.remote_elements());
    }

    #[test]
    fn oracle_plans_do_not_compile() {
        let src = mk(12, 3, DimFormat::Block(None));
        let dst = mk(12, 3, DimFormat::Cyclic(None));
        let plan = crate::redist::plan_by_enumeration(&src, &dst, 8);
        let schedule = CommSchedule::from_plan(&plan);
        assert!(CopyProgram::try_compile(&plan, &schedule).is_none());
    }

    #[test]
    fn exec_mode_threads() {
        assert_eq!(ExecMode::Serial.threads(), 1);
        assert_eq!(ExecMode::Parallel(4).threads(), 4);
        assert_eq!(ExecMode::Parallel(0).threads(), 1);
    }

    #[test]
    fn exec_mode_parse_distinguishes_unparsable_values() {
        assert_eq!(ExecMode::parse("4"), Some(ExecMode::Parallel(4)));
        assert_eq!(ExecMode::parse(" 2 "), Some(ExecMode::Parallel(2)));
        assert_eq!(ExecMode::parse("1"), Some(ExecMode::Serial));
        assert_eq!(ExecMode::parse("0"), Some(ExecMode::Serial));
        // Unparsable values are `None`, so `from_env` can warn instead
        // of silently serializing.
        assert_eq!(ExecMode::parse("four"), None);
        assert_eq!(ExecMode::parse(""), None);
        assert_eq!(ExecMode::parse("-3"), None);
    }

    #[test]
    fn compile_checked_reports_typed_declines() {
        // Enumeration-oracle plans carry no descriptors.
        let src = mk(12, 3, DimFormat::Block(None));
        let dst = mk(12, 3, DimFormat::Cyclic(None));
        let plan = crate::redist::plan_by_enumeration(&src, &dst, 8);
        let schedule = CommSchedule::from_plan(&plan);
        assert_eq!(
            CopyProgram::compile_checked(&plan, &schedule),
            Err(CompileDecline::NoDescriptors)
        );
        // A single 6 Gi-element block: local positions exceed u32::MAX.
        // Declined closed-form from the descriptor counts — nothing
        // here allocates 6 Gi of data or a single triple.
        let n = 6u64 << 30;
        let src = mk(n, 1, DimFormat::Block(None));
        let dst = mk(n, 1, DimFormat::Cyclic(Some(3)));
        let plan = plan_redistribution(&src, &dst, 8);
        let schedule = CommSchedule::from_plan(&plan);
        assert_eq!(
            CopyProgram::compile_checked(&plan, &schedule),
            Err(CompileDecline::PositionOverflow)
        );
    }

    #[test]
    fn cyclic1_collapses_to_gather_families() {
        // Block → Cyclic(1): the flat encoding stores one triple per
        // element; the stride encoder collapses every (provider,
        // receiver) pair to one gather family.
        let n = 1u64 << 18;
        let src = mk(n, 16, DimFormat::Block(None));
        let dst = mk(n, 16, DimFormat::Cyclic(None));
        let (_, prog) = compiled(&src, &dst);
        assert!(prog.fams.len() <= 16 * 16, "O(P_src × P_dst) descriptors");
        assert!(prog.runs.is_empty(), "no irregular remainder in the cyclic(1) shape");
        assert_eq!(prog.n_runs(), n, "still n logical single-element runs");
        for u in prog.local.iter().chain(prog.rounds.iter().flatten()) {
            assert_eq!(u.kernel, Kernel::Gather);
        }
        // The acceptance bar: ≥100× smaller than the triple encoding.
        let flat = prog.expand_to_triples();
        assert_eq!(flat.runs.len() as u64, n);
        assert!(
            prog.artifact_bytes() * 100 <= flat.artifact_bytes(),
            "strided artifact {}B vs flat {}B",
            prog.artifact_bytes(),
            flat.artifact_bytes()
        );
        // Both encodings replay byte-identical data, in both engines.
        let mut a = VersionData::new(src, 8);
        a.fill(|p| (p[0] % 1021) as f64);
        let mut b = VersionData::new(dst.clone(), 8);
        b.copy_values_from_program(&a, &prog, ExecMode::Serial);
        assert_eq!(a.to_dense(), b.to_dense());
        let mut c = VersionData::new(dst.clone(), 8);
        c.copy_values_from_program(&a, &flat, ExecMode::Serial);
        assert_eq!(b, c);
        let mut d = VersionData::new(dst, 8);
        d.copy_values_from_program(&a, &prog, ExecMode::Parallel(4));
        assert_eq!(b, d);
    }

    #[test]
    fn kernels_match_unit_shapes() {
        // Block-cyclic destination: equal-length runs on a constant
        // stride — every unit compiles to the blocked strided kernel.
        let src = mk(4096, 4, DimFormat::Block(None));
        let dst = mk(4096, 4, DimFormat::Cyclic(Some(8)));
        let (_, prog) = compiled(&src, &dst);
        assert!(!prog.fams.is_empty());
        assert!(prog.fams.iter().all(|f| f.len == 8));
        for u in prog.local.iter().chain(prog.rounds.iter().flatten()) {
            assert_eq!(u.kernel, Kernel::Strided);
        }
        let mut a = VersionData::new(src, 8);
        a.fill(|p| p[0] as f64 + 0.5);
        let mut b = VersionData::new(dst, 8);
        b.copy_values_from_program(&a, &prog, ExecMode::Serial);
        assert_eq!(a.to_dense(), b.to_dense());
        // Block → block: each pair's contribution is contiguous on
        // both sides, coalesces to one triple, and the whole unit is a
        // single memcpy.
        let src = mk(64, 4, DimFormat::Block(None));
        let dst = mk(64, 2, DimFormat::Block(None));
        let (_, prog) = compiled(&src, &dst);
        assert!(prog.fams.is_empty());
        for u in prog.local.iter().chain(prog.rounds.iter().flatten()) {
            assert_eq!(u.kernel, Kernel::Memcpy);
            assert_eq!(u.runs.1 - u.runs.0, 1);
        }
        let mut a = VersionData::new(src, 8);
        a.fill(|p| p[0] as f64);
        let mut b = VersionData::new(dst, 8);
        b.copy_values_from_program(&a, &prog, ExecMode::Serial);
        assert_eq!(a.to_dense(), b.to_dense());
    }

    #[test]
    fn overflow_boundary_is_exact_and_unified() {
        // Exactly u32::MAX local elements: the largest block the u32
        // format admits. Compiles (closed-form, no data allocated) to
        // a single coalesced memcpy triple.
        let n = u64::from(u32::MAX);
        let src = mk(n, 1, DimFormat::Block(None));
        let dst = mk(n, 1, DimFormat::Cyclic(Some(3)));
        let plan = plan_redistribution(&src, &dst, 8);
        let schedule = CommSchedule::from_plan(&plan);
        let prog = CopyProgram::compile_checked(&plan, &schedule)
            .expect("u32::MAX-element block is in range");
        assert_eq!(prog.n_elements(), n);
        assert_eq!(prog.n_runs(), 1, "one coalesced unit-stride span");
        // One element more (2^32) declines through the single
        // PositionOverflow gate — the closed-form pre-check, the
        // per-push backstop, and the stride encoder share it.
        let n = 1u64 << 32;
        let src = mk(n, 1, DimFormat::Block(None));
        let dst = mk(n, 1, DimFormat::Cyclic(Some(3)));
        let plan = plan_redistribution(&src, &dst, 8);
        let schedule = CommSchedule::from_plan(&plan);
        assert_eq!(
            CopyProgram::compile_checked(&plan, &schedule),
            Err(CompileDecline::PositionOverflow)
        );
    }

    #[test]
    fn inline_threshold_boundary_is_shared() {
        // The one inline-vs-parallel predicate: strictly below the
        // threshold is inline, exactly the threshold is not — every
        // dispatcher (solo, group, guarded, unguarded) uses this.
        assert!(round_goes_inline(PARALLEL_THRESHOLD - 1));
        assert!(!round_goes_inline(PARALLEL_THRESHOLD));
        assert!(!round_goes_inline(PARALLEL_THRESHOLD + 1));
    }

    #[test]
    fn fingerprint_detects_family_and_kernel_corruption() {
        let src = mk(4096, 4, DimFormat::Block(None));
        let dst = mk(4096, 4, DimFormat::Cyclic(None));
        let (_, mut prog) = compiled(&src, &dst);
        assert!(!prog.fams.is_empty());
        assert!(prog.integrity_ok());
        let orig = prog.fams[0];
        prog.fams[0].src_step = prog.fams[0].src_step.wrapping_add(1);
        assert!(!prog.integrity_ok(), "a scribbled family stride must be detected");
        prog.fams[0] = orig;
        prog.fams[0].count = prog.fams[0].count.wrapping_sub(1);
        assert!(!prog.integrity_ok(), "a scribbled family count must be detected");
        prog.fams[0] = orig;
        assert!(prog.integrity_ok());
        let k = prog.local[0].kernel;
        prog.local[0].kernel = if k == Kernel::Triples { Kernel::Gather } else { Kernel::Triples };
        assert!(!prog.integrity_ok(), "a scribbled kernel tag must be detected");
    }

    #[test]
    fn fingerprint_detects_single_field_corruption() {
        let src = mk(64, 4, DimFormat::Block(None));
        let dst = mk(64, 4, DimFormat::Cyclic(Some(3)));
        let (_, mut prog) = compiled(&src, &dst);
        assert!(prog.integrity_ok());
        let orig = prog.runs[0];
        prog.runs[0].src_pos = prog.runs[0].src_pos.wrapping_add(1);
        assert!(!prog.integrity_ok(), "a scribbled triple must be detected");
        prog.runs[0] = orig;
        assert!(prog.integrity_ok());
        prog.fingerprint ^= 1;
        assert!(!prog.integrity_ok(), "a scribbled fingerprint must be detected");
    }
}
