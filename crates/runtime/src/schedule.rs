//! Message-level SPMD schedules: the paper's Figs. 19/20 at *message*
//! granularity.
//!
//! A [`crate::RedistPlan`] says **how much** every processor pair
//! exchanges; a [`CommSchedule`] additionally says **what each message
//! looks like** — per (sender, receiver) pair, the per-dimension
//! periodic interval descriptors whose intersection runs drive a
//! guard-free pack loop on the sender and an unpack loop on the
//! receiver — and **when** it goes on the wire: messages are ordered
//! into *caterpillar* rounds (the round-robin tournament pairing), so
//! every round is contention-free (each processor talks to at most one
//! partner) instead of one undifferentiated BSP phase.
//!
//! A schedule can aggregate **several plans at once**
//! ([`CommSchedule::from_plans`]): when one `distribute`/`align`
//! directive remaps every array aligned to the redistributed template
//! (the paper's Fig. 3 situation), the member plans' messages for the
//! same (sender, receiver) pair share a caterpillar round and a wire
//! buffer — [`CommSchedule::round_triples`] coalesces them into one
//! message per pair per round, so the pair pays the per-message latency
//! once instead of once per array.
//!
//! The same structure serves two layers:
//!
//! * the code generator (`hpfc-codegen`'s `render`) prints a schedule
//!   as readable pseudo-SPMD — packed send/recv loops instead of
//!   whole-array copy statements;
//! * the runtime ([`crate::ArrayRt::remap`] via
//!   [`crate::Machine::account_schedule`]) executes and costs exactly
//!   the same rounds, so simulated timings and rendered code can never
//!   disagree on who sends what to whom.

use hpfc_mapping::{NormalizedMapping, PeriodicSet};

use crate::machine::Machine;
use crate::redist::{axis_driven_by_dim, RedistPlan};

/// One array dimension of a packed message: the periodic index sets
/// owned by the sender (under the source mapping) and by the receiver
/// (under the destination mapping). The message's element set along
/// this dimension is `src_set ∩ dst_set`; its maximal runs
/// ([`hpfc_mapping::intersect_runs`]) are the units the pack/unpack
/// loops copy, and local buffer positions come from
/// [`PeriodicSet::count_below`] in closed form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MsgDim {
    /// Indices the sender owns along this dimension (full range when
    /// the dimension does not drive the source side).
    pub src_set: PeriodicSet,
    /// Indices the receiver owns along this dimension.
    pub dst_set: PeriodicSet,
}

impl MsgDim {
    /// `|src_set ∩ dst_set|` — this dimension's factor of the message
    /// element count, closed form.
    pub fn count(&self) -> u64 {
        self.src_set.intersect_count(&self.dst_set)
    }
}

/// One packed point-to-point message: the sender walks the cartesian
/// product of its per-dimension intersection runs, packs the elements
/// into one contiguous buffer, and sends it; the receiver unpacks with
/// the mirror loop. `elements` is the closed-form product of the
/// per-dimension intersection counts, so the buffer size is known
/// before any loop runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedMessage {
    /// Sender rank (row-major in the source grid).
    pub from: u64,
    /// Receiver rank (row-major in the destination grid).
    pub to: u64,
    /// Total elements in the buffer (product over `dims` of
    /// [`MsgDim::count`]).
    pub elements: u64,
    /// Per-array-dimension interval descriptors driving the pack and
    /// unpack loops. Empty for schedules built from plans without
    /// descriptors (the enumeration oracle).
    pub dims: Vec<MsgDim>,
    /// Which member plan of a [`CommSchedule::from_plans`] aggregate
    /// this message belongs to (always 0 for single-plan schedules).
    /// Same-pair messages of different members share a round and a wire
    /// buffer; the member index keeps the per-array pack/unpack loops
    /// attributable.
    pub member: usize,
}

impl PackedMessage {
    /// Buffer size in bytes for elements of `elem_size` bytes.
    pub fn bytes(&self, elem_size: u64) -> u64 {
        self.elements * elem_size
    }
}

/// A complete message-level schedule for one redistribution — or for
/// the aggregate of several redistributions issued by one directive
/// ([`CommSchedule::from_plans`]): every remote pair's packed message,
/// ordered into contention-free caterpillar rounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommSchedule {
    /// Element size in bytes (member plans of an aggregate all share
    /// it — enforced by [`CommSchedule::from_plans`]).
    pub elem_size: u64,
    /// Elements that never cross the network (receiver already holds
    /// them under the source mapping); summed over members.
    pub local_elements: u64,
    /// All remote messages, member-major, each member's sorted by
    /// `(from, to)`.
    pub messages: Vec<PackedMessage>,
    /// Caterpillar rounds: indices into `messages`, grouped so that
    /// within a round every processor exchanges with at most one
    /// partner (messages in both directions of a pair — and of every
    /// member — share a round). Within a round, indices are sorted by
    /// `(from, to, member)`, so same-pair messages of different members
    /// are adjacent — the invariant the coalescing
    /// [`CommSchedule::round_triples`] iterator relies on. Empty rounds
    /// are dropped.
    pub rounds: Vec<Vec<usize>>,
    /// Number of member plans aggregated into this schedule (1 for
    /// [`CommSchedule::from_plan`]).
    pub n_members: usize,
}

impl CommSchedule {
    /// Build the message-level schedule of a redistribution plan.
    ///
    /// For plans carrying per-dimension descriptors (every plan built by
    /// [`crate::plan_redistribution`]), each remote transfer is resolved
    /// back to its unique per-dimension descriptor combination — the
    /// (sender coordinate, receiver coordinate) pair picks exactly one
    /// [`crate::redist::DimContribution`] per dimension — so the message
    /// loops are exact. Plans without descriptors (the enumeration
    /// oracle) still get sized messages and caterpillar rounds, just no
    /// loop structure.
    pub fn from_plan(plan: &RedistPlan) -> CommSchedule {
        CommSchedule::from_plans(&[plan])
    }

    /// Build one aggregated schedule over several plans — the remap
    /// group of one directive (Fig. 3: every array aligned to the
    /// redistributed template remaps at the same program vertex).
    ///
    /// Messages of all member plans are pooled and every unordered
    /// processor pair is assigned exactly one caterpillar round, so
    /// same-pair messages of *different arrays* travel in the same
    /// round and — through the coalescing
    /// [`CommSchedule::round_triples`] — as **one** wire message per
    /// direction: the pair pays one latency per round, not one per
    /// array. The round count is that of the pooled pair set, which is
    /// never more than the sum of the members' solo round counts (and
    /// strictly less whenever two members talk over the same pairs).
    ///
    /// All member plans must share `elem_size` (lowering only groups
    /// remaps of equal element size).
    pub fn from_plans(plans: &[&RedistPlan]) -> CommSchedule {
        assert!(!plans.is_empty(), "a schedule aggregates at least one plan");
        let elem_size = plans[0].elem_size;
        assert!(
            plans.iter().all(|p| p.elem_size == elem_size),
            "aggregated plans must share the element size"
        );
        let mut messages = Vec::with_capacity(plans.iter().map(|p| p.transfers.len()).sum());
        let mut local_elements = 0u64;
        for (member, plan) in plans.iter().enumerate() {
            plan_messages(plan, member, &mut messages);
            local_elements += plan.local_elements;
        }
        let rounds = caterpillar_rounds(&messages);
        CommSchedule { elem_size, local_elements, messages, rounds, n_members: plans.len() }
    }

    /// Number of wire rounds.
    pub fn n_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Total bytes crossing the network (matches
    /// [`RedistPlan::total_bytes`], summed over members).
    pub fn total_bytes(&self) -> u64 {
        self.messages.iter().map(|m| m.bytes(self.elem_size)).sum()
    }

    /// Number of messages actually put on the wire: same-pair member
    /// messages coalesced within each round. Equals `messages.len()`
    /// for single-member schedules.
    pub fn n_wire_messages(&self) -> u64 {
        (0..self.rounds.len()).map(|r| self.round_triples(r).count() as u64).sum()
    }

    /// The `(from, to, bytes)` triples of one round, for
    /// [`Machine::account_phase`] — same-pair messages (different
    /// members sharing the round) are **coalesced into one triple**:
    /// the wire carries one packed buffer per (sender, receiver) pair
    /// per round, whatever mix of arrays is inside.
    pub fn round_triples(&self, round: usize) -> RoundTriples<'_> {
        self.round_triples_masked(round, u64::MAX)
    }

    /// [`CommSchedule::round_triples`] restricted to the member plans
    /// whose bit is set in `mask` (member `i` participates iff
    /// `mask & (1 << i) != 0`; members beyond bit 63 are always
    /// included — callers cap group sizes well below that). This is how
    /// a partially applicable remap group is costed: members that turn
    /// out not to move data at run time (status noop, live-copy reuse)
    /// simply drop out of every round's coalesced buffers.
    pub fn round_triples_masked(&self, round: usize, mask: u64) -> RoundTriples<'_> {
        RoundTriples { sched: self, idxs: &self.rounds[round], at: 0, mask }
    }

    /// Each message's (sender, receiver) pair with its caterpillar
    /// round index — how [`crate::CopyProgram::try_compile`] assigns
    /// compiled copy units to the round their message travels in.
    /// Aggregated schedules yield a pair once per member; collecting
    /// into a map collapses the duplicates (same pair ⇒ same round).
    pub fn round_of_pairs(&self) -> impl Iterator<Item = ((u64, u64), usize)> + '_ {
        self.rounds.iter().enumerate().flat_map(move |(r, round)| {
            round.iter().map(move |&i| {
                let m = &self.messages[i];
                ((m.from, m.to), r)
            })
        })
    }
}

/// Iterator over one round's coalesced `(from, to, bytes)` wire
/// triples (see [`CommSchedule::round_triples`]). Allocation-free: it
/// walks the round's `(from, to, member)`-sorted message indices and
/// merges adjacent same-pair entries on the fly.
pub struct RoundTriples<'a> {
    sched: &'a CommSchedule,
    idxs: &'a [usize],
    at: usize,
    mask: u64,
}

impl<'a> RoundTriples<'a> {
    fn included(&self, member: usize) -> bool {
        member >= 64 || self.mask & (1u64 << member) != 0
    }
}

impl<'a> Iterator for RoundTriples<'a> {
    type Item = (u64, u64, u64);

    fn next(&mut self) -> Option<(u64, u64, u64)> {
        loop {
            let &i = self.idxs.get(self.at)?;
            self.at += 1;
            let m = &self.sched.messages[i];
            if !self.included(m.member) {
                continue;
            }
            let (from, to) = (m.from, m.to);
            let mut bytes = m.bytes(self.sched.elem_size);
            while let Some(&j) = self.idxs.get(self.at) {
                let n = &self.sched.messages[j];
                if n.from != from || n.to != to {
                    break;
                }
                self.at += 1;
                if self.included(n.member) {
                    bytes += n.bytes(self.sched.elem_size);
                }
            }
            if bytes == 0 {
                // Every same-pair message was masked out: no wire
                // message for this pair this round.
                continue;
            }
            return Some((from, to, bytes));
        }
    }
}

/// Resolve one plan's transfers into [`PackedMessage`]s tagged with
/// `member`, appending to `out` in `(from, to)` order (the transfer
/// order).
fn plan_messages(plan: &RedistPlan, member: usize, out: &mut Vec<PackedMessage>) {
    let maps = plan.mappings.as_deref();
    // Per-dimension entry index keyed by the (source, destination)
    // coordinate pair, built once — resolving a transfer is then a
    // lookup, not a scan of the P_src·P_dst contribution table.
    let by_coords: Vec<DimIndex> = match maps {
        Some(_) if !plan.dims.is_empty() => plan
            .dims
            .iter()
            .map(|entries| {
                entries.iter().enumerate().map(|(i, e)| ((e.src, e.dst), i)).collect()
            })
            .collect(),
        _ => Vec::new(),
    };
    out.extend(plan.transfers.iter().map(|t| {
        let dims = match maps {
            Some((src, dst)) if !plan.dims.is_empty() => {
                message_dims(plan, &by_coords, src, dst, t.from, t.to)
            }
            _ => Vec::new(),
        };
        debug_assert!(
            dims.is_empty() || dims.iter().map(MsgDim::count).product::<u64>() == t.elements,
            "descriptor product disagrees with planned transfer size"
        );
        PackedMessage { from: t.from, to: t.to, elements: t.elements, dims, member }
    }));
}

/// One dimension's contribution-entry index: entry position keyed by
/// the (driven source axis/coord, driven destination axis/coord) pair.
type DimIndex =
    std::collections::BTreeMap<(Option<(usize, u64)>, Option<(usize, u64)>), usize>;

/// Resolve the per-dimension descriptors of the `(from, to)` pair: for
/// every array dimension, the contribution entry whose source/dest grid
/// coordinates match the delinearized ranks. Exactly one entry matches
/// per dimension (entries are keyed by coordinate pairs), so a remote
/// transfer corresponds to a unique descriptor combination.
fn message_dims(
    plan: &RedistPlan,
    by_coords: &[DimIndex],
    src: &NormalizedMapping,
    dst: &NormalizedMapping,
    from: u64,
    to: u64,
) -> Vec<MsgDim> {
    let s_coords = src.grid_shape.delinearize(from);
    let d_coords = dst.grid_shape.delinearize(to);
    let rank = src.array_extents.rank();
    let mut dims = Vec::with_capacity(rank);
    for (d, coords) in by_coords.iter().enumerate().take(rank) {
        let want_src = axis_driven_by_dim(src, d).map(|(ax, ..)| (ax, s_coords[ax]));
        let want_dst = axis_driven_by_dim(dst, d).map(|(ax, ..)| (ax, d_coords[ax]));
        let entry = &plan.dims[d][*coords
            .get(&(want_src, want_dst))
            .expect("remote transfer implies a non-empty contribution per dimension")];
        dims.push(MsgDim { src_set: entry.src_set.clone(), dst_set: entry.dst_set.clone() });
    }
    dims
}

/// Order messages into caterpillar rounds — the circle-method
/// round-robin tournament over all participating ranks: one player is
/// fixed, the rest rotate, and in each round every player meets exactly
/// one partner. Both directions of a pair land in the same round (the
/// links are full-duplex), so within a round no processor sends to or
/// receives from more than one partner: the rounds are contention-free
/// by construction, and [`Machine::account_schedule`] can cost each as
/// an independent phase.
fn caterpillar_rounds(messages: &[PackedMessage]) -> Vec<Vec<usize>> {
    if messages.is_empty() {
        return Vec::new();
    }
    let n = messages.iter().map(|m| m.from.max(m.to) + 1).max().unwrap_or(0);
    // Even player count; odd counts get a bye slot. Messages are remote
    // (`from != to`), so at least two ranks participate.
    let m = if n % 2 == 0 { n } else { n + 1 };
    debug_assert!(m >= 2, "remote messages imply at least two ranks");
    // Circle method: position 0 is fixed, positions 1..m rotate.
    let mut pos: Vec<u64> = (0..m).collect();
    let n_rounds = (m - 1) as usize;
    let mut round_of = std::collections::BTreeMap::new();
    for r in 0..n_rounds {
        for k in 0..(m / 2) as usize {
            let (a, b) = (pos[k], pos[m as usize - 1 - k]);
            round_of.insert((a.min(b), a.max(b)), r);
        }
        // Rotate everything but pos[0] one step.
        let last = pos[m as usize - 1];
        for i in (2..m as usize).rev() {
            pos[i] = pos[i - 1];
        }
        pos[1] = last;
    }
    let mut rounds: Vec<Vec<usize>> = vec![Vec::new(); n_rounds];
    for (i, msg) in messages.iter().enumerate() {
        let key = (msg.from.min(msg.to), msg.from.max(msg.to));
        rounds[round_of[&key]].push(i);
    }
    // Same-pair messages adjacent within a round (the coalescing
    // invariant of `CommSchedule::round_triples`); a no-op for
    // single-member schedules, whose messages are already pair-sorted.
    for round in &mut rounds {
        round.sort_by_key(|&i| (messages[i].from, messages[i].to, messages[i].member));
    }
    rounds.retain(|r| !r.is_empty());
    rounds
}

impl Machine {
    /// Execute a message-level schedule's accounting: each caterpillar
    /// round is one [`Machine::account_phase`] (every processor in a
    /// round has at most one partner, so the round really is the
    /// per-pair message time, not a BSP max over unrelated pairs);
    /// the total is the sum over rounds. Local elements are credited to
    /// the local-copy counter. Returns the total schedule time.
    pub fn account_schedule(&mut self, schedule: &CommSchedule) -> f64 {
        let mut total = 0.0;
        for r in 0..schedule.rounds.len() {
            total += self.account_phase(schedule.round_triples(r));
        }
        self.stats.local_elements += schedule.local_elements;
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::redist::plan_redistribution;
    use hpfc_mapping::{
        Alignment, DimFormat, Distribution, Extents, GridId, Mapping, ProcGrid, Template,
        TemplateId,
    };

    fn mk(n: u64, p: u64, fmt: DimFormat) -> NormalizedMapping {
        let t = Template { id: TemplateId(0), name: "T".into(), shape: Extents::new(&[n]) };
        let g = ProcGrid { id: GridId(0), name: "P".into(), shape: Extents::new(&[p]) };
        Mapping {
            align: Alignment::identity(TemplateId(0), 1),
            dist: Distribution::new(GridId(0), vec![fmt]),
        }
        .normalize(&Extents::new(&[n]), &t, &g)
        .unwrap()
    }

    #[test]
    fn schedule_messages_match_plan_exactly() {
        let src = mk(16, 4, DimFormat::Block(None));
        let dst = mk(16, 4, DimFormat::Cyclic(None));
        let plan = plan_redistribution(&src, &dst, 8);
        let s = CommSchedule::from_plan(&plan);
        assert_eq!(s.messages.len() as u64, plan.total_messages());
        assert_eq!(s.total_bytes(), plan.total_bytes());
        assert_eq!(s.local_elements, plan.local_elements);
        // Every message's descriptor product equals its element count.
        for m in &s.messages {
            assert_eq!(m.dims.iter().map(MsgDim::count).product::<u64>(), m.elements);
        }
    }

    #[test]
    fn rounds_are_contention_free_and_cover_all_messages() {
        let src = mk(60, 4, DimFormat::Cyclic(Some(3)));
        let dst = mk(60, 5, DimFormat::Cyclic(Some(2)));
        let plan = plan_redistribution(&src, &dst, 8);
        let s = CommSchedule::from_plan(&plan);
        let mut seen = vec![false; s.messages.len()];
        for round in &s.rounds {
            let mut partner: std::collections::BTreeMap<u64, u64> = Default::default();
            for &i in round {
                assert!(!seen[i], "message scheduled twice");
                seen[i] = true;
                let m = &s.messages[i];
                // Each rank has at most one partner per round.
                for (me, other) in [(m.from, m.to), (m.to, m.from)] {
                    match partner.get(&me) {
                        None => {
                            partner.insert(me, other);
                        }
                        Some(&p) => assert_eq!(p, other, "rank {me} has two partners"),
                    }
                }
            }
        }
        assert!(seen.iter().all(|&x| x), "every message is scheduled");
    }

    #[test]
    fn caterpillar_beats_bsp_max_when_pairs_are_disjoint() {
        // block -> cyclic over 4: all-to-all, 12 messages. The
        // caterpillar runs them in 3 contention-free rounds; a single
        // BSP phase would bill every processor 6 message latencies at
        // once — same totals, finer time structure.
        let src = mk(16, 4, DimFormat::Block(None));
        let dst = mk(16, 4, DimFormat::Cyclic(None));
        let plan = plan_redistribution(&src, &dst, 8);
        let s = CommSchedule::from_plan(&plan);
        assert_eq!(s.n_rounds(), 3);
        let mut m1 = Machine::new(4);
        let t_sched = m1.account_schedule(&s);
        let mut m2 = Machine::new(4);
        let t_bsp = m2.account_phase(plan.phase_triples());
        // Totals agree; only the time structure differs.
        assert_eq!(m1.stats.messages, m2.stats.messages);
        assert_eq!(m1.stats.bytes, m2.stats.bytes);
        assert!(t_sched > 0.0 && t_bsp > 0.0);
    }

    #[test]
    fn oracle_plans_schedule_without_loop_structure() {
        let src = mk(12, 3, DimFormat::Block(None));
        let dst = mk(12, 3, DimFormat::Cyclic(None));
        let plan = crate::redist::plan_by_enumeration(&src, &dst, 8);
        let s = CommSchedule::from_plan(&plan);
        assert_eq!(s.messages.len() as u64, plan.total_messages());
        assert!(s.messages.iter().all(|m| m.dims.is_empty()));
        assert!(!s.rounds.is_empty());
    }
}
