//! Symbolic plans: one parametric artifact per `(format, format)` pair,
//! instantiated at launch time for any processor count.
//!
//! The planner is already symbolic in the array extent — its periodic
//! descriptors are closed-form, so planning cost is flat in `n`. This
//! module makes the *registry* symbolic in `P` as well. A
//! [`SymbolicPlan`] pins the P-free residue of a mapping pair (two
//! [`hpfc_mapping::SymbolicFormat`]s, hash-consed into one
//! [`FormatPair`]) and materializes concrete artifacts on demand:
//! [`SymbolicPlan::instantiate`] rebuilds both concrete mappings in
//! closed form at the requested `(p_src, p_dst, extent)` and evaluates
//! the closed-form planner pipeline (plan → caterpillar schedule →
//! stride-encoded [`crate::CopyProgram`]) at that point, caching the
//! result per instantiation point. Because the rebuilt mappings are
//! *exactly* the mappings direct normalization produces (the symbolic
//! normalizer round-trips before admitting a format), every
//! instantiated artifact is byte-for-byte the artifact direct
//! compilation produces — pinned by `tests/proptest_symbolic.rs`.
//!
//! What this buys (and is pinned by the re-provisioning test): the
//! [`crate::PlanRegistry`] keyed this way holds **O(format pairs)**
//! entries instead of O(mapping pairs), and re-provisioning a fleet
//! from `P = 16` to `P = 64` re-instantiates the same entries —
//! `NetStats::plans_computed` stays 0 on the second launch; the cost is
//! one closed-form instantiation per new `P`, billed to
//! `NetStats::symbolic_instantiations` instead.
//!
//! The layer is opt-out (`HPFC_SYMBOLIC=off`, or
//! [`crate::Machine::with_symbolic`]) and partial by design: shapes the
//! symbolic normalizer declines (replication, constant alignments,
//! multi-dimensional grids) fall back to the concrete per-mapping-pair
//! keys, counted in `NetStats::symbolic_declines`.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};

use hpfc_mapping::symbolic::FormatPair;
use hpfc_mapping::Extents;

use crate::redist::{plan_redistribution, RedistPlan};
use crate::status::PlannedRemap;

/// Whether symbolic plan keying is enabled by the environment
/// (`HPFC_SYMBOLIC`, default **on**; only an explicit `off` / `0` /
/// `false` / `no` disables it). Read per call — lowering consults it
/// once per compiled program, and tests toggle it per process.
pub fn enabled_from_env() -> bool {
    crate::machine::symbolic_from_env()
}

/// What one symbolic registry lookup did, for the caller's
/// [`crate::NetStats`] bookkeeping. Mirrors
/// [`crate::registry::RegistryOutcome`] for the format-pair table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SymbolicOutcome {
    /// The format pair was already registered (the parametric plan was
    /// served, not created).
    pub hit: bool,
    /// A registered parametric plan materialized a concrete artifact at
    /// an instantiation point it had not seen before — the cheap
    /// re-provisioning path (`NetStats::symbolic_instantiations`).
    /// Always `false` when `hit` is `false`: the first materialization
    /// of a fresh format pair is billed as an ordinary compile
    /// (`registry_misses` + `plans_computed`), exactly like the
    /// concrete keying scheme, so compile-once accounting stays
    /// identical under both schemes.
    pub instantiated: bool,
    /// Poisoned locks recovered during this lookup.
    pub lock_recoveries: u64,
}

/// A parametric remap plan: a `(format, format)` pair with `P` left
/// free, plus the cache of concrete artifacts it has been instantiated
/// to. One `SymbolicPlan` serves a whole family of launches — every
/// processor count, one registry entry.
pub struct SymbolicPlan {
    /// The interned P-free formats (source, destination).
    formats: FormatPair,
    /// Element size the artifacts are compiled for.
    elem_size: u64,
    /// Concrete artifacts by instantiation point
    /// `(p_src, p_dst, extent)`. Materialization happens under this
    /// lock, so racing sessions instantiate each point exactly once.
    instances: Mutex<BTreeMap<(u64, u64, u64), Arc<PlannedRemap>>>,
}

impl std::fmt::Debug for SymbolicPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SymbolicPlan")
            .field("formats", &self.formats)
            .field("elem_size", &self.elem_size)
            .field("instances", &self.instances())
            .finish()
    }
}

impl SymbolicPlan {
    /// A parametric plan over `formats` at `elem_size`, with no
    /// instantiations yet.
    pub fn new(formats: FormatPair, elem_size: u64) -> SymbolicPlan {
        SymbolicPlan { formats, elem_size, instances: Mutex::new(BTreeMap::new()) }
    }

    /// The interned format pair this plan is parametric over.
    pub fn formats(&self) -> &FormatPair {
        &self.formats
    }

    /// Element size the plan's artifacts are compiled for.
    pub fn elem_size(&self) -> u64 {
        self.elem_size
    }

    /// Concrete instantiation points materialized so far.
    pub fn instances(&self) -> usize {
        self.lock().len()
    }

    /// Lock the instance cache, recovering a poisoned lock (state is a
    /// map of immutable `Arc`s — a lost insertion re-materializes).
    fn lock(&self) -> MutexGuard<'_, BTreeMap<(u64, u64, u64), Arc<PlannedRemap>>> {
        match self.instances.lock() {
            Ok(g) => g,
            Err(poisoned) => {
                self.instances.clear_poison();
                poisoned.into_inner()
            }
        }
    }

    /// Materialize the concrete [`RedistPlan`] at `(p_src, p_dst,
    /// extent)` — the launch-time instantiation of the ISSUE contract.
    /// `None` when either format cannot be realized there (fewer than
    /// two processors, alignment image out of bounds, or a placement
    /// that degenerates to a single owner at that `P`).
    pub fn instantiate(&self, p_src: u64, p_dst: u64, extent: u64) -> Option<RedistPlan> {
        self.instantiate_planned(p_src, p_dst, extent).map(|(p, _)| p.plan.clone())
    }

    /// The full cached artifact (plan → schedule → program) at
    /// `(p_src, p_dst, extent)`; the `bool` reports whether this call
    /// materialized it (`false`: served from the instance cache,
    /// allocation-free). Artifacts are byte-identical to direct
    /// compilation: the rebuilt mappings equal the directly normalized
    /// ones, hash-cons to the same interned pair, and feed the same
    /// deterministic pipeline.
    pub fn instantiate_planned(
        &self,
        p_src: u64,
        p_dst: u64,
        extent: u64,
    ) -> Option<(Arc<PlannedRemap>, bool)> {
        let key = (p_src, p_dst, extent);
        let mut cache = self.lock();
        if let Some(planned) = cache.get(&key) {
            return Some((Arc::clone(planned), false));
        }
        let shape = Extents::new(&[extent]);
        let src = self.formats.0.instantiate(p_src, &shape)?;
        let dst = self.formats.1.instantiate(p_dst, &shape)?;
        let planned =
            Arc::new(PlannedRemap::compile(plan_redistribution(&src, &dst, self.elem_size)));
        cache.insert(key, Arc::clone(&planned));
        Some((planned, true))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpfc_mapping::testing::mapping_1d;
    use hpfc_mapping::{format_pair, normalize_symbolic, DimFormat};

    fn plan_for(n: u64, p: u64) -> (SymbolicPlan, u64, u64) {
        let src = mapping_1d(n, p, DimFormat::Cyclic(Some(3)));
        let dst = mapping_1d(n, p, DimFormat::Cyclic(None));
        let (fs, ps) = normalize_symbolic(&src).unwrap();
        let (fd, pd) = normalize_symbolic(&dst).unwrap();
        (SymbolicPlan::new(format_pair(fs, fd), 8), ps, pd)
    }

    #[test]
    fn instantiation_equals_direct_compilation() {
        let n = 2016;
        let (sym, _, _) = plan_for(n, 4);
        for p in [2u64, 3, 7, 8, 16, 64] {
            let direct = PlannedRemap::compile(plan_redistribution(
                &mapping_1d(n, p, DimFormat::Cyclic(Some(3))),
                &mapping_1d(n, p, DimFormat::Cyclic(None)),
                8,
            ));
            let (inst, fresh) = sym.instantiate_planned(p, p, n).unwrap();
            assert!(fresh);
            assert_eq!(inst.plan, direct.plan, "plan differs at P={p}");
            assert_eq!(inst.schedule, direct.schedule, "schedule differs at P={p}");
            assert_eq!(inst.program, direct.program, "program differs at P={p}");
        }
        assert_eq!(sym.instances(), 6);
    }

    #[test]
    fn instantiation_points_cache_one_artifact() {
        let (sym, ps, pd) = plan_for(1024, 4);
        let (a, fresh_a) = sym.instantiate_planned(ps, pd, 1024).unwrap();
        let (b, fresh_b) = sym.instantiate_planned(ps, pd, 1024).unwrap();
        assert!(fresh_a && !fresh_b);
        assert!(Arc::ptr_eq(&a, &b), "cached instantiation must share the Arc");
        assert_eq!(sym.instances(), 1);
        // The ISSUE-shaped plan accessor serves the same cached point.
        let plan = sym.instantiate(ps, pd, 1024).unwrap();
        assert_eq!(plan, a.plan);
    }

    #[test]
    fn unrealizable_points_decline() {
        let (sym, _, _) = plan_for(1024, 4);
        assert!(sym.instantiate_planned(1, 4, 1024).is_none(), "P=1 is never symbolic");
        assert!(sym.instantiate_planned(4, 4, 4096).is_none(), "extent beyond the template");
        assert_eq!(sym.instances(), 0, "declines cache nothing");
    }
}
