//! Simulated distributed-memory runtime — the paper's target machine.
//!
//! The paper compiles HPF remappings into message-passing SPMD code for
//! distributed-memory machines; its claims are about **which remapping
//! communications happen** (message and byte counts, who talks to
//! whom), not wire-level timing. This crate provides a deterministic
//! substitute for that environment (Rust MPI bindings being thin — see
//! DESIGN.md §2):
//!
//! * [`machine::Machine`] — `P` logical processors, a latency/bandwidth
//!   cost model, exact message/byte/time accounting, and per-processor
//!   memory tracking (allocation peaks matter for the live-copy
//!   ablation);
//! * [`redist::plan_redistribution`] — the block-cyclic redistribution
//!   engine (the ref. \[19\] substrate): closed-form communication sets
//!   between any two composed mappings, with a brute-force enumeration
//!   oracle for property testing;
//! * [`schedule::CommSchedule`] — the plan lowered to message-level
//!   SPMD structure: per (sender, receiver) pair a packed message with
//!   per-dimension interval descriptors, ordered into contention-free
//!   caterpillar rounds that [`machine::Machine::account_schedule`]
//!   costs round by round;
//! * [`exec::CopyProgram`] — the schedule's data movement compiled to
//!   flat `(src_pos, dst_pos, len)` triples at plan time, replayed
//!   allocation-free per copy and optionally in parallel per
//!   caterpillar round (`HPFC_THREADS` / [`exec::ExecMode`]);
//! * [`group::PlannedGroup`] — several arrays remapped by one directive
//!   (Fig. 3 template impact) merged into one aggregated schedule:
//!   same-pair messages share rounds and wire buffers
//!   ([`schedule::CommSchedule::from_plans`]), and
//!   [`group::remap_group`] replays the whole group round by round;
//! * [`store::VersionData`] — actual per-processor storage of array
//!   versions, so kernels can be executed end-to-end and checked for
//!   distribution-independent results;
//! * [`status::ArrayRt`] — the per-array runtime descriptor of Sec. 5.1:
//!   current-version *status*, per-version *live* flags, lazy
//!   instantiation, guarded copies, liveness cleaning, and
//!   memory-pressure eviction with later regeneration;
//! * [`registry::PlanRegistry`] — remap-as-a-service: one sharded,
//!   LRU-bounded, process-wide registry of compiled remap artifacts,
//!   keyed by hash-consed mapping-pair identity
//!   ([`hpfc_mapping::intern`]) and shared by every array, program,
//!   and interpreter session (`HPFC_REGISTRY`); per-array plan caches
//!   are thin views that seed from and publish to it;
//! * [`symbolic::SymbolicPlan`] — plans symbolic in the processor
//!   count: one parametric entry per interned `(format, format)` pair
//!   (`HPFC_SYMBOLIC`, default on), instantiated in closed form at any
//!   `P` at launch time, shrinking the registry to O(format pairs) and
//!   turning a fleet re-provision (P=16 → P=64) into cheap
//!   instantiations instead of a recompile;
//! * [`fault::FaultPlan`] — deterministic fault injection
//!   (`HPFC_FAULTS`), per-round validation (`HPFC_VALIDATE`), and the
//!   self-healing recovery ladder behind [`status::ArrayRt::remap_guarded`]
//!   and [`group::remap_group`]: retry → recompile → table-engine
//!   fallback → typed [`fault::ExecError`]. Remaps are transactional
//!   (`HPFC_TXN`, default on): a terminal error rolls the destination
//!   back to its exact pre-remap state — bytes, status, and live flags
//!   — and a group commits all members or none. Pairs that keep
//!   failing repair are quarantined by the registry
//!   ([`registry::PlanRegistry::note_repair`]) so later sessions skip
//!   straight to the table engine, and poisoned shard locks recover
//!   instead of cascading.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod fault;
pub mod group;
pub mod machine;
pub mod redist;
pub mod registry;
pub mod schedule;
pub mod status;
pub mod store;
pub mod symbolic;

pub use exec::{CompileDecline, CopyProgram, CopyRun, CopyUnit, ExecMode, GroupCopyProgram, Kernel,
              StrideFamily};
pub use fault::{ExecError, FaultKind, FaultPlan, ValidationLevel};
pub use group::{remap_group, try_remap_group, GroupMember, PlannedGroup};
pub use machine::{CostModel, Machine, NetStats};
pub use redist::{plan_by_enumeration, plan_redistribution, RedistPlan, Transfer};
pub use registry::{PlanRegistry, RegistryConfig, RegistryOutcome};
pub use schedule::{CommSchedule, MsgDim, PackedMessage};
pub use status::{ArrayRt, PlannedRemap};
pub use store::VersionData;
pub use symbolic::{SymbolicOutcome, SymbolicPlan};
