//! Remap-as-a-service: a sharded, LRU-bounded, runtime-wide registry of
//! compiled remap artifacts.
//!
//! Every [`crate::ArrayRt`] keeps a private plan cache, which is the
//! right *view* but the wrong *owner*: two arrays, two programs, or two
//! interpreter sessions bouncing over the same (src, dst) mapping pair
//! would compile the identical plan → caterpillar schedule →
//! [`crate::CopyProgram`] pipeline twice. The [`PlanRegistry`] owns
//! that pipeline once per distinct pair and serves shared
//! [`Arc<PlannedRemap>`]s to every client; per-array caches become thin
//! first-level views that seed from and publish to it.
//!
//! # Identity, not equality
//!
//! Entries are keyed by **mapping-pair identity**: the pointer of the
//! hash-consed [`hpfc_mapping::intern`] pair (plus the element size,
//! which the plan bakes into its schedule). Each entry's
//! `PlannedRemap` holds a strong reference to its pair, so a key
//! pointer can never dangle or be recycled while the entry lives; when
//! an entry is evicted and the last plan drops, the pair dies with it
//! and a later request re-interns and re-registers from scratch.
//!
//! # Concurrency and eviction
//!
//! The table is sharded by key hash; each shard is a `Mutex` around a
//! small map with LRU stamps. A miss computes the full pipeline
//! *under the shard lock*, so N sessions racing on one cold pair
//! produce exactly one `plans_computed` — the many-session harness
//! pins `plans_computed == distinct pairs`, not `× sessions`. Lookups
//! of a warm entry are allocation-free (stack-hashed key, in-place
//! probe, `Arc` clone out), preserving the zero-allocation cached
//! bounce pinned by the counting-allocator test.
//!
//! # Corruption does not fan out
//!
//! PR 6's fingerprinted programs and recovery ladder are what make a
//! *shared* registry safe: a poisoned entry served to any session is
//! detected by its fingerprint, recompiled once, and the healthy
//! artifact is re-[`install`](PlanRegistry::install)ed registry-wide —
//! later sessions are never handed the corrupt artifact.
//!
//! # Neither do panics or deterministic failures
//!
//! Shared state must also survive *misbehaving clients*. Three layers:
//!
//! * **Lock-poison recovery** — a thread that panics while holding a
//!   shard `Mutex` poisons it; every lock here recovers via
//!   `into_inner` (counted in
//!   [`lock_recoveries`](PlanRegistry::lock_recoveries)) instead of
//!   `unwrap`-panicking, so one crashed session can never deny service
//!   to the rest of the process. This is sound because shard state is
//!   a map of immutable `Arc`s: a panic mid-update can at worst lose an
//!   insertion, which the next miss recompiles.
//! * **Contained compiles** — the compile-under-lock is wrapped in
//!   `catch_unwind`, so a panicking compile surfaces as a typed
//!   [`crate::CompileDecline::Panicked`]
//!   ([`try_get_or_compile`](PlanRegistry::try_get_or_compile)) with
//!   the shard lock released healthy.
//! * **Quarantine** — a pair whose artifact keeps failing
//!   fingerprint/recompile repair (a deterministically-bad entry) is
//!   quarantined after [`QUARANTINE_THRESHOLD`] strikes: for a backoff
//!   window of accesses the registry serves a program-stripped artifact
//!   whose replay goes straight to the table engine — no ladder, no
//!   retries — then lets one access probe the normal path again
//!   (doubling the window if it fails again).
//!
//! # Configuration
//!
//! The process-wide instance behind [`PlanRegistry::global`] is
//! configured once from `HPFC_REGISTRY` (see [`RegistryConfig`]):
//! `HPFC_REGISTRY=shards=S,cap=C` sizes it, `HPFC_REGISTRY=off`
//! disables it entirely — every `Machine` then plans solo, the exact
//! pre-registry behavior, kept compilable for A/B runs.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use hpfc_mapping::intern::{self, MappingPair};
use hpfc_mapping::NormalizedMapping;

use crate::group::PlannedGroup;
use crate::redist::plan_redistribution;
use crate::status::PlannedRemap;

/// Sizing and on/off switch for the process-wide registry, parsed once
/// from the `HPFC_REGISTRY` environment variable.
///
/// Accepted forms (comma-separated fragments; unrecognized fragments
/// are ignored — configuration must never crash the engine):
///
/// * `off` / `0` / `disabled` / `none` — no shared registry; every
///   machine plans solo (the pre-registry path, kept for A/B).
/// * `on` — the defaults (8 shards, 4096 entries).
/// * `shards=S,cap=C` — override either or both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegistryConfig {
    /// Whether the process-wide registry exists at all.
    pub enabled: bool,
    /// Shard count (lock granularity); clamped to at least 1.
    pub shards: usize,
    /// Total entry capacity across shards; clamped to at least the
    /// shard count (each shard holds at least one entry).
    pub cap: usize,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        // Generous by default: 4096 (pair, elem_size) entries is far
        // beyond any workload in the repo, so eviction only happens
        // when explicitly forced small (tests) or under true pressure.
        RegistryConfig { enabled: true, shards: 8, cap: 4096 }
    }
}

impl RegistryConfig {
    /// Parse the `HPFC_REGISTRY` syntax. Unset or empty means the
    /// defaults (enabled).
    pub fn parse(s: &str) -> RegistryConfig {
        let mut cfg = RegistryConfig::default();
        match s.trim() {
            "" | "on" | "1" => return cfg,
            "off" | "0" | "disabled" | "none" => {
                cfg.enabled = false;
                return cfg;
            }
            _ => {}
        }
        for frag in s.split(',') {
            let Some((key, value)) = frag.split_once('=') else { continue };
            match (key.trim(), value.trim().parse::<usize>()) {
                ("shards", Ok(n)) => cfg.shards = n.max(1),
                ("cap", Ok(n)) => cfg.cap = n.max(1),
                _ => {}
            }
        }
        cfg
    }

    /// Read `HPFC_REGISTRY` from the process environment.
    pub fn from_env() -> RegistryConfig {
        match std::env::var("HPFC_REGISTRY") {
            Ok(s) => RegistryConfig::parse(&s),
            Err(_) => RegistryConfig::default(),
        }
    }
}

/// What one registry access did, for the caller's [`crate::NetStats`]
/// bookkeeping (`registry_hits` / `registry_misses` /
/// `registry_evictions`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryOutcome {
    /// The artifact was served from the registry (no compilation).
    pub hit: bool,
    /// How many LRU entries this access pushed out.
    pub evicted: u64,
    /// How many poisoned locks this access recovered via `into_inner`
    /// (folded into `NetStats::lock_poison_recoveries`).
    pub lock_recoveries: u64,
}

/// Key of one solo entry: the interned pair's pointer (identity) plus
/// the element size the plan was computed for.
type PlanKey = (usize, u64);

/// Key of one symbolic entry: the interned format pair's pointer plus
/// the element size. Each [`SymbolicPlan`] holds its pair strongly, so
/// — exactly as with [`PlanKey`] — the pointer cannot dangle or be
/// recycled while the entry lives.
type SymKey = (usize, u64);

struct Entry {
    planned: Arc<PlannedRemap>,
    /// LRU recency stamp from the owning shard's clock.
    stamp: u64,
}

struct Shard {
    map: HashMap<PlanKey, Entry>,
    clock: u64,
}

struct GroupEntry {
    planned: Arc<PlannedGroup>,
    stamp: u64,
}

/// Group entries are keyed by the ordered member identities — groups
/// are built cold (lowering), so the boxed key allocation is off the
/// replay path.
struct GroupShard {
    map: HashMap<Box<[PlanKey]>, GroupEntry>,
    clock: u64,
}

/// Failed repairs a pair is allowed before it is quarantined.
pub const QUARANTINE_THRESHOLD: u32 = 3;
/// Accesses served the table-engine artifact on first quarantine.
const QUARANTINE_INITIAL_BACKOFF: u32 = 8;
/// Backoff ceiling — the window stops doubling here.
const QUARANTINE_MAX_BACKOFF: u32 = 1024;

/// One deterministically-bad pair under quarantine. While `remaining`
/// is positive, [`PlanRegistry::try_get_or_compile`] serves `stripped`
/// (program-less: the replay goes straight to the table engine) instead
/// of the registered artifact; when the window closes, one access
/// probes the normal path again (probation), and another failed repair
/// re-arms the window doubled.
struct QuarantineEntry {
    /// Pins the keyed pair alive so its pointer identity can never be
    /// recycled onto a different pair while this entry exists.
    _pair: MappingPair,
    /// Failed fingerprint/recompile repairs recorded for this pair.
    failures: u32,
    /// Accesses still to be served the stripped artifact.
    remaining: u32,
    /// Window length to arm on the next quarantine (doubles, capped).
    backoff: u32,
    /// The program-stripped artifact served while quarantined.
    stripped: Option<Arc<PlannedRemap>>,
}

/// The shared, concurrent, LRU-bounded plan registry. See the module
/// docs for the design; see [`PlanRegistry::global`] for the
/// process-wide instance every [`crate::Machine`] attaches to by
/// default.
pub struct PlanRegistry {
    shards: Box<[Mutex<Shard>]>,
    /// Per-shard entry cap (total cap divided across shards).
    shard_cap: usize,
    /// Directive-level groups, one unsharded table (cold path only).
    groups: Mutex<GroupShard>,
    /// Pairs whose artifacts keep failing repair (off the hot path:
    /// only consulted when the quarantine table is non-empty).
    quarantine: Mutex<HashMap<PlanKey, QuarantineEntry>>,
    /// Parametric plans keyed by interned format pair (`HPFC_SYMBOLIC`
    /// keying). Deliberately unbounded and un-evicted: the table is
    /// O(format pairs) *by design* — that bound is the whole point of
    /// the symbolic layer, and each entry amortizes over every `P` a
    /// job is ever launched on. One lock, not shards: entries are few
    /// and materialization is one-time per instantiation point.
    sym: Mutex<HashMap<SymKey, Arc<crate::symbolic::SymbolicPlan>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    poison_recoveries: AtomicU64,
    quarantined: AtomicU64,
}

impl std::fmt::Debug for PlanRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanRegistry")
            .field("shards", &self.shards.len())
            .field("shard_cap", &self.shard_cap)
            .field("len", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .field("evictions", &self.evictions())
            .finish()
    }
}

impl PlanRegistry {
    /// A registry with `shards` lock shards and room for `cap` solo
    /// entries in total (each shard gets at least one slot).
    pub fn new(shards: usize, cap: usize) -> PlanRegistry {
        let shards = shards.max(1);
        let shard_cap = cap.div_ceil(shards).max(1);
        PlanRegistry {
            shards: (0..shards)
                .map(|_| Mutex::new(Shard { map: HashMap::new(), clock: 0 }))
                .collect(),
            shard_cap,
            groups: Mutex::new(GroupShard { map: HashMap::new(), clock: 0 }),
            quarantine: Mutex::new(HashMap::new()),
            sym: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            poison_recoveries: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
        }
    }

    /// A registry sized by a [`RegistryConfig`] (the `enabled` flag is
    /// the caller's concern).
    pub fn with_config(cfg: &RegistryConfig) -> PlanRegistry {
        PlanRegistry::new(cfg.shards, cfg.cap)
    }

    /// The process-wide registry, created on first use from
    /// `HPFC_REGISTRY` (read **once** per process). `None` when the
    /// variable disables it — callers then plan solo.
    pub fn global() -> Option<&'static Arc<PlanRegistry>> {
        static GLOBAL: OnceLock<Option<Arc<PlanRegistry>>> = OnceLock::new();
        GLOBAL
            .get_or_init(|| {
                let cfg = RegistryConfig::from_env();
                cfg.enabled.then(|| Arc::new(PlanRegistry::with_config(&cfg)))
            })
            .as_ref()
    }

    /// Lock `m`, recovering from poisoning via `into_inner` instead of
    /// propagating the panic. Sound for every lock here: shard state is
    /// maps of immutable `Arc`s plus monotone counters, and the only
    /// panics possible under a lock (compile panics are caught before
    /// they unwind past the guard) leave at worst a missing insertion,
    /// which the next miss recompiles. Returns the recovery count
    /// (0 or 1) for the caller's [`RegistryOutcome`].
    fn lock_recover<'a, T>(&self, m: &'a Mutex<T>) -> (MutexGuard<'a, T>, u64) {
        match m.lock() {
            Ok(g) => (g, 0),
            Err(poisoned) => {
                // Clear the flag so one panic is one recovery, not one
                // per access forever after.
                m.clear_poison();
                self.poison_recoveries.fetch_add(1, Ordering::Relaxed);
                (poisoned.into_inner(), 1)
            }
        }
    }

    fn shard_of(&self, key: PlanKey) -> &Mutex<Shard> {
        // The key's pointer component is allocation-aligned; mix the
        // low bits away so consecutive allocations spread over shards.
        let mixed = crate::exec::mix64(key.0 as u64 ^ key.1.rotate_left(32));
        &self.shards[(mixed as usize) % self.shards.len()]
    }

    fn key_of(planned: &PlannedRemap) -> Option<PlanKey> {
        let pair = planned.plan.mappings.as_ref()?;
        Some((Arc::as_ptr(pair) as usize, planned.plan.elem_size))
    }

    /// Evict least-recently-used entries until the shard fits its cap;
    /// returns how many were dropped. The entry just touched carries
    /// the newest stamp, so it is never the victim.
    fn evict_over_cap(shard: &mut Shard, cap: usize) -> u64 {
        let mut evicted = 0;
        while shard.map.len() > cap {
            let Some(victim) = shard.map.iter().min_by_key(|(_, e)| e.stamp).map(|(k, _)| *k)
            else {
                break;
            };
            shard.map.remove(&victim);
            evicted += 1;
        }
        evicted
    }

    /// The shared plan → schedule → program artifact for `(src, dst)`
    /// at `elem_size`: served from the registry when present (a *hit*,
    /// allocation-free), otherwise interned, compiled once under the
    /// shard lock, and registered (a *miss*). Concurrent requests for
    /// the same cold pair serialize on the shard and compile exactly
    /// once.
    pub fn get_or_compile(
        &self,
        src: &NormalizedMapping,
        dst: &NormalizedMapping,
        elem_size: u64,
    ) -> (Arc<PlannedRemap>, RegistryOutcome) {
        match self.lookup_or_compile(src, dst, elem_size, false) {
            (Ok(planned), out) => (planned, out),
            // A genuinely panicking compile: re-raise it *outside* the
            // shard lock, so the registry stays healthy for everyone
            // else even on this legacy infallible-signature path.
            (Err(payload), _) => std::panic::resume_unwind(payload),
        }
    }

    /// [`PlanRegistry::get_or_compile`] with compile panics contained:
    /// a panicking compile (injected via `force_panic`, or real) is
    /// caught by `catch_unwind` *inside* the critical section, so the
    /// shard `Mutex` is released healthy — never poisoned — and the
    /// caller gets a typed [`crate::CompileDecline::Panicked`] to
    /// recover from (clean solo compile, or the table engine). Nothing
    /// is registered and no miss is counted for a declined compile.
    ///
    /// A quarantined pair short-circuits everything: the
    /// program-stripped artifact is served as a *hit* (zero retries,
    /// zero recompiles billed) until its backoff window closes.
    pub fn try_get_or_compile(
        &self,
        src: &NormalizedMapping,
        dst: &NormalizedMapping,
        elem_size: u64,
        force_panic: bool,
    ) -> (Result<Arc<PlannedRemap>, crate::CompileDecline>, RegistryOutcome) {
        let (res, out) = self.lookup_or_compile(src, dst, elem_size, force_panic);
        (res.map_err(|_| crate::CompileDecline::Panicked), out)
    }

    /// Common body of the two lookups; `Err` carries the caught panic
    /// payload (the shard guard is already dropped, unpoisoned).
    #[allow(clippy::type_complexity)]
    fn lookup_or_compile(
        &self,
        src: &NormalizedMapping,
        dst: &NormalizedMapping,
        elem_size: u64,
        force_panic: bool,
    ) -> (Result<Arc<PlannedRemap>, Box<dyn std::any::Any + Send>>, RegistryOutcome) {
        let pair = intern::pair(src, dst);
        let key: PlanKey = (Arc::as_ptr(&pair) as usize, elem_size);
        let mut out = RegistryOutcome::default();
        // The quarantine table is consulted only once anything was ever
        // quarantined (monotone counter): the common hot path stays a
        // single shard-lock acquisition.
        if self.quarantined.load(Ordering::Relaxed) != 0 {
            if let Some(stripped) = self.quarantine_probe(key, &mut out) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                out.hit = true;
                return (Ok(stripped), out);
            }
        }
        let (mut shard, rec) = self.lock_recover(self.shard_of(key));
        out.lock_recoveries += rec;
        shard.clock += 1;
        let stamp = shard.clock;
        if let Some(e) = shard.map.get_mut(&key) {
            e.stamp = stamp;
            self.hits.fetch_add(1, Ordering::Relaxed);
            out.hit = true;
            return (Ok(Arc::clone(&e.planned)), out);
        }
        // Compile the whole pipeline under the shard lock: a second
        // session asking for this pair waits here and then hits.
        // (`plan_redistribution` re-interns the pair — a pure lookup,
        // returning the same pointer we key by.) The `catch_unwind`
        // stops a panicking compile before it unwinds past the guard —
        // the lock is never poisoned by a compile.
        let compiled = catch_unwind(AssertUnwindSafe(|| {
            if force_panic {
                std::panic::panic_any(crate::fault::InjectedPanic);
            }
            Arc::new(PlannedRemap::compile(plan_redistribution(src, dst, elem_size)))
        }));
        let planned = match compiled {
            Ok(p) => p,
            Err(payload) => {
                drop(shard);
                return (Err(payload), out);
            }
        };
        shard.map.insert(key, Entry { planned: Arc::clone(&planned), stamp });
        out.evicted = Self::evict_over_cap(&mut shard, self.shard_cap);
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.evictions.fetch_add(out.evicted, Ordering::Relaxed);
        (Ok(planned), out)
    }

    /// Publish an artifact compiled elsewhere (lowering, a seeded
    /// session). If the pair is already registered the **existing**
    /// artifact wins and is returned — callers must adopt the returned
    /// `Arc` as canonical. Plans without a mapping pair (rank-0
    /// degenerate) cannot be keyed and pass through untouched.
    pub fn adopt(&self, planned: Arc<PlannedRemap>) -> (Arc<PlannedRemap>, RegistryOutcome) {
        let Some(key) = Self::key_of(&planned) else {
            return (planned, RegistryOutcome::default());
        };
        let (mut shard, rec) = self.lock_recover(self.shard_of(key));
        let mut out = RegistryOutcome { lock_recoveries: rec, ..Default::default() };
        shard.clock += 1;
        let stamp = shard.clock;
        if let Some(e) = shard.map.get_mut(&key) {
            e.stamp = stamp;
            self.hits.fetch_add(1, Ordering::Relaxed);
            out.hit = true;
            return (Arc::clone(&e.planned), out);
        }
        shard.map.insert(key, Entry { planned: Arc::clone(&planned), stamp });
        out.evicted = Self::evict_over_cap(&mut shard, self.shard_cap);
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.evictions.fetch_add(out.evicted, Ordering::Relaxed);
        (planned, out)
    }

    /// Replace the registered artifact for `planned`'s pair —
    /// unconditionally. This is the repair (and fault-injection) hook:
    /// when a session detects a poisoned program and recompiles it, the
    /// healthy artifact is installed registry-wide so no later session
    /// is served the corrupt one. Counts neither hit nor miss.
    pub fn install(&self, planned: Arc<PlannedRemap>) {
        let Some(key) = Self::key_of(&planned) else { return };
        let (mut shard, _) = self.lock_recover(self.shard_of(key));
        shard.clock += 1;
        let stamp = shard.clock;
        shard.map.insert(key, Entry { planned, stamp });
        let evicted = Self::evict_over_cap(&mut shard, self.shard_cap);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
    }

    /// The registered artifact for `(src, dst)` at `elem_size`, if any
    /// — a read-only probe (touches LRU recency, counts nothing).
    pub fn get(
        &self,
        src: &NormalizedMapping,
        dst: &NormalizedMapping,
        elem_size: u64,
    ) -> Option<Arc<PlannedRemap>> {
        let pair: MappingPair = intern::pair(src, dst);
        let key: PlanKey = (Arc::as_ptr(&pair) as usize, elem_size);
        let (mut shard, _) = self.lock_recover(self.shard_of(key));
        shard.clock += 1;
        let stamp = shard.clock;
        let e = shard.map.get_mut(&key)?;
        e.stamp = stamp;
        Some(Arc::clone(&e.planned))
    }

    /// A counted probe of the concrete tables for `(src, dst)` at
    /// `elem_size` — the first leg of the symbolic flow. Mirrors
    /// the internal lookup-or-compile serving order exactly: a
    /// quarantined pair short-circuits to its program-stripped artifact
    /// (consuming one backoff-window slot), then the shard is probed,
    /// touching LRU recency. A hit bills the registry-internal hit
    /// counter and sets `out.hit`; a miss bills **nothing** — the
    /// caller decides whether the symbolic table or a concrete compile
    /// resolves it, and that path does the miss accounting.
    pub fn probe(
        &self,
        src: &NormalizedMapping,
        dst: &NormalizedMapping,
        elem_size: u64,
    ) -> (Option<Arc<PlannedRemap>>, RegistryOutcome) {
        let pair: MappingPair = intern::pair(src, dst);
        let key: PlanKey = (Arc::as_ptr(&pair) as usize, elem_size);
        let mut out = RegistryOutcome::default();
        if self.quarantined.load(Ordering::Relaxed) != 0 {
            if let Some(stripped) = self.quarantine_probe(key, &mut out) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                out.hit = true;
                return (Some(stripped), out);
            }
        }
        let (mut shard, rec) = self.lock_recover(self.shard_of(key));
        out.lock_recoveries += rec;
        shard.clock += 1;
        let stamp = shard.clock;
        if let Some(e) = shard.map.get_mut(&key) {
            e.stamp = stamp;
            self.hits.fetch_add(1, Ordering::Relaxed);
            out.hit = true;
            return (Some(Arc::clone(&e.planned)), out);
        }
        (None, out)
    }

    /// The symbolic-keyed artifact for `(src, dst)` at `elem_size`:
    /// both mappings are reduced to their P-free residues
    /// ([`hpfc_mapping::normalize_symbolic`]), the residue pair is
    /// interned, and the per-format-pair [`crate::SymbolicPlan`] — created on
    /// first sight, served ever after — materializes the concrete
    /// artifact at this exact `(p_src, p_dst, extent)` instantiation
    /// point.
    ///
    /// `None` (a *decline*, `NetStats::symbolic_declines`) when either
    /// mapping has no symbolic residue, the extents differ, or the
    /// formats cannot be realized at the requested point; nothing is
    /// billed and nothing is cached — the caller falls back to the
    /// concrete [`PlanRegistry::try_get_or_compile`] path.
    ///
    /// Billing on success mirrors the concrete scheme so compile-once
    /// accounting holds under both keyings: a fresh format pair is a
    /// registry *miss* (the caller additionally bills
    /// `plans_computed`); a known pair is a *hit*, and if this call
    /// materialized a new instantiation point, `out.instantiated` marks
    /// the cheap cross-`P` path (`NetStats::symbolic_instantiations`).
    pub fn get_or_instantiate(
        &self,
        src: &NormalizedMapping,
        dst: &NormalizedMapping,
        elem_size: u64,
    ) -> Option<(Arc<PlannedRemap>, crate::SymbolicOutcome)> {
        let (src_fmt, p_src) = hpfc_mapping::normalize_symbolic(src)?;
        let (dst_fmt, p_dst) = hpfc_mapping::normalize_symbolic(dst)?;
        if src.array_extents != dst.array_extents || src.array_extents.rank() != 1 {
            return None;
        }
        let extent = src.array_extents.extent(0);
        let formats = hpfc_mapping::format_pair(src_fmt, dst_fmt);
        let key: SymKey = (Arc::as_ptr(&formats) as usize, elem_size);
        let mut out = crate::SymbolicOutcome::default();
        let (mut sym, rec) = self.lock_recover(&self.sym);
        out.lock_recoveries += rec;
        let (plan, known) = match sym.get(&key) {
            Some(plan) => (Arc::clone(plan), true),
            None => {
                let plan = Arc::new(crate::SymbolicPlan::new(formats, elem_size));
                sym.insert(key, Arc::clone(&plan));
                (plan, false)
            }
        };
        // Materialize under the table lock: racing sessions instantiate
        // each point exactly once (the instance cache's own lock makes
        // this belt-and-braces, but holding the table lock keeps the
        // hit/miss decision and the artifact atomic).
        let (planned, fresh) = match plan.instantiate_planned(p_src, p_dst, extent) {
            Some(r) => r,
            None => {
                // Unrealizable point: withdraw a pair entry this call
                // created so a decline leaves no trace.
                if !known {
                    sym.remove(&key);
                }
                return None;
            }
        };
        drop(sym);
        if known {
            self.hits.fetch_add(1, Ordering::Relaxed);
            out.hit = true;
            out.instantiated = fresh;
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        Some((planned, out))
    }

    /// Registered symbolic (format-pair) entries — O(format pairs) by
    /// design; compare [`PlanRegistry::len`], which counts concrete
    /// per-mapping-pair entries.
    pub fn sym_len(&self) -> usize {
        self.lock_recover(&self.sym).0.len()
    }

    /// Total concrete instantiation points materialized across all
    /// symbolic entries (each is one cached plan → schedule → program).
    pub fn sym_instances(&self) -> usize {
        self.lock_recover(&self.sym).0.values().map(|p| p.instances()).sum()
    }

    /// The shared directive-level group artifact for `members` (in
    /// order): served if a group over identical member artifacts is
    /// registered, otherwise compiled and registered. Group identity is
    /// the sequence of member pair identities, so two programs lowering
    /// the same directive share one [`PlannedGroup`]. Members without a
    /// mapping pair make the group unkeyable; it is compiled solo.
    pub fn get_or_compile_group(
        &self,
        members: Vec<Arc<PlannedRemap>>,
    ) -> (Arc<PlannedGroup>, RegistryOutcome) {
        let keys: Option<Box<[PlanKey]>> = members.iter().map(|m| Self::key_of(m)).collect();
        let Some(keys) = keys else {
            return (Arc::new(PlannedGroup::compile(members)), RegistryOutcome::default());
        };
        let (mut groups, rec) = self.lock_recover(&self.groups);
        let mut out = RegistryOutcome { lock_recoveries: rec, ..Default::default() };
        groups.clock += 1;
        let stamp = groups.clock;
        if let Some(e) = groups.map.get_mut(&keys[..]) {
            e.stamp = stamp;
            self.hits.fetch_add(1, Ordering::Relaxed);
            out.hit = true;
            return (Arc::clone(&e.planned), out);
        }
        let planned = Arc::new(PlannedGroup::compile(members));
        groups.map.insert(keys, GroupEntry { planned: Arc::clone(&planned), stamp });
        // Groups share the per-shard cap: they are few (one per lowered
        // directive shape) and each pins its members' pairs alive.
        let mut evicted = 0;
        while groups.map.len() > self.shard_cap {
            let Some(victim) =
                groups.map.iter().min_by_key(|(_, e)| e.stamp).map(|(k, _)| k.clone())
            else {
                break;
            };
            groups.map.remove(&victim);
            evicted += 1;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        out.evicted = evicted;
        (planned, out)
    }

    /// Registered solo entries across all shards (groups not counted).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| self.lock_recover(s).0.map.len()).sum()
    }

    /// Whether no solo entry is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime hit count (solo + group), registry-wide.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime miss count (solo + group), registry-wide.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Lifetime LRU eviction count, registry-wide.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Lifetime poisoned-lock recoveries, registry-wide.
    pub fn lock_recoveries(&self) -> u64 {
        self.poison_recoveries.load(Ordering::Relaxed)
    }

    /// Lifetime quarantine events (first arms plus failed probations).
    pub fn quarantined(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// Serve the quarantined artifact for `key` while its backoff
    /// window is open, consuming one window slot. A closed window
    /// (probation) returns `None`: the caller walks the normal path,
    /// and if that fails repair again, [`PlanRegistry::note_repair`]
    /// re-arms the window doubled.
    fn quarantine_probe(&self, key: PlanKey, out: &mut RegistryOutcome) -> Option<Arc<PlannedRemap>> {
        let (mut q, rec) = self.lock_recover(&self.quarantine);
        out.lock_recoveries += rec;
        let e = q.get_mut(&key)?;
        if e.remaining == 0 {
            return None;
        }
        let stripped = e.stripped.as_ref()?;
        e.remaining -= 1;
        Some(Arc::clone(stripped))
    }

    /// Record one failed fingerprint/recompile repair for `planned`'s
    /// pair — called by the remap path whenever a served artifact had
    /// to be healed. At [`QUARANTINE_THRESHOLD`] failures the pair is
    /// quarantined: a program-stripped artifact (table-engine replay,
    /// no ladder) is served for a backoff window of accesses, which
    /// doubles every time a post-window probation fails again. Returns
    /// whether this call (re-)armed a quarantine window.
    pub fn note_repair(&self, planned: &Arc<PlannedRemap>) -> bool {
        let Some(key) = Self::key_of(planned) else { return false };
        let Some(pair) = planned.plan.mappings.clone() else { return false };
        let (mut q, _) = self.lock_recover(&self.quarantine);
        let e = q.entry(key).or_insert_with(|| QuarantineEntry {
            _pair: pair,
            failures: 0,
            remaining: 0,
            backoff: QUARANTINE_INITIAL_BACKOFF,
            stripped: None,
        });
        e.failures += 1;
        if e.failures < QUARANTINE_THRESHOLD || e.remaining > 0 {
            return false;
        }
        // Threshold reached with no open window: arm (or re-arm after a
        // failed probation) the stripped artifact for `backoff`
        // accesses, then double the next window.
        e.stripped = Some(Arc::new(PlannedRemap {
            plan: planned.plan.clone(),
            schedule: planned.schedule.clone(),
            program: None,
        }));
        e.remaining = e.backoff;
        e.backoff = (e.backoff * 2).min(QUARANTINE_MAX_BACKOFF);
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Whether `(src, dst, elem_size)` currently has an open quarantine
    /// window (diagnostics and tests).
    pub fn is_quarantined(&self, src: &NormalizedMapping, dst: &NormalizedMapping, elem_size: u64) -> bool {
        let pair = intern::pair(src, dst);
        let key: PlanKey = (Arc::as_ptr(&pair) as usize, elem_size);
        let (mut q, _) = self.lock_recover(&self.quarantine);
        q.get_mut(&key).is_some_and(|e| e.remaining > 0 && e.stripped.is_some())
    }

    /// Chaos hook: panic while holding the shard lock that owns
    /// `(src, dst, elem_size)`, poisoning that `Mutex` exactly as a
    /// client panicking mid-critical-section would. Call it from a
    /// scratch thread and join the (expected) panic; the next access to
    /// the shard recovers via `into_inner` and is counted in
    /// [`PlanRegistry::lock_recoveries`].
    pub fn poison_shard_lock_for_tests(
        &self,
        src: &NormalizedMapping,
        dst: &NormalizedMapping,
        elem_size: u64,
    ) {
        let pair = intern::pair(src, dst);
        let key: PlanKey = (Arc::as_ptr(&pair) as usize, elem_size);
        let _guard = self.lock_recover(self.shard_of(key)).0;
        panic!("injected shard-lock poison (test hook)");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpfc_mapping::testing::mapping_1d;
    use hpfc_mapping::DimFormat;

    // Extents unique to this module so the process-wide interner and
    // registry of the unit-test binary never collide with other tests.
    fn pair_for(n: u64) -> (NormalizedMapping, NormalizedMapping) {
        (mapping_1d(n, 4, DimFormat::Block(None)), mapping_1d(n, 4, DimFormat::Cyclic(Some(2))))
    }

    #[test]
    fn parse_accepts_the_documented_forms() {
        assert_eq!(RegistryConfig::parse(""), RegistryConfig::default());
        assert_eq!(RegistryConfig::parse("on"), RegistryConfig::default());
        assert!(!RegistryConfig::parse("off").enabled);
        assert!(!RegistryConfig::parse("0").enabled);
        let cfg = RegistryConfig::parse("shards=2,cap=16");
        assert_eq!((cfg.enabled, cfg.shards, cfg.cap), (true, 2, 16));
        // Tolerant: unknown fragments and garbage values are ignored.
        let cfg = RegistryConfig::parse("shards=3,bogus=1,cap=zzz");
        assert_eq!((cfg.shards, cfg.cap), (3, RegistryConfig::default().cap));
        // Zero sizes are clamped, never panic.
        let cfg = RegistryConfig::parse("shards=0,cap=0");
        assert_eq!((cfg.shards, cfg.cap), (1, 1));
    }

    #[test]
    fn second_request_hits_and_shares_the_artifact() {
        let reg = PlanRegistry::new(2, 64);
        let (src, dst) = pair_for(5003);
        let (p1, o1) = reg.get_or_compile(&src, &dst, 8);
        assert!(!o1.hit);
        let (p2, o2) = reg.get_or_compile(&src, &dst, 8);
        assert!(o2.hit);
        assert!(Arc::ptr_eq(&p1, &p2), "hit must serve the registered Arc");
        // Same pair at a different element size is a distinct artifact.
        let (p3, o3) = reg.get_or_compile(&src, &dst, 4);
        assert!(!o3.hit);
        assert!(!Arc::ptr_eq(&p1, &p3));
        assert_eq!((reg.hits(), reg.misses(), reg.len()), (1, 2, 2));
    }

    #[test]
    fn adopt_keeps_the_first_publisher() {
        let reg = PlanRegistry::new(1, 64);
        let (src, dst) = pair_for(5009);
        let a = Arc::new(PlannedRemap::compile(plan_redistribution(&src, &dst, 8)));
        let b = Arc::new(PlannedRemap::compile(plan_redistribution(&src, &dst, 8)));
        assert!(!Arc::ptr_eq(&a, &b));
        let (ca, oa) = reg.adopt(Arc::clone(&a));
        let (cb, ob) = reg.adopt(Arc::clone(&b));
        assert!(!oa.hit && ob.hit);
        assert!(Arc::ptr_eq(&ca, &a) && Arc::ptr_eq(&cb, &a), "first publisher wins");
    }

    #[test]
    fn lru_eviction_is_bounded_and_counted() {
        // One shard, two slots: a third distinct artifact evicts the
        // least recently used one.
        let reg = PlanRegistry::new(1, 2);
        let (s1, d1) = pair_for(5011);
        let (s2, d2) = pair_for(5021);
        let (s3, d3) = pair_for(5023);
        let (p1, _) = reg.get_or_compile(&s1, &d1, 8);
        let (_p2, _) = reg.get_or_compile(&s2, &d2, 8);
        // Touch pair 1 so pair 2 is the LRU victim.
        let (p1b, o) = reg.get_or_compile(&s1, &d1, 8);
        assert!(o.hit && Arc::ptr_eq(&p1, &p1b));
        let (_, o3) = reg.get_or_compile(&s3, &d3, 8);
        assert_eq!(o3.evicted, 1);
        assert_eq!(reg.len(), 2);
        // Pair 1, touched, survived the eviction...
        let (_, o1c) = reg.get_or_compile(&s1, &d1, 8);
        assert!(o1c.hit);
        // ...while pair 2 — the least recently used — did not: asking
        // again recompiles, and that insert evicts once more (pair 3,
        // now the coldest) to stay at cap.
        let (_, o2b) = reg.get_or_compile(&s2, &d2, 8);
        assert!(!o2b.hit);
        assert_eq!(o2b.evicted, 1);
        assert_eq!(reg.evictions(), 2);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn install_replaces_registry_wide() {
        let reg = PlanRegistry::new(2, 64);
        let (src, dst) = pair_for(5039);
        let (p1, _) = reg.get_or_compile(&src, &dst, 8);
        let replacement = Arc::new(PlannedRemap::clone(&p1));
        reg.install(Arc::clone(&replacement));
        let (served, o) = reg.get_or_compile(&src, &dst, 8);
        assert!(o.hit);
        assert!(Arc::ptr_eq(&served, &replacement) && !Arc::ptr_eq(&served, &p1));
    }

    #[test]
    fn groups_are_shared_by_member_identity() {
        let reg = PlanRegistry::new(2, 64);
        let (s1, d1) = pair_for(5051);
        let (s2, d2) = pair_for(5059);
        let (m1, _) = reg.get_or_compile(&s1, &d1, 8);
        let (m2, _) = reg.get_or_compile(&s2, &d2, 8);
        let (g1, o1) = reg.get_or_compile_group(vec![Arc::clone(&m1), Arc::clone(&m2)]);
        let (g2, o2) = reg.get_or_compile_group(vec![Arc::clone(&m1), Arc::clone(&m2)]);
        assert!(!o1.hit && o2.hit);
        assert!(Arc::ptr_eq(&g1, &g2));
        // Member order is part of the identity.
        let (g3, o3) = reg.get_or_compile_group(vec![m2, m1]);
        assert!(!o3.hit && !Arc::ptr_eq(&g1, &g3));
    }

    #[test]
    fn poisoned_shard_lock_recovers_and_is_counted() {
        let reg = Arc::new(PlanRegistry::new(1, 64));
        let (src, dst) = pair_for(5077);
        let (p1, _) = reg.get_or_compile(&src, &dst, 8);
        // Poison the (only) shard from a scratch thread.
        let r2 = Arc::clone(&reg);
        let (s2, d2) = (src.clone(), dst.clone());
        let joined = std::thread::spawn(move || r2.poison_shard_lock_for_tests(&s2, &d2, 8)).join();
        assert!(joined.is_err(), "the hook must panic while holding the lock");
        // The next access is served — no unwrap panic — and reports the
        // recovery both per-call and registry-wide.
        let (p2, o) = reg.get_or_compile(&src, &dst, 8);
        assert!(o.hit && Arc::ptr_eq(&p1, &p2));
        assert_eq!(o.lock_recoveries, 1);
        assert_eq!(reg.lock_recoveries(), 1);
        // The poison is cleared by the first recovery, not re-counted.
        let (_, o2) = reg.get_or_compile(&src, &dst, 8);
        assert_eq!(o2.lock_recoveries, 0);
    }

    #[test]
    fn contained_compile_panic_declines_without_poisoning() {
        let reg = PlanRegistry::new(1, 64);
        let (src, dst) = pair_for(5081);
        let (res, out) = reg.try_get_or_compile(&src, &dst, 8, true);
        assert_eq!(res.unwrap_err(), crate::CompileDecline::Panicked);
        assert!(!out.hit);
        assert_eq!(reg.misses(), 0, "a declined compile is not a miss");
        assert_eq!(reg.len(), 0, "nothing registered");
        // The shard lock survived the panicking compile: the clean
        // retry compiles and registers normally with zero recoveries.
        let (res2, out2) = reg.try_get_or_compile(&src, &dst, 8, false);
        assert!(res2.is_ok() && !out2.hit && out2.lock_recoveries == 0);
        assert_eq!((reg.misses(), reg.len()), (1, 1));
    }

    #[test]
    fn quarantine_arms_at_threshold_and_serves_stripped_artifacts() {
        let reg = PlanRegistry::new(2, 64);
        let (src, dst) = pair_for(5087);
        let (p, _) = reg.get_or_compile(&src, &dst, 8);
        assert!(p.program.is_some(), "1-D plan compiles");
        // Two failed repairs: below threshold, nothing served stripped.
        assert!(!reg.note_repair(&p));
        assert!(!reg.note_repair(&p));
        assert!(!reg.is_quarantined(&src, &dst, 8));
        // Third strike arms the window.
        assert!(reg.note_repair(&p));
        assert_eq!(reg.quarantined(), 1);
        assert!(reg.is_quarantined(&src, &dst, 8));
        // Every access in the window is a hit serving the program-less
        // artifact (replay goes straight to the table engine).
        for _ in 0..QUARANTINE_INITIAL_BACKOFF {
            let (q, o) = reg.try_get_or_compile(&src, &dst, 8, false);
            let q = q.unwrap();
            assert!(o.hit && q.program.is_none());
            assert_eq!(q.plan.total_messages(), p.plan.total_messages());
        }
        // Window exhausted: probation serves the registered artifact.
        assert!(!reg.is_quarantined(&src, &dst, 8));
        let (probed, o) = reg.try_get_or_compile(&src, &dst, 8, false);
        assert!(o.hit && Arc::ptr_eq(&probed.unwrap(), &p));
        // A failed probation re-arms immediately (threshold already
        // met) with the window doubled.
        assert!(reg.note_repair(&p));
        assert_eq!(reg.quarantined(), 2);
        let mut served = 0;
        while reg.is_quarantined(&src, &dst, 8) {
            let (q, _) = reg.try_get_or_compile(&src, &dst, 8, false);
            assert!(q.unwrap().program.is_none());
            served += 1;
        }
        assert_eq!(served, 2 * QUARANTINE_INITIAL_BACKOFF);
    }
}
