//! The zero-allocation contract of the steady-state remap path.
//!
//! After the first remap in each direction has populated the plan
//! cache, a remap bounce must perform **no heap allocation at all** in
//! the data-movement path: the cached [`hpfc_runtime::CopyProgram`] is
//! replayed triple by triple, schedule accounting runs in the machine's
//! reusable scratch arena, and the cache lookup hands out an `Arc`
//! clone (a refcount bump, not an allocation).
//!
//! Pinned with a counting global allocator. Everything lives in ONE
//! `#[test]` on purpose: the counter is process-global, and the test
//! harness would otherwise interleave allocations from sibling tests.
//! Only the test thread's allocations are counted (a thread-local
//! opt-in flag): the libtest harness thread lazily initializes its own
//! channel machinery (`std::sync::mpmc` thread-locals) at an arbitrary
//! moment, and a measured window must not fail because that one-time
//! setup landed inside it. The whole measured path (serial replay) runs
//! on the test thread, so the contract is unchanged.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};

use hpfc_mapping::{testing::mapping_1d as mk, DimFormat};
use hpfc_runtime::{
    plan_redistribution, remap_group, ArrayRt, CommSchedule, CopyProgram, ExecMode, GroupMember,
    Machine, PlanRegistry, PlannedGroup, PlannedRemap, VersionData,
};

/// `System`, with every allocation on the opted-in thread counted.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

std::thread_local! {
    /// Set on the test thread only; allocator callbacks on other
    /// threads (the harness) leave the counter alone. `const` init so
    /// reading the flag never itself allocates.
    static COUNTED: Cell<bool> = const { Cell::new(false) };
}

fn count() {
    // `try_with`: TLS may be unavailable during thread teardown.
    if COUNTED.try_with(Cell::get).unwrap_or(false) {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count();
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_remap_allocates_nothing() {
    COUNTED.with(|c| c.set(true));
    // The zero-allocation contract below holds for the DISABLED
    // fault/validation configuration — the default. With a FaultPlan or
    // a validation level configured, remaps take the guarded recovery
    // path instead, which may allocate (checksum walks, recompiles,
    // table fallbacks) by design. Pin the precondition so a future
    // default change trips loudly here rather than silently weakening
    // the measured windows.
    {
        let m = Machine::new(4);
        assert!(m.faults.is_none(), "fault injection must default off");
        assert_eq!(
            m.validation,
            hpfc_runtime::ValidationLevel::Off,
            "validation must default off"
        );
    }
    let n = 4096u64;
    let src = mk(n, 4, DimFormat::Block(None));
    let dst = mk(n, 4, DimFormat::Cyclic(Some(3)));

    // --- 1. Bare program replay is allocation-free. -------------------
    let plan = plan_redistribution(&src, &dst, 8);
    // Positive control: the thread-gated counter sees the planner's
    // allocations, so the zero-delta windows below are meaningful.
    assert!(allocations() > 0, "counter is live on the test thread");
    let schedule = CommSchedule::from_plan(&plan);
    let program = CopyProgram::try_compile(&plan, &schedule).expect("compiles");
    let mut a = VersionData::new(src.clone(), 8);
    a.fill(|p| p[0] as f64);
    let mut b = VersionData::new(dst.clone(), 8);
    b.copy_values_from_program(&a, &program, ExecMode::Serial); // touch once
    let before = allocations();
    for _ in 0..8 {
        b.copy_values_from_program(&a, &program, ExecMode::Serial);
    }
    assert_eq!(
        allocations(),
        before,
        "CopyProgram serial replay must not allocate"
    );
    assert_eq!(a.to_dense(), b.to_dense(), "and it still moves the data");

    // --- 2. The whole cached remap path is allocation-free. -----------
    // remap = status check + cache lookup (Arc clone) + schedule
    // accounting (machine scratch arena) + program replay. The registry
    // is isolated per section so the exact plans_computed assertions
    // cannot be satisfied by another section's registrations.
    let mut machine = Machine::new(4)
        .with_exec_mode(ExecMode::Serial)
        .with_registry(std::sync::Arc::new(PlanRegistry::new(2, 64)));
    let mut rt = ArrayRt::new("a", vec![src, dst], 8);
    rt.current(&mut machine, 0).fill(|p| p[0] as f64);
    let keep: BTreeSet<u32> = [0u32, 1].into_iter().collect();
    // Warm up: allocate both copies, populate the plan cache both
    // directions, grow the accounting scratch.
    for _ in 0..2 {
        rt.remap(&mut machine, 1, &keep, false);
        rt.set(&[0], 1.0); // stale the other copy: data moves each bounce
        rt.remap(&mut machine, 0, &keep, false);
        rt.set(&[1], 1.0);
    }
    let performed = machine.stats.remaps_performed;
    for i in 0..10u64 {
        rt.set(&[0], i as f64); // outside the measured window
        let before = allocations();
        rt.remap(&mut machine, 1, &keep, false);
        assert_eq!(allocations(), before, "remap {i} ->1 allocated");
        rt.set(&[1], i as f64);
        let before = allocations();
        rt.remap(&mut machine, 0, &keep, false);
        assert_eq!(allocations(), before, "remap {i} ->0 allocated");
    }
    // All twenty measured remaps really moved data through the engine.
    assert_eq!(machine.stats.remaps_performed, performed + 20);
    assert_eq!(machine.stats.plans_computed, 2, "planned once per direction");

    // --- 3. The Fig. 18 restore path is allocation-free too. ----------
    // A save/restore loop: the array is remapped to the callee's
    // version (the ArgIn copy), written there (so the saved copy goes
    // stale and the restore must move data), then restored to the saved
    // tag. `ArrayRt::restore` is a tag-dispatched `remap_guarded`: with
    // the plan cache warm it is a status check + Arc clone + compiled
    // program replay — no heap allocation, exactly like a plain cached
    // remap bounce.
    let saved: u32 = 0; // the tag SaveStatus recorded before the call
    let dummy: u32 = 1; // the callee's version
    let mut machine = Machine::new(4)
        .with_exec_mode(ExecMode::Serial)
        .with_registry(std::sync::Arc::new(PlanRegistry::new(2, 64)));
    let src = mk(n, 4, DimFormat::Block(None));
    let dst = mk(n, 4, DimFormat::Cyclic(Some(3)));
    let mut rt = ArrayRt::new("a", vec![src, dst], 8);
    rt.current(&mut machine, saved).fill(|p| p[0] as f64);
    let keep: BTreeSet<u32> = [saved, dummy].into_iter().collect();
    // Warm up: populate the plan cache in both directions.
    for _ in 0..2 {
        rt.remap(&mut machine, dummy, &keep, false);
        rt.set(&[0], 2.0); // the callee writes through the dummy copy
        rt.restore(&mut machine, saved, &keep, false);
        rt.set(&[1], 2.0);
    }
    let restored = machine.stats.restores_replayed;
    let performed = machine.stats.remaps_performed;
    for i in 0..10u64 {
        rt.set(&[0], i as f64); // outside the measured window
        let before = allocations();
        rt.remap(&mut machine, dummy, &keep, false);
        assert_eq!(allocations(), before, "restore bounce {i}: argin remap allocated");
        rt.set(&[1], i as f64);
        let before = allocations();
        rt.restore(&mut machine, saved, &keep, false);
        assert_eq!(allocations(), before, "restore bounce {i}: restore allocated");
    }
    assert_eq!(machine.stats.restores_replayed, restored + 10);
    assert_eq!(machine.stats.remaps_performed, performed + 20, "every bounce moved data");
    assert_eq!(machine.stats.plans_computed, 2, "restore replays never plan");

    // --- 4. A cached remap GROUP bounce is allocation-free too, under
    // both engines. Two arrays remapped by one directive share merged
    // caterpillar rounds: the coalesced path is eligibility checks
    // (mask bits), masked accounting in the machine scratch arena, and
    // a round-by-round replay of the precompiled group program. At
    // n = 4096 every merged round is below the parallel inline
    // threshold, so ExecMode::Parallel(4) replays inline — the
    // steady-state contract holds for both engines.
    for mode in [ExecMode::Serial, ExecMode::Parallel(4)] {
        let src = mk(n, 4, DimFormat::Block(None));
        let dst = mk(n, 4, DimFormat::Cyclic(Some(3)));
        let mut machine = Machine::new(4).with_exec_mode(mode);
        let mut a = ArrayRt::new("a", vec![src.clone(), dst.clone()], 8);
        let mut b = ArrayRt::new("b", vec![src.clone(), dst.clone()], 8);
        a.current(&mut machine, 0).fill(|p| p[0] as f64);
        b.current(&mut machine, 0).fill(|p| 2.0 * p[0] as f64);
        let solo = |s: &_, d: &_| {
            std::sync::Arc::new(PlannedRemap::compile(plan_redistribution(s, d, 8)))
        };
        let fwd = PlannedGroup::compile(vec![solo(&src, &dst), solo(&src, &dst)]);
        let back = PlannedGroup::compile(vec![solo(&dst, &src), solo(&dst, &src)]);
        let keep: BTreeSet<u32> = [0u32, 1].into_iter().collect();
        let skip = BTreeSet::new();
        // Warm up: allocate both versions of both arrays, seed the
        // caches, grow the accounting scratch.
        for _ in 0..2 {
            let mut members = [
                GroupMember { rt: &mut a, src: 0, target: 1, may_live: &keep, skip_if_current: &skip },
                GroupMember { rt: &mut b, src: 0, target: 1, may_live: &keep, skip_if_current: &skip },
            ];
            remap_group(&mut machine, &mut members, &fwd);
            a.set(&[0], 1.0);
            b.set(&[0], 1.0);
            let mut members = [
                GroupMember { rt: &mut a, src: 1, target: 0, may_live: &keep, skip_if_current: &skip },
                GroupMember { rt: &mut b, src: 1, target: 0, may_live: &keep, skip_if_current: &skip },
            ];
            remap_group(&mut machine, &mut members, &back);
            a.set(&[1], 1.0);
            b.set(&[1], 1.0);
        }
        let groups = machine.stats.remap_groups_coalesced;
        let performed = machine.stats.remaps_performed;
        for i in 0..10u64 {
            a.set(&[0], i as f64); // outside the measured window
            b.set(&[0], i as f64);
            let before = allocations();
            let mut members = [
                GroupMember { rt: &mut a, src: 0, target: 1, may_live: &keep, skip_if_current: &skip },
                GroupMember { rt: &mut b, src: 0, target: 1, may_live: &keep, skip_if_current: &skip },
            ];
            remap_group(&mut machine, &mut members, &fwd);
            assert_eq!(allocations(), before, "group bounce {i} ({mode:?}) ->1 allocated");
            a.set(&[1], i as f64);
            b.set(&[1], i as f64);
            let before = allocations();
            let mut members = [
                GroupMember { rt: &mut a, src: 1, target: 0, may_live: &keep, skip_if_current: &skip },
                GroupMember { rt: &mut b, src: 1, target: 0, may_live: &keep, skip_if_current: &skip },
            ];
            remap_group(&mut machine, &mut members, &back);
            assert_eq!(allocations(), before, "group bounce {i} ({mode:?}) ->0 allocated");
        }
        // Every measured bounce coalesced both arrays' movement.
        assert_eq!(machine.stats.remap_groups_coalesced, groups + 20);
        assert_eq!(machine.stats.remaps_performed, performed + 40);
        assert_eq!(machine.stats.plans_computed, 0, "group members were precompiled");
    }

    // --- 5. A registry-HIT bounce is allocation-free too. -------------
    // The local plan-cache entry is evicted before every measured remap,
    // so each one takes the full shared-service path: stack-hash the
    // mapping pair, probe the interner (a hit returns an existing Arc),
    // lock the registry shard, touch the LRU stamp, clone the artifact
    // out, and re-seed the local view (BTreeMap leaf reuse — the key
    // was just removed). None of it may heap-allocate, and the data a
    // registry-served session produces must be byte-identical to the
    // solo path's.
    let registry = std::sync::Arc::new(PlanRegistry::new(4, 64));
    let src = mk(n, 4, DimFormat::Block(None));
    let dst = mk(n, 4, DimFormat::Cyclic(Some(3)));
    // Concrete keys pinned explicitly — this section measures the
    // concrete shard path; section 8 measures the symbolic one.
    let mut machine = Machine::new(4)
        .with_exec_mode(ExecMode::Serial)
        .with_registry(std::sync::Arc::clone(&registry))
        .with_symbolic(false);
    let mut solo_machine = Machine::new(4).with_exec_mode(ExecMode::Serial).without_registry();
    let mut rt = ArrayRt::new("a", vec![src.clone(), dst.clone()], 8);
    let mut solo = ArrayRt::new("s", vec![src, dst], 8);
    rt.current(&mut machine, 0).fill(|p| (7 * p[0] + 3) as f64);
    solo.current(&mut solo_machine, 0).fill(|p| (7 * p[0] + 3) as f64);
    let keep: BTreeSet<u32> = [0u32, 1].into_iter().collect();
    // Warm up: registers both directions, grows scratch, seeds locals.
    for _ in 0..2 {
        for (r, m) in [(&mut rt, &mut machine), (&mut solo, &mut solo_machine)] {
            r.remap(m, 1, &keep, false);
            r.set(&[0], 1.0);
            r.remap(m, 0, &keep, false);
            r.set(&[1], 1.0);
        }
    }
    let hits = machine.stats.registry_hits;
    for i in 0..10u64 {
        rt.set(&[0], i as f64); // outside the measured window
        solo.set(&[0], i as f64);
        rt.plan_cache.remove(&(0, 1)); // evict the local view: the registry serves
        let before = allocations();
        rt.remap(&mut machine, 1, &keep, false);
        assert_eq!(allocations(), before, "registry-hit remap {i} ->1 allocated");
        rt.set(&[1], i as f64);
        solo.set(&[1], i as f64);
        rt.plan_cache.remove(&(1, 0));
        let before = allocations();
        rt.remap(&mut machine, 0, &keep, false);
        assert_eq!(allocations(), before, "registry-hit remap {i} ->0 allocated");
        solo.remap(&mut solo_machine, 1, &keep, false);
        solo.remap(&mut solo_machine, 0, &keep, false);
    }
    // Every measured remap was really served by the registry...
    assert_eq!(machine.stats.registry_hits, hits + 20);
    assert_eq!(machine.stats.plans_computed, 2, "compiled once per direction, ever");
    assert_eq!(machine.stats.registry_misses, 2);
    assert_eq!(solo_machine.stats.plans_computed, 2, "the solo A/B baseline plans itself");
    // ...and the served artifact moves bytes identically to the solo
    // path.
    for i in 0..n {
        assert_eq!(rt.get(&[i]), solo.get(&[i]), "registry and solo paths diverge at {i}");
    }

    // --- 6. The transactional happy path is allocation-free too. ------
    // With a validation level configured the remap runs guarded and
    // ARMED: a rollback record (status, live flags, the destination
    // runs the compiled program will write) is captured into the
    // machine's scratch arena before the replay and dropped on commit.
    // Warm-up grows the scratch once per direction; after that every
    // snapshot + commit cycle reuses its capacity — zero allocations
    // per cached bounce, and the happy path never rolls back.
    let src = mk(n, 4, DimFormat::Block(None));
    let dst = mk(n, 4, DimFormat::Cyclic(Some(3)));
    let mut machine = Machine::new(4)
        .with_exec_mode(ExecMode::Serial)
        .without_registry()
        .with_validation(hpfc_runtime::ValidationLevel::Counts)
        .with_txn(true);
    let mut rt = ArrayRt::new("a", vec![src, dst], 8);
    rt.current(&mut machine, 0).fill(|p| p[0] as f64);
    let keep: BTreeSet<u32> = [0u32, 1].into_iter().collect();
    // Warm up: both copies allocated, both directions' programs cached,
    // the snapshot scratch grown to both directions' run counts.
    for _ in 0..2 {
        rt.remap(&mut machine, 1, &keep, false);
        rt.set(&[0], 1.0);
        rt.remap(&mut machine, 0, &keep, false);
        rt.set(&[1], 1.0);
    }
    let performed = machine.stats.remaps_performed;
    for i in 0..10u64 {
        rt.set(&[0], i as f64); // outside the measured window
        let before = allocations();
        rt.remap(&mut machine, 1, &keep, false);
        assert_eq!(allocations(), before, "transactional remap {i} ->1 allocated");
        rt.set(&[1], i as f64);
        let before = allocations();
        rt.remap(&mut machine, 0, &keep, false);
        assert_eq!(allocations(), before, "transactional remap {i} ->0 allocated");
    }
    assert_eq!(machine.stats.remaps_performed, performed + 20, "every bounce moved data");
    assert_eq!(machine.stats.txn_rollbacks, 0, "the happy path never rolls back");
    assert_eq!(machine.stats.plans_computed, 2);

    // --- 7. Strided-kernel replay is allocation-free too. -------------
    // cyclic(1) destinations compile to pure Gather stride families
    // (zero residual triples): the cached bounce exercises the family
    // walk in the replay, the per-unit run accounting, and — armed by
    // the validation level — the strided TxnScratch capture. All of it
    // must reuse warm capacity, exactly like the triple path above.
    let src = mk(n, 4, DimFormat::Block(None));
    let dst = mk(n, 4, DimFormat::Cyclic(None));
    let mut machine = Machine::new(4)
        .with_exec_mode(ExecMode::Serial)
        .without_registry()
        .with_validation(hpfc_runtime::ValidationLevel::Counts)
        .with_txn(true);
    let mut rt = ArrayRt::new("a", vec![src, dst], 8);
    rt.current(&mut machine, 0).fill(|p| p[0] as f64);
    let keep: BTreeSet<u32> = [0u32, 1].into_iter().collect();
    for _ in 0..2 {
        rt.remap(&mut machine, 1, &keep, false);
        rt.set(&[0], 1.0);
        rt.remap(&mut machine, 0, &keep, false);
        rt.set(&[1], 1.0);
    }
    // Pin the premise: the cached forward program really is family-only
    // with Gather kernels — otherwise this section silently degenerates
    // into another triple-path measurement.
    {
        let cached = rt.plan_cache.get(&(0, 1)).expect("warmed");
        let prog = cached.program.as_ref().expect("cyclic(1) compiles");
        assert!(!prog.fams.is_empty(), "stride families drive this shape");
        assert!(prog.runs.is_empty(), "no residual triples for cyclic(1)");
        assert!(
            prog.local.iter().chain(prog.rounds.iter().flatten()).all(|u| matches!(
                u.kernel,
                hpfc_runtime::Kernel::Gather
            )),
            "every unit dispatches the gather kernel"
        );
    }
    let performed = machine.stats.remaps_performed;
    for i in 0..10u64 {
        rt.set(&[0], i as f64); // outside the measured window
        let before = allocations();
        rt.remap(&mut machine, 1, &keep, false);
        assert_eq!(allocations(), before, "strided-kernel remap {i} ->1 allocated");
        rt.set(&[1], i as f64);
        let before = allocations();
        rt.remap(&mut machine, 0, &keep, false);
        assert_eq!(allocations(), before, "strided-kernel remap {i} ->0 allocated");
    }
    assert_eq!(machine.stats.remaps_performed, performed + 20, "every bounce moved data");
    assert_eq!(machine.stats.txn_rollbacks, 0, "the happy path never rolls back");
    assert_eq!(machine.stats.plans_computed, 2, "planned once per direction");

    // --- 8. A SYMBOLIC registry-hit bounce is allocation-free too. ----
    // Section 5 with `HPFC_SYMBOLIC` keying pinned on: the local view
    // is evicted before every measured remap, so each takes the full
    // symbolic flow — probe the concrete tables (miss: under symbolic
    // keying nothing was ever registered there), reduce both mappings
    // to their P-free residues (pure stack arithmetic — the field-wise
    // round-trip check in `normalize_symbolic` builds no mappings),
    // intern the format pair (a live hit returns the existing Arc),
    // lock the format-pair table, and serve the cached instantiation
    // point out of the `SymbolicPlan`'s instance map (an Arc clone).
    // The one-time costs — materializing the artifact at a new
    // `(p_src, p_dst, extent)` point — happened in the warm-up, like
    // the concrete scheme's compiles.
    let registry = std::sync::Arc::new(PlanRegistry::new(4, 64));
    let src = mk(n, 4, DimFormat::Block(None));
    let dst = mk(n, 4, DimFormat::Cyclic(Some(3)));
    let mut machine = Machine::new(4)
        .with_exec_mode(ExecMode::Serial)
        .with_registry(std::sync::Arc::clone(&registry))
        .with_symbolic(true);
    let mut rt = ArrayRt::new("a", vec![src, dst], 8);
    rt.current(&mut machine, 0).fill(|p| p[0] as f64);
    let keep: BTreeSet<u32> = [0u32, 1].into_iter().collect();
    // Warm up: registers both format pairs and materializes their
    // instantiation points, grows scratch, seeds locals.
    for _ in 0..2 {
        rt.remap(&mut machine, 1, &keep, false);
        rt.set(&[0], 1.0);
        rt.remap(&mut machine, 0, &keep, false);
        rt.set(&[1], 1.0);
    }
    assert_eq!(
        (registry.len(), registry.sym_len()),
        (0, 2),
        "symbolic keying holds both directions as format pairs"
    );
    let hits = machine.stats.registry_hits;
    for i in 0..10u64 {
        rt.set(&[0], i as f64); // outside the measured window
        rt.plan_cache.remove(&(0, 1)); // evict: the symbolic table serves
        let before = allocations();
        rt.remap(&mut machine, 1, &keep, false);
        assert_eq!(allocations(), before, "symbolic-hit remap {i} ->1 allocated");
        rt.set(&[1], i as f64);
        rt.plan_cache.remove(&(1, 0));
        let before = allocations();
        rt.remap(&mut machine, 0, &keep, false);
        assert_eq!(allocations(), before, "symbolic-hit remap {i} ->0 allocated");
    }
    // Every measured remap was served by the symbolic table: a hit on
    // the format pair, a cached instantiation point, zero new plans
    // and zero fresh instantiations.
    assert_eq!(machine.stats.registry_hits, hits + 20);
    assert_eq!(machine.stats.plans_computed, 2, "compiled once per format pair, ever");
    assert_eq!(machine.stats.registry_misses, 2);
    assert_eq!(machine.stats.symbolic_instantiations, 0, "no new instantiation points");
    assert_eq!(machine.stats.symbolic_declines, 0, "the shape is symbolic");
}
