//! Chaos harness for the self-healing remap engine: inject every fault
//! class at deterministic `(remap, round)` sites and assert the engine
//! heals — final contents equal a per-point oracle, wire accounting
//! books each remap exactly once (retried rounds are never re-billed),
//! recovery never plans (`plans_computed == 0` with seeded caches), and
//! unrecoverable situations surface as typed [`ExecError`]s, never as
//! a panic across the API boundary.
//!
//! The transactional section extends the invariant: when a fault
//! sequence is terminal (injected ladder exhaustion), the typed error
//! comes with the destination rolled back — bytes, status, and live
//! flags equal the pre-remap shadow, for solo and group remaps alike —
//! and a pair that keeps failing repair is quarantined by the registry
//! so later sessions skip straight to the table engine.

use std::collections::BTreeSet;
use std::sync::Arc;

use hpfc_mapping::{
    AlignTarget, Alignment, DimFormat, Distribution, Extents, GridId, Mapping, NormalizedMapping,
    ProcGrid, Template, TemplateId,
};
use hpfc_runtime::{
    plan_redistribution, remap_group, try_remap_group, ArrayRt, ExecError, ExecMode, FaultKind,
    FaultPlan, GroupMember, Machine, PlannedGroup, PlannedRemap, ValidationLevel,
};
use proptest::prelude::*;

fn mk1d(n: u64, p: u64, fmt: DimFormat) -> NormalizedMapping {
    hpfc_mapping::testing::mapping_1d(n, p, fmt)
}

/// A fresh array bouncing between BLOCK and CYCLIC(3) over `p` procs,
/// with both plan-cache directions pre-seeded (so recovery can be
/// asserted to never plan at run time).
fn seeded_array(n: u64, p: u64) -> ArrayRt {
    let src = mk1d(n, p, DimFormat::Block(None));
    let dst = mk1d(n, p, DimFormat::Cyclic(Some(3)));
    let mut rt = ArrayRt::new("a", vec![src.clone(), dst.clone()], 8);
    rt.seed_plan(0, 1, Arc::new(PlannedRemap::compile(plan_redistribution(&src, &dst, 8))));
    rt.seed_plan(1, 0, Arc::new(PlannedRemap::compile(plan_redistribution(&dst, &src, 8))));
    rt
}

/// Bounce `rt` between versions 0 and 1 `bounces` times, writing a
/// fresh value after every hop (so every hop moves data), and return
/// the expected final contents as a per-point oracle.
fn bounce_and_oracle(machine: &mut Machine, rt: &mut ArrayRt, n: u64, bounces: u32) -> Vec<f64> {
    let keep: BTreeSet<u32> = [0u32, 1].into_iter().collect();
    rt.current(machine, 0).fill(|p| p[0] as f64 + 1.0);
    let mut shadow: Vec<f64> = (0..n).map(|i| i as f64 + 1.0).collect();
    for b in 0..bounces {
        rt.remap(machine, 1 - (b % 2), &keep, false);
        let touched = (7 * b as u64 + 3) % n;
        rt.set(&[touched], 1000.0 + b as f64);
        shadow[touched as usize] = 1000.0 + b as f64;
    }
    shadow
}

fn assert_matches_oracle(rt: &ArrayRt, shadow: &[f64], what: &str) {
    for (i, want) in shadow.iter().enumerate() {
        let got = rt.get(&[i as u64]);
        assert_eq!(got, *want, "{what}: element {i} diverged from the oracle");
    }
}

/// CorruptRound at rate 100 with checksums: every attempt of every
/// round is corrupted, so retries and the recompiled program all fail
/// and each remap lands on the table engine — and the data is still
/// exactly right.
#[test]
fn corruption_at_full_rate_falls_back_to_tables() {
    let n = 4096u64;
    let mut machine = Machine::new(4)
        .without_registry()
        .with_exec_mode(ExecMode::Serial)
        .with_faults(FaultPlan::new(11, 100, &[FaultKind::CorruptRound]))
        .with_validation(ValidationLevel::Checksums);
    let mut rt = seeded_array(n, 4);
    let shadow = bounce_and_oracle(&mut machine, &mut rt, n, 4);
    assert_matches_oracle(&rt, &shadow, "corrupt@100");
    assert!(machine.stats.faults_injected > 0, "corruption was injected");
    assert!(machine.stats.rounds_retried > 0, "rung 1 retried");
    assert!(machine.stats.programs_recompiled > 0, "rung 2 recompiled");
    assert_eq!(
        machine.stats.fallbacks_to_tables, 4,
        "at rate 100 every data-moving remap ends on the table engine"
    );
    assert_eq!(machine.stats.plans_computed, 0, "recovery never plans");
}

/// CorruptRound at a moderate rate: retries converge (a retry re-rolls
/// the fault decision), the healed contents match the oracle, and at
/// least some rounds needed the ladder.
#[test]
fn corruption_at_moderate_rate_heals_by_retry() {
    let n = 4096u64;
    let mut machine = Machine::new(4)
        .without_registry()
        .with_exec_mode(ExecMode::Serial)
        .with_faults(FaultPlan::new(5, 40, &[FaultKind::CorruptRound]))
        .with_validation(ValidationLevel::Checksums);
    let mut rt = seeded_array(n, 4);
    let shadow = bounce_and_oracle(&mut machine, &mut rt, n, 8);
    assert_matches_oracle(&rt, &shadow, "corrupt@40");
    assert!(machine.stats.faults_injected > 0);
    assert!(machine.stats.rounds_retried > 0);
    assert_eq!(machine.stats.plans_computed, 0);
}

/// WorkerPanic at rate 100 under Parallel(4): every big round's first
/// attempt panics a worker; the panic is caught, the round degrades to
/// serial, and the replay completes without retries or fallbacks.
#[test]
fn worker_panic_degrades_round_to_serial() {
    let n = 1u64 << 18; // rounds comfortably above PARALLEL_THRESHOLD
    let mut machine = Machine::new(4)
        .without_registry()
        .with_exec_mode(ExecMode::Parallel(4))
        .with_faults(FaultPlan::new(3, 100, &[FaultKind::WorkerPanic]));
    let mut rt = seeded_array(n, 4);
    let shadow = bounce_and_oracle(&mut machine, &mut rt, n, 2);
    assert_matches_oracle(&rt, &shadow, "panic@100");
    assert!(machine.stats.parallel_degradations > 0, "panicked rounds degraded");
    assert_eq!(machine.stats.faults_injected, machine.stats.parallel_degradations);
    assert_eq!(machine.stats.fallbacks_to_tables, 0, "degradation alone healed it");
    assert_eq!(machine.stats.rounds_retried, 0, "serial re-run is not a retry");
    assert_eq!(machine.stats.plans_computed, 0);
}

/// PoisonProgram at rate 100: every remap serves a corrupted cached
/// program; the fingerprint catches it before any position is
/// dereferenced, the program is recompiled from the cached plan, and
/// the cache entry is repaired in place — all without planning.
#[test]
fn poisoned_cache_entries_are_recompiled_and_repaired() {
    let n = 4096u64;
    let mut machine = Machine::new(4)
        .without_registry()
        .with_exec_mode(ExecMode::Serial)
        .with_faults(FaultPlan::new(17, 100, &[FaultKind::PoisonProgram]));
    let mut rt = seeded_array(n, 4);
    let shadow = bounce_and_oracle(&mut machine, &mut rt, n, 4);
    assert_matches_oracle(&rt, &shadow, "poison@100");
    assert_eq!(machine.stats.faults_injected, 4, "each remap's entry was poisoned");
    assert_eq!(
        machine.stats.programs_recompiled, 4,
        "each poisoning was caught by the fingerprint and recompiled"
    );
    assert_eq!(machine.stats.fallbacks_to_tables, 0);
    assert_eq!(machine.stats.rounds_retried, 0, "a fresh program replays cleanly");
    assert_eq!(machine.stats.plans_computed, 0, "repair recompiles, it never re-plans");
}

/// Poison under the shared plan registry: when a registered artifact is
/// poisoned, the repair is installed registry-wide — exactly once — so
/// a second session over the same pairs is never served the corrupt
/// program. Session A registers both directions, takes one poisoned
/// remap on the chin (fingerprint → recompile → repair → reinstall);
/// session B, a fresh array and machine on the same registry, then
/// executes on registry hits alone, recompiles nothing, and heals to
/// its oracle.
#[test]
fn a_poisoned_registry_entry_heals_once_and_never_reaches_a_second_session() {
    let n = 4096u64;
    let registry = Arc::new(hpfc_runtime::PlanRegistry::new(2, 64));
    let src = mk1d(n, 4, DimFormat::Block(None));
    let dst = mk1d(n, 4, DimFormat::Cyclic(Some(3)));
    let keep: BTreeSet<u32> = [0u32, 1].into_iter().collect();

    // Session A, fault-free: registers both directions in the registry.
    let mut ma = Machine::new(4)
        .with_exec_mode(ExecMode::Serial)
        .with_registry(Arc::clone(&registry));
    let mut a = ArrayRt::new("a", vec![src.clone(), dst.clone()], 8);
    let shadow_a = bounce_and_oracle(&mut ma, &mut a, n, 2);
    assert_eq!(ma.stats.plans_computed, 2, "A planned both directions");
    // Where the two entries live depends on the keying scheme
    // (`HPFC_SYMBOLIC`): concrete per-mapping-pair shards, or the
    // symbolic per-format-pair table. Either way: two entries.
    if ma.symbolic {
        assert_eq!((registry.len(), registry.sym_len()), (0, 2));
    } else {
        assert_eq!((registry.len(), registry.sym_len()), (2, 0));
    }

    // One poisoned remap: the corrupt artifact transits the registry
    // (installed so corruption is visible registry-wide, like a real
    // shared-cache fault), is caught by the fingerprint, and the
    // repaired program is reinstalled over it.
    ma = ma.with_faults(FaultPlan::new(41, 100, &[FaultKind::PoisonProgram]));
    a.remap(&mut ma, 1, &keep, false);
    assert_matches_oracle(&a, &shadow_a, "session A after poison");
    assert_eq!(ma.stats.faults_injected, 1, "exactly one poisoning");
    assert_eq!(ma.stats.programs_recompiled, 1, "repaired exactly once");

    // Session B: fresh machine + fresh array, same registry, no faults.
    let mut mb = Machine::new(4)
        .with_exec_mode(ExecMode::Serial)
        .with_registry(Arc::clone(&registry));
    let mut b = ArrayRt::new("b", vec![src, dst], 8);
    let shadow_b = bounce_and_oracle(&mut mb, &mut b, n, 4);
    assert_matches_oracle(&b, &shadow_b, "session B over the repaired registry");
    assert_eq!(mb.stats.plans_computed, 0, "B is served by the registry");
    assert_eq!((mb.stats.registry_misses, mb.stats.registry_hits), (0, 2), "{:?}", mb.stats);
    assert_eq!(mb.stats.faults_injected, 0);
    assert_eq!(
        ma.stats.programs_recompiled + mb.stats.programs_recompiled,
        1,
        "one poisoning, one repair, process-wide — B never saw the corrupt program"
    );
}

/// Drop/Truncate under both engines: conservation counts catch the
/// short rounds, the ladder heals them, and the wire accounting books
/// each remap's schedule exactly once — a retried round is never
/// re-billed.
#[test]
fn wire_loss_heals_and_accounts_each_remap_once() {
    let n = 4096u64;
    let fwd = plan_redistribution(
        &mk1d(n, 4, DimFormat::Block(None)),
        &mk1d(n, 4, DimFormat::Cyclic(Some(3))),
        8,
    );
    let back = plan_redistribution(
        &mk1d(n, 4, DimFormat::Cyclic(Some(3))),
        &mk1d(n, 4, DimFormat::Block(None)),
        8,
    );
    for mode in [ExecMode::Serial, ExecMode::Parallel(4)] {
        let mut machine = Machine::new(4)
            .without_registry()
            .with_exec_mode(mode)
            .with_faults(FaultPlan::new(
                23,
                40,
                &[FaultKind::DropRound, FaultKind::TruncateRound],
            ))
            .with_validation(ValidationLevel::Counts);
        let mut rt = seeded_array(n, 4);
        let shadow = bounce_and_oracle(&mut machine, &mut rt, n, 6);
        assert_matches_oracle(&rt, &shadow, "wire-loss");
        assert!(machine.stats.faults_injected > 0, "wire loss was injected ({mode:?})");
        assert!(machine.stats.rounds_retried > 0, "short rounds were caught ({mode:?})");
        // 6 bounces: 3 forward, 3 back. The schedule is accounted once
        // per remap *before* the replay; retries, recompiles and
        // fallbacks never touch the wire books again.
        assert_eq!(
            machine.stats.messages,
            3 * fwd.total_messages() + 3 * back.total_messages(),
            "wire messages booked once per remap ({mode:?})"
        );
        assert_eq!(
            machine.stats.bytes,
            3 * fwd.total_bytes() + 3 * back.total_bytes(),
            "wire bytes booked once per remap ({mode:?})"
        );
        assert_eq!(machine.stats.plans_computed, 0);
    }
}

/// Group chaos: the coalesced two-array remap heals per-class like the
/// solo path — full-rate corruption lands every masked member on the
/// table engine, poison is recompiled — and both arrays' contents
/// match their oracles.
#[test]
fn group_remaps_heal_under_chaos() {
    let n = 4096u64;
    let src = mk1d(n, 4, DimFormat::Block(None));
    let dst = mk1d(n, 4, DimFormat::Cyclic(Some(3)));
    let solo =
        |s: &NormalizedMapping, d: &NormalizedMapping| {
            Arc::new(PlannedRemap::compile(plan_redistribution(s, d, 8)))
        };
    let cases: [(FaultPlan, ValidationLevel); 2] = [
        // Every round of every attempt corrupted: per-member tables.
        (FaultPlan::new(29, 100, &[FaultKind::CorruptRound]), ValidationLevel::Checksums),
        // Every group program poisoned: recompile heals it.
        (FaultPlan::new(31, 100, &[FaultKind::PoisonProgram]), ValidationLevel::Off),
    ];
    for (faults, validation) in cases {
        let fwd = PlannedGroup::compile(vec![solo(&src, &dst), solo(&src, &dst)]);
        let back = PlannedGroup::compile(vec![solo(&dst, &src), solo(&dst, &src)]);
        let mut machine = Machine::new(4)
            .without_registry()
            .with_exec_mode(ExecMode::Serial)
            .with_faults(faults)
            .with_validation(validation);
        let mut a = ArrayRt::new("a", vec![src.clone(), dst.clone()], 8);
        let mut b = ArrayRt::new("b", vec![src.clone(), dst.clone()], 8);
        a.current(&mut machine, 0).fill(|p| p[0] as f64);
        b.current(&mut machine, 0).fill(|p| 2.0 * p[0] as f64);
        let keep: BTreeSet<u32> = [0u32, 1].into_iter().collect();
        let skip = BTreeSet::new();
        for bounce in 0..4u32 {
            let (s, t) = if bounce % 2 == 0 { (0u32, 1u32) } else { (1, 0) };
            let mut members = [
                GroupMember { rt: &mut a, src: s, target: t, may_live: &keep, skip_if_current: &skip },
                GroupMember { rt: &mut b, src: s, target: t, may_live: &keep, skip_if_current: &skip },
            ];
            let coalesced = remap_group(&mut machine, &mut members, if s == 0 { &fwd } else { &back });
            assert_eq!(coalesced, 2, "both arrays moved together");
            a.set(&[0], 50.0 + bounce as f64);
            b.set(&[1], 70.0 + bounce as f64);
        }
        for i in 0..n {
            let want_a = if i == 0 { 53.0 } else { i as f64 };
            let want_b = if i == 1 { 73.0 } else { 2.0 * i as f64 };
            assert_eq!(a.get(&[i]), want_a, "array a element {i} ({faults:?})");
            assert_eq!(b.get(&[i]), want_b, "array b element {i} ({faults:?})");
        }
        assert!(machine.stats.faults_injected >= 4, "one injection per group remap");
        assert_eq!(machine.stats.plans_computed, 0, "group recovery never plans");
        match validation {
            ValidationLevel::Checksums => assert_eq!(
                machine.stats.fallbacks_to_tables,
                8,
                "full-rate corruption: 4 group remaps x 2 members on tables"
            ),
            _ => {
                assert_eq!(machine.stats.programs_recompiled, 4, "one group recompile per remap");
                assert_eq!(machine.stats.fallbacks_to_tables, 0);
            }
        }
    }
}

/// Unrecoverable situations are typed errors at the API boundary, not
/// panics: a remap whose source copy is gone reports `MissingCopy`, a
/// group whose member list disagrees with its plan reports
/// `GroupMismatch`.
#[test]
fn unrecoverable_paths_return_typed_errors() {
    let n = 256u64;
    let keep: BTreeSet<u32> = [0u32, 1].into_iter().collect();
    let mut machine = Machine::new(4).without_registry().with_exec_mode(ExecMode::Serial);
    let mut rt = seeded_array(n, 4);
    rt.current(&mut machine, 0).fill(|p| p[0] as f64);
    // Sabotage: drop the source copy behind the status tag.
    rt.free_copy(&mut machine, 0);
    let err = rt.try_remap(&mut machine, 1, &keep, false).unwrap_err();
    assert_eq!(err, ExecError::MissingCopy { array: "a".into(), version: 0 });
    assert!(err.to_string().contains("version 0"));

    // A group directive whose runtime member list is shorter than the
    // planned group.
    let src = mk1d(n, 4, DimFormat::Block(None));
    let dst = mk1d(n, 4, DimFormat::Cyclic(Some(3)));
    let solo = Arc::new(PlannedRemap::compile(plan_redistribution(&src, &dst, 8)));
    let planned = PlannedGroup::compile(vec![Arc::clone(&solo), solo]);
    let mut a = ArrayRt::new("a", vec![src.clone(), dst.clone()], 8);
    a.current(&mut machine, 0).fill(|p| p[0] as f64);
    let skip = BTreeSet::new();
    let mut members = [GroupMember {
        rt: &mut a,
        src: 0,
        target: 1,
        may_live: &keep,
        skip_if_current: &skip,
    }];
    let err = try_remap_group(&mut machine, &mut members, &planned).unwrap_err();
    assert_eq!(err, ExecError::GroupMismatch { planned: 2, got: 1 });
}

/// Injected ladder exhaustion is terminal by design — and transactional:
/// the typed error surfaces only after the destination version was
/// rolled back to its exact pre-remap state (bytes, status, live flags,
/// allocation), under both engines, with and without a shared registry.
#[test]
fn exhaustion_rolls_a_solo_remap_back_to_its_pre_remap_state() {
    let n = 4096u64;
    let keep: BTreeSet<u32> = [0u32, 1].into_iter().collect();
    for mode in [ExecMode::Serial, ExecMode::Parallel(4)] {
        for use_registry in [false, true] {
            // Explicit `with_txn(true)`: this test pins rollback, so it
            // must hold whatever `HPFC_TXN` the suite runs under.
            let mut machine = Machine::new(4).with_exec_mode(mode).with_txn(true);
            machine = if use_registry {
                machine.with_registry(Arc::new(hpfc_runtime::PlanRegistry::new(2, 64)))
            } else {
                machine.without_registry()
            };
            // With the registry on, plan through it (shared artifacts);
            // without, through pre-seeded per-array caches.
            let mut rt = if use_registry {
                ArrayRt::new(
                    "a",
                    vec![mk1d(n, 4, DimFormat::Block(None)), mk1d(n, 4, DimFormat::Cyclic(Some(3)))],
                    8,
                )
            } else {
                seeded_array(n, 4)
            };
            // Two clean bounces: both versions allocated, v1 stale.
            let shadow = bounce_and_oracle(&mut machine, &mut rt, n, 2);
            assert_eq!(rt.status, Some(0));
            assert!(rt.copies[1].is_some(), "v1 stays allocated (stale)");
            let pre = (rt.status, rt.live.clone(), rt.copies.clone());
            machine = machine.with_faults(FaultPlan::new(97, 100, &[FaultKind::Exhaust]));

            // Preallocated destination: the rollback restores its bytes.
            let err = rt.try_remap(&mut machine, 1, &keep, false).unwrap_err();
            assert!(matches!(err, ExecError::Unrecovered { .. }), "typed terminal error: {err}");
            assert_eq!(machine.stats.txn_rollbacks, 1, "({mode:?}, registry={use_registry})");
            assert_eq!(rt.status, pre.0, "status restored");
            assert_eq!(rt.live, pre.1, "live flags restored");
            assert_eq!(rt.copies, pre.2, "destination bytes are byte-identical to pre-remap");
            assert_matches_oracle(&rt, &shadow, "contents after rollback");

            // Fresh destination: the rollback frees the just-allocated copy.
            rt.free_copy(&mut machine, 1);
            let pre = (rt.status, rt.live.clone(), rt.copies.clone());
            let err = rt.try_remap(&mut machine, 1, &keep, false).unwrap_err();
            assert!(matches!(err, ExecError::Unrecovered { .. }), "typed terminal error: {err}");
            assert_eq!(machine.stats.txn_rollbacks, 2);
            assert!(rt.copies[1].is_none(), "the fresh destination copy was freed");
            assert_eq!((rt.status, &rt.live, &rt.copies), (pre.0, &pre.1, &pre.2));

            // The array is fully usable afterwards: drop the faults and
            // the same remap completes to the oracle.
            machine.faults = None;
            rt.remap(&mut machine, 1, &keep, false);
            assert_matches_oracle(&rt, &shadow, "remap after rollback");
        }
    }
}

/// Rollback byte-identity when the destination is written through
/// stride-family kernels, not flat triples: `cyclic(1)` destinations
/// compile to pure Gather families (zero residual triples), so the
/// transactional snapshot must capture — and the rollback must replay —
/// strided destination runs. A scratch capture that only walked the
/// residual triple list would restore nothing here and leave the
/// partial write behind.
#[test]
fn exhaustion_rolls_back_strided_kernel_destinations_byte_identically() {
    let n = 1u64 << 18; // rounds above PARALLEL_THRESHOLD: both engines real
    let keep: BTreeSet<u32> = [0u32, 1].into_iter().collect();
    let src = mk1d(n, 4, DimFormat::Block(None));
    let dst = mk1d(n, 4, DimFormat::Cyclic(None));
    let fwd = Arc::new(PlannedRemap::compile(plan_redistribution(&src, &dst, 8)));
    let back = Arc::new(PlannedRemap::compile(plan_redistribution(&dst, &src, 8)));
    // Pin the premise: both directions replay through stride families
    // exclusively — if the encoder ever left this shape to residual
    // triples, the test would silently stop covering the strided
    // capture path.
    for planned in [&fwd, &back] {
        let prog = planned.program.as_ref().expect("cyclic(1) bounce compiles");
        assert!(!prog.fams.is_empty(), "stride families drive this shape");
        assert!(prog.runs.is_empty(), "no residual triples for cyclic(1)");
    }
    for mode in [ExecMode::Serial, ExecMode::Parallel(4)] {
        let mut machine = Machine::new(4).without_registry().with_exec_mode(mode).with_txn(true);
        let mut rt = ArrayRt::new("a", vec![src.clone(), dst.clone()], 8);
        rt.seed_plan(0, 1, Arc::clone(&fwd));
        rt.seed_plan(1, 0, Arc::clone(&back));
        let shadow = bounce_and_oracle(&mut machine, &mut rt, n, 2);
        assert_eq!(rt.status, Some(0));
        assert!(rt.copies[1].is_some(), "v1 stays allocated (stale)");
        let pre = (rt.status, rt.live.clone(), rt.copies.clone());
        machine = machine.with_faults(FaultPlan::new(97, 100, &[FaultKind::Exhaust]));
        let err = rt.try_remap(&mut machine, 1, &keep, false).unwrap_err();
        assert!(matches!(err, ExecError::Unrecovered { .. }), "typed terminal error: {err}");
        assert_eq!(machine.stats.txn_rollbacks, 1, "({mode:?})");
        assert_eq!(rt.status, pre.0, "status restored ({mode:?})");
        assert_eq!(rt.live, pre.1, "live flags restored ({mode:?})");
        assert_eq!(
            rt.copies, pre.2,
            "strided destination bytes are byte-identical to pre-remap ({mode:?})"
        );
        assert_matches_oracle(&rt, &shadow, "contents after strided rollback");
        // And the array heals: without faults the same remap completes.
        machine.faults = None;
        rt.remap(&mut machine, 1, &keep, false);
        assert_matches_oracle(&rt, &shadow, "remap after strided rollback");
        assert_eq!(machine.stats.plans_computed, 0, "seeded caches: recovery never plans");
    }
}

/// The A/B contrast pinning what the transaction buys: with
/// `with_txn(false)` the same forced exhaustion leaves the
/// partially-written destination behind (the ladder writes, then
/// rejects), while the default rolls it back byte-identically.
#[test]
fn transactions_off_leaves_the_partial_write_behind() {
    let n = 4096u64;
    let keep: BTreeSet<u32> = [0u32, 1].into_iter().collect();
    for txn in [true, false] {
        let mut machine =
            Machine::new(4).without_registry().with_exec_mode(ExecMode::Serial).with_txn(txn);
        let mut rt = seeded_array(n, 4);
        bounce_and_oracle(&mut machine, &mut rt, n, 2);
        // Refresh every element of the current copy so the stale v1
        // differs everywhere — any executed round must change bytes.
        rt.current(&mut machine, 0).fill(|p| 5000.0 + p[0] as f64);
        let shadow: Vec<f64> = (0..n).map(|i| 5000.0 + i as f64).collect();
        let pre_copies = rt.copies.clone();
        machine = machine.with_faults(FaultPlan::new(97, 100, &[FaultKind::Exhaust]));
        let err = rt.try_remap(&mut machine, 1, &keep, false).unwrap_err();
        assert!(matches!(err, ExecError::Unrecovered { .. }));
        if txn {
            assert_eq!(machine.stats.txn_rollbacks, 1);
            assert_eq!(rt.copies, pre_copies, "transaction restored the stale destination");
        } else {
            assert_eq!(machine.stats.txn_rollbacks, 0);
            assert_ne!(
                rt.copies[1], pre_copies[1],
                "without the transaction the rejected replay's writes stay behind"
            );
        }
        // Status never moved in either case, so reads stay correct.
        assert_eq!(rt.status, Some(0));
        assert_matches_oracle(&rt, &shadow, "reads via the unchanged status");
    }
}

/// Group atomicity on the coalesced path: forced exhaustion of the
/// merged replay surfaces one typed error and rolls BOTH members back
/// to their byte-identical pre-directive state, under both engines.
#[test]
fn exhaustion_rolls_a_coalesced_group_back_atomically() {
    let n = 4096u64;
    let src = mk1d(n, 4, DimFormat::Block(None));
    let dst = mk1d(n, 4, DimFormat::Cyclic(Some(3)));
    let solo = |s: &NormalizedMapping, d: &NormalizedMapping| {
        Arc::new(PlannedRemap::compile(plan_redistribution(s, d, 8)))
    };
    let keep: BTreeSet<u32> = [0u32, 1].into_iter().collect();
    let skip = BTreeSet::new();
    for mode in [ExecMode::Serial, ExecMode::Parallel(4)] {
        let fwd = PlannedGroup::compile(vec![solo(&src, &dst), solo(&src, &dst)]);
        let back = PlannedGroup::compile(vec![solo(&dst, &src), solo(&dst, &src)]);
        let mut machine =
            Machine::new(4).without_registry().with_exec_mode(mode).with_txn(true);
        let mut a = ArrayRt::new("a", vec![src.clone(), dst.clone()], 8);
        let mut b = ArrayRt::new("b", vec![src.clone(), dst.clone()], 8);
        a.current(&mut machine, 0).fill(|p| p[0] as f64);
        b.current(&mut machine, 0).fill(|p| 2.0 * p[0] as f64);
        // One clean group bounce so both versions are allocated and the
        // writes leave every non-current copy stale.
        for (s, t, planned) in [(0u32, 1u32, &fwd), (1, 0, &back)] {
            let mut members = [
                GroupMember { rt: &mut a, src: s, target: t, may_live: &keep, skip_if_current: &skip },
                GroupMember { rt: &mut b, src: s, target: t, may_live: &keep, skip_if_current: &skip },
            ];
            assert_eq!(remap_group(&mut machine, &mut members, planned), 2);
            a.set(&[0], 90.0 + t as f64);
            b.set(&[1], 80.0 + t as f64);
        }
        let pre_a = (a.status, a.live.clone(), a.copies.clone());
        let pre_b = (b.status, b.live.clone(), b.copies.clone());
        machine = machine.with_faults(FaultPlan::new(97, 100, &[FaultKind::Exhaust]));
        let err = {
            let mut members = [
                GroupMember { rt: &mut a, src: 0, target: 1, may_live: &keep, skip_if_current: &skip },
                GroupMember { rt: &mut b, src: 0, target: 1, may_live: &keep, skip_if_current: &skip },
            ];
            try_remap_group(&mut machine, &mut members, &fwd).unwrap_err()
        };
        assert!(matches!(err, ExecError::Unrecovered { .. }), "typed terminal error: {err}");
        assert_eq!(machine.stats.group_rollbacks, 1, "({mode:?})");
        assert_eq!((a.status, &a.live, &a.copies), (pre_a.0, &pre_a.1, &pre_a.2), "member a");
        assert_eq!((b.status, &b.live, &b.copies), (pre_b.0, &pre_b.1, &pre_b.2), "member b");
        // Both arrays remain fully usable: the same directive completes
        // once the faults are gone.
        machine.faults = None;
        let mut members = [
            GroupMember { rt: &mut a, src: 0, target: 1, may_live: &keep, skip_if_current: &skip },
            GroupMember { rt: &mut b, src: 0, target: 1, may_live: &keep, skip_if_current: &skip },
        ];
        assert_eq!(remap_group(&mut machine, &mut members, &fwd), 2);
        for i in 0..n {
            let want_a = if i == 0 { 90.0 } else { i as f64 };
            let want_b = if i == 1 { 80.0 } else { 2.0 * i as f64 };
            assert_eq!(a.get(&[i]), want_a, "a[{i}] after the group healed");
            assert_eq!(b.get(&[i]), want_b, "b[{i}] after the group healed");
        }
    }
}

/// Group atomicity on the solo-fallback path: a member that already
/// committed cheaply (live-copy reuse — no replay at all) is
/// un-committed when a later sibling's ladder exhausts, so the group
/// still commits all members or none.
#[test]
fn a_failing_member_uncommits_its_already_replayed_sibling() {
    let n = 4096u64;
    let src = mk1d(n, 4, DimFormat::Block(None));
    let dst = mk1d(n, 4, DimFormat::Cyclic(Some(3)));
    let solo = |s: &NormalizedMapping, d: &NormalizedMapping| {
        Arc::new(PlannedRemap::compile(plan_redistribution(s, d, 8)))
    };
    let back = PlannedGroup::compile(vec![solo(&dst, &src), solo(&dst, &src)]);
    let keep: BTreeSet<u32> = [0u32, 1].into_iter().collect();
    let skip = BTreeSet::new();
    let mut machine =
        Machine::new(4).without_registry().with_exec_mode(ExecMode::Serial).with_txn(true);
    let mut a = seeded_array(n, 4);
    let mut b = seeded_array(n, 4);
    a.current(&mut machine, 0).fill(|p| p[0] as f64);
    b.current(&mut machine, 0).fill(|p| 2.0 * p[0] as f64);
    // a: remap 0->1 with no write afterwards — both copies stay live,
    // so its way back is a live-copy reuse (commits without replaying).
    a.remap(&mut machine, 1, &keep, false);
    assert!(a.live[0] && a.live[1]);
    // b: remap 0->1 then write — its way back must move data.
    b.remap(&mut machine, 1, &keep, false);
    b.set(&[5], 123.0);
    assert!(!b.live[0]);
    let pre_a = (a.status, a.live.clone(), a.copies.clone());
    let pre_b = (b.status, b.live.clone(), b.copies.clone());
    machine = machine.with_faults(FaultPlan::new(97, 100, &[FaultKind::Exhaust]));
    // One mover (b) => the group takes the solo-fallback path: a
    // commits first by live-copy reuse, then b's ladder exhausts.
    let err = {
        let mut members = [
            GroupMember { rt: &mut a, src: 1, target: 0, may_live: &keep, skip_if_current: &skip },
            GroupMember { rt: &mut b, src: 1, target: 0, may_live: &keep, skip_if_current: &skip },
        ];
        try_remap_group(&mut machine, &mut members, &back).unwrap_err()
    };
    assert!(matches!(err, ExecError::Unrecovered { .. }));
    assert_eq!(machine.stats.remaps_reused_live, 1, "a had already committed");
    assert_eq!(machine.stats.group_rollbacks, 1);
    assert_eq!(a.status, Some(1), "a's commit was rolled back with its failing sibling");
    assert_eq!((a.status, &a.live, &a.copies), (pre_a.0, &pre_a.1, &pre_a.2), "member a");
    assert_eq!((b.status, &b.live, &b.copies), (pre_b.0, &pre_b.1, &pre_b.2), "member b");
    for i in 0..n {
        assert_eq!(a.get(&[i]), i as f64);
        let want_b = if i == 5 { 123.0 } else { 2.0 * i as f64 };
        assert_eq!(b.get(&[i]), want_b);
    }
}

/// An injected compile panic unwinds inside the registry's
/// compile-under-lock; it is contained to a typed decline (the shard
/// lock stays healthy), recovered by a clean solo compile published
/// registry-wide, and the remap itself completes to the oracle.
#[test]
fn a_contained_compile_panic_still_heals_to_the_oracle() {
    let n = 4096u64;
    let registry = Arc::new(hpfc_runtime::PlanRegistry::new(2, 64));
    let mut machine = Machine::new(4)
        .with_exec_mode(ExecMode::Serial)
        .with_registry(Arc::clone(&registry))
        .with_faults(FaultPlan::new(7, 100, &[FaultKind::CompilePanic]));
    let mut rt = ArrayRt::new(
        "a",
        vec![mk1d(n, 4, DimFormat::Block(None)), mk1d(n, 4, DimFormat::Cyclic(Some(3)))],
        8,
    );
    let shadow = bounce_and_oracle(&mut machine, &mut rt, n, 4);
    assert_matches_oracle(&rt, &shadow, "compilepanic@100");
    // Each direction's first compile panicked (later bounces are plan
    // cache hits, so the kind cannot fire again); both were contained
    // and cleanly recompiled outside the lock.
    assert_eq!(machine.stats.faults_injected, 2);
    assert_eq!(machine.stats.plans_computed, 2);
    assert_eq!(registry.len(), 2, "the clean recompiles were published");
    assert_eq!(machine.stats.lock_poison_recoveries, 0, "no lock was ever poisoned");
    assert_eq!(machine.stats.txn_rollbacks, 0, "nothing terminal happened");
}

/// The quarantine ladder end to end: a pair whose artifact keeps
/// failing repair (three poisonings) is quarantined registry-wide; a
/// second session over the same pairs is served program-stripped
/// artifacts as registry hits and skips straight to the table engine —
/// zero retries, zero recompiles billed.
#[test]
fn a_quarantined_pair_serves_the_table_engine_in_the_next_session() {
    let n = 4096u64;
    let registry = Arc::new(hpfc_runtime::PlanRegistry::new(2, 64));
    let src = mk1d(n, 4, DimFormat::Block(None));
    let dst = mk1d(n, 4, DimFormat::Cyclic(Some(3)));

    // Session A: every served program is poisoned. Each direction's
    // first remap compiles (nothing cached to poison yet); the next
    // three are poisoned, caught by the fingerprint, and repaired —
    // the third strike crosses QUARANTINE_THRESHOLD.
    let mut ma = Machine::new(4)
        .with_exec_mode(ExecMode::Serial)
        .with_registry(Arc::clone(&registry))
        .with_faults(FaultPlan::new(41, 100, &[FaultKind::PoisonProgram]));
    let mut a = ArrayRt::new("a", vec![src.clone(), dst.clone()], 8);
    let shadow_a = bounce_and_oracle(&mut ma, &mut a, n, 8);
    assert_matches_oracle(&a, &shadow_a, "session A under poison");
    assert_eq!(ma.stats.programs_recompiled, 6, "3 repairs per direction");
    assert_eq!(ma.stats.quarantined_pairs, 2, "both directions crossed the threshold");
    assert_eq!(registry.quarantined(), 2);
    assert!(registry.is_quarantined(&src, &dst, 8));
    assert!(registry.is_quarantined(&dst, &src, 8));

    // Session B: fresh machine and array, same registry, no faults.
    let mut mb =
        Machine::new(4).with_exec_mode(ExecMode::Serial).with_registry(Arc::clone(&registry));
    let mut b = ArrayRt::new("b", vec![src, dst], 8);
    let shadow_b = bounce_and_oracle(&mut mb, &mut b, n, 4);
    assert_matches_oracle(&b, &shadow_b, "session B over quarantined pairs");
    assert_eq!(mb.stats.plans_computed, 0, "stripped artifacts are served as hits");
    assert_eq!(mb.stats.registry_hits, 2);
    assert_eq!(mb.stats.fallbacks_to_tables, 4, "every data-moving remap on tables");
    assert_eq!(mb.stats.rounds_retried, 0, "zero retries billed");
    assert_eq!(mb.stats.programs_recompiled, 0, "no doomed recompiles billed");
}

/// One drawn mapping configuration (alignment + distribution
/// selectors); realized against a shared grid by [`realize_mapping`].
type MappingCfg = ((usize, usize), (i64, bool), i64, (usize, usize), u64);

fn mapping_cfg_strategy() -> impl Strategy<Value = MappingCfg> {
    (
        (0usize..5, 0usize..5),
        (1i64..4, prop::bool::ANY),
        0i64..3,
        (0usize..4, 0usize..4),
        1u64..4,
    )
}

/// A trimmed mirror of `proptest_redist.rs`'s rich mapping space:
/// strided/offset/negative alignments, constants, replication, 2-D
/// grids, every distribution format — enough shape diversity that the
/// caterpillar structure varies wildly under chaos. Both endpoints of a
/// remap share one grid: `Machine` memory and schedule accounting both
/// index processor ranks of that grid.
fn realize_mapping(n0: u64, n1: u64, grid: (u64, u64), cfg: MappingCfg) -> NormalizedMapping {
    let ((al0, al1), (s_abs, neg), oslack, (f0, f1), b) = cfg;
    let stride = if neg { -s_abs } else { s_abs };
    let nmax = n0.max(n1);
    let text = 3 * nmax + 8;
    let mk_target = |sel: usize, dim: usize| match sel {
        0 => AlignTarget::identity(dim),
        1 => {
            let n = if dim == 0 { n0 } else { n1 };
            let offset = if stride < 0 { (-stride) * (n as i64 - 1) + oslack } else { oslack };
            AlignTarget::Axis { array_dim: dim, stride, offset }
        }
        2 => AlignTarget::Replicate,
        3 => AlignTarget::Constant(oslack),
        _ => AlignTarget::Axis { array_dim: dim, stride: 2, offset: 1 },
    };
    let align = Alignment {
        template: TemplateId(0),
        targets: vec![mk_target(al0, 0), mk_target(al1, 1)],
    };
    let mk_fmt = |sel: usize| match sel {
        0 => DimFormat::Block(None),
        1 => DimFormat::Cyclic(None),
        2 => DimFormat::Cyclic(Some(b)),
        _ => DimFormat::Collapsed,
    };
    let template =
        Template { id: TemplateId(0), name: "T".into(), shape: Extents::new(&[text, text]) };
    let grid = ProcGrid {
        id: GridId(0),
        name: "P".into(),
        shape: Extents::new(&[grid.0, grid.1]),
    };
    Mapping { align, dist: Distribution::new(GridId(0), vec![mk_fmt(f0), mk_fmt(f1)]) }
        .normalize(&Extents::new(&[n0, n1]), &template, &grid)
        .expect("constructed mapping is well-formed")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The engine survives EVERY fault class at random sites over the
    /// rich mapping space, under both engines: each fault-ridden bounce
    /// either heals (the ladder absorbs the fault) or surfaces a typed
    /// error after the transaction rolled the destination back — so in
    /// both cases every element equals the per-point shadow oracle at
    /// every step, and recovery never planned.
    #[test]
    fn chaos_over_rich_mappings_heals_to_the_oracle(
        grid in (1u64..4, 1u64..4),
        src_cfg in mapping_cfg_strategy(),
        dst_cfg in mapping_cfg_strategy(),
        seed in 0u64..1_000_000,
        rate in 20u32..=100,
    ) {
        let src = realize_mapping(6, 5, grid, src_cfg);
        let dst = realize_mapping(6, 5, grid, dst_cfg);
        let nprocs = src.grid_shape.volume();
        for mode in [ExecMode::Serial, ExecMode::Parallel(4)] {
            let mut machine = Machine::new(nprocs)
                .without_registry()
                .with_exec_mode(mode)
                .with_txn(true)
                .with_faults(FaultPlan::all(seed, rate))
                .with_validation(ValidationLevel::Checksums);
            let mut rt = ArrayRt::new("a", vec![src.clone(), dst.clone()], 8);
            rt.seed_plan(0, 1, Arc::new(PlannedRemap::compile(
                plan_redistribution(&src, &dst, 8))));
            rt.seed_plan(1, 0, Arc::new(PlannedRemap::compile(
                plan_redistribution(&dst, &src, 8))));
            rt.current(&mut machine, 0).fill(|p| (p[0] * 31 + p[1] * 7 + 1) as f64);
            let mut shadow = vec![0.0f64; 30];
            for p0 in 0..6u64 {
                for p1 in 0..5u64 {
                    shadow[(p0 * 5 + p1) as usize] = (p0 * 31 + p1 * 7 + 1) as f64;
                }
            }
            let keep: BTreeSet<u32> = [0u32, 1].into_iter().collect();
            for b in 0..3u32 {
                let before = machine.stats.txn_rollbacks;
                if let Err(e) = rt.try_remap(&mut machine, 1 - (b % 2), &keep, false) {
                    // Injected ladder exhaustion: the error is typed
                    // and the transaction rolled the destination back,
                    // so the array still matches the shadow below.
                    prop_assert!(
                        matches!(e, ExecError::Unrecovered { .. }),
                        "unexpected terminal error under chaos seed {}: {}",
                        seed,
                        e
                    );
                    prop_assert!(
                        machine.stats.txn_rollbacks > before,
                        "terminal error without a rollback (seed {} rate {})",
                        seed,
                        rate
                    );
                }
                let (p0, p1) = ((b as u64 * 2 + 1) % 6, (b as u64 * 3 + 2) % 5);
                rt.set(&[p0, p1], 500.0 + b as f64);
                shadow[(p0 * 5 + p1) as usize] = 500.0 + b as f64;
            }
            for p0 in 0..6u64 {
                for p1 in 0..5u64 {
                    prop_assert_eq!(
                        rt.get(&[p0, p1]),
                        shadow[(p0 * 5 + p1) as usize],
                        "({}, {}) diverged under chaos seed {} rate {} ({:?})",
                        p0, p1, seed, rate, mode
                    );
                }
            }
            prop_assert_eq!(machine.stats.plans_computed, 0, "recovery never plans");
        }
    }

    /// Forced exhaustion over the whole mapping space: any remap that
    /// moves data surfaces the typed terminal error with the array
    /// rolled back to its exact pre-remap state; a remap that moves
    /// nothing (replication/collapse can make it a pure reuse) simply
    /// succeeds with nothing to roll back.
    #[test]
    fn forced_exhaustion_always_rolls_back_over_the_mapping_space(
        grid in (1u64..4, 1u64..4),
        src_cfg in mapping_cfg_strategy(),
        dst_cfg in mapping_cfg_strategy(),
        seed in 0u64..1_000_000,
    ) {
        let src = realize_mapping(6, 5, grid, src_cfg);
        let dst = realize_mapping(6, 5, grid, dst_cfg);
        let nprocs = src.grid_shape.volume();
        let mut machine = Machine::new(nprocs)
            .without_registry()
            .with_exec_mode(ExecMode::Serial)
            .with_txn(true)
            .with_faults(FaultPlan::new(seed, 100, &[FaultKind::Exhaust]));
        let mut rt = ArrayRt::new("a", vec![src.clone(), dst.clone()], 8);
        rt.seed_plan(0, 1, Arc::new(PlannedRemap::compile(
            plan_redistribution(&src, &dst, 8))));
        rt.current(&mut machine, 0).fill(|p| (p[0] * 31 + p[1] * 7 + 1) as f64);
        let keep: BTreeSet<u32> = [0u32, 1].into_iter().collect();
        let pre = (rt.status, rt.live.clone(), rt.copies.clone());
        match rt.try_remap(&mut machine, 1, &keep, false) {
            Ok(()) => {
                prop_assert_eq!(machine.stats.txn_rollbacks, 0);
            }
            Err(e) => {
                prop_assert!(matches!(e, ExecError::Unrecovered { .. }), "{}", e);
                prop_assert_eq!(machine.stats.txn_rollbacks, 1);
                prop_assert_eq!(&rt.status, &pre.0, "status restored");
                prop_assert_eq!(&rt.live, &pre.1, "live flags restored");
                prop_assert_eq!(&rt.copies, &pre.2, "bytes restored");
            }
        }
    }
}
