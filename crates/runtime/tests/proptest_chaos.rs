//! Chaos harness for the self-healing remap engine: inject every fault
//! class at deterministic `(remap, round)` sites and assert the engine
//! heals — final contents equal a per-point oracle, wire accounting
//! books each remap exactly once (retried rounds are never re-billed),
//! recovery never plans (`plans_computed == 0` with seeded caches), and
//! unrecoverable situations surface as typed [`ExecError`]s, never as
//! a panic across the API boundary.

use std::collections::BTreeSet;
use std::sync::Arc;

use hpfc_mapping::{
    AlignTarget, Alignment, DimFormat, Distribution, Extents, GridId, Mapping, NormalizedMapping,
    ProcGrid, Template, TemplateId,
};
use hpfc_runtime::{
    plan_redistribution, remap_group, try_remap_group, ArrayRt, ExecError, ExecMode, FaultKind,
    FaultPlan, GroupMember, Machine, PlannedGroup, PlannedRemap, ValidationLevel,
};
use proptest::prelude::*;

fn mk1d(n: u64, p: u64, fmt: DimFormat) -> NormalizedMapping {
    hpfc_mapping::testing::mapping_1d(n, p, fmt)
}

/// A fresh array bouncing between BLOCK and CYCLIC(3) over `p` procs,
/// with both plan-cache directions pre-seeded (so recovery can be
/// asserted to never plan at run time).
fn seeded_array(n: u64, p: u64) -> ArrayRt {
    let src = mk1d(n, p, DimFormat::Block(None));
    let dst = mk1d(n, p, DimFormat::Cyclic(Some(3)));
    let mut rt = ArrayRt::new("a", vec![src.clone(), dst.clone()], 8);
    rt.seed_plan(0, 1, Arc::new(PlannedRemap::compile(plan_redistribution(&src, &dst, 8))));
    rt.seed_plan(1, 0, Arc::new(PlannedRemap::compile(plan_redistribution(&dst, &src, 8))));
    rt
}

/// Bounce `rt` between versions 0 and 1 `bounces` times, writing a
/// fresh value after every hop (so every hop moves data), and return
/// the expected final contents as a per-point oracle.
fn bounce_and_oracle(machine: &mut Machine, rt: &mut ArrayRt, n: u64, bounces: u32) -> Vec<f64> {
    let keep: BTreeSet<u32> = [0u32, 1].into_iter().collect();
    rt.current(machine, 0).fill(|p| p[0] as f64 + 1.0);
    let mut shadow: Vec<f64> = (0..n).map(|i| i as f64 + 1.0).collect();
    for b in 0..bounces {
        rt.remap(machine, 1 - (b % 2), &keep, false);
        let touched = (7 * b as u64 + 3) % n;
        rt.set(&[touched], 1000.0 + b as f64);
        shadow[touched as usize] = 1000.0 + b as f64;
    }
    shadow
}

fn assert_matches_oracle(rt: &ArrayRt, shadow: &[f64], what: &str) {
    for (i, want) in shadow.iter().enumerate() {
        let got = rt.get(&[i as u64]);
        assert_eq!(got, *want, "{what}: element {i} diverged from the oracle");
    }
}

/// CorruptRound at rate 100 with checksums: every attempt of every
/// round is corrupted, so retries and the recompiled program all fail
/// and each remap lands on the table engine — and the data is still
/// exactly right.
#[test]
fn corruption_at_full_rate_falls_back_to_tables() {
    let n = 4096u64;
    let mut machine = Machine::new(4)
        .without_registry()
        .with_exec_mode(ExecMode::Serial)
        .with_faults(FaultPlan::new(11, 100, &[FaultKind::CorruptRound]))
        .with_validation(ValidationLevel::Checksums);
    let mut rt = seeded_array(n, 4);
    let shadow = bounce_and_oracle(&mut machine, &mut rt, n, 4);
    assert_matches_oracle(&rt, &shadow, "corrupt@100");
    assert!(machine.stats.faults_injected > 0, "corruption was injected");
    assert!(machine.stats.rounds_retried > 0, "rung 1 retried");
    assert!(machine.stats.programs_recompiled > 0, "rung 2 recompiled");
    assert_eq!(
        machine.stats.fallbacks_to_tables, 4,
        "at rate 100 every data-moving remap ends on the table engine"
    );
    assert_eq!(machine.stats.plans_computed, 0, "recovery never plans");
}

/// CorruptRound at a moderate rate: retries converge (a retry re-rolls
/// the fault decision), the healed contents match the oracle, and at
/// least some rounds needed the ladder.
#[test]
fn corruption_at_moderate_rate_heals_by_retry() {
    let n = 4096u64;
    let mut machine = Machine::new(4)
        .without_registry()
        .with_exec_mode(ExecMode::Serial)
        .with_faults(FaultPlan::new(5, 40, &[FaultKind::CorruptRound]))
        .with_validation(ValidationLevel::Checksums);
    let mut rt = seeded_array(n, 4);
    let shadow = bounce_and_oracle(&mut machine, &mut rt, n, 8);
    assert_matches_oracle(&rt, &shadow, "corrupt@40");
    assert!(machine.stats.faults_injected > 0);
    assert!(machine.stats.rounds_retried > 0);
    assert_eq!(machine.stats.plans_computed, 0);
}

/// WorkerPanic at rate 100 under Parallel(4): every big round's first
/// attempt panics a worker; the panic is caught, the round degrades to
/// serial, and the replay completes without retries or fallbacks.
#[test]
fn worker_panic_degrades_round_to_serial() {
    let n = 1u64 << 18; // rounds comfortably above PARALLEL_THRESHOLD
    let mut machine = Machine::new(4)
        .without_registry()
        .with_exec_mode(ExecMode::Parallel(4))
        .with_faults(FaultPlan::new(3, 100, &[FaultKind::WorkerPanic]));
    let mut rt = seeded_array(n, 4);
    let shadow = bounce_and_oracle(&mut machine, &mut rt, n, 2);
    assert_matches_oracle(&rt, &shadow, "panic@100");
    assert!(machine.stats.parallel_degradations > 0, "panicked rounds degraded");
    assert_eq!(machine.stats.faults_injected, machine.stats.parallel_degradations);
    assert_eq!(machine.stats.fallbacks_to_tables, 0, "degradation alone healed it");
    assert_eq!(machine.stats.rounds_retried, 0, "serial re-run is not a retry");
    assert_eq!(machine.stats.plans_computed, 0);
}

/// PoisonProgram at rate 100: every remap serves a corrupted cached
/// program; the fingerprint catches it before any position is
/// dereferenced, the program is recompiled from the cached plan, and
/// the cache entry is repaired in place — all without planning.
#[test]
fn poisoned_cache_entries_are_recompiled_and_repaired() {
    let n = 4096u64;
    let mut machine = Machine::new(4)
        .without_registry()
        .with_exec_mode(ExecMode::Serial)
        .with_faults(FaultPlan::new(17, 100, &[FaultKind::PoisonProgram]));
    let mut rt = seeded_array(n, 4);
    let shadow = bounce_and_oracle(&mut machine, &mut rt, n, 4);
    assert_matches_oracle(&rt, &shadow, "poison@100");
    assert_eq!(machine.stats.faults_injected, 4, "each remap's entry was poisoned");
    assert_eq!(
        machine.stats.programs_recompiled, 4,
        "each poisoning was caught by the fingerprint and recompiled"
    );
    assert_eq!(machine.stats.fallbacks_to_tables, 0);
    assert_eq!(machine.stats.rounds_retried, 0, "a fresh program replays cleanly");
    assert_eq!(machine.stats.plans_computed, 0, "repair recompiles, it never re-plans");
}

/// Poison under the shared plan registry: when a registered artifact is
/// poisoned, the repair is installed registry-wide — exactly once — so
/// a second session over the same pairs is never served the corrupt
/// program. Session A registers both directions, takes one poisoned
/// remap on the chin (fingerprint → recompile → repair → reinstall);
/// session B, a fresh array and machine on the same registry, then
/// executes on registry hits alone, recompiles nothing, and heals to
/// its oracle.
#[test]
fn a_poisoned_registry_entry_heals_once_and_never_reaches_a_second_session() {
    let n = 4096u64;
    let registry = Arc::new(hpfc_runtime::PlanRegistry::new(2, 64));
    let src = mk1d(n, 4, DimFormat::Block(None));
    let dst = mk1d(n, 4, DimFormat::Cyclic(Some(3)));
    let keep: BTreeSet<u32> = [0u32, 1].into_iter().collect();

    // Session A, fault-free: registers both directions in the registry.
    let mut ma = Machine::new(4)
        .with_exec_mode(ExecMode::Serial)
        .with_registry(Arc::clone(&registry));
    let mut a = ArrayRt::new("a", vec![src.clone(), dst.clone()], 8);
    let shadow_a = bounce_and_oracle(&mut ma, &mut a, n, 2);
    assert_eq!(ma.stats.plans_computed, 2, "A planned both directions");
    assert_eq!(registry.len(), 2);

    // One poisoned remap: the corrupt artifact transits the registry
    // (installed so corruption is visible registry-wide, like a real
    // shared-cache fault), is caught by the fingerprint, and the
    // repaired program is reinstalled over it.
    ma = ma.with_faults(FaultPlan::new(41, 100, &[FaultKind::PoisonProgram]));
    a.remap(&mut ma, 1, &keep, false);
    assert_matches_oracle(&a, &shadow_a, "session A after poison");
    assert_eq!(ma.stats.faults_injected, 1, "exactly one poisoning");
    assert_eq!(ma.stats.programs_recompiled, 1, "repaired exactly once");

    // Session B: fresh machine + fresh array, same registry, no faults.
    let mut mb = Machine::new(4)
        .with_exec_mode(ExecMode::Serial)
        .with_registry(Arc::clone(&registry));
    let mut b = ArrayRt::new("b", vec![src, dst], 8);
    let shadow_b = bounce_and_oracle(&mut mb, &mut b, n, 4);
    assert_matches_oracle(&b, &shadow_b, "session B over the repaired registry");
    assert_eq!(mb.stats.plans_computed, 0, "B is served by the registry");
    assert_eq!((mb.stats.registry_misses, mb.stats.registry_hits), (0, 2), "{:?}", mb.stats);
    assert_eq!(mb.stats.faults_injected, 0);
    assert_eq!(
        ma.stats.programs_recompiled + mb.stats.programs_recompiled,
        1,
        "one poisoning, one repair, process-wide — B never saw the corrupt program"
    );
}

/// Drop/Truncate under both engines: conservation counts catch the
/// short rounds, the ladder heals them, and the wire accounting books
/// each remap's schedule exactly once — a retried round is never
/// re-billed.
#[test]
fn wire_loss_heals_and_accounts_each_remap_once() {
    let n = 4096u64;
    let fwd = plan_redistribution(
        &mk1d(n, 4, DimFormat::Block(None)),
        &mk1d(n, 4, DimFormat::Cyclic(Some(3))),
        8,
    );
    let back = plan_redistribution(
        &mk1d(n, 4, DimFormat::Cyclic(Some(3))),
        &mk1d(n, 4, DimFormat::Block(None)),
        8,
    );
    for mode in [ExecMode::Serial, ExecMode::Parallel(4)] {
        let mut machine = Machine::new(4)
            .without_registry()
            .with_exec_mode(mode)
            .with_faults(FaultPlan::new(
                23,
                40,
                &[FaultKind::DropRound, FaultKind::TruncateRound],
            ))
            .with_validation(ValidationLevel::Counts);
        let mut rt = seeded_array(n, 4);
        let shadow = bounce_and_oracle(&mut machine, &mut rt, n, 6);
        assert_matches_oracle(&rt, &shadow, "wire-loss");
        assert!(machine.stats.faults_injected > 0, "wire loss was injected ({mode:?})");
        assert!(machine.stats.rounds_retried > 0, "short rounds were caught ({mode:?})");
        // 6 bounces: 3 forward, 3 back. The schedule is accounted once
        // per remap *before* the replay; retries, recompiles and
        // fallbacks never touch the wire books again.
        assert_eq!(
            machine.stats.messages,
            3 * fwd.total_messages() + 3 * back.total_messages(),
            "wire messages booked once per remap ({mode:?})"
        );
        assert_eq!(
            machine.stats.bytes,
            3 * fwd.total_bytes() + 3 * back.total_bytes(),
            "wire bytes booked once per remap ({mode:?})"
        );
        assert_eq!(machine.stats.plans_computed, 0);
    }
}

/// Group chaos: the coalesced two-array remap heals per-class like the
/// solo path — full-rate corruption lands every masked member on the
/// table engine, poison is recompiled — and both arrays' contents
/// match their oracles.
#[test]
fn group_remaps_heal_under_chaos() {
    let n = 4096u64;
    let src = mk1d(n, 4, DimFormat::Block(None));
    let dst = mk1d(n, 4, DimFormat::Cyclic(Some(3)));
    let solo =
        |s: &NormalizedMapping, d: &NormalizedMapping| {
            Arc::new(PlannedRemap::compile(plan_redistribution(s, d, 8)))
        };
    let cases: [(FaultPlan, ValidationLevel); 2] = [
        // Every round of every attempt corrupted: per-member tables.
        (FaultPlan::new(29, 100, &[FaultKind::CorruptRound]), ValidationLevel::Checksums),
        // Every group program poisoned: recompile heals it.
        (FaultPlan::new(31, 100, &[FaultKind::PoisonProgram]), ValidationLevel::Off),
    ];
    for (faults, validation) in cases {
        let fwd = PlannedGroup::compile(vec![solo(&src, &dst), solo(&src, &dst)]);
        let back = PlannedGroup::compile(vec![solo(&dst, &src), solo(&dst, &src)]);
        let mut machine = Machine::new(4)
            .without_registry()
            .with_exec_mode(ExecMode::Serial)
            .with_faults(faults)
            .with_validation(validation);
        let mut a = ArrayRt::new("a", vec![src.clone(), dst.clone()], 8);
        let mut b = ArrayRt::new("b", vec![src.clone(), dst.clone()], 8);
        a.current(&mut machine, 0).fill(|p| p[0] as f64);
        b.current(&mut machine, 0).fill(|p| 2.0 * p[0] as f64);
        let keep: BTreeSet<u32> = [0u32, 1].into_iter().collect();
        let skip = BTreeSet::new();
        for bounce in 0..4u32 {
            let (s, t) = if bounce % 2 == 0 { (0u32, 1u32) } else { (1, 0) };
            let mut members = [
                GroupMember { rt: &mut a, src: s, target: t, may_live: &keep, skip_if_current: &skip },
                GroupMember { rt: &mut b, src: s, target: t, may_live: &keep, skip_if_current: &skip },
            ];
            let coalesced = remap_group(&mut machine, &mut members, if s == 0 { &fwd } else { &back });
            assert_eq!(coalesced, 2, "both arrays moved together");
            a.set(&[0], 50.0 + bounce as f64);
            b.set(&[1], 70.0 + bounce as f64);
        }
        for i in 0..n {
            let want_a = if i == 0 { 53.0 } else { i as f64 };
            let want_b = if i == 1 { 73.0 } else { 2.0 * i as f64 };
            assert_eq!(a.get(&[i]), want_a, "array a element {i} ({faults:?})");
            assert_eq!(b.get(&[i]), want_b, "array b element {i} ({faults:?})");
        }
        assert!(machine.stats.faults_injected >= 4, "one injection per group remap");
        assert_eq!(machine.stats.plans_computed, 0, "group recovery never plans");
        match validation {
            ValidationLevel::Checksums => assert_eq!(
                machine.stats.fallbacks_to_tables,
                8,
                "full-rate corruption: 4 group remaps x 2 members on tables"
            ),
            _ => {
                assert_eq!(machine.stats.programs_recompiled, 4, "one group recompile per remap");
                assert_eq!(machine.stats.fallbacks_to_tables, 0);
            }
        }
    }
}

/// Unrecoverable situations are typed errors at the API boundary, not
/// panics: a remap whose source copy is gone reports `MissingCopy`, a
/// group whose member list disagrees with its plan reports
/// `GroupMismatch`.
#[test]
fn unrecoverable_paths_return_typed_errors() {
    let n = 256u64;
    let keep: BTreeSet<u32> = [0u32, 1].into_iter().collect();
    let mut machine = Machine::new(4).without_registry().with_exec_mode(ExecMode::Serial);
    let mut rt = seeded_array(n, 4);
    rt.current(&mut machine, 0).fill(|p| p[0] as f64);
    // Sabotage: drop the source copy behind the status tag.
    rt.free_copy(&mut machine, 0);
    let err = rt.try_remap(&mut machine, 1, &keep, false).unwrap_err();
    assert_eq!(err, ExecError::MissingCopy { array: "a".into(), version: 0 });
    assert!(err.to_string().contains("version 0"));

    // A group directive whose runtime member list is shorter than the
    // planned group.
    let src = mk1d(n, 4, DimFormat::Block(None));
    let dst = mk1d(n, 4, DimFormat::Cyclic(Some(3)));
    let solo = Arc::new(PlannedRemap::compile(plan_redistribution(&src, &dst, 8)));
    let planned = PlannedGroup::compile(vec![Arc::clone(&solo), solo]);
    let mut a = ArrayRt::new("a", vec![src.clone(), dst.clone()], 8);
    a.current(&mut machine, 0).fill(|p| p[0] as f64);
    let skip = BTreeSet::new();
    let mut members = [GroupMember {
        rt: &mut a,
        src: 0,
        target: 1,
        may_live: &keep,
        skip_if_current: &skip,
    }];
    let err = try_remap_group(&mut machine, &mut members, &planned).unwrap_err();
    assert_eq!(err, ExecError::GroupMismatch { planned: 2, got: 1 });
}

/// One drawn mapping configuration (alignment + distribution
/// selectors); realized against a shared grid by [`realize_mapping`].
type MappingCfg = ((usize, usize), (i64, bool), i64, (usize, usize), u64);

fn mapping_cfg_strategy() -> impl Strategy<Value = MappingCfg> {
    (
        (0usize..5, 0usize..5),
        (1i64..4, prop::bool::ANY),
        0i64..3,
        (0usize..4, 0usize..4),
        1u64..4,
    )
}

/// A trimmed mirror of `proptest_redist.rs`'s rich mapping space:
/// strided/offset/negative alignments, constants, replication, 2-D
/// grids, every distribution format — enough shape diversity that the
/// caterpillar structure varies wildly under chaos. Both endpoints of a
/// remap share one grid: `Machine` memory and schedule accounting both
/// index processor ranks of that grid.
fn realize_mapping(n0: u64, n1: u64, grid: (u64, u64), cfg: MappingCfg) -> NormalizedMapping {
    let ((al0, al1), (s_abs, neg), oslack, (f0, f1), b) = cfg;
    let stride = if neg { -s_abs } else { s_abs };
    let nmax = n0.max(n1);
    let text = 3 * nmax + 8;
    let mk_target = |sel: usize, dim: usize| match sel {
        0 => AlignTarget::identity(dim),
        1 => {
            let n = if dim == 0 { n0 } else { n1 };
            let offset = if stride < 0 { (-stride) * (n as i64 - 1) + oslack } else { oslack };
            AlignTarget::Axis { array_dim: dim, stride, offset }
        }
        2 => AlignTarget::Replicate,
        3 => AlignTarget::Constant(oslack),
        _ => AlignTarget::Axis { array_dim: dim, stride: 2, offset: 1 },
    };
    let align = Alignment {
        template: TemplateId(0),
        targets: vec![mk_target(al0, 0), mk_target(al1, 1)],
    };
    let mk_fmt = |sel: usize| match sel {
        0 => DimFormat::Block(None),
        1 => DimFormat::Cyclic(None),
        2 => DimFormat::Cyclic(Some(b)),
        _ => DimFormat::Collapsed,
    };
    let template =
        Template { id: TemplateId(0), name: "T".into(), shape: Extents::new(&[text, text]) };
    let grid = ProcGrid {
        id: GridId(0),
        name: "P".into(),
        shape: Extents::new(&[grid.0, grid.1]),
    };
    Mapping { align, dist: Distribution::new(GridId(0), vec![mk_fmt(f0), mk_fmt(f1)]) }
        .normalize(&Extents::new(&[n0, n1]), &template, &grid)
        .expect("constructed mapping is well-formed")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The engine heals EVERY fault class at random sites over the
    /// rich mapping space, under both engines: after three fault-ridden
    /// bounces with interleaved writes, every element equals the
    /// per-point shadow oracle, and recovery never planned.
    #[test]
    fn chaos_over_rich_mappings_heals_to_the_oracle(
        grid in (1u64..4, 1u64..4),
        src_cfg in mapping_cfg_strategy(),
        dst_cfg in mapping_cfg_strategy(),
        seed in 0u64..1_000_000,
        rate in 20u32..=100,
    ) {
        let src = realize_mapping(6, 5, grid, src_cfg);
        let dst = realize_mapping(6, 5, grid, dst_cfg);
        let nprocs = src.grid_shape.volume();
        for mode in [ExecMode::Serial, ExecMode::Parallel(4)] {
            let mut machine = Machine::new(nprocs)
                .without_registry()
                .with_exec_mode(mode)
                .with_faults(FaultPlan::all(seed, rate))
                .with_validation(ValidationLevel::Checksums);
            let mut rt = ArrayRt::new("a", vec![src.clone(), dst.clone()], 8);
            rt.seed_plan(0, 1, Arc::new(PlannedRemap::compile(
                plan_redistribution(&src, &dst, 8))));
            rt.seed_plan(1, 0, Arc::new(PlannedRemap::compile(
                plan_redistribution(&dst, &src, 8))));
            rt.current(&mut machine, 0).fill(|p| (p[0] * 31 + p[1] * 7 + 1) as f64);
            let mut shadow = vec![0.0f64; 30];
            for p0 in 0..6u64 {
                for p1 in 0..5u64 {
                    shadow[(p0 * 5 + p1) as usize] = (p0 * 31 + p1 * 7 + 1) as f64;
                }
            }
            let keep: BTreeSet<u32> = [0u32, 1].into_iter().collect();
            for b in 0..3u32 {
                rt.remap(&mut machine, 1 - (b % 2), &keep, false);
                let (p0, p1) = ((b as u64 * 2 + 1) % 6, (b as u64 * 3 + 2) % 5);
                rt.set(&[p0, p1], 500.0 + b as f64);
                shadow[(p0 * 5 + p1) as usize] = 500.0 + b as f64;
            }
            for p0 in 0..6u64 {
                for p1 in 0..5u64 {
                    prop_assert_eq!(
                        rt.get(&[p0, p1]),
                        shadow[(p0 * 5 + p1) as usize],
                        "({}, {}) diverged under chaos seed {} rate {} ({:?})",
                        p0, p1, seed, rate, mode
                    );
                }
            }
            prop_assert_eq!(machine.stats.plans_computed, 0, "recovery never plans");
        }
    }
}
