//! Many-session concurrency harness for the shared plan registry:
//! N threads × M interpreter-style sessions draw mapping pairs from a
//! shared pool, every session's data is checked against a per-point
//! oracle, and the registry's accounting is pinned *exactly* — the
//! whole process compiles one plan per distinct interned direction
//! (never per session), hit/miss/eviction counters balance under a
//! forced-eviction cap, and nothing deadlocks under `HPFC_THREADS=1`
//! or `=4` (CI runs this file under both).

use std::collections::BTreeSet;
use std::sync::Arc;

use hpfc_mapping::{DimFormat, NormalizedMapping};
use hpfc_runtime::{ArrayRt, Machine, NetStats, PlanRegistry};

fn mk1d(n: u64, p: u64, fmt: DimFormat) -> NormalizedMapping {
    hpfc_mapping::testing::mapping_1d(n, p, fmt)
}

/// `k` distinct (src, dst) pairs — distinct extents, so each interns to
/// its own identity and the registry holds `2k` directional artifacts
/// when warm. Extents are unique to this file so the process-wide
/// interner never collides with another test's pairs.
fn pool(k: usize) -> Vec<(NormalizedMapping, NormalizedMapping)> {
    (0..k)
        .map(|i| {
            let n = 3072 + 128 * i as u64;
            (mk1d(n, 4, DimFormat::Block(None)), mk1d(n, 4, DimFormat::Cyclic(Some(3))))
        })
        .collect()
}

/// One session: a fresh array over `(src, dst)` on a fresh machine
/// wired to the shared registry, bounced `bounces` times with a write
/// after every hop, verified against a per-point shadow oracle.
/// Returns the session's stats for merging. The fresh local plan cache
/// means exactly the first hop in each direction consults the
/// registry; every later hop is a local cache hit.
fn run_session(
    registry: &Arc<PlanRegistry>,
    src: &NormalizedMapping,
    dst: &NormalizedMapping,
    bounces: u32,
) -> (NetStats, ArrayRt) {
    run_session_cfg(registry, src, dst, bounces, hpfc_runtime::symbolic::enabled_from_env())
}

/// [`run_session`] with the registry keying scheme pinned explicitly
/// (`true`: symbolic format-pair keys; `false`: concrete mapping-pair
/// keys) instead of following `HPFC_SYMBOLIC`.
fn run_session_cfg(
    registry: &Arc<PlanRegistry>,
    src: &NormalizedMapping,
    dst: &NormalizedMapping,
    bounces: u32,
    symbolic: bool,
) -> (NetStats, ArrayRt) {
    let n = src.array_extents.volume();
    let mut machine =
        Machine::new(4).with_registry(Arc::clone(registry)).with_symbolic(symbolic);
    let mut rt = ArrayRt::new("a", vec![src.clone(), dst.clone()], 8);
    rt.current(&mut machine, 0).fill(|p| (3 * p[0] + 11) as f64);
    let mut shadow: Vec<f64> = (0..n).map(|i| (3 * i + 11) as f64).collect();
    let keep: BTreeSet<u32> = [0u32, 1].into_iter().collect();
    for b in 0..bounces {
        rt.remap(&mut machine, 1 - (b % 2), &keep, false);
        let touched = (13 * b as u64 + 5) % n;
        rt.set(&[touched], 9000.0 + b as f64);
        shadow[touched as usize] = 9000.0 + b as f64;
    }
    for (i, want) in shadow.iter().enumerate() {
        assert_eq!(rt.get(&[i as u64]), *want, "element {i} diverged from the oracle");
    }
    (machine.stats, rt)
}

/// The tentpole pin: 4 threads × 3 sessions over a 5-pair pool, with
/// staggered starts so threads contend on the same cold pairs. The
/// merged books must show exactly one compile per distinct direction
/// — `plans_computed == 2 × pairs`, however many sessions raced — and
/// hits account for every other registry consultation. Runs under
/// whatever `HPFC_THREADS` selects (CI pins 1 and 4): the registry
/// shard locks, the interner locks, and the exec engine's worker pool
/// must compose without deadlock.
#[test]
fn many_sessions_compile_once_per_distinct_pair() {
    const THREADS: usize = 4;
    const SESSIONS: usize = 3;
    const PAIRS: usize = 5;
    let registry = Arc::new(PlanRegistry::new(4, 1024));
    let pairs = Arc::new(pool(PAIRS));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let registry = Arc::clone(&registry);
            let pairs = Arc::clone(&pairs);
            std::thread::spawn(move || {
                let mut stats = NetStats::default();
                for s in 0..SESSIONS {
                    // Staggered: thread t's first session starts on
                    // pair t, so cold pairs are hammered concurrently.
                    let (src, dst) = &pairs[(t + s) % PAIRS];
                    let (session, _) = run_session(&registry, src, dst, 4);
                    stats.merge(&session);
                }
                stats
            })
        })
        .collect();
    let mut total = NetStats::default();
    for h in handles {
        total.merge(&h.join().expect("session thread panicked"));
    }
    // One compile per distinct direction, ever — concurrent cold
    // requests for one pair must collapse onto a single compilation.
    assert_eq!(total.plans_computed, 2 * PAIRS as u64, "{total:?}");
    assert_eq!(total.registry_misses, 2 * PAIRS as u64, "{total:?}");
    // Every other registry consultation was a hit: each of the 12
    // sessions consults the registry once per direction.
    let consultations = (THREADS * SESSIONS * 2) as u64;
    assert_eq!(total.registry_hits, consultations - 2 * PAIRS as u64, "{total:?}");
    assert_eq!(total.registry_evictions, 0, "a generous cap never evicts");
    // The compile-once books above hold under BOTH keying schemes; only
    // where the 2×PAIRS entries live differs. The pool's pairs stay
    // distinct symbolically too: each extent gives `BLOCK` a different
    // block size and the templates different extents.
    if hpfc_runtime::symbolic::enabled_from_env() {
        assert_eq!((registry.len(), registry.sym_len()), (0, 2 * PAIRS));
    } else {
        assert_eq!((registry.len(), registry.sym_len()), (2 * PAIRS, 0));
    }
    assert_eq!((registry.hits(), registry.misses()), (total.registry_hits, total.registry_misses));
}

/// The acceptance-criterion pin at the runtime layer: a second session
/// over already-registered pairs executes with `plans_computed == 0`
/// and only registry hits, and its local cache view holds the very
/// same `Arc`s as the first session's.
#[test]
fn a_second_session_is_served_entirely_by_the_registry() {
    let registry = Arc::new(PlanRegistry::new(2, 64));
    let pairs = pool(1);
    let (src, dst) = &pairs[0];
    let (s1, rt1) = run_session(&registry, src, dst, 4);
    assert_eq!((s1.plans_computed, s1.registry_misses, s1.registry_hits), (2, 2, 0), "{s1:?}");
    let (s2, rt2) = run_session(&registry, src, dst, 4);
    assert_eq!(s2.plans_computed, 0, "{s2:?}");
    assert_eq!((s2.registry_misses, s2.registry_hits), (0, 2), "{s2:?}");
    // Not equal artifacts — pointer-identical ones.
    for key in [(0u32, 1u32), (1, 0)] {
        assert!(
            Arc::ptr_eq(&rt1.plan_cache[&key], &rt2.plan_cache[&key]),
            "sessions must share one artifact for {key:?}"
        );
    }
}

/// Forced-eviction accounting: one shard, two slots, three pairs in
/// round-robin. Every session runs two back-to-back fresh arrays over
/// its pair — the first pulls both directions in (two misses, evicting
/// the coldest resident artifacts), the second re-reads them while
/// still resident (two hits). Every counter is pinned exactly.
#[test]
fn eviction_counters_are_exact_under_a_tiny_cap() {
    let registry = Arc::new(PlanRegistry::new(1, 2));
    let pairs = pool(3);
    const ROUNDS: usize = 3;
    let mut total = NetStats::default();
    let mut sessions = 0u64;
    for _ in 0..ROUNDS {
        for (src, dst) in &pairs {
            for _ in 0..2 {
                // Concrete keys pinned explicitly: this test exercises
                // the concrete shards' LRU machinery, and the symbolic
                // format-pair table is unbounded by design — under it
                // the later rounds would be served without ever
                // touching the eviction path being measured.
                let (stats, _) = run_session_cfg(&registry, src, dst, 4, false);
                total.merge(&stats);
            }
            sessions += 1;
        }
    }
    // Per pair-session: 2 misses (fresh array A), 2 hits (fresh array
    // B, entries still the warmest), and — once the two slots filled —
    // each miss evicts the coldest resident, so only the very first
    // session's two inserts land in empty slots.
    assert_eq!(total.plans_computed, 2 * sessions, "{total:?}");
    assert_eq!(total.registry_misses, 2 * sessions, "{total:?}");
    assert_eq!(total.registry_hits, 2 * sessions, "{total:?}");
    assert_eq!(total.registry_evictions, 2 * sessions - 2, "{total:?}");
    assert_eq!(registry.len(), 2, "the cap bounds residency");
    assert_eq!(registry.evictions(), total.registry_evictions);
}

/// Lock-poison recovery at the session layer: a thread panics while
/// holding a shard lock (poisoning it); the next session over that
/// shard is still served — both directions compile and register
/// normally — with the recovery counted, never `unwrap`-panicked. The
/// recovery also heals the lock for good (`clear_poison`), so later
/// sessions cross it without recovering again.
#[test]
fn a_poisoned_shard_lock_never_reaches_a_later_session() {
    // One shard: every registry access crosses the poisoned lock.
    let registry = Arc::new(PlanRegistry::new(1, 64));
    let pairs = pool(1);
    let (src, dst) = &pairs[0];
    let poisoner = std::thread::spawn({
        let registry = Arc::clone(&registry);
        let (src, dst) = (src.clone(), dst.clone());
        move || registry.poison_shard_lock_for_tests(&src, &dst, 8)
    });
    assert!(poisoner.join().is_err(), "the hook panics while holding the shard lock");

    let (s1, _) = run_session(&registry, src, dst, 4);
    assert_eq!((s1.plans_computed, s1.registry_misses, s1.registry_hits), (2, 2, 0), "{s1:?}");
    assert_eq!(s1.lock_poison_recoveries, 1, "the first access recovered the guard");
    assert_eq!(registry.lock_recoveries(), 1);

    let (s2, _) = run_session(&registry, src, dst, 4);
    assert_eq!(s2.plans_computed, 0, "{s2:?}");
    assert_eq!(s2.lock_poison_recoveries, 0, "the recovery healed the lock for good");
    assert_eq!(registry.lock_recoveries(), 1);
}
