//! E23 — property tests for the redistribution engine: the closed-form
//! communication sets must agree with brute-force enumeration for any
//! pair of well-formed mappings, and data movement must preserve array
//! contents exactly.

use hpfc_mapping::{
    AlignTarget, Alignment, DimFormat, Distribution, Extents, GridId, Mapping, NormalizedMapping,
    ProcGrid, Template, TemplateId,
};
use hpfc_runtime::{
    plan_by_enumeration, plan_redistribution, CommSchedule, CopyProgram, ExecMode, Machine,
    MsgDim, VersionData,
};
use proptest::prelude::*;

/// A random well-formed mapping of an `n0 x n1` array.
fn mapping_strategy(
    n0: u64,
    n1: u64,
) -> impl Strategy<Value = NormalizedMapping> {
    (1u64..6, 0usize..5, 1u64..4, prop::bool::ANY, prop::bool::ANY).prop_map(
        move |(p, fmt_sel, b, transpose, swap_dist)| {
            let tshape = if transpose { [n1, n0] } else { [n0, n1] };
            let template =
                Template { id: TemplateId(0), name: "T".into(), shape: Extents::new(&tshape) };
            let grid = ProcGrid { id: GridId(0), name: "P".into(), shape: Extents::new(&[p]) };
            let align = if transpose {
                Alignment::transpose2(TemplateId(0))
            } else {
                Alignment::identity(TemplateId(0), 2)
            };
            let fmt = match fmt_sel {
                0 => DimFormat::Block(None),
                1 => DimFormat::Cyclic(None),
                2 => DimFormat::Cyclic(Some(b)),
                3 => DimFormat::Collapsed, // fully replicated over p=1 axis? no: both collapsed
                _ => DimFormat::Block(Some(tshape[0].div_ceil(p) + b)),
            };
            let fmts = if matches!(fmt, DimFormat::Collapsed) {
                vec![DimFormat::Collapsed, DimFormat::Collapsed]
            } else if swap_dist {
                vec![DimFormat::Collapsed, DimFormat::Cyclic(Some(b))]
            } else {
                vec![fmt, DimFormat::Collapsed]
            };
            Mapping { align, dist: Distribution::new(GridId(0), fmts) }
                .normalize(&Extents::new(&[n0, n1]), &template, &grid)
                .unwrap()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The closed-form plan equals the enumeration oracle exactly —
    /// same pairs, same counts, same locals.
    #[test]
    fn plan_matches_oracle(
        src in mapping_strategy(9, 7),
        dst in mapping_strategy(9, 7),
    ) {
        let plan = plan_redistribution(&src, &dst, 8);
        let oracle = plan_by_enumeration(&src, &dst, 8);
        prop_assert_eq!(plan, oracle);
    }

    /// Element conservation: locals + remote arrivals per replica cover
    /// the array exactly once per destination replica.
    #[test]
    fn plan_conserves_elements(
        src in mapping_strategy(9, 7),
        dst in mapping_strategy(9, 7),
    ) {
        let plan = plan_redistribution(&src, &dst, 8);
        // Total deliveries = sum over points of (#dst owners).
        let mut expected = 0u64;
        for p in src.array_extents.points() {
            expected += dst.owners(&p).len() as u64;
        }
        prop_assert_eq!(plan.local_elements + plan.remote_elements(), expected);
    }

    /// Executing the movement preserves contents for any mapping pair.
    #[test]
    fn data_movement_preserves_values(
        src in mapping_strategy(6, 5),
        dst in mapping_strategy(6, 5),
    ) {
        let mut a = VersionData::new(src, 8);
        a.fill(|p| (p[0] * 31 + p[1] * 7) as f64);
        let mut b = VersionData::new(dst, 8);
        b.copy_values_from(&a);
        prop_assert_eq!(a.to_dense(), b.to_dense());
    }

    /// The BSP phase accounting is consistent: non-negative time, and
    /// zero iff there are no remote transfers.
    #[test]
    fn phase_time_consistency(
        src in mapping_strategy(9, 7),
        dst in mapping_strategy(9, 7),
    ) {
        let plan = plan_redistribution(&src, &dst, 8);
        let mut m = Machine::new(8);
        let t = m.account_phase(plan.phase_triples());
        prop_assert!(t >= 0.0);
        prop_assert_eq!(t == 0.0, plan.total_messages() == 0);
        prop_assert_eq!(m.stats.bytes, plan.total_bytes());
    }

    /// Identity redistributions are free.
    #[test]
    fn identity_is_free(src in mapping_strategy(9, 7)) {
        let plan = plan_redistribution(&src, &src, 8);
        prop_assert_eq!(plan.total_messages(), 0);
    }
}

/// A random mapping drawn from the *full* space the planner supports:
/// strided/offset/negative affine alignments, constant and replicated
/// alignment targets, 1-D and 2-D processor grids, and every
/// distribution format. The template is sized so any drawn affine
/// image fits.
fn rich_mapping_strategy(n0: u64, n1: u64) -> impl Strategy<Value = NormalizedMapping> {
    (
        (1u64..4, 1u64..4),              // grid extents (2-D, possibly 1 wide)
        (0usize..5, 0usize..5),          // per-template-dim alignment selector
        (1i64..4, prop::bool::ANY),      // |stride|, negate?
        0i64..3,                         // offset slack
        (0usize..4, 0usize..4),          // per-template-dim format selector
        1u64..4,                         // cyclic block size
    )
        .prop_map(move |((p0, p1), (al0, al1), (s_abs, neg), oslack, (f0, f1), b)| {
            let stride = if neg { -s_abs } else { s_abs };
            // Template dim sized to hold the worst-case affine image of
            // either array dim plus slack.
            let nmax = n0.max(n1);
            let text = 3 * nmax + 8;
            let mk_target = |sel: usize, dim: usize| match sel {
                0 => AlignTarget::identity(dim),
                1 => {
                    // Strided/offset affine image inside [0, text).
                    let n = if dim == 0 { n0 } else { n1 };
                    let offset = if stride < 0 {
                        (-stride) * (n as i64 - 1) + oslack
                    } else {
                        oslack
                    };
                    AlignTarget::Axis { array_dim: dim, stride, offset }
                }
                2 => AlignTarget::Replicate,
                3 => AlignTarget::Constant(oslack),
                _ => AlignTarget::Axis { array_dim: dim, stride: 2, offset: 1 },
            };
            // Each array dim may be used at most once: template dim 0
            // draws from array dim 0, template dim 1 from array dim 1.
            let align = Alignment {
                template: TemplateId(0),
                targets: vec![mk_target(al0, 0), mk_target(al1, 1)],
            };
            let mk_fmt = |sel: usize| match sel {
                0 => DimFormat::Block(None),
                1 => DimFormat::Cyclic(None),
                2 => DimFormat::Cyclic(Some(b)),
                _ => DimFormat::Collapsed,
            };
            let template = Template {
                id: TemplateId(0),
                name: "T".into(),
                shape: Extents::new(&[text, text]),
            };
            let grid =
                ProcGrid { id: GridId(0), name: "P".into(), shape: Extents::new(&[p0, p1]) };
            Mapping { align, dist: Distribution::new(GridId(0), vec![mk_fmt(f0), mk_fmt(f1)]) }
                .normalize(&Extents::new(&[n0, n1]), &template, &grid)
                .expect("constructed mapping is well-formed")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Closed form == oracle over the full mapping space: strides,
    /// offsets, negative strides, constants, replication, 2-D grids.
    #[test]
    fn rich_plan_matches_oracle(
        src in rich_mapping_strategy(9, 7),
        dst in rich_mapping_strategy(9, 7),
    ) {
        let plan = plan_redistribution(&src, &dst, 8);
        let oracle = plan_by_enumeration(&src, &dst, 8);
        prop_assert_eq!(plan, oracle);
    }

    /// Conservation over the full mapping space: every element is
    /// delivered exactly once per destination replica
    /// (`local + remote == n × replicas`).
    #[test]
    fn rich_plan_conserves_elements(
        src in rich_mapping_strategy(9, 7),
        dst in rich_mapping_strategy(9, 7),
    ) {
        let plan = plan_redistribution(&src, &dst, 8);
        let replicas: u64 = dst
            .axes
            .iter()
            .enumerate()
            .filter(|(_, ax)| matches!(ax.source, hpfc_mapping::DimSource::Replicated))
            .map(|(axis, _)| dst.grid_shape.extent(axis))
            .product();
        let n = src.array_extents.volume();
        prop_assert_eq!(plan.local_elements + plan.remote_elements(), n * replicas);
    }

    /// The block-level copy engine preserves contents over the full
    /// mapping space (strided alignments, replication, 2-D grids).
    #[test]
    fn rich_data_movement_preserves_values(
        src in rich_mapping_strategy(6, 5),
        dst in rich_mapping_strategy(6, 5),
    ) {
        let mut a = VersionData::new(src, 8);
        a.fill(|p| (p[0] * 31 + p[1] * 7 + 1) as f64);
        let mut b = VersionData::new(dst, 8);
        b.copy_values_from(&a);
        prop_assert_eq!(a.to_dense(), b.to_dense());
    }

    /// The run-level dense extraction equals the per-point `get` path
    /// (the old O(n · log) implementation) over the full mapping space.
    #[test]
    fn rich_to_dense_matches_per_point_get(src in rich_mapping_strategy(6, 5)) {
        let mut a = VersionData::new(src, 8);
        a.fill(|p| (p[0] * 13 + p[1] * 3 + 2) as f64);
        let dense = a.to_dense();
        let per_point: Vec<f64> =
            a.mapping.array_extents.points().map(|p| a.get(&p)).collect();
        prop_assert_eq!(dense, per_point);
    }

    /// The compiled copy program agrees with every other engine over
    /// the full mapping space: serial replay == parallel replay ==
    /// descriptor-table engine == the per-point oracle (element-by-
    /// element reads through the canonical owner). Also pins the
    /// volume invariant: the program delivers exactly the planned
    /// `local + remote` element count.
    #[test]
    fn rich_program_replay_matches_tables_and_per_point_oracle(
        src in rich_mapping_strategy(6, 5),
        dst in rich_mapping_strategy(6, 5),
    ) {
        let plan = plan_redistribution(&src, &dst, 8);
        let schedule = CommSchedule::from_plan(&plan);
        let program = CopyProgram::try_compile(&plan, &schedule)
            .expect("rank >= 1 plans always compile");
        prop_assert_eq!(
            program.n_elements(),
            plan.local_elements + plan.remote_elements(),
            "program delivers exactly the planned volume"
        );
        let mut a = VersionData::new(src, 8);
        a.fill(|p| (p[0] * 31 + p[1] * 7 + 1) as f64);
        // Serial replay.
        let mut serial = VersionData::new(dst, 8);
        serial.copy_values_from_program(&a, &program, ExecMode::Serial);
        // Parallel replay (3 workers: uneven chunking on purpose).
        let mut parallel = VersionData::new(serial.mapping.clone(), 8);
        parallel.copy_values_from_program(&a, &program, ExecMode::Parallel(3));
        // Descriptor-table engine.
        let mut tables = VersionData::new(serial.mapping.clone(), 8);
        tables.copy_values_from_plan(&a, &plan);
        // Per-point oracle: read every element through the canonical
        // owner, write it to every destination replica.
        let mut oracle = VersionData::new(serial.mapping.clone(), 8);
        let extents = a.mapping.array_extents.clone();
        for p in extents.points() {
            oracle.set(&p, a.get(&p));
        }
        prop_assert_eq!(&serial, &parallel);
        prop_assert_eq!(&serial, &tables);
        prop_assert_eq!(&serial, &oracle);
    }

    /// The program's structural invariant behind lock-free parallel
    /// execution: within any round (including the local group), no two
    /// units share a receiver block, and remote units correspond
    /// one-to-one to the schedule's messages.
    #[test]
    fn rich_program_rounds_have_disjoint_receivers(
        src in rich_mapping_strategy(9, 7),
        dst in rich_mapping_strategy(9, 7),
    ) {
        let plan = plan_redistribution(&src, &dst, 8);
        let schedule = CommSchedule::from_plan(&plan);
        let program = CopyProgram::try_compile(&plan, &schedule)
            .expect("rank >= 1 plans always compile");
        for round in program.rounds.iter().chain(std::iter::once(&program.local)) {
            let receivers: std::collections::BTreeSet<u64> =
                round.iter().map(|u| u.receiver).collect();
            prop_assert_eq!(receivers.len(), round.len(),
                "two units in one round share a receiver block");
        }
        let n_remote: usize = program.rounds.iter().map(Vec::len).sum();
        prop_assert_eq!(n_remote, schedule.messages.len());
    }

    /// The message-level schedule agrees with its plan message for
    /// message (pairs, element counts, descriptor products) and its
    /// caterpillar rounds partition the messages contention-free.
    #[test]
    fn rich_schedule_matches_plan(
        src in rich_mapping_strategy(9, 7),
        dst in rich_mapping_strategy(9, 7),
    ) {
        let plan = plan_redistribution(&src, &dst, 8);
        let s = CommSchedule::from_plan(&plan);
        prop_assert_eq!(s.messages.len() as u64, plan.total_messages());
        for (m, t) in s.messages.iter().zip(&plan.transfers) {
            prop_assert_eq!((m.from, m.to, m.elements), (t.from, t.to, t.elements));
            prop_assert_eq!(m.dims.iter().map(MsgDim::count).product::<u64>(), m.elements);
        }
        // Rounds: every message exactly once, at most one partner per
        // rank per round.
        let mut seen = vec![false; s.messages.len()];
        for round in &s.rounds {
            let mut partner = std::collections::BTreeMap::new();
            for &i in round {
                prop_assert!(!seen[i]);
                seen[i] = true;
                let m = &s.messages[i];
                for (me, other) in [(m.from, m.to), (m.to, m.from)] {
                    let p = partner.entry(me).or_insert(other);
                    prop_assert_eq!(*p, other);
                }
            }
        }
        prop_assert!(seen.iter().all(|&x| x));
        // Costing the schedule books exactly the plan's traffic.
        let mut m = Machine::new(16);
        m.account_schedule(&s);
        prop_assert_eq!(m.stats.bytes, plan.total_bytes());
        prop_assert_eq!(m.stats.messages, plan.total_messages());
        prop_assert_eq!(m.stats.local_elements, plan.local_elements);
    }
}

/// A deterministic sweep used as a regression anchor: BLOCK→CYCLIC over
/// increasing P moves a growing fraction of the array.
#[test]
fn block_to_cyclic_volume_grows_with_p() {
    let n = 64u64;
    let mut last_remote = 0u64;
    for p in [2u64, 4, 8] {
        let t = Template { id: TemplateId(0), name: "T".into(), shape: Extents::new(&[n]) };
        let g = ProcGrid { id: GridId(0), name: "P".into(), shape: Extents::new(&[p]) };
        let e = Extents::new(&[n]);
        let mk = |fmt| {
            Mapping {
                align: Alignment::identity(TemplateId(0), 1),
                dist: Distribution::new(GridId(0), vec![fmt]),
            }
            .normalize(&e, &t, &g)
            .unwrap()
        };
        let plan = plan_redistribution(&mk(DimFormat::Block(None)), &mk(DimFormat::Cyclic(None)), 8);
        // Remote fraction (P-1)/P of the array.
        assert_eq!(plan.remote_elements(), n * (p - 1) / p);
        assert!(plan.remote_elements() > last_remote);
        last_remote = plan.remote_elements();
    }
}

/// Replicated alignments also roundtrip through the planner.
#[test]
fn replicate_axis_roundtrip() {
    let t = Template { id: TemplateId(0), name: "T".into(), shape: Extents::new(&[8, 4]) };
    let g = ProcGrid { id: GridId(0), name: "P".into(), shape: Extents::new(&[2, 2]) };
    let e = Extents::new(&[8]);
    let repl = Mapping {
        align: Alignment {
            template: TemplateId(0),
            targets: vec![AlignTarget::identity(0), AlignTarget::Replicate],
        },
        dist: Distribution::new(GridId(0), vec![DimFormat::Block(None), DimFormat::Block(None)]),
    }
    .normalize(&e, &t, &g)
    .unwrap();
    let pinned = Mapping {
        align: Alignment {
            template: TemplateId(0),
            targets: vec![AlignTarget::identity(0), AlignTarget::Constant(3)],
        },
        dist: Distribution::new(GridId(0), vec![DimFormat::Block(None), DimFormat::Block(None)]),
    }
    .normalize(&e, &t, &g)
    .unwrap();
    for (s, d) in [(&repl, &pinned), (&pinned, &repl)] {
        let plan = plan_redistribution(s, d, 8);
        let oracle = plan_by_enumeration(s, d, 8);
        assert_eq!(plan, oracle);
    }
}
