//! Differential conformance harness for symbolic plans (`HPFC_SYMBOLIC`).
//!
//! The symbolic layer's whole contract is *identity*: an artifact
//! materialized by [`SymbolicPlan::instantiate`] must be byte-for-byte
//! the artifact direct compilation (`plan_redistribution` → caterpillar
//! schedule → stride-encoded program) produces at the same processor
//! count. This file pins that differentially — plan-for-plan,
//! schedule-for-schedule, program-fingerprint-for-fingerprint — for
//! every format family × P ∈ {2, 3, 4, 7, 8, 16, 64}, replays the
//! instantiated programs under both engines against a per-point value
//! oracle, and pins the economics: a fleet re-provisioned from P = 16
//! to P = 64 re-launches with `plans_computed == 0` while the registry
//! holds O(format pairs) entries. CI runs this file under
//! `HPFC_THREADS` ∈ {1, 4} × `HPFC_SYMBOLIC` ∈ {on, off}; the machines
//! here pin the keying scheme explicitly (`with_symbolic`), so the
//! pins hold regardless of the ambient scheme.

use std::collections::BTreeSet;
use std::sync::Arc;

use hpfc_mapping::{format_pair, normalize_symbolic, DimFormat, NormalizedMapping};
use hpfc_runtime::{
    plan_redistribution, ArrayRt, ExecMode, Machine, NetStats, PlanRegistry, PlannedRemap,
    SymbolicPlan, VersionData,
};

/// The conformance grid of processor counts: small primes, powers of
/// two, composites, and the P = 16 → 64 re-provisioning endpoints.
const PS: [u64; 7] = [2, 3, 4, 7, 8, 16, 64];

/// Array/template extent: 2^5 · 3^2 · 7, so every P in [`PS`] leaves a
/// different mix of full and ragged blocks.
const N: u64 = 2016;

fn mk1d(n: u64, p: u64, fmt: DimFormat) -> NormalizedMapping {
    hpfc_mapping::testing::mapping_1d(n, p, fmt)
}

/// The format families under test. `BLOCK` (no explicit size) derives
/// its block from P, so it participates in the per-P differential but
/// is legitimately a *distinct* symbolic format at each P; the
/// fixed-block families are P-free and drive the cross-P tests.
fn families() -> Vec<(DimFormat, DimFormat)> {
    vec![
        (DimFormat::Cyclic(None), DimFormat::Cyclic(Some(3))),
        (DimFormat::Cyclic(Some(3)), DimFormat::Cyclic(None)),
        (DimFormat::Block(None), DimFormat::Cyclic(Some(5))),
        (DimFormat::Cyclic(Some(7)), DimFormat::Block(None)),
        (DimFormat::Cyclic(Some(2)), DimFormat::Cyclic(Some(16))),
    ]
}

/// Compile `(src, dst)` directly — the reference side of every
/// differential below.
fn direct(src: &NormalizedMapping, dst: &NormalizedMapping) -> PlannedRemap {
    PlannedRemap::compile(plan_redistribution(src, dst, 8))
}

/// Assert artifact identity between a symbolic instantiation and the
/// direct compilation, component by component so a divergence names
/// the layer that broke.
fn assert_identical(inst: &PlannedRemap, want: &PlannedRemap, ctx: &str) {
    assert_eq!(inst.plan, want.plan, "{ctx}: plan diverged");
    assert_eq!(inst.schedule, want.schedule, "{ctx}: schedule diverged");
    assert_eq!(
        inst.program.as_ref().map(|p| p.fingerprint),
        want.program.as_ref().map(|p| p.fingerprint),
        "{ctx}: program fingerprint diverged"
    );
    assert_eq!(inst.program, want.program, "{ctx}: compiled program diverged");
}

/// Every family × every P: extract the symbolic formats at that P,
/// instantiate, and the artifact must equal direct compilation exactly;
/// its program must also move real data correctly under both engines.
#[test]
fn instantiation_is_identical_to_direct_compilation_at_every_p() {
    for (fs, fd) in families() {
        for p in PS {
            let ctx = format!("{fs:?}->{fd:?} at P={p}");
            let src = mk1d(N, p, fs);
            let dst = mk1d(N, p, fd);
            let (sf, ps) = normalize_symbolic(&src).expect("family is symbolic");
            let (df, pd) = normalize_symbolic(&dst).expect("family is symbolic");
            assert_eq!((ps, pd), (p, p), "{ctx}: extracted P");
            let sym = SymbolicPlan::new(format_pair(sf, df), 8);
            let (inst, fresh) = sym.instantiate_planned(p, p, N).expect("realizable");
            assert!(fresh, "{ctx}: first instantiation materializes");
            assert_identical(&inst, &direct(&src, &dst), &ctx);

            // Per-point value oracle: replay the instantiated program
            // under both engines; every element must land where direct
            // normalization says it lives, with its exact value.
            let prog = inst.program.as_ref().expect("1-D block-cyclic compiles");
            for mode in [ExecMode::Serial, ExecMode::Parallel(4)] {
                let mut a = VersionData::new(src.clone(), 8);
                a.fill(|pt| (5 * pt[0] + 1) as f64);
                let mut b = VersionData::new(dst.clone(), 8);
                b.copy_values_from_program(&a, prog, mode);
                let dense = b.to_dense();
                for (i, got) in dense.iter().enumerate() {
                    assert_eq!(
                        *got,
                        (5 * i as u64 + 1) as f64,
                        "{ctx} ({mode:?}): element {i} diverged from the oracle"
                    );
                }
            }
        }
    }
}

/// The symbolic win itself: ONE parametric plan, extracted once at
/// P = 4, serves every processor count — including mixed
/// `p_src != p_dst` points — identically to direct compilation, and
/// the formats extracted at any other P are the *same* formats (the
/// registry key really is P-free). Fixed-block families only: `BLOCK`
/// derives its block size from P and legitimately keys per P.
#[test]
fn one_parametric_plan_serves_every_p() {
    let p_free: Vec<(DimFormat, DimFormat)> = families()
        .into_iter()
        .filter(|(a, b)| {
            !matches!(a, DimFormat::Block(None)) && !matches!(b, DimFormat::Block(None))
        })
        .collect();
    assert!(p_free.len() >= 3, "enough P-free families to be meaningful");
    for (fs, fd) in p_free {
        let ctx = format!("{fs:?}->{fd:?}");
        let (sf, _) = normalize_symbolic(&mk1d(N, 4, fs)).unwrap();
        let (df, _) = normalize_symbolic(&mk1d(N, 4, fd)).unwrap();
        let sym = SymbolicPlan::new(format_pair(sf, df), 8);
        for p in PS {
            let (inst, _) = sym.instantiate_planned(p, p, N).expect("realizable");
            assert_identical(
                &inst,
                &direct(&mk1d(N, p, fs), &mk1d(N, p, fd)),
                &format!("{ctx} instantiated from P=4 at P={p}"),
            );
            // P-free means P-free: re-extracting at this P yields the
            // very formats the plan was built from.
            assert_eq!(normalize_symbolic(&mk1d(N, p, fs)).unwrap().0, sf, "{ctx} at P={p}");
            assert_eq!(normalize_symbolic(&mk1d(N, p, fd)).unwrap().0, df, "{ctx} at P={p}");
        }
        // Mixed instantiation points: source and destination grids of
        // different sizes, still one parametric plan.
        for (p_src, p_dst) in [(3u64, 7u64), (16, 64), (64, 2)] {
            let (inst, _) = sym.instantiate_planned(p_src, p_dst, N).expect("realizable");
            assert_identical(
                &inst,
                &direct(&mk1d(N, p_src, fs), &mk1d(N, p_dst, fd)),
                &format!("{ctx} at P {p_src}->{p_dst}"),
            );
        }
        assert_eq!(sym.instances(), PS.len() + 3, "each point cached exactly once");
    }
}

/// One fleet member: a fresh array on a fresh machine wired to the
/// shared registry (symbolic keying pinned on), bounced `bounces`
/// times with a write after every hop and checked against a per-point
/// shadow oracle. Returns the session stats for merging.
fn fleet_member(
    registry: &Arc<PlanRegistry>,
    src: &NormalizedMapping,
    dst: &NormalizedMapping,
    p: u64,
    bounces: u32,
) -> NetStats {
    let n = src.array_extents.volume();
    let mut machine = Machine::new(p).with_registry(Arc::clone(registry)).with_symbolic(true);
    let mut rt = ArrayRt::new("a", vec![src.clone(), dst.clone()], 8);
    rt.current(&mut machine, 0).fill(|pt| (3 * pt[0] + 11) as f64);
    let mut shadow: Vec<f64> = (0..n).map(|i| (3 * i + 11) as f64).collect();
    let keep: BTreeSet<u32> = [0u32, 1].into_iter().collect();
    for b in 0..bounces {
        rt.remap(&mut machine, 1 - (b % 2), &keep, false);
        let touched = (13 * b as u64 + 5) % n;
        rt.set(&[touched], 9000.0 + b as f64);
        shadow[touched as usize] = 9000.0 + b as f64;
    }
    for (i, want) in shadow.iter().enumerate() {
        assert_eq!(rt.get(&[i as u64]), *want, "P={p}: element {i} diverged from the oracle");
    }
    machine.stats
}

/// The re-provisioning pin (ISSUE acceptance criterion): a fleet of
/// arrays remapped at P = 16 registers one symbolic entry per format
/// pair; re-launching the same fleet at P = 64 computes **zero** plans
/// — every consultation is a registry hit on a format-pair key, and
/// the new processor count costs exactly one cheap instantiation per
/// pair (`symbolic_instantiations`), not a recompile. The registry
/// stays at O(format pairs) entries throughout.
#[test]
fn re_provisioning_p16_to_p64_computes_zero_plans() {
    let registry = Arc::new(PlanRegistry::new(4, 1024));
    // Two P-free families; each bounce direction is its own format
    // pair, so the fleet spans 4 distinct format pairs.
    let fams =
        [(DimFormat::Cyclic(None), DimFormat::Cyclic(Some(3))),
         (DimFormat::Cyclic(Some(5)), DimFormat::Cyclic(None))];
    const ARRAYS_PER_FAMILY: usize = 2;
    const PAIRS: usize = 4; // 2 families × 2 directions
    let launch = |p: u64| -> NetStats {
        let mut total = NetStats::default();
        for (fs, fd) in fams {
            for _ in 0..ARRAYS_PER_FAMILY {
                total.merge(&fleet_member(
                    &registry,
                    &mk1d(N, p, fs),
                    &mk1d(N, p, fd),
                    p,
                    4,
                ));
            }
        }
        total
    };

    // First launch, P = 16: one compile per distinct format pair, ever;
    // the second array of each family is served outright.
    let first = launch(16);
    let consultations = (2 * ARRAYS_PER_FAMILY * 2) as u64; // arrays × directions
    assert_eq!(first.plans_computed, PAIRS as u64, "{first:?}");
    assert_eq!(first.registry_misses, PAIRS as u64, "{first:?}");
    assert_eq!(first.registry_hits, consultations - PAIRS as u64, "{first:?}");
    assert_eq!(first.symbolic_instantiations, 0, "first launch compiles, never cross-P");
    assert_eq!(first.symbolic_declines, 0, "every family is symbolic");
    assert_eq!(
        (registry.len(), registry.sym_len()),
        (0, PAIRS),
        "symbolic keys only, O(format pairs)"
    );

    // Re-provision to P = 64: zero plans computed — each format pair is
    // a registry hit that instantiates once at the new P.
    let second = launch(64);
    assert_eq!(second.plans_computed, 0, "re-provisioning never replans: {second:?}");
    assert_eq!(second.registry_misses, 0, "{second:?}");
    assert_eq!(second.registry_hits, consultations, "{second:?}");
    assert_eq!(
        second.symbolic_instantiations, PAIRS as u64,
        "one cheap instantiation per format pair at the new P: {second:?}"
    );
    assert_eq!(second.symbolic_declines, 0, "{second:?}");
    assert_eq!(
        (registry.len(), registry.sym_len()),
        (0, PAIRS),
        "the registry did NOT grow with the new P"
    );
    assert_eq!(registry.sym_instances(), 2 * PAIRS, "two instantiation points per pair");
}

/// Shapes the symbolic normalizer declines stay on the concrete keys,
/// with exact decline accounting: `BLOCK(128)` over 96 cells is
/// single-owner, canonicalized to `FixedCoord` by the concrete
/// normalizer — not symbolizable. The first session declines once per
/// direction and compiles concretely; a second session is served by
/// the concrete-table probe *before* the symbolic layer is consulted,
/// so it declines nothing.
#[test]
fn non_symbolic_shapes_fall_back_to_concrete_keys() {
    let registry = Arc::new(PlanRegistry::new(4, 1024));
    let src = mk1d(96, 4, DimFormat::Block(Some(128))); // single owner -> FixedCoord
    let dst = mk1d(96, 4, DimFormat::Cyclic(None));
    assert!(normalize_symbolic(&src).is_none(), "precondition: the shape declines");
    assert!(normalize_symbolic(&dst).is_some(), "one symbolic side is not enough");

    let s1 = fleet_member(&registry, &src, &dst, 4, 4);
    assert_eq!(s1.symbolic_declines, 2, "one decline per direction: {s1:?}");
    assert_eq!(s1.plans_computed, 2, "{s1:?}");
    assert_eq!((s1.registry_misses, s1.registry_hits), (2, 0), "{s1:?}");
    assert_eq!(
        (registry.len(), registry.sym_len()),
        (2, 0),
        "declined pairs live under concrete keys"
    );

    let s2 = fleet_member(&registry, &src, &dst, 4, 4);
    assert_eq!(s2.plans_computed, 0, "{s2:?}");
    assert_eq!((s2.registry_misses, s2.registry_hits), (0, 2), "{s2:?}");
    assert_eq!(
        s2.symbolic_declines, 0,
        "the concrete probe serves registered pairs before the symbolic layer: {s2:?}"
    );
}
