//! The table-engine fallback for plans a [`CopyProgram`] declines:
//! rank-0 scalars and `u32` position overflow. These used to be silent
//! `None`s inside the compiler; this pins the typed decline reasons
//! ([`CompileDecline`]), the `program: None` cached form, and the
//! runtime behavior — a remap of such an array goes through
//! `copy_values_from_plan` and is counted in
//! `NetStats::fallbacks_to_tables`, on both the unguarded fast path
//! and the guarded (validated) path.

use std::collections::BTreeSet;

use hpfc_mapping::{
    AlignTarget, Alignment, DimFormat, Distribution, Extents, GridId, Mapping, NormalizedMapping,
    ProcGrid, Template, TemplateId,
};
use hpfc_runtime::{
    plan_redistribution, ArrayRt, CommSchedule, CompileDecline, CopyProgram, ExecMode, Machine,
    PlannedRemap, ValidationLevel,
};

/// A rank-0 scalar pinned to template cell `c` of a 1-D template over
/// `p` processors — different cells land on different owners, so a
/// remap between two such mappings really moves the value.
fn scalar_at(c: i64, p: u64) -> NormalizedMapping {
    let t = Template { id: TemplateId(0), name: "T".into(), shape: Extents::new(&[8]) };
    let g = ProcGrid { id: GridId(0), name: "P".into(), shape: Extents::new(&[p]) };
    Mapping {
        align: Alignment { template: TemplateId(0), targets: vec![AlignTarget::Constant(c)] },
        dist: Distribution::new(GridId(0), vec![DimFormat::Block(None)]),
    }
    .normalize(&Extents::new(&[]), &t, &g)
    .expect("rank-0 mapping is well-formed")
}

#[test]
fn rank0_scalar_declines_compilation_with_typed_reason() {
    let src = scalar_at(0, 4);
    let dst = scalar_at(7, 4);
    let plan = plan_redistribution(&src, &dst, 8);
    let schedule = CommSchedule::from_plan(&plan);
    assert_eq!(CopyProgram::compile_checked(&plan, &schedule), Err(CompileDecline::Rank0));
    assert!(CopyProgram::try_compile(&plan, &schedule).is_none());
    // The cached form carries the plan but no program.
    let planned = PlannedRemap::compile(plan);
    assert!(planned.program.is_none(), "rank-0 plans cache without a program");
}

#[test]
fn rank0_remap_moves_data_through_the_table_engine() {
    // Block(8) on a template of 8 cells puts cell 0 on proc 0 and cell
    // 7 on proc 3: the scalar really travels.
    let keep: BTreeSet<u32> = [0u32, 1].into_iter().collect();
    for validation in [ValidationLevel::Off, ValidationLevel::Counts, ValidationLevel::Checksums]
    {
        let mut machine =
            Machine::new(4).with_exec_mode(ExecMode::Serial).with_validation(validation);
        let mut rt = ArrayRt::new("s", vec![scalar_at(0, 4), scalar_at(7, 4)], 8);
        rt.current(&mut machine, 0).fill(|_| 42.0);
        // Bounce a few times; every data-moving remap is a table
        // fallback (there is no program to replay), on the fast path
        // (`Off`) and the guarded path (`Counts`/`Checksums`) alike.
        rt.remap(&mut machine, 1, &keep, false);
        assert_eq!(rt.get(&[]), 42.0, "value survived the hop ({validation:?})");
        rt.set(&[], 7.0);
        rt.remap(&mut machine, 0, &keep, false);
        assert_eq!(rt.get(&[]), 7.0, "value survived the hop back ({validation:?})");
        assert_eq!(machine.stats.fallbacks_to_tables, 2, "every move fell back ({validation:?})");
        assert_eq!(machine.stats.remaps_performed, 2);
        // The fallback is a planned degradation, not an injected fault.
        assert_eq!(machine.stats.faults_injected, 0);
        assert_eq!(machine.stats.rounds_retried, 0);
        assert_eq!(machine.stats.programs_recompiled, 0);
    }
}

#[test]
fn u32_position_overflow_declines_compilation() {
    // 6 Gi elements in ONE block (p = 1): local copy positions exceed
    // `u32::MAX`, so the compiler declines and the cached plan carries
    // no program — the table engine's `u64` arithmetic is the fallback.
    // Descriptor planning is closed-form, so nothing here allocates
    // 6 Gi of data.
    let n = 6u64 << 30;
    let t = Template { id: TemplateId(0), name: "T".into(), shape: Extents::new(&[n]) };
    let g = ProcGrid { id: GridId(0), name: "P".into(), shape: Extents::new(&[1]) };
    let mk = |fmt| {
        Mapping {
            align: Alignment::identity(TemplateId(0), 1),
            dist: Distribution::new(GridId(0), vec![fmt]),
        }
        .normalize(&Extents::new(&[n]), &t, &g)
        .expect("well-formed giant mapping")
    };
    let src = mk(DimFormat::Block(None));
    let dst = mk(DimFormat::Cyclic(Some(3)));
    let plan = plan_redistribution(&src, &dst, 8);
    let schedule = CommSchedule::from_plan(&plan);
    assert_eq!(
        CopyProgram::compile_checked(&plan, &schedule),
        Err(CompileDecline::PositionOverflow)
    );
    assert!(CopyProgram::try_compile(&plan, &schedule).is_none());
    assert!(PlannedRemap::compile(plan).program.is_none());
}

#[test]
fn small_blocks_still_compile() {
    // Control: the same shapes at a sane size compile fine — the
    // declines above are about the *reasons*, not a blanket refusal.
    let src = hpfc_mapping::testing::mapping_1d(64, 4, DimFormat::Block(None));
    let dst = hpfc_mapping::testing::mapping_1d(64, 4, DimFormat::Cyclic(Some(3)));
    let plan = plan_redistribution(&src, &dst, 8);
    let schedule = CommSchedule::from_plan(&plan);
    assert!(CopyProgram::compile_checked(&plan, &schedule).is_ok());
}
