//! Interpreter-level tests: language execution semantics on the
//! simulated machine, independent of the remapping machinery.

use hpfc::{compile_and_run, CompileOptions, ExecConfig};

fn run(src: &str, scalars: &[(&str, f64)]) -> hpfc::ExecResult {
    let mut cfg = ExecConfig::default();
    for (k, v) in scalars {
        cfg = cfg.with_scalar(k, *v);
    }
    compile_and_run(src, &CompileOptions::default(), cfg).expect("compile+run").1
}

#[test]
fn whole_array_assignment_is_elementwise() {
    let r = run(
        "subroutine s\nreal :: a(8), b(8)\n!hpf$ processors p(4)\n\
         !hpf$ distribute a(block) onto p\n!hpf$ align with a :: b\n\
         a = 3.0\nb = a * 2.0 + 1.0\nend",
        &[],
    );
    assert!(r.arrays["b"].iter().all(|&v| v == 7.0));
}

#[test]
fn fortran_array_expression_semantics_rhs_before_write() {
    // a = a(reversed-ish self reference): rhs must be fully evaluated
    // before any element is written. With a shift expression a(i) uses
    // a(i) only, so use an elementwise self-reference with a twist:
    // b = a + first element of a (whole-array + element mix).
    let r = run(
        "subroutine s\nreal :: a(4)\n!hpf$ processors p(2)\n\
         !hpf$ distribute a(block) onto p\n\
         do i = 1, 4\n  a(i) = i\nenddo\n\
         a = a + a(1)\nend",
        &[],
    );
    // a(1) on the rhs is the OLD a(1) = 1 for every element, including
    // the first: [2, 3, 4, 5].
    assert_eq!(r.arrays["a"], vec![2.0, 3.0, 4.0, 5.0]);
}

#[test]
fn do_loop_with_step_and_bounds() {
    let r = run(
        "subroutine s\nreal :: a(10)\n!hpf$ processors p(2)\n\
         !hpf$ distribute a(block) onto p\na = 0.0\n\
         do i = 1, 10, 3\n  a(i) = 1.0\nenddo\nend",
        &[],
    );
    let ones: Vec<usize> =
        r.arrays["a"].iter().enumerate().filter(|(_, &v)| v == 1.0).map(|(i, _)| i).collect();
    assert_eq!(ones, vec![0, 3, 6, 9]);
}

#[test]
fn zero_trip_and_negative_step_loops() {
    let r = run(
        "subroutine s(t)\ninteger :: t\nreal :: a(4)\n!hpf$ processors p(2)\n\
         !hpf$ distribute a(block) onto p\na = 0.0\n\
         do i = 1, t\n  a(i) = 9.0\nenddo\n\
         do j = 4, 3, -1\n  a(j) = a(j) + 1.0\nenddo\nend",
        &[("t", 0.0)],
    );
    // First loop never runs; second runs j = 4, 3.
    assert_eq!(r.arrays["a"], vec![0.0, 0.0, 1.0, 1.0]);
}

#[test]
fn nested_conditionals_and_scalars() {
    let r = run(
        "subroutine s(v)\nreal :: a(4)\n!hpf$ processors p(2)\n\
         !hpf$ distribute a(block) onto p\n\
         if (v > 2.0) then\n  if (v > 4.0) then\n    x = 2.0\n  else\n    x = 1.0\n  endif\n\
         else\n  x = 0.0\nendif\na = x\nend",
        &[("v", 3.0)],
    );
    assert!(r.arrays["a"].iter().all(|&v| v == 1.0));
    assert_eq!(r.scalars["x"], 1.0);
}

#[test]
fn early_return_still_restores_dummies() {
    // The inout dummy must be restored to its declared mapping even on
    // the RETURN path (the exit block always runs).
    let src = "subroutine s(a, flag)\nreal :: a(8)\nintent(inout) :: a\n\
               !hpf$ processors p(4)\n!hpf$ dynamic a\n!hpf$ distribute a(block) onto p\n\
               a = 5.0\n!hpf$ redistribute a(cyclic)\na = 6.0\n\
               if (flag > 0.0) then\n  return\nendif\na = 7.0\nend";
    let taken = run(src, &[("flag", 1.0)]);
    assert!(taken.arrays["a"].iter().all(|&v| v == 6.0));
    // The exit restore moved the data back to the block mapping.
    assert!(taken.stats.remaps_performed >= 1);
    let not_taken = run(src, &[("flag", -1.0)]);
    assert!(not_taken.arrays["a"].iter().all(|&v| v == 7.0));
}

#[test]
fn intrinsics_in_distributed_context() {
    let r = run(
        "subroutine s\nreal :: a(4)\n!hpf$ processors p(2)\n\
         !hpf$ distribute a(block) onto p\n\
         a = 9.0\na = sqrt(a) + abs(0.0 - 1.0) + max(0.0, min(2.0, 5.0))\nend",
        &[],
    );
    assert!(r.arrays["a"].iter().all(|&v| v == 6.0)); // 3 + 1 + 2
}

#[test]
fn two_level_calls_execute_on_shared_machine() {
    // caller → mid → leaf, each with its own mapping preference.
    let src = "\
subroutine top
  real :: v(16)
!hpf$ processors p(4)
!hpf$ dynamic v
!hpf$ distribute v(block) onto p
  interface
    subroutine mid(x)
      real :: x(16)
      intent(inout) :: x
!hpf$ distribute x(cyclic) onto p
    end subroutine
  end interface
  v = 1.0
  call mid(v)
  v = v + 1.0
end subroutine

subroutine mid(x)
  real :: x(16)
  intent(inout) :: x
!hpf$ processors p(4)
!hpf$ dynamic x
!hpf$ distribute x(cyclic) onto p
  interface
    subroutine leaf(y)
      real :: y(16)
      intent(inout) :: y
!hpf$ distribute y(cyclic(2)) onto p
    end subroutine
  end interface
  x = x * 10.0
  call leaf(x)
end subroutine

subroutine leaf(y)
  real :: y(16)
  intent(inout) :: y
!hpf$ processors p(4)
!hpf$ distribute y(cyclic(2)) onto p
  y = y + 0.5
end subroutine
";
    let r = run(src, &[]);
    // 1.0 * 10 + 0.5 + 1 = 11.5.
    assert!(r.arrays["v"].iter().all(|&v| v == 11.5), "{:?}", &r.arrays["v"][..4]);
    // Remapping happened at each boundary: block→cyclic (caller),
    // cyclic→cyclic(2) (mid→leaf), and the restores.
    assert!(r.stats.remaps_performed >= 3);
}

#[test]
fn out_intent_synthetic_callee_defines_values() {
    let src = "subroutine s\nreal :: b(8)\n!hpf$ processors p(4)\n!hpf$ dynamic b\n\
               !hpf$ distribute b(block) onto p\n\
               interface\n  subroutine gen(x)\n    real :: x(8)\n    intent(out) :: x\n\
               !hpf$ distribute x(cyclic) onto p\n  end subroutine\nend interface\n\
               call gen(b)\nx = b(1)\nend";
    let r = run(src, &[]);
    // The synthetic OUT effect writes the linear index.
    assert_eq!(r.arrays["b"], (0..8).map(|i| i as f64).collect::<Vec<_>>());
    // OUT means no inbound data movement for the dummy copy.
    assert_eq!(r.stats.remaps_dead_values, 0); // D is handled as no_data, not dead-values
}

#[test]
fn scalar_dummy_arguments_flow_into_callee() {
    let src = "\
subroutine top
  real :: v(8)
!hpf$ processors p(2)
!hpf$ distribute v(block) onto p
  interface
    subroutine fill(x, c)
      real :: x(8)
      intent(out) :: x
!hpf$ distribute x(block) onto p
    end subroutine
  end interface
  call fill(v, 4.5)
end subroutine

subroutine fill(x, c)
  real :: x(8)
  intent(out) :: x
!hpf$ processors p(2)
!hpf$ distribute x(block) onto p
  x = c
end subroutine
";
    let r = run(src, &[]);
    assert!(r.arrays["v"].iter().all(|&v| v == 4.5));
}

#[test]
fn lowered_programs_execute_with_zero_runtime_planning() {
    // A naive-mode remap loop: two data movements per iteration.
    // Lowering planned every (reaching source, target) pair at compile
    // time and the interpreter seeds the runtime plan cache from those
    // very Arcs, so executing the lowered program computes *zero* plans
    // at run time — every data-moving remap is a cache hit, and the
    // executed schedule is structurally the one codegen rendered.
    let t = 6.0;
    let mut cfg = ExecConfig::default();
    cfg = cfg.with_scalar("t", t);
    let r = compile_and_run(hpfc::figures::FIG16_LOOP, &CompileOptions::naive(), cfg)
        .expect("compile+run")
        .1;
    assert_eq!(r.stats.remaps_performed, 2 * t as u64);
    assert_eq!(r.stats.plans_computed, 0, "{:?}", r.stats);
    assert_eq!(r.stats.plan_cache_hits, 2 * t as u64, "{:?}", r.stats);
    // The compiled copy programs moved exactly the planned volume:
    // every remap's deliveries (local + remote) are counted in
    // bytes_moved, and every replayed run in runs_copied.
    assert_eq!(r.stats.bytes_moved, 2 * t as u64 * 16 * 8, "{:?}", r.stats);
    assert!(r.stats.runs_copied > 0, "{:?}", r.stats);
}

#[test]
fn remap_time_reflects_caterpillar_rounds() {
    // block -> cyclic over 4 procs is an all-to-all: 12 messages in 3
    // contention-free rounds. Each round bills one send + one recv per
    // processor, so the remap's time is at least 3 rounds' worth of
    // paired latencies — strictly more than a single message's time,
    // and exactly what the schedule (not one BSP max) predicts.
    let src = "subroutine s\nreal :: a(16)\n!hpf$ processors p(4)\n!hpf$ dynamic a\n\
               !hpf$ distribute a(block) onto p\na = 1.0\n\
               !hpf$ redistribute a(cyclic)\nx = a(1)\nend";
    let r = run(src, &[]);
    assert_eq!(r.stats.messages, 12);
    let cost = hpfc::CostModel::default();
    // 3 rounds × (send + recv latency + 2 × 8 bytes each way).
    let per_round = 2.0 * cost.latency_us + 2.0 * 8.0 / cost.bandwidth_bytes_per_us;
    assert!(
        (r.stats.time_us - 3.0 * per_round).abs() < 1e-9,
        "time {} != 3 rounds × {per_round}",
        r.stats.time_us
    );
}

/// Two arrays aligned to one dynamic template: the redistribution
/// remaps both at the same vertex (Fig. 3), so lowering must aggregate
/// them into one `RemapGroupOp` whose merged caterpillar schedule has
/// strictly fewer rounds than the two solo schedules combined.
const GROUPED_PAIR: &str = "\
subroutine grp(s)
  real :: a(16), b(16)
!hpf$ processors p(4)
!hpf$ template t(16)
!hpf$ dynamic t
!hpf$ align with t :: a, b
!hpf$ distribute t(block) onto p
  a = 1.0
  b = 2.0
!hpf$ redistribute t(cyclic) onto p
  x = a(1) + b(2)
end subroutine
";

fn first_group(body: &[hpfc::codegen::ir::SStmt]) -> Option<&hpfc::codegen::ir::RemapGroupOp> {
    body.iter().find_map(|s| match s {
        hpfc::codegen::ir::SStmt::RemapGroup(op) => Some(op),
        _ => None,
    })
}

#[test]
fn grouped_remap_time_reflects_merged_rounds() {
    // Each array's solo schedule is a 4-proc all-to-all: 12
    // one-element messages in 3 contention-free rounds — 2 × 3 = 6
    // solo rounds in total. Merged, the same-pair messages share
    // rounds and wire buffers: still 3 rounds, 12 wire messages of 2
    // elements each, and the run is billed exactly 3 rounds of paired
    // latencies + 16 bytes each way — half the solo-sum latency cost.
    let compiled = hpfc::compile(GROUPED_PAIR, &CompileOptions::naive()).unwrap();
    let p = &compiled.units["grp"].program;
    let op = first_group(&p.body).expect("the directive lowers to one remap group");
    assert_eq!(op.members.len(), 2, "both aligned arrays are members");
    assert_eq!(op.planned.schedule.n_rounds(), 3);
    assert_eq!(op.planned.solo_rounds(), 6, "solo sum");
    assert!(op.planned.schedule.n_rounds() < op.planned.solo_rounds());
    assert_eq!(op.planned.schedule.n_wire_messages(), 12);
    assert_eq!(op.planned.schedule.messages.len(), 24, "12 per member");

    let r = run_naive(GROUPED_PAIR, &[("s", 0.0)]);
    assert_eq!(r.stats.remap_groups_coalesced, 1, "{:?}", r.stats);
    assert_eq!(r.stats.remaps_performed, 2, "each member still counts");
    assert_eq!(r.stats.messages, 12, "coalesced wire messages, not 24");
    assert_eq!(r.stats.bytes, 24 * 8, "both arrays' bytes travel");
    assert_eq!(r.stats.plans_computed, 0, "{:?}", r.stats);
    let cost = hpfc::CostModel::default();
    // 3 merged rounds x (send + recv latency + 2 x 16 coalesced bytes).
    let per_round = 2.0 * cost.latency_us + 2.0 * 16.0 / cost.bandwidth_bytes_per_us;
    assert!(
        (r.stats.time_us - 3.0 * per_round).abs() < 1e-9,
        "time {} != 3 merged rounds × {per_round}",
        r.stats.time_us
    );
    // The solo-sum baseline books the same traffic in twice the
    // rounds' latency: strictly slower in the model.
    let ungrouped = {
        let mut cfg = ExecConfig::default();
        cfg = cfg.with_scalar("s", 0.0);
        compile_and_run(GROUPED_PAIR, &CompileOptions::naive().ungrouped(), cfg)
            .expect("compile+run")
            .1
    };
    assert_eq!(ungrouped.stats.messages, 24);
    assert_eq!(ungrouped.stats.bytes, r.stats.bytes);
    assert!(ungrouped.stats.time_us > r.stats.time_us);
    assert_eq!(ungrouped.arrays, r.arrays, "grouping never changes values");
    // Values: both arrays arrive intact through the coalesced rounds.
    assert!(r.arrays["a"].iter().all(|&v| v == 1.0));
    assert!(r.arrays["b"].iter().all(|&v| v == 2.0));
}

/// A Fig. 15/18 program driven by a scalar so both restore arms are
/// reachable deterministically: CYCLIC initially, CYCLIC(2) on the
/// taken branch, BLOCK for the callee dummy — over 4 procs both
/// CYCLIC↔BLOCK legs are all-to-alls (12 single-element messages in 3
/// caterpillar rounds).
const RESTORE_DRIVEN: &str = "\
subroutine rest(s)
  real :: a(16)
!hpf$ processors p(4)
!hpf$ dynamic a
!hpf$ distribute a(cyclic) onto p
  interface
    subroutine foo(x)
      real :: x(16)
      intent(inout) :: x
!hpf$ distribute x(block) onto p
    end subroutine
  end interface
  a = 1.0
  if (s > 0.0) then
!hpf$ redistribute a(cyclic(2))
    a = 2.0
  endif
  call foo(a)
end subroutine
";

fn run_naive(src: &str, scalars: &[(&str, f64)]) -> hpfc::ExecResult {
    let mut cfg = ExecConfig::default();
    for (k, v) in scalars {
        cfg = cfg.with_scalar(k, *v);
    }
    compile_and_run(src, &CompileOptions::naive(), cfg).expect("compile+run").1
}

#[test]
fn restore_arm_time_reflects_caterpillar_rounds() {
    // Not-taken path: the saved tag is 0 (CYCLIC). The run performs
    // exactly two data movements — the ArgIn remap CYCLIC -> BLOCK and
    // the restore arm BLOCK -> CYCLIC — each a 4-proc all-to-all of 12
    // one-element messages in 3 contention-free rounds. Every round
    // bills one send + one recv latency plus 8 bytes each way per
    // processor, so the whole run costs exactly 6 rounds — the restore
    // arm's schedule is accounted round by round, same as any remap.
    let r = run_naive(RESTORE_DRIVEN, &[("s", -1.0)]);
    assert_eq!(r.stats.remaps_performed, 2, "{:?}", r.stats);
    assert_eq!(r.stats.restores_replayed, 1, "{:?}", r.stats);
    assert_eq!(r.stats.messages, 24);
    assert_eq!(r.stats.bytes, 24 * 8);
    let cost = hpfc::CostModel::default();
    let per_round = 2.0 * cost.latency_us + 2.0 * 8.0 / cost.bandwidth_bytes_per_us;
    assert!(
        (r.stats.time_us - 6.0 * per_round).abs() < 1e-9,
        "time {} != 6 rounds × {per_round}",
        r.stats.time_us
    );
    // And nothing was planned at run time: both legs replayed the
    // compile-time-planned programs seeded into the cache (the restore
    // arm was selected by the saved tag).
    assert_eq!(r.stats.plans_computed, 0, "{:?}", r.stats);
    assert_eq!(r.stats.plan_cache_hits, 2, "{:?}", r.stats);
    // 1.0 + the callee's INOUT increment, restored intact.
    assert!(r.arrays["a"].iter().all(|&v| v == 2.0), "{:?}", r.arrays["a"]);
}

#[test]
fn restore_program_never_plans_on_either_path() {
    // Acceptance pin: `plans_computed == 0` for a lowered program
    // containing a flow-dependent RestoreStatus, on both branch paths
    // (different saved tags select different compiled arms).
    for s in [1.0, -1.0] {
        let r = run_naive(RESTORE_DRIVEN, &[("s", s)]);
        assert_eq!(r.stats.plans_computed, 0, "s={s}: {:?}", r.stats);
        assert_eq!(r.stats.restores_replayed, 1, "s={s}");
        assert!(r.stats.plan_cache_hits >= 2, "s={s}: {:?}", r.stats);
        let want = if s > 0.0 { 3.0 } else { 2.0 };
        assert!(r.arrays["a"].iter().all(|&v| v == want), "s={s}: {:?}", r.arrays["a"]);
    }
}

#[test]
fn peak_memory_reflects_copies() {
    // Two live copies of a 1024-element array on 4 procs: ~2 × 2048 B
    // per processor at the peak.
    let src = "subroutine s\nreal :: a(1024)\n!hpf$ processors p(4)\n!hpf$ dynamic a\n\
               !hpf$ distribute a(block) onto p\na = 1.0\n\
               !hpf$ redistribute a(cyclic)\nx = a(1)\n!hpf$ redistribute a(block)\nx = a(2)\nend";
    let r = run(src, &[]);
    // 1024 els * 8 B / 4 procs = 2048 per copy; both copies coexist
    // during the remap.
    assert!(r.peak_mem_bytes >= 2 * 2048, "{}", r.peak_mem_bytes);
    assert!(r.peak_mem_bytes <= 3 * 2048, "{}", r.peak_mem_bytes);
}

#[test]
fn a_second_interpreter_session_is_served_entirely_by_the_registry() {
    // Two independent interpreter sessions over one compiled program,
    // sharing one (isolated) plan registry. Lowering precompiled every
    // planned copy, so neither session plans; the point here is the
    // *registry* books — session 1's frame seeding publishes each
    // distinct artifact once (misses), session 2's seeding finds every
    // pair already registered and runs on hits alone, producing
    // identical results from pointer-shared artifacts.
    use std::sync::Arc;
    let compiled =
        hpfc::compile(hpfc::figures::FIG16_LOOP, &CompileOptions::naive()).expect("compile");
    let programs = compiled.programs();
    let nprocs = programs.values().map(|p| p.nprocs).max().unwrap();
    let main = compiled.order[0].clone();
    let registry = Arc::new(hpfc::PlanRegistry::new(2, 64));
    let session = |reg: &Arc<hpfc::PlanRegistry>| {
        let mut ex = hpfc::Executor {
            programs: &programs,
            machine: hpfc::Machine::new(nprocs).with_registry(Arc::clone(reg)),
            config: ExecConfig::default().with_scalar("t", 6.0),
        };
        ex.run(&main).expect("run")
    };
    let r1 = session(&registry);
    assert_eq!(r1.stats.plans_computed, 0, "{:?}", r1.stats);
    assert!(r1.stats.registry_misses > 0, "session 1 publishes: {:?}", r1.stats);
    let published = r1.stats.registry_misses;

    let r2 = session(&registry);
    assert_eq!(r2.stats.plans_computed, 0, "{:?}", r2.stats);
    assert_eq!(r2.stats.registry_misses, 0, "everything was registered: {:?}", r2.stats);
    assert_eq!(r2.stats.registry_hits, published, "one hit per distinct artifact");
    assert_eq!(r1.arrays, r2.arrays, "registry-served sessions agree");
    assert_eq!(r1.stats.bytes, r2.stats.bytes);
}
