//! Interpreter: executes a lowered [`hpfc_codegen::StaticProgram`] on the simulated
//! distributed machine, driving the Sec. 5 runtime (status descriptors,
//! live flags, guarded copies) exactly as the generated code would.
//!
//! Scope note (see DESIGN.md): the paper's measurements are about
//! **remapping communication**; computational statements execute with
//! correct *values* but without modelling compute-side communication.
//! Every remapping, argument copy, status save/restore, liveness clean
//! and eviction goes through `hpfc-runtime` and is accounted exactly.
//!
//! Calls execute the callee's own static program when the source module
//! defines it (full interprocedural execution on the shared machine);
//! otherwise a deterministic synthetic effect per `INTENT` is applied
//! (IN: none; INOUT: `x := x + 1` elementwise; OUT: `x := linear
//! index`), so figure programs with interface-only callees still run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eval;
pub mod exec;

pub use exec::{execute, ExecConfig, ExecResult, Executor};
