//! Expression evaluation over scalars and distributed array versions.

use std::collections::BTreeMap;

use hpfc_lang::ast::{BinOp, Expr, UnOp};
use hpfc_mapping::ArrayId;
use hpfc_runtime::ArrayRt;

/// Evaluation context: scalar bindings, array runtimes, and an optional
/// current point for whole-array (elementwise) expressions.
pub struct EvalCtx<'a> {
    /// Scalar variables (loop indices included), 1-based Fortran values.
    pub scalars: &'a BTreeMap<String, f64>,
    /// Array runtimes by id.
    pub arrays: &'a [ArrayRt],
    /// name → array id.
    pub names: &'a BTreeMap<String, ArrayId>,
    /// The current point for elementwise evaluation (zero-based), if
    /// inside a whole-array assignment.
    pub point: Option<&'a [u64]>,
}

impl<'a> EvalCtx<'a> {
    /// Evaluate an expression to a number.
    pub fn eval(&self, e: &Expr) -> f64 {
        match e {
            Expr::Int(v, _) => *v as f64,
            Expr::Real(v, _) => *v,
            Expr::Var(n, _) => {
                if let Some(a) = self.names.get(n) {
                    // Whole-array reference: elementwise value at the
                    // current point.
                    let p = self
                        .point
                        .unwrap_or_else(|| panic!("whole-array `{n}` outside elementwise context"));
                    self.arrays[a.0 as usize].get(p)
                } else {
                    self.scalars.get(n).copied().unwrap_or(0.0)
                }
            }
            Expr::Ref { name, subs, .. } => {
                if let Some(a) = self.names.get(name) {
                    let point: Vec<u64> = subs
                        .iter()
                        .map(|s| {
                            let v = self.eval(s);
                            // Fortran subscripts are 1-based.
                            (v as i64 - 1).max(0) as u64
                        })
                        .collect();
                    self.arrays[a.0 as usize].get(&point)
                } else {
                    self.intrinsic(name, subs)
                }
            }
            Expr::Bin { op, l, r, .. } => {
                let (a, b) = (self.eval(l), self.eval(r));
                match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div => a / b,
                    BinOp::Pow => a.powf(b),
                    BinOp::Lt => bool_f(a < b),
                    BinOp::Gt => bool_f(a > b),
                    BinOp::Le => bool_f(a <= b),
                    BinOp::Ge => bool_f(a >= b),
                    BinOp::Eq => bool_f(a == b),
                    BinOp::Ne => bool_f(a != b),
                    BinOp::And => bool_f(a != 0.0 && b != 0.0),
                    BinOp::Or => bool_f(a != 0.0 || b != 0.0),
                }
            }
            Expr::Un { op, e, .. } => match op {
                UnOp::Neg => -self.eval(e),
                UnOp::Not => bool_f(self.eval(e) == 0.0),
            },
        }
    }

    fn intrinsic(&self, name: &str, args: &[Expr]) -> f64 {
        let v: Vec<f64> = args.iter().map(|a| self.eval(a)).collect();
        match (name, v.as_slice()) {
            ("sqrt", [x]) => x.sqrt(),
            ("abs", [x]) => x.abs(),
            ("sin", [x]) => x.sin(),
            ("cos", [x]) => x.cos(),
            ("exp", [x]) => x.exp(),
            ("real", [x]) => *x,
            ("mod", [x, y]) => x % y,
            ("min", rest) => rest.iter().copied().fold(f64::INFINITY, f64::min),
            ("max", rest) => rest.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            _ => panic!("unknown intrinsic `{name}`"),
        }
    }
}

fn bool_f(b: bool) -> f64 {
    if b {
        1.0
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpfc_lang::parser::parse_program;
    use hpfc_lang::ast::Stmt;

    fn expr_of(src: &str) -> Expr {
        let p = parse_program(&format!("subroutine s\nx = {src}\nend")).unwrap();
        match &p.routines[0].body[0] {
            Stmt::Assign { rhs, .. } => rhs.clone(),
            _ => unreachable!(),
        }
    }

    fn eval_scalar(src: &str, scalars: &[(&str, f64)]) -> f64 {
        let map: BTreeMap<String, f64> =
            scalars.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        let names = BTreeMap::new();
        let ctx = EvalCtx { scalars: &map, arrays: &[], names: &names, point: None };
        ctx.eval(&expr_of(src))
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(eval_scalar("1 + 2 * 3", &[]), 7.0);
        assert_eq!(eval_scalar("2 ** 3 ** 1", &[]), 8.0);
        assert_eq!(eval_scalar("-(4 - 6) / 2", &[]), 1.0);
    }

    #[test]
    fn comparisons_and_logic() {
        assert_eq!(eval_scalar("1 < 2 .and. 3 > 2", &[]), 1.0);
        assert_eq!(eval_scalar(".not. (1 == 1)", &[]), 0.0);
        assert_eq!(eval_scalar("2 /= 2 .or. 1 >= 1", &[]), 1.0);
    }

    #[test]
    fn scalar_lookup_with_default_zero() {
        assert_eq!(eval_scalar("t * 2", &[("t", 21.0)]), 42.0);
        assert_eq!(eval_scalar("unknown + 1", &[]), 1.0);
    }

    #[test]
    fn intrinsics() {
        assert_eq!(eval_scalar("sqrt(16.0)", &[]), 4.0);
        assert_eq!(eval_scalar("abs(-3.5)", &[]), 3.5);
        assert_eq!(eval_scalar("mod(7, 3)", &[]), 1.0);
        assert_eq!(eval_scalar("max(1, 5, 3)", &[]), 5.0);
        assert_eq!(eval_scalar("min(4, 2)", &[]), 2.0);
    }
}
