//! The executor: runs a static program frame-by-frame on the shared
//! simulated machine.

use std::collections::BTreeMap;

use hpfc_codegen::ir::{SStmt, StaticProgram};
use hpfc_lang::ast::{Expr, Intent};
use hpfc_mapping::ArrayId;
use hpfc_runtime::{ArrayRt, ExecError, Machine, NetStats};

use crate::eval::EvalCtx;

/// Execution options.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Scalar dummy-argument values for the top-level routine.
    pub scalar_args: BTreeMap<String, f64>,
    /// Ablation / E24: after every remapping, evict all live non-status
    /// copies (models permanent memory pressure — disables App. D reuse
    /// at run time).
    pub evict_live_copies: bool,
    /// Call recursion guard.
    pub max_depth: u32,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig { scalar_args: BTreeMap::new(), evict_live_copies: false, max_depth: 8 }
    }
}

impl ExecConfig {
    /// Set a scalar argument.
    pub fn with_scalar(mut self, name: &str, v: f64) -> Self {
        self.scalar_args.insert(name.to_string(), v);
        self
    }
}

/// The outcome of a run.
#[derive(Debug, Clone)]
pub struct ExecResult {
    /// Network statistics accumulated across the whole run (callees
    /// included).
    pub stats: NetStats,
    /// Largest per-processor memory high-water mark (bytes).
    pub peak_mem_bytes: u64,
    /// Final dense contents of every array of the top routine.
    pub arrays: BTreeMap<String, Vec<f64>>,
    /// Final scalar values of the top routine.
    pub scalars: BTreeMap<String, f64>,
}

/// One-shot convenience: execute `routine` from a compiled program set.
/// Execution failures — a missing routine, a violated interpreter
/// invariant, or an unrecoverable remap — come back as typed
/// [`ExecError`]s instead of panics.
pub fn execute(
    programs: &BTreeMap<String, StaticProgram>,
    routine: &str,
    config: ExecConfig,
) -> Result<ExecResult, ExecError> {
    let nprocs = programs.values().map(|p| p.nprocs).max().unwrap_or(1);
    let mut ex = Executor { programs, machine: Machine::new(nprocs), config };
    ex.run(routine)
}

/// The execution engine; owns the machine so several runs can share it.
pub struct Executor<'a> {
    /// Compiled routines by name.
    pub programs: &'a BTreeMap<String, StaticProgram>,
    /// The simulated machine (shared across calls).
    pub machine: Machine,
    /// Options.
    pub config: ExecConfig,
}

enum Flow {
    Normal,
    Return,
}

struct Frame {
    arrays: Vec<ArrayRt>,
    names: BTreeMap<String, ArrayId>,
    scalars: BTreeMap<String, f64>,
    slots: Vec<Option<u32>>,
    /// Final dense contents, snapshotted by ExitCleanup before local
    /// copies are freed.
    results: BTreeMap<ArrayId, Vec<f64>>,
}

impl<'a> Executor<'a> {
    /// Run a routine as the entry point: dummies are initialized with a
    /// deterministic fill (`value = 1 + linear index`). Execution
    /// failures return a typed [`ExecError`]; nothing on this path
    /// panics across the interpreter boundary.
    pub fn run(&mut self, routine: &str) -> Result<ExecResult, ExecError> {
        let p = self.programs.get(routine).ok_or_else(|| ExecError::Interp {
            what: format!("no routine `{routine}`"),
        })?;
        let mut inputs: BTreeMap<ArrayId, Vec<f64>> = BTreeMap::new();
        for a in &p.arrays {
            if a.is_dummy {
                let n = a.versions[0].array_extents.volume();
                inputs.insert(a.id, (0..n).map(|i| 1.0 + i as f64).collect());
            }
        }
        let frame = self.run_frame(p, self.config.scalar_args.clone(), inputs, 0)?;
        let mut arrays = BTreeMap::new();
        for decl in &p.arrays {
            let dense = frame.results.get(&decl.id).cloned().unwrap_or_else(|| {
                vec![0.0; decl.versions[0].array_extents.volume() as usize]
            });
            arrays.insert(decl.name.clone(), dense);
        }
        Ok(ExecResult {
            stats: self.machine.stats,
            peak_mem_bytes: self.machine.mem.max_peak(),
            arrays,
            scalars: frame.scalars,
        })
    }

    fn run_frame(
        &mut self,
        p: &StaticProgram,
        scalars: BTreeMap<String, f64>,
        array_inputs: BTreeMap<ArrayId, Vec<f64>>,
        depth: u32,
    ) -> Result<Frame, ExecError> {
        if depth >= self.config.max_depth {
            return Err(ExecError::Interp {
                what: format!("call depth limit {} exceeded", self.config.max_depth),
            });
        }
        let mut frame = Frame {
            arrays: p
                .arrays
                .iter()
                .map(|a| ArrayRt::new(a.name.clone(), a.versions.clone(), a.elem_size))
                .collect(),
            names: p.arrays.iter().map(|a| (a.name.clone(), a.id)).collect(),
            scalars,
            slots: vec![None; p.n_slots as usize],
            results: BTreeMap::new(),
        };
        // Seed every array's runtime plan cache from the compile-time
        // plans lowering attached to the remap statements *and* the
        // per-tag arms of flow-dependent restores: the executed
        // schedule and copy program are the very objects codegen
        // rendered (shared by Arc), and `NetStats::plans_computed`
        // stays 0 for the whole lowered program — including Fig. 18
        // save/restore paths, whose arms are selected by tag at run
        // time but planned here, at compile time. Seeding goes through
        // the machine's shared plan registry: the first session over a
        // mapping pair publishes it, every later session adopts the
        // registered artifact (`registry_hits`), so N concurrent
        // interpreter sessions hold one artifact per distinct pair.
        let machine = &mut self.machine;
        p.for_each_planned_copy(|array, target, copy| {
            frame.arrays[array.0 as usize].seed_plan_shared(
                machine,
                copy.src,
                target,
                std::sync::Arc::clone(&copy.planned),
            );
        });
        // Dummy inputs arrive in the entry version.
        for (a, dense) in array_inputs {
            let decl = p.array(a);
            let rt = &mut frame.arrays[a.0 as usize];
            let cur = rt.current(&mut self.machine, decl.entry_version);
            let extents = cur.mapping.array_extents.clone();
            for (i, pt) in extents.points().enumerate() {
                cur.set(&pt, dense[i]);
            }
        }
        self.exec_body(p, &mut frame, &p.body, depth)?;
        self.exec_body(p, &mut frame, &p.exit_block, depth)?;
        Ok(frame)
    }

    fn exec_body(
        &mut self,
        p: &StaticProgram,
        frame: &mut Frame,
        body: &[SStmt],
        depth: u32,
    ) -> Result<Flow, ExecError> {
        for s in body {
            match self.exec_stmt(p, frame, s, depth)? {
                Flow::Normal => {}
                Flow::Return => return Ok(Flow::Return),
            }
        }
        Ok(Flow::Normal)
    }

    /// Make sure every array referenced by `e` has a current copy
    /// (lazy instantiation for reads of never-touched arrays).
    fn ensure_refs(&mut self, frame: &mut Frame, e: &Expr, expected: &[(ArrayId, u32)]) {
        let mut refs = Vec::new();
        e.collect_refs(&mut refs);
        for (name, _, _) in refs {
            if let Some(&a) = frame.names.get(&name) {
                let hint = expected
                    .iter()
                    .find(|(x, _)| *x == a)
                    .map(|(_, v)| *v)
                    .unwrap_or(0);
                frame.arrays[a.0 as usize].current(&mut self.machine, hint);
                debug_assert!(
                    frame.arrays[a.0 as usize].status == Some(hint)
                        || !expected.iter().any(|(x, _)| *x == a),
                    "compiler version prediction violated for `{name}`"
                );
            }
        }
    }

    fn exec_stmt(
        &mut self,
        p: &StaticProgram,
        frame: &mut Frame,
        s: &SStmt,
        depth: u32,
    ) -> Result<Flow, ExecError> {
        match s {
            SStmt::Assign { lhs, rhs, expected } => {
                self.ensure_refs(frame, rhs, expected);
                for sub in &lhs.subs {
                    self.ensure_refs(frame, sub, expected);
                }
                match frame.names.get(&lhs.name).copied() {
                    Some(a) => {
                        let hint = expected
                            .iter()
                            .find(|(x, _)| *x == a)
                            .map(|(_, v)| *v)
                            .unwrap_or(0);
                        frame.arrays[a.0 as usize].current(&mut self.machine, hint);
                        if lhs.subs.is_empty() {
                            // Whole-array elementwise assignment:
                            // evaluate fully, then write (Fortran
                            // array-expression semantics).
                            let extents = frame.arrays[a.0 as usize]
                                .mappings[0]
                                .array_extents
                                .clone();
                            let mut values = Vec::with_capacity(extents.volume() as usize);
                            {
                                let ctx = EvalCtx {
                                    scalars: &frame.scalars,
                                    arrays: &frame.arrays,
                                    names: &frame.names,
                                    point: None,
                                };
                                for pt in extents.points() {
                                    let c = EvalCtx { point: Some(&pt), ..ctx };
                                    values.push(c.eval(rhs));
                                }
                            }
                            let rt = &mut frame.arrays[a.0 as usize];
                            rt.invalidate_others();
                            let v = rt.status.expect("current() set status");
                            let copy = rt.copies[v as usize].as_mut().unwrap();
                            for (i, pt) in extents.points().enumerate() {
                                copy.set(&pt, values[i]);
                            }
                        } else {
                            let (point, value) = {
                                let ctx = EvalCtx {
                                    scalars: &frame.scalars,
                                    arrays: &frame.arrays,
                                    names: &frame.names,
                                    point: None,
                                };
                                let point: Vec<u64> = lhs
                                    .subs
                                    .iter()
                                    .map(|e| (ctx.eval(e) as i64 - 1).max(0) as u64)
                                    .collect();
                                (point, ctx.eval(rhs))
                            };
                            frame.arrays[a.0 as usize].set(&point, value);
                        }
                    }
                    None => {
                        let value = {
                            let ctx = EvalCtx {
                                scalars: &frame.scalars,
                                arrays: &frame.arrays,
                                names: &frame.names,
                                point: None,
                            };
                            ctx.eval(rhs)
                        };
                        frame.scalars.insert(lhs.name.clone(), value);
                    }
                }
                Ok(Flow::Normal)
            }
            SStmt::If { cond, then_body, else_body } => {
                self.ensure_refs(frame, cond, &[]);
                let c = {
                    let ctx = EvalCtx {
                        scalars: &frame.scalars,
                        arrays: &frame.arrays,
                        names: &frame.names,
                        point: None,
                    };
                    ctx.eval(cond)
                };
                if c != 0.0 {
                    self.exec_body(p, frame, then_body, depth)
                } else {
                    self.exec_body(p, frame, else_body, depth)
                }
            }
            SStmt::Do { var, lo, hi, step, body } => {
                self.ensure_refs(frame, lo, &[]);
                self.ensure_refs(frame, hi, &[]);
                let (lo_v, hi_v, step_v) = {
                    let ctx = EvalCtx {
                        scalars: &frame.scalars,
                        arrays: &frame.arrays,
                        names: &frame.names,
                        point: None,
                    };
                    (ctx.eval(lo), ctx.eval(hi), step.as_ref().map(|e| ctx.eval(e)).unwrap_or(1.0))
                };
                if step_v == 0.0 {
                    return Err(ExecError::Interp {
                        what: format!("zero DO step for loop variable `{var}`"),
                    });
                }
                let mut i = lo_v;
                loop {
                    if (step_v > 0.0 && i > hi_v) || (step_v < 0.0 && i < hi_v) {
                        break;
                    }
                    frame.scalars.insert(var.clone(), i);
                    if let Flow::Return = self.exec_body(p, frame, body, depth)? {
                        return Ok(Flow::Return);
                    }
                    i += step_v;
                }
                Ok(Flow::Normal)
            }
            SStmt::Remap(op) => {
                // Transactional: if the guarded remap surfaces a typed
                // error, the array was already rolled back to its
                // pre-remap state, so `?` propagates a clean failure.
                frame.arrays[op.array.0 as usize].try_remap_guarded(
                    &mut self.machine,
                    op.target,
                    &op.may_live,
                    op.no_data,
                    &op.skip_if_current,
                )?;
                if self.config.evict_live_copies {
                    self.evict_all(frame, op.array);
                }
                Ok(Flow::Normal)
            }
            SStmt::RemapGroup(op) => {
                // One directive's remap group: every member's solo plan
                // is already seeded in its array's cache; the runtime
                // moves the members whose state matches their planned
                // copy over the merged schedule (coalesced same-pair
                // wire messages, one latency per pair per round) and
                // runs the rest as ordinary guarded no-op remaps. The
                // group is atomic: a typed error means every member —
                // including siblings that had already replayed — was
                // rolled back to its pre-directive state.
                {
                    // Borrow each member's ArrayRt simultaneously —
                    // member array ids are distinct and ascending.
                    let mut rest: &mut [ArrayRt] = &mut frame.arrays;
                    let mut base = 0usize;
                    let mut members: Vec<hpfc_runtime::GroupMember<'_>> =
                        Vec::with_capacity(op.members.len());
                    for m in &op.members {
                        let at = m.array.0 as usize - base;
                        let (head, tail) = std::mem::take(&mut rest).split_at_mut(at + 1);
                        rest = tail;
                        base = m.array.0 as usize + 1;
                        members.push(hpfc_runtime::GroupMember {
                            rt: &mut head[at],
                            src: m.copies[0].src,
                            target: m.target,
                            may_live: &m.may_live,
                            skip_if_current: &m.skip_if_current,
                        });
                    }
                    hpfc_runtime::try_remap_group(&mut self.machine, &mut members, &op.planned)?;
                }
                if self.config.evict_live_copies {
                    for m in &op.members {
                        self.evict_all(frame, m.array);
                    }
                }
                Ok(Flow::Normal)
            }
            SStmt::SaveStatus { array, slot } => {
                frame.slots[*slot as usize] = frame.arrays[array.0 as usize].status;
                Ok(Flow::Normal)
            }
            SStmt::RestoreStatus(op) => {
                if let Some(v) = frame.slots[op.slot as usize] {
                    // Dispatch on the live tag: the arm must have been
                    // statically foreseen (its plans are already seeded
                    // in the cache), and the currently live version
                    // must be one of the arm's planned copy sources —
                    // otherwise the compiler's reaching analysis was
                    // violated and we fail loudly rather than plan
                    // lazily.
                    let rt = &mut frame.arrays[op.array.0 as usize];
                    let arm = op.arm_for(v).ok_or_else(|| ExecError::Interp {
                        what: format!(
                            "restore of `{}`: saved tag {v} has no compiled arm \
                             (possible: {:?})",
                            rt.name, op.possible
                        ),
                    })?;
                    if let Some(cur) = rt.status {
                        if !(cur == arm.target
                            || op.no_data
                            || arm.copies.iter().any(|c| c.src == cur))
                        {
                            return Err(ExecError::Interp {
                                what: format!(
                                    "restore of `{}` to {}: live version {cur} not among \
                                     the arm's planned sources {:?}",
                                    rt.name, arm.target, op.reaching
                                ),
                            });
                        }
                    }
                    rt.try_restore(&mut self.machine, arm.target, &op.may_live, op.no_data)?;
                    if self.config.evict_live_copies {
                        self.evict_all(frame, op.array);
                    }
                }
                Ok(Flow::Normal)
            }
            SStmt::Call { name, args, mapped } => {
                self.exec_call(p, frame, name, args, mapped, depth)?;
                Ok(Flow::Normal)
            }
            SStmt::Return => Ok(Flow::Return),
            SStmt::ExitCleanup => {
                for decl in &p.arrays {
                    let rt = &mut frame.arrays[decl.id.0 as usize];
                    // Snapshot final contents before freeing anything.
                    if let Some(v) = rt.status {
                        if let Some(c) = rt.copies[v as usize].as_ref() {
                            frame.results.insert(decl.id, c.to_dense());
                        }
                    }
                    let keep = if decl.is_dummy { rt.status } else { None };
                    for v in 0..rt.copies.len() as u32 {
                        if Some(v) != keep {
                            rt.free_copy(&mut self.machine, v);
                        }
                    }
                }
                Ok(Flow::Normal)
            }
        }
    }

    fn evict_all(&mut self, frame: &mut Frame, a: ArrayId) {
        let rt = &mut frame.arrays[a.0 as usize];
        for v in 0..rt.copies.len() as u32 {
            rt.evict(&mut self.machine, v);
        }
    }

    fn exec_call(
        &mut self,
        p: &StaticProgram,
        frame: &mut Frame,
        name: &str,
        args: &[Expr],
        mapped: &[(ArrayId, Intent, u32)],
        depth: u32,
    ) -> Result<(), ExecError> {
        if let Some(callee) = self.programs.get(name) {
            // Full interprocedural execution: bind arguments by
            // position, hand dense values over (same placement on both
            // sides of the boundary: no network traffic).
            let mut scalars = BTreeMap::new();
            let mut inputs: BTreeMap<ArrayId, Vec<f64>> = BTreeMap::new();
            let mut out_args: Vec<(ArrayId, ArrayId)> = Vec::new(); // (caller, callee)
            for (pos, actual) in args.iter().enumerate() {
                let Some(pname) = callee.param_order.get(pos) else { continue };
                match callee.arrays.iter().find(|a| &a.name == pname) {
                    Some(cdecl) => {
                        if let Expr::Var(an, _) = actual {
                            if let Some(&ca) = frame.names.get(an) {
                                let intent = mapped
                                    .iter()
                                    .find(|(x, _, _)| *x == ca)
                                    .map(|(_, i, _)| *i)
                                    .unwrap_or(Intent::InOut);
                                if intent != Intent::Out {
                                    let rt = &mut frame.arrays[ca.0 as usize];
                                    let cur = rt.current(&mut self.machine, 0);
                                    inputs.insert(cdecl.id, cur.to_dense());
                                }
                                if intent != Intent::In {
                                    out_args.push((ca, cdecl.id));
                                }
                            }
                        }
                    }
                    None => {
                        let v = {
                            let ctx = EvalCtx {
                                scalars: &frame.scalars,
                                arrays: &frame.arrays,
                                names: &frame.names,
                                point: None,
                            };
                            ctx.eval(actual)
                        };
                        scalars.insert(pname.clone(), v);
                    }
                }
            }
            let callee_frame = self.run_frame(callee, scalars, inputs, depth + 1)?;
            // Export inout/out results back through the dummy copy.
            for (ca, cid) in out_args {
                let dense = callee_frame.results.get(&cid).cloned();
                if let Some(dense) = dense {
                    let rt = &mut frame.arrays[ca.0 as usize];
                    rt.invalidate_others();
                    let cur = rt.current(&mut self.machine, 0);
                    let extents = cur.mapping.array_extents.clone();
                    for (i, pt) in extents.points().enumerate() {
                        cur.set(&pt, dense[i]);
                    }
                }
            }
        } else {
            // Interface-only callee: deterministic synthetic effect.
            let _ = p;
            for &(a, intent, _dummy_version) in mapped {
                match intent {
                    Intent::In => {}
                    Intent::InOut => {
                        let rt = &mut frame.arrays[a.0 as usize];
                        rt.invalidate_others();
                        let cur = rt.current(&mut self.machine, 0);
                        let extents = cur.mapping.array_extents.clone();
                        for pt in extents.points() {
                            let v = cur.get(&pt);
                            cur.set(&pt, v + 1.0);
                        }
                    }
                    Intent::Out => {
                        let rt = &mut frame.arrays[a.0 as usize];
                        rt.invalidate_others();
                        let cur = rt.current(&mut self.machine, 0);
                        let extents = cur.mapping.array_extents.clone();
                        for (i, pt) in extents.points().enumerate() {
                            cur.set(&pt, i as f64);
                        }
                    }
                }
            }
        }
        Ok(())
    }
}
