//! Semantic-analysis tests: symbol resolution, MappingEnv construction,
//! and the paper's language restrictions as diagnostics.

use hpfc_lang::diag::codes;
use hpfc_lang::figures;
use hpfc_lang::sema::Symbol;
use hpfc_lang::{frontend, Intent};
use hpfc_mapping::{DimFormat, DimSource};

#[test]
fn all_figures_analyze() {
    for (name, src) in figures::all() {
        frontend(src).unwrap_or_else(|e| panic!("figure {name} failed sema: {e:?}"));
    }
    // Figs 5 and 21 are *flow*-level errors: sema accepts them, the
    // remapping-graph construction rejects them.
    frontend(figures::FIG5_AMBIGUOUS).expect("fig5 passes sema");
    frontend(figures::FIG21_MULTI_LEAVING).expect("fig21 passes sema");
}

#[test]
fn fig10_symbols_and_mappings() {
    let m = frontend(figures::FIG10_ADI).unwrap();
    let r = m.main();
    assert_eq!(r.name, "remap");
    assert_eq!(r.ast.params, vec!["a", "m", "t"]);
    // a, b, c arrays; m, t scalars; p, q grids.
    assert!(matches!(r.symbols["a"], Symbol::Array(_)));
    assert!(matches!(r.symbols["b"], Symbol::Array(_)));
    assert!(matches!(r.symbols["m"], Symbol::Scalar(_)));
    assert!(matches!(r.symbols["p"], Symbol::Grid(_)));
    assert_eq!(r.param_intents["a"], Intent::InOut);

    // Initial mapping of A is (BLOCK, *) on p: first grid axis driven by
    // array axis 0, one distributed axis.
    let a = r.array("a").unwrap();
    let nm = r.env.normalize(a, &r.initial[&a]).unwrap();
    assert_eq!(nm.grid_shape.0, vec![4]);
    assert!(matches!(nm.axes[0].source, DimSource::ArrayAxis { dim: 0, .. }));
    // B and C share A's mapping (aligned with A).
    let b = r.array("b").unwrap();
    let nb = r.env.normalize(b, &r.initial[&b]).unwrap();
    assert_eq!(nm, nb);
}

#[test]
fn fig4_interface_signature() {
    let m = frontend(figures::FIG4_ARGS).unwrap();
    let r = m.main();
    let foo = &r.callees["foo"];
    assert_eq!(foo.dummies.len(), 1);
    assert_eq!(foo.dummies[0].intent, Intent::InOut);
    let fm = foo.dummies[0].mapping.as_ref().unwrap();
    assert!(matches!(fm.dist.formats[0], DimFormat::Cyclic(None)));
    let bla = &r.callees["bla"];
    assert_eq!(bla.dummies[0].intent, Intent::In);
    assert!(matches!(bla.dummies[0].mapping.as_ref().unwrap().dist.formats[0],
        DimFormat::Cyclic(Some(2))));
    // The dummy mappings are registered in the *caller* env: normalizing
    // them for the actual array works.
    let y = r.array("y").unwrap();
    let nm = r.env.normalize(y, fm).unwrap();
    assert_eq!(nm.grid_shape.volume(), 4);
}

#[test]
fn inherit_is_rejected() {
    let src = "subroutine s(x)\nreal :: x(8)\n!hpf$ inherit x\nend";
    let errs = frontend(src).unwrap_err();
    assert!(errs.iter().any(|e| e.code == codes::TRANSCRIPTIVE), "{errs:?}");
}

#[test]
fn inherit_in_interface_is_rejected() {
    let src = "subroutine s\nreal :: b(8)\ninterface\nsubroutine f(x)\nreal :: x(8)\n\
               !hpf$ inherit x\nend subroutine\nend interface\ncall f(b)\nend";
    let errs = frontend(src).unwrap_err();
    assert!(errs.iter().any(|e| e.code == codes::TRANSCRIPTIVE), "{errs:?}");
}

#[test]
fn call_without_interface_is_rejected() {
    let src = "subroutine s\nreal :: b(8)\ncall mystery(b)\nend";
    let errs = frontend(src).unwrap_err();
    assert!(errs.iter().any(|e| e.code == codes::NO_INTERFACE), "{errs:?}");
}

#[test]
fn remap_of_non_dynamic_is_rejected() {
    let src = "subroutine s\nreal :: a(8)\n!hpf$ processors p(2)\n\
               !hpf$ distribute a(block) onto p\n!hpf$ redistribute a(cyclic)\nend";
    let errs = frontend(src).unwrap_err();
    assert!(errs.iter().any(|e| e.code == codes::NOT_DYNAMIC), "{errs:?}");
}

#[test]
fn realign_of_non_dynamic_is_rejected() {
    let src = "subroutine s\nreal :: a(8,8)\n!hpf$ processors p(2)\n!hpf$ template t(8,8)\n\
               !hpf$ align with t :: a\n!hpf$ distribute t(block,*) onto p\n\
               !hpf$ realign a(i,j) with t(j,i)\nend";
    let errs = frontend(src).unwrap_err();
    assert!(errs.iter().any(|e| e.code == codes::NOT_DYNAMIC), "{errs:?}");
}

#[test]
fn arity_mismatch_is_rejected() {
    let src = "subroutine s\nreal :: b(8)\ninterface\nsubroutine f(x, y)\nreal :: x(8)\n\
               end subroutine\nend interface\ncall f(b)\nend";
    let errs = frontend(src).unwrap_err();
    assert!(errs.iter().any(|e| e.code == codes::BAD_CALL), "{errs:?}");
}

#[test]
fn shape_mismatch_argument_is_rejected() {
    let src = "subroutine s\nreal :: b(9)\n!hpf$ processors p(2)\ninterface\n\
               subroutine f(x)\nreal :: x(8)\nintent(in) :: x\n!hpf$ distribute x(block) onto p\n\
               end subroutine\nend interface\ncall f(b)\nend";
    let errs = frontend(src).unwrap_err();
    assert!(errs.iter().any(|e| e.code == codes::BAD_CALL), "{errs:?}");
}

#[test]
fn duplicate_declaration_is_rejected() {
    let src = "subroutine s\nreal :: a(8)\nreal :: a(9)\nend";
    let errs = frontend(src).unwrap_err();
    assert!(errs.iter().any(|e| e.code == codes::DUPLICATE), "{errs:?}");
}

#[test]
fn unknown_redistribute_target_is_rejected() {
    let src = "subroutine s\n!hpf$ processors p(2)\nreal :: a(8)\n\
               !hpf$ dynamic a\n!hpf$ distribute a(block) onto p\n!hpf$ redistribute zz(cyclic)\nend";
    let errs = frontend(src).unwrap_err();
    assert!(errs.iter().any(|e| e.code == codes::UNRESOLVED), "{errs:?}");
}

#[test]
fn block_smaller_than_extent_over_procs_is_rejected() {
    // BLOCK(2) * 2 procs < extent 8 → mapping error at sema time.
    let src = "subroutine s\n!hpf$ processors p(2)\nreal :: a(8)\n\
               !hpf$ distribute a(block(2)) onto p\nx = a(1)\nend";
    let errs = frontend(src).unwrap_err();
    assert!(errs.iter().any(|e| e.code == codes::MAPPING), "{errs:?}");
}

#[test]
fn unmapped_array_defaults_to_replicated() {
    let src = "subroutine s\n!hpf$ processors p(4)\nreal :: a(8)\nx = a(1)\nend";
    let m = frontend(src).unwrap();
    let r = m.main();
    let a = r.array("a").unwrap();
    let nm = r.env.normalize(a, &r.initial[&a]).unwrap();
    assert_eq!(nm.owners(&[0]).len(), 4, "replicated over all 4 procs");
}

#[test]
fn affine_alignment_offsets_convert_from_one_based() {
    // ALIGN A(i) WITH T(i+1): 1-based source; element a(1) sits on t(2),
    // i.e. 0-based cell 1.
    let src = "subroutine s\n!hpf$ processors p(2)\n!hpf$ template t(9)\nreal :: a(8)\n\
               !hpf$ align a(i) with t(i+1)\n!hpf$ distribute t(block) onto p\nx = a(1)\nend";
    let m = frontend(src).unwrap();
    let r = m.main();
    let a = r.array("a").unwrap();
    let init = &r.initial[&a];
    match init.align.targets[0] {
        hpfc_mapping::AlignTarget::Axis { array_dim: 0, stride: 1, offset } => {
            assert_eq!(offset, 1)
        }
        other => panic!("bad target {other:?}"),
    }
    // Ownership: t has 9 cells, BLOCK(5) over 2 procs; a(0-based 0..8)
    // occupies cells 1..9, so 0-based elements 0..4 → cells 1..5.
    let nm = r.env.normalize(a, init).unwrap();
    assert_eq!(nm.owners(&[3]), vec![0]); // cell 4 in block 0
    assert_eq!(nm.owners(&[4]), vec![1]); // cell 5 in block 1
}

#[test]
fn dynamic_never_remapped_warns() {
    let src = "subroutine s\n!hpf$ processors p(2)\nreal :: a(8)\n!hpf$ dynamic a\n\
               !hpf$ distribute a(block) onto p\nx = a(1)\nend";
    let m = frontend(src).unwrap();
    assert!(m.warnings.iter().any(|w| w.code == codes::AMBIGUOUS_STATE), "{:?}", m.warnings);
}

#[test]
fn loop_variable_is_implicitly_declared() {
    let src = "subroutine s\nreal :: a(8)\ndo i = 1, 8\na(i) = 0.0\nenddo\nend";
    let m = frontend(src).unwrap();
    assert!(matches!(m.main().symbols["i"], Symbol::Scalar(hpfc_lang::TypeSpec::Integer)));
}
