//! Token model. Fortran has no reserved words, so words lex as
//! [`Tok::Ident`] (lower-cased — Fortran is case-insensitive) and the
//! parser matches keywords contextually.

use crate::span::Span;

/// A lexical token kind.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword, lower-cased.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `::`
    DoubleColon,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `**`
    Pow,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `/=`
    Ne,
    /// `.and.`
    And,
    /// `.or.`
    Or,
    /// `.not.`
    Not,
    /// The `!hpf$` directive sentinel starting a directive line.
    Hpf,
    /// End of a logical line (statement separator).
    Newline,
    /// End of input.
    Eof,
}

impl std::fmt::Display for Tok {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Real(v) => write!(f, "{v}"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::Comma => write!(f, ","),
            Tok::Colon => write!(f, ":"),
            Tok::DoubleColon => write!(f, "::"),
            Tok::Assign => write!(f, "="),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Star => write!(f, "*"),
            Tok::Slash => write!(f, "/"),
            Tok::Pow => write!(f, "**"),
            Tok::Lt => write!(f, "<"),
            Tok::Gt => write!(f, ">"),
            Tok::Le => write!(f, "<="),
            Tok::Ge => write!(f, ">="),
            Tok::EqEq => write!(f, "=="),
            Tok::Ne => write!(f, "/="),
            Tok::And => write!(f, ".and."),
            Tok::Or => write!(f, ".or."),
            Tok::Not => write!(f, ".not."),
            Tok::Hpf => write!(f, "!hpf$"),
            Tok::Newline => write!(f, "end of line"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Kind (and payload).
    pub tok: Tok,
    /// Source location.
    pub span: Span,
}
