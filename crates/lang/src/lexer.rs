//! Line-oriented lexer for the Fortran/HPF subset.
//!
//! Peculiarities handled here:
//! * `!hpf$` starts a *directive* (lexed as [`Tok::Hpf`] followed by
//!   ordinary tokens); any other `!` starts a comment to end of line;
//! * `&` at end of line continues the logical line (no
//!   [`Tok::Newline`] emitted);
//! * words are case-insensitive and lex to lower-cased identifiers;
//! * `.and.` / `.or.` / `.not.` dot-operators.

use crate::diag::{codes, Diagnostic};
use crate::span::Span;
use crate::token::{Tok, Token};

/// Lex `src` into tokens (ending with [`Tok::Eof`]).
pub fn lex(src: &str) -> Result<Vec<Token>, Vec<Diagnostic>> {
    Lexer { src: src.as_bytes(), pos: 0, line: 1, toks: Vec::new(), errs: Vec::new() }.run(src)
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    toks: Vec<Token>,
    errs: Vec<Diagnostic>,
}

impl<'a> Lexer<'a> {
    fn run(mut self, text: &str) -> Result<Vec<Token>, Vec<Diagnostic>> {
        while self.pos < self.src.len() {
            let c = self.src[self.pos];
            match c {
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'\n' => {
                    self.push_here(Tok::Newline, 1);
                    self.line += 1;
                    self.pos += 1;
                }
                b'&' => {
                    // Continuation: swallow everything to and including
                    // the next newline.
                    self.pos += 1;
                    while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                    if self.pos < self.src.len() {
                        self.line += 1;
                        self.pos += 1;
                    }
                }
                b'!' => {
                    let rest = &text[self.pos..];
                    let lower: String =
                        rest.chars().take(5).flat_map(|c| c.to_lowercase()).collect();
                    if lower == "!hpf$" {
                        self.push_here(Tok::Hpf, 5);
                        self.pos += 5;
                    } else {
                        while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                            self.pos += 1;
                        }
                    }
                }
                b'(' => self.single(Tok::LParen),
                b')' => self.single(Tok::RParen),
                b',' => self.single(Tok::Comma),
                b'+' => self.single(Tok::Plus),
                b'-' => self.single(Tok::Minus),
                b'*' => {
                    if self.peek(1) == Some(b'*') {
                        self.push_here(Tok::Pow, 2);
                        self.pos += 2;
                    } else {
                        self.single(Tok::Star)
                    }
                }
                b'/' => {
                    if self.peek(1) == Some(b'=') {
                        self.push_here(Tok::Ne, 2);
                        self.pos += 2;
                    } else {
                        self.single(Tok::Slash)
                    }
                }
                b':' => {
                    if self.peek(1) == Some(b':') {
                        self.push_here(Tok::DoubleColon, 2);
                        self.pos += 2;
                    } else {
                        self.single(Tok::Colon)
                    }
                }
                b'=' => {
                    if self.peek(1) == Some(b'=') {
                        self.push_here(Tok::EqEq, 2);
                        self.pos += 2;
                    } else {
                        self.single(Tok::Assign)
                    }
                }
                b'<' => {
                    if self.peek(1) == Some(b'=') {
                        self.push_here(Tok::Le, 2);
                        self.pos += 2;
                    } else {
                        self.single(Tok::Lt)
                    }
                }
                b'>' => {
                    if self.peek(1) == Some(b'=') {
                        self.push_here(Tok::Ge, 2);
                        self.pos += 2;
                    } else {
                        self.single(Tok::Gt)
                    }
                }
                b'.' => {
                    if self.peek(1).is_some_and(|c| c.is_ascii_alphabetic()) {
                        self.dot_operator();
                    } else {
                        self.number();
                    }
                }
                b'0'..=b'9' => self.number(),
                c if c.is_ascii_alphabetic() || c == b'_' => self.word(),
                other => {
                    self.errs.push(Diagnostic::error(
                        codes::LEX,
                        Span::new(self.pos, self.pos + 1, self.line),
                        format!("unexpected character `{}`", other as char),
                    ));
                    self.pos += 1;
                }
            }
        }
        self.push_here(Tok::Eof, 0);
        if self.errs.is_empty() {
            Ok(self.toks)
        } else {
            Err(self.errs)
        }
    }

    fn peek(&self, n: usize) -> Option<u8> {
        self.src.get(self.pos + n).copied()
    }

    fn push_here(&mut self, tok: Tok, len: usize) {
        self.toks.push(Token { tok, span: Span::new(self.pos, self.pos + len, self.line) });
    }

    fn single(&mut self, tok: Tok) {
        self.push_here(tok, 1);
        self.pos += 1;
    }

    fn word(&mut self) {
        let start = self.pos;
        while self
            .peek(0)
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_' || c == b'$')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap().to_lowercase();
        self.toks.push(Token { tok: Tok::Ident(text), span: Span::new(start, self.pos, self.line) });
    }

    fn dot_operator(&mut self) {
        let start = self.pos;
        self.pos += 1; // leading '.'
        while self.peek(0).is_some_and(|c| c.is_ascii_alphabetic()) {
            self.pos += 1;
        }
        if self.peek(0) == Some(b'.') {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap().to_lowercase();
        let tok = match text.as_str() {
            ".and." => Tok::And,
            ".or." => Tok::Or,
            ".not." => Tok::Not,
            ".true." => Tok::Int(1),
            ".false." => Tok::Int(0),
            other => {
                self.errs.push(Diagnostic::error(
                    codes::LEX,
                    Span::new(start, self.pos, self.line),
                    format!("unknown dot-operator `{other}`"),
                ));
                Tok::And
            }
        };
        self.toks.push(Token { tok, span: Span::new(start, self.pos, self.line) });
    }

    fn number(&mut self) {
        let start = self.pos;
        let mut is_real = false;
        while self.peek(0).is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek(0) == Some(b'.')
            && self.peek(1).is_none_or(|c| !c.is_ascii_alphabetic())
        {
            is_real = true;
            self.pos += 1;
            while self.peek(0).is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if self.peek(0).is_some_and(|c| c == b'e' || c == b'E' || c == b'd' || c == b'D') {
            let mut probe = self.pos + 1;
            if self.src.get(probe).is_some_and(|&c| c == b'+' || c == b'-') {
                probe += 1;
            }
            if self.src.get(probe).is_some_and(|c| c.is_ascii_digit()) {
                is_real = true;
                self.pos = probe;
                while self.peek(0).is_some_and(|c| c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        let span = Span::new(start, self.pos, self.line);
        let tok = if is_real {
            let t = text.to_lowercase().replace('d', "e");
            match t.parse::<f64>() {
                Ok(v) => Tok::Real(v),
                Err(_) => {
                    self.errs.push(Diagnostic::error(
                        codes::LEX,
                        span,
                        format!("bad real literal `{text}`"),
                    ));
                    Tok::Real(0.0)
                }
            }
        } else {
            match text.parse::<i64>() {
                Ok(v) => Tok::Int(v),
                Err(_) => {
                    self.errs.push(Diagnostic::error(
                        codes::LEX,
                        span,
                        format!("bad integer literal `{text}`"),
                    ));
                    Tok::Int(0)
                }
            }
        };
        self.toks.push(Token { tok, span });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn basic_statement() {
        assert_eq!(
            kinds("A = B + 1"),
            vec![
                Tok::Ident("a".into()),
                Tok::Assign,
                Tok::Ident("b".into()),
                Tok::Plus,
                Tok::Int(1),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn hpf_directive_vs_comment() {
        let t = kinds("!hpf$ distribute A(block) ! trailing comment\n! full comment\nx = 1");
        assert_eq!(t[0], Tok::Hpf);
        assert!(t.contains(&Tok::Ident("distribute".into())));
        // the trailing and full comments vanish
        assert!(!t.iter().any(|k| matches!(k, Tok::Ident(s) if s == "comment")));
    }

    #[test]
    fn case_insensitive_and_hpf_uppercase() {
        let t = kinds("!HPF$ DISTRIBUTE A(BLOCK)");
        assert_eq!(t[0], Tok::Hpf);
        assert_eq!(t[1], Tok::Ident("distribute".into()));
    }

    #[test]
    fn continuation_joins_lines() {
        let t = kinds("A = B + &\n    C");
        assert!(!t.contains(&Tok::Newline));
        assert_eq!(t[t.len() - 2], Tok::Ident("c".into()));
    }

    #[test]
    fn reals_and_ints() {
        assert_eq!(kinds("1.5")[0], Tok::Real(1.5));
        assert_eq!(kinds("2e3")[0], Tok::Real(2000.0));
        assert_eq!(kinds("1.0d0")[0], Tok::Real(1.0));
        assert_eq!(kinds("42")[0], Tok::Int(42));
        // `1.and.2` must not eat the dot-operator
        let t = kinds("1 .and. 2");
        assert_eq!(t[1], Tok::And);
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("a <= b >= c == d /= e < f > g"),
            vec![
                Tok::Ident("a".into()),
                Tok::Le,
                Tok::Ident("b".into()),
                Tok::Ge,
                Tok::Ident("c".into()),
                Tok::EqEq,
                Tok::Ident("d".into()),
                Tok::Ne,
                Tok::Ident("e".into()),
                Tok::Lt,
                Tok::Ident("f".into()),
                Tok::Gt,
                Tok::Ident("g".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn double_colon_and_star() {
        assert_eq!(
            kinds("align with t :: a")[3..5],
            [Tok::DoubleColon, Tok::Ident("a".into())]
        );
        assert_eq!(kinds("x ** 2")[1], Tok::Pow);
        assert_eq!(kinds("(*)")[1], Tok::Star);
    }

    #[test]
    fn line_numbers_advance() {
        let toks = lex("a\nb\nc").unwrap();
        let lines: Vec<u32> = toks.iter().map(|t| t.span.line).collect();
        assert_eq!(lines, vec![1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn bad_character_reports_error() {
        let errs = lex("a = #").unwrap_err();
        assert_eq!(errs[0].code, codes::LEX);
    }
}
