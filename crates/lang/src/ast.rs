//! Abstract syntax for the HPF subset.
//!
//! The grammar is deliberately small: exactly what the paper's figures
//! use. Mapping *directives* appear both in the specification part
//! (static: `PROCESSORS`, `TEMPLATE`, `ALIGN`, `DISTRIBUTE`, `DYNAMIC`)
//! and as executable statements (`REALIGN`, `REDISTRIBUTE`, `KILL`);
//! both are [`Directive`]s, distinguished by where the parser puts them.

use crate::span::Span;

/// A compilation unit: one or more subroutines. The first is the unit
/// being compiled; the rest are additional routines (callees compiled
/// separately in a real compiler).
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Subroutines in source order.
    pub routines: Vec<Routine>,
}

/// One `SUBROUTINE … END` unit.
#[derive(Debug, Clone, PartialEq)]
pub struct Routine {
    /// Lower-cased routine name.
    pub name: String,
    /// Dummy argument names in positional order.
    pub params: Vec<String>,
    /// Type and intent declarations.
    pub decls: Vec<Decl>,
    /// Specification-part (static) mapping directives.
    pub directives: Vec<Directive>,
    /// Explicit interfaces visible inside this routine.
    pub interfaces: Vec<InterfaceRoutine>,
    /// Executable statements.
    pub body: Vec<Stmt>,
    /// Whole-routine span.
    pub span: Span,
}

/// One routine description inside an `INTERFACE` block: the paper's
/// restriction 2 requires these to know callee argument mappings and
/// intents at every call site.
#[derive(Debug, Clone, PartialEq)]
pub struct InterfaceRoutine {
    /// Lower-cased routine name.
    pub name: String,
    /// Dummy argument names in positional order.
    pub params: Vec<String>,
    /// Type and intent declarations for the dummies.
    pub decls: Vec<Decl>,
    /// Mapping directives for the dummies.
    pub directives: Vec<Directive>,
    /// Span of the interface body.
    pub span: Span,
}

/// Scalar element types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeSpec {
    /// `REAL` (stored as f64 in the simulator; 8 bytes).
    Real,
    /// `INTEGER`.
    Integer,
    /// `LOGICAL`.
    Logical,
}

/// Fortran `INTENT` attribute — drives the paper's Fig. 22/25 use
/// tables at call sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Intent {
    /// `INTENT(IN)` — values imported, not modified.
    In,
    /// `INTENT(OUT)` — fully redefined, nothing imported.
    Out,
    /// `INTENT(INOUT)` — imported and possibly modified.
    InOut,
}

/// A declaration statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Decl {
    /// `REAL :: A(16,16), B(16,16)` — entity declarations with optional
    /// constant dimensions.
    Type {
        /// Element type.
        ty: TypeSpec,
        /// The declared entities.
        entities: Vec<EntityDecl>,
        /// Statement span.
        span: Span,
    },
    /// `INTENT(IN) :: X, Y`.
    Intent {
        /// The attribute.
        intent: Intent,
        /// Dummy names it applies to.
        names: Vec<String>,
        /// Statement span.
        span: Span,
    },
}

/// A single declared entity: `A(16,16)` or scalar `m`.
#[derive(Debug, Clone, PartialEq)]
pub struct EntityDecl {
    /// Lower-cased name.
    pub name: String,
    /// Constant dimension extents (empty for scalars).
    pub dims: Vec<Expr>,
}

/// A distribution format as written (`BLOCK`, `CYCLIC(3)`, `*`).
#[derive(Debug, Clone, PartialEq)]
pub enum DistFormatAst {
    /// `BLOCK` / `BLOCK(b)`.
    Block(Option<Expr>),
    /// `CYCLIC` / `CYCLIC(b)`.
    Cyclic(Option<Expr>),
    /// `*` — collapsed.
    Star,
}

/// One alignment subscript on the template side.
#[derive(Debug, Clone, PartialEq)]
pub enum AlignSub {
    /// An affine expression over the align dummies (`j+1`, `2*i`).
    Affine(Expr),
    /// `*` — replicate along this template axis.
    Star,
}

/// The body of an `ALIGN`/`REALIGN` directive.
#[derive(Debug, Clone, PartialEq)]
pub enum AlignSpec {
    /// `ALIGN A(i,j) WITH T(j+1, 2*i)`.
    Explicit {
        /// Array being aligned.
        array: String,
        /// Dummy index names, one per array dimension.
        dummies: Vec<String>,
        /// Alignment target (template or array).
        target: String,
        /// Template-side subscripts.
        subscripts: Vec<AlignSub>,
    },
    /// `ALIGN WITH T :: A, B, C` — identity alignment of each listed
    /// array (paper Figs. 2, 3, 10).
    With {
        /// Alignment target (template or array).
        target: String,
        /// Arrays identity-aligned to it.
        arrays: Vec<String>,
    },
}

/// An HPF directive (static or executable).
#[derive(Debug, Clone, PartialEq)]
pub enum Directive {
    /// `!HPF$ PROCESSORS P(4,2)`.
    Processors {
        /// Grid name.
        name: String,
        /// Constant extents.
        dims: Vec<Expr>,
        /// Span.
        span: Span,
    },
    /// `!HPF$ TEMPLATE T(100,100)`.
    Template {
        /// Template name.
        name: String,
        /// Constant extents.
        dims: Vec<Expr>,
        /// Span.
        span: Span,
    },
    /// `!HPF$ DYNAMIC A, B`.
    Dynamic {
        /// Objects declared remappable.
        names: Vec<String>,
        /// Span.
        span: Span,
    },
    /// Static `!HPF$ ALIGN …`.
    Align {
        /// Alignment body.
        spec: AlignSpec,
        /// Span.
        span: Span,
    },
    /// Executable `!HPF$ REALIGN …`.
    Realign {
        /// Alignment body.
        spec: AlignSpec,
        /// Span.
        span: Span,
    },
    /// Static `!HPF$ DISTRIBUTE T(BLOCK,*) [ONTO P]`.
    Distribute {
        /// Template or array being distributed.
        target: String,
        /// Per-dimension formats.
        formats: Vec<DistFormatAst>,
        /// Optional grid name.
        onto: Option<String>,
        /// Span.
        span: Span,
    },
    /// Executable `!HPF$ REDISTRIBUTE T(CYCLIC) [ONTO P]`.
    Redistribute {
        /// Template or array being redistributed.
        target: String,
        /// Per-dimension formats.
        formats: Vec<DistFormatAst>,
        /// Optional grid name.
        onto: Option<String>,
        /// Span.
        span: Span,
    },
    /// `!HPF$ KILL A` — the paper's Sec. 4.3 extension: the user asserts
    /// the array's values are dead here.
    Kill {
        /// Arrays whose values die.
        names: Vec<String>,
        /// Span.
        span: Span,
    },
    /// `!HPF$ INHERIT X` — parsed, then *rejected* by sema (paper
    /// restriction 3: no transcriptive mappings).
    Inherit {
        /// Dummies with inherited mappings.
        names: Vec<String>,
        /// Span.
        span: Span,
    },
}

impl Directive {
    /// Whether this directive is executable (a remapping statement)
    /// rather than a specification.
    pub fn is_executable(&self) -> bool {
        matches!(
            self,
            Directive::Realign { .. } | Directive::Redistribute { .. } | Directive::Kill { .. }
        )
    }

    /// The directive's span.
    pub fn span(&self) -> Span {
        match self {
            Directive::Processors { span, .. }
            | Directive::Template { span, .. }
            | Directive::Dynamic { span, .. }
            | Directive::Align { span, .. }
            | Directive::Realign { span, .. }
            | Directive::Distribute { span, .. }
            | Directive::Redistribute { span, .. }
            | Directive::Kill { span, .. }
            | Directive::Inherit { span, .. } => *span,
        }
    }
}

/// An executable statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `lhs = rhs`.
    Assign {
        /// Assignment target.
        lhs: LValue,
        /// Right-hand side.
        rhs: Expr,
        /// Span.
        span: Span,
    },
    /// `IF (cond) THEN … [ELSE …] ENDIF`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_body: Vec<Stmt>,
        /// Else branch (empty when absent).
        else_body: Vec<Stmt>,
        /// Span of the `IF` line.
        span: Span,
    },
    /// `DO v = lo, hi [, step] … ENDDO`.
    Do {
        /// Loop variable.
        var: String,
        /// Lower bound.
        lo: Expr,
        /// Upper bound.
        hi: Expr,
        /// Optional step (default 1).
        step: Option<Expr>,
        /// Loop body.
        body: Vec<Stmt>,
        /// Span of the `DO` line.
        span: Span,
    },
    /// `CALL name(args)`.
    Call {
        /// Callee name (lower-cased).
        name: String,
        /// Actual arguments.
        args: Vec<Expr>,
        /// Span.
        span: Span,
    },
    /// An executable remapping directive.
    Directive(Directive),
    /// `RETURN`.
    Return {
        /// Span.
        span: Span,
    },
}

impl Stmt {
    /// The statement's span.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Assign { span, .. }
            | Stmt::If { span, .. }
            | Stmt::Do { span, .. }
            | Stmt::Call { span, .. }
            | Stmt::Return { span } => *span,
            Stmt::Directive(d) => d.span(),
        }
    }
}

/// An assignment target: scalar, whole array, or element.
#[derive(Debug, Clone, PartialEq)]
pub struct LValue {
    /// Lower-cased name.
    pub name: String,
    /// Subscripts; empty means scalar or whole-array assignment.
    pub subs: Vec<Expr>,
    /// Span.
    pub span: Span,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `**`
    Pow,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `/=`
    Ne,
    /// `.AND.`
    And,
    /// `.OR.`
    Or,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Unary `-`.
    Neg,
    /// `.NOT.`.
    Not,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64, Span),
    /// Real literal.
    Real(f64, Span),
    /// Scalar variable or whole-array reference.
    Var(String, Span),
    /// `name(subs)` — array element or intrinsic call (sema decides).
    Ref {
        /// Lower-cased name.
        name: String,
        /// Subscripts / call arguments.
        subs: Vec<Expr>,
        /// Span.
        span: Span,
    },
    /// Binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        l: Box<Expr>,
        /// Right operand.
        r: Box<Expr>,
        /// Span.
        span: Span,
    },
    /// Unary operation.
    Un {
        /// Operator.
        op: UnOp,
        /// Operand.
        e: Box<Expr>,
        /// Span.
        span: Span,
    },
}

impl Expr {
    /// The expression's span.
    pub fn span(&self) -> Span {
        match self {
            Expr::Int(_, s) | Expr::Real(_, s) | Expr::Var(_, s) => *s,
            Expr::Ref { span, .. } | Expr::Bin { span, .. } | Expr::Un { span, .. } => *span,
        }
    }

    /// Evaluate as a compile-time non-negative integer constant
    /// (used for declaration extents, block sizes).
    pub fn const_u64(&self) -> Option<u64> {
        match self {
            Expr::Int(v, _) if *v >= 0 => Some(*v as u64),
            Expr::Bin { op, l, r, .. } => {
                let (a, b) = (l.const_u64()?, r.const_u64()?);
                match op {
                    BinOp::Add => Some(a + b),
                    BinOp::Sub => a.checked_sub(b),
                    BinOp::Mul => Some(a * b),
                    BinOp::Div if b != 0 => Some(a / b),
                    _ => None,
                }
            }
            _ => None,
        }
    }

    /// All `name`s referenced anywhere in the expression, with whether
    /// each occurrence is subscripted.
    pub fn collect_refs(&self, out: &mut Vec<(String, bool, Span)>) {
        match self {
            Expr::Int(..) | Expr::Real(..) => {}
            Expr::Var(n, s) => out.push((n.clone(), false, *s)),
            Expr::Ref { name, subs, span } => {
                out.push((name.clone(), true, *span));
                for e in subs {
                    e.collect_refs(out);
                }
            }
            Expr::Bin { l, r, .. } => {
                l.collect_refs(out);
                r.collect_refs(out);
            }
            Expr::Un { e, .. } => e.collect_refs(out),
        }
    }
}
