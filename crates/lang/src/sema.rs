//! Semantic analysis: name resolution, directive checking, and
//! construction of the [`hpfc_mapping::MappingEnv`].
//!
//! This is where the paper's *language restrictions* (Sec. 2.1) become
//! diagnostics:
//! * restriction 2 — every `CALL` must see an explicit interface
//!   describing the dummies' mappings and intents ([`codes::NO_INTERFACE`]);
//! * restriction 3 — `INHERIT` (transcriptive mappings) is rejected
//!   ([`codes::TRANSCRIPTIVE`]);
//! * remapping a non-`DYNAMIC` object is rejected
//!   ([`codes::NOT_DYNAMIC`]).
//!
//! Restriction 1 (no reference with an ambiguous mapping) is
//! flow-sensitive and therefore checked later, during remapping-graph
//! construction (crate `hpfc-rgraph`).

use std::collections::{BTreeMap, BTreeSet};

use hpfc_mapping::{
    AlignTarget, Alignment, ArrayId, DimFormat, Distribution, Extents, GridId, Mapping,
    MappingEnv, TemplateId,
};

use crate::ast::*;
use crate::diag::{codes, Diagnostic};
use crate::span::Span;

/// A fully analyzed compilation unit.
#[derive(Debug, Clone)]
pub struct Module {
    /// Analyzed routines, in source order. The first is the unit the
    /// compiler pipeline operates on.
    pub routines: Vec<RoutineUnit>,
    /// Non-fatal diagnostics.
    pub warnings: Vec<Diagnostic>,
}

impl Module {
    /// The main routine (first in the file).
    pub fn main(&self) -> &RoutineUnit {
        &self.routines[0]
    }

    /// Look a routine up by name.
    pub fn routine(&self, name: &str) -> Option<&RoutineUnit> {
        self.routines.iter().find(|r| r.name == name)
    }
}

/// What a name refers to inside a routine.
#[derive(Debug, Clone, PartialEq)]
pub enum Symbol {
    /// A distributed (or replicated) array.
    Array(ArrayId),
    /// A scalar variable (replicated on every processor).
    Scalar(TypeSpec),
    /// A processor grid.
    Grid(GridId),
    /// A template.
    Template(TemplateId),
}

/// One analyzed routine.
#[derive(Debug, Clone)]
pub struct RoutineUnit {
    /// Routine name (lower-cased).
    pub name: String,
    /// The original AST.
    pub ast: Routine,
    /// Mapping registry (grids, templates, arrays + implicit templates;
    /// also the callee-interface templates, registered here so callee
    /// argument mappings can be interned as caller versions).
    pub env: MappingEnv,
    /// Name → symbol.
    pub symbols: BTreeMap<String, Symbol>,
    /// Initial (entry) mapping of every array. Unmapped arrays get the
    /// all-collapsed (replicated) mapping over the default grid.
    pub initial: BTreeMap<ArrayId, Mapping>,
    /// Initial distribution of every template that has one.
    pub template_dist: BTreeMap<TemplateId, Distribution>,
    /// Names declared `!HPF$ DYNAMIC` (arrays and templates).
    pub dynamic: BTreeSet<String>,
    /// Intent of each dummy argument (default `INOUT`).
    pub param_intents: BTreeMap<String, Intent>,
    /// Callee signatures from explicit interfaces, by name.
    pub callees: BTreeMap<String, CalleeSig>,
    /// The grid used for replicated defaults.
    pub default_grid: GridId,
}

/// An explicit-interface description of a callee (paper Fig. 8: the
/// caller needs dummy mappings and intents to translate the implicit
/// argument remapping into explicit local ones).
#[derive(Debug, Clone)]
pub struct CalleeSig {
    /// Callee name.
    pub name: String,
    /// Dummy arguments in positional order.
    pub dummies: Vec<DummyInfo>,
}

/// One dummy argument of a callee.
#[derive(Debug, Clone)]
pub struct DummyInfo {
    /// Dummy name inside the interface.
    pub name: String,
    /// Shape (`None` for scalars).
    pub extents: Option<Extents>,
    /// Declared intent (default `INOUT`, the conservative choice —
    /// paper Fig. 22).
    pub intent: Intent,
    /// The mapping the callee prescribes for this dummy, expressed
    /// against templates/grids registered in the *caller's* env.
    pub mapping: Option<Mapping>,
}

impl RoutineUnit {
    /// Array id of a name, if it is an array.
    pub fn array(&self, name: &str) -> Option<ArrayId> {
        match self.symbols.get(name) {
            Some(Symbol::Array(a)) => Some(*a),
            _ => None,
        }
    }

    /// Whether `name` may be remapped (declared `DYNAMIC`).
    pub fn is_dynamic(&self, name: &str) -> bool {
        self.dynamic.contains(name)
    }

    /// All array ids in declaration order.
    pub fn array_ids(&self) -> Vec<ArrayId> {
        self.env.arrays().iter().map(|a| a.id).collect()
    }
}

/// Run semantic analysis over a parsed program.
pub fn analyze(program: &Program) -> Result<Module, Vec<Diagnostic>> {
    let mut errs = Vec::new();
    let mut warnings = Vec::new();
    let mut routines = Vec::new();
    for r in &program.routines {
        match analyze_routine(r, &mut warnings) {
            Ok(u) => routines.push(u),
            Err(mut e) => errs.append(&mut e),
        }
    }
    if errs.is_empty() {
        Ok(Module { routines, warnings })
    } else {
        Err(errs)
    }
}

struct Analyzer {
    env: MappingEnv,
    symbols: BTreeMap<String, Symbol>,
    template_dist: BTreeMap<TemplateId, Distribution>,
    /// Static alignment of each array (defaults to identity on its
    /// implicit template).
    align: BTreeMap<ArrayId, Alignment>,
    dynamic: BTreeSet<String>,
    errs: Vec<Diagnostic>,
    default_grid: Option<GridId>,
}

fn analyze_routine(
    ast: &Routine,
    warnings: &mut Vec<Diagnostic>,
) -> Result<RoutineUnit, Vec<Diagnostic>> {
    let mut a = Analyzer {
        env: MappingEnv::new(),
        symbols: BTreeMap::new(),
        template_dist: BTreeMap::new(),
        align: BTreeMap::new(),
        dynamic: BTreeSet::new(),
        errs: Vec::new(),
    default_grid: None,
    };

    // Pass 1: grids and templates (so later directives can resolve them).
    for d in &ast.directives {
        match d {
            Directive::Processors { name, dims, span } => a.declare_grid(name, dims, *span),
            Directive::Template { name, dims, span } => {
                a.declare_template(name, dims, *span);
            }
            _ => {}
        }
    }
    // A default grid always exists (single processor) so unmapped
    // arrays normalize to a well-formed replicated mapping.
    let default_grid = match a.env.grids().first() {
        Some(g) => g.id,
        None => a.env.add_grid("__p_default", &[1]),
    };
    a.default_grid = Some(default_grid);

    // Pass 2: array declarations.
    for d in &ast.decls {
        if let Decl::Type { ty, entities, span } = d {
            for e in entities {
                a.declare_entity(*ty, e, *span);
            }
        }
    }
    // Dummy parameters without a type declaration default to scalars
    // (implicit typing: i..n integer, otherwise real).
    for p in &ast.params {
        if !a.symbols.contains_key(p) {
            a.symbols.insert(p.clone(), Symbol::Scalar(implicit_type(p)));
        }
    }

    // Pass 3: static mapping directives.
    for d in &ast.directives {
        match d {
            Directive::Dynamic { names, span } => {
                for n in names {
                    if !a.symbols.contains_key(n) {
                        a.err(codes::UNRESOLVED, *span, format!("unknown name `{n}` in DYNAMIC"));
                    }
                    a.dynamic.insert(n.clone());
                }
            }
            Directive::Align { spec, span } => a.apply_align(spec, *span),
            Directive::Distribute { target, formats, onto, span } => {
                a.apply_distribute(target, formats, onto.as_deref(), *span)
            }
            Directive::Inherit { span, .. } => {
                a.err(
                    codes::TRANSCRIPTIVE,
                    *span,
                    "INHERIT (transcriptive mapping) is forbidden: the compilation scheme \
                     requires statically known argument mappings (paper restriction 3)",
                );
            }
            Directive::Realign { span, .. } | Directive::Redistribute { span, .. } => {
                // The parser routes executable directives into the body;
                // seeing one here is a parser invariant violation.
                a.err(codes::BAD_DIRECTIVE, *span, "remapping directive in specification part");
            }
            _ => {}
        }
    }

    // Pass 4: interfaces.
    let mut callees = BTreeMap::new();
    for itf in &ast.interfaces {
        let sig = a.analyze_interface(itf);
        callees.insert(sig.name.clone(), sig);
    }

    // Pass 5: walk the body — resolve references, check executable
    // directives, auto-declare loop scalars.
    let dynamic_snapshot = a.dynamic.clone();
    a.walk_body(&ast.body, &callees);
    a.dynamic = dynamic_snapshot; // walk only reads it

    // Intents of own dummies.
    let mut param_intents = BTreeMap::new();
    for d in &ast.decls {
        if let Decl::Intent { intent, names, span } = d {
            for n in names {
                if !ast.params.contains(n) {
                    a.err(codes::BAD_DIRECTIVE, *span, format!("INTENT on non-dummy `{n}`"));
                }
                param_intents.insert(n.clone(), *intent);
            }
        }
    }

    // Warn (once) about arrays that are declared DYNAMIC but never
    // remapped — harmless, but worth surfacing.
    for n in &a.dynamic {
        if let Some(Symbol::Array(_)) = a.symbols.get(n) {
            let remapped = body_remaps_name(&ast.body, n, &a);
            if !remapped {
                warnings.push(Diagnostic::warning(
                    codes::AMBIGUOUS_STATE,
                    ast.span,
                    format!("`{n}` is DYNAMIC but never remapped"),
                ));
            }
        }
    }

    if !a.errs.is_empty() {
        return Err(a.errs);
    }

    // Final initial mappings.
    let mut initial = BTreeMap::new();
    for info in a.env.arrays().to_vec() {
        let align = a
            .align
            .get(&info.id)
            .cloned()
            .unwrap_or_else(|| Alignment::identity(a.env.implicit_template(info.id), info.extents.rank()));
        let t = align.template;
        let dist = a.template_dist.get(&t).cloned().unwrap_or_else(|| {
            // Undistributed template: replicated (all-collapsed) over
            // the default grid.
            Distribution::new(
                default_grid,
                vec![DimFormat::Collapsed; a.env.template(t).shape.rank()],
            )
        });
        let m = Mapping { align, dist };
        // Validate now so later phases can unwrap.
        if let Err(e) = a.env.normalize(info.id, &m) {
            a.errs.push(Diagnostic::error(
                codes::MAPPING,
                ast.span,
                format!("initial mapping of `{}` is invalid: {e}", info.name),
            ));
        }
        initial.insert(info.id, m);
    }
    if !a.errs.is_empty() {
        return Err(a.errs);
    }

    let mut env = a.env;
    for (t, d) in &a.template_dist {
        env.set_initial_distribution(*t, d.clone());
    }
    for (id, m) in &initial {
        env.set_initial(*id, m.clone());
    }
    for n in &a.dynamic {
        if let Some(Symbol::Array(id)) = a.symbols.get(n) {
            env.set_dynamic(*id, true);
        }
    }

    Ok(RoutineUnit {
        name: ast.name.clone(),
        ast: ast.clone(),
        env,
        symbols: a.symbols,
        initial,
        template_dist: a.template_dist,
        dynamic: a.dynamic,
        param_intents,
        callees,
        default_grid,
    })
}

/// Fortran implicit typing: names starting with i..n are INTEGER.
fn implicit_type(name: &str) -> TypeSpec {
    match name.chars().next() {
        Some(c) if ('i'..='n').contains(&c) => TypeSpec::Integer,
        _ => TypeSpec::Real,
    }
}

fn body_remaps_name(body: &[Stmt], name: &str, a: &Analyzer) -> bool {
    body.iter().any(|s| match s {
        Stmt::Directive(Directive::Realign { spec, .. }) => match spec {
            AlignSpec::Explicit { array, .. } => array == name,
            AlignSpec::With { arrays, .. } => arrays.iter().any(|x| x == name),
        },
        Stmt::Directive(Directive::Redistribute { target, .. }) => {
            // A redistribution remaps the target and everything aligned
            // with it; the cheap check here only looks at the target.
            target == name || a.aligned_to_target(target, name)
        }
        Stmt::If { then_body, else_body, .. } => {
            body_remaps_name(then_body, name, a) || body_remaps_name(else_body, name, a)
        }
        Stmt::Do { body, .. } => body_remaps_name(body, name, a),
        _ => false,
    })
}

impl Analyzer {
    fn err(&mut self, code: &'static str, span: Span, msg: impl Into<String>) {
        self.errs.push(Diagnostic::error(code, span, msg));
    }

    fn declare_grid(&mut self, name: &str, dims: &[Expr], span: Span) {
        if self.symbols.contains_key(name) {
            self.err(codes::DUPLICATE, span, format!("`{name}` already declared"));
            return;
        }
        let Some(shape) = const_dims(dims) else {
            self.err(codes::BAD_DIRECTIVE, span, "PROCESSORS extents must be constants");
            return;
        };
        let id = self.env.add_grid(name, &shape);
        self.symbols.insert(name.to_string(), Symbol::Grid(id));
    }

    fn declare_template(&mut self, name: &str, dims: &[Expr], span: Span) -> Option<TemplateId> {
        if self.symbols.contains_key(name) {
            self.err(codes::DUPLICATE, span, format!("`{name}` already declared"));
            return None;
        }
        let Some(shape) = const_dims(dims) else {
            self.err(codes::BAD_DIRECTIVE, span, "TEMPLATE extents must be constants");
            return None;
        };
        let id = self.env.add_template(name, &shape);
        self.symbols.insert(name.to_string(), Symbol::Template(id));
        Some(id)
    }

    fn declare_entity(&mut self, ty: TypeSpec, e: &EntityDecl, span: Span) {
        if self.symbols.contains_key(&e.name) {
            self.err(codes::DUPLICATE, span, format!("`{}` already declared", e.name));
            return;
        }
        if e.dims.is_empty() {
            self.symbols.insert(e.name.clone(), Symbol::Scalar(ty));
            return;
        }
        let Some(shape) = const_dims(&e.dims) else {
            self.err(codes::BAD_DIRECTIVE, span, "array extents must be constants");
            return;
        };
        let elem = 8; // REAL and INTEGER both simulate as 8-byte cells.
        let id = self.env.add_array(&e.name, &shape, elem);
        self.symbols.insert(e.name.clone(), Symbol::Array(id));
    }

    /// The template a mapping directive's target denotes: a declared
    /// template, or the implicit template of an array.
    fn target_template(&mut self, name: &str, span: Span) -> Option<TemplateId> {
        match self.symbols.get(name) {
            Some(Symbol::Template(t)) => Some(*t),
            Some(Symbol::Array(a)) => Some(self.env.implicit_template(*a)),
            _ => {
                self.err(codes::UNRESOLVED, span, format!("unknown alignment target `{name}`"));
                None
            }
        }
    }

    /// Whether array `name` is (statically) aligned to the template that
    /// `target` denotes.
    fn aligned_to_target(&self, target: &str, name: &str) -> bool {
        let t = match self.symbols.get(target) {
            Some(Symbol::Template(t)) => *t,
            Some(Symbol::Array(a)) => self.env.implicit_template(*a),
            _ => return false,
        };
        match self.symbols.get(name) {
            Some(Symbol::Array(a)) => self
                .align
                .get(a)
                .map(|al| al.template == t)
                .unwrap_or(self.env.implicit_template(*a) == t),
            _ => false,
        }
    }

    fn apply_align(&mut self, spec: &AlignSpec, span: Span) {
        if let Some(list) = self.build_alignments(spec, span) {
            for (a, al) in list {
                self.align.insert(a, al);
            }
        }
    }

    /// Resolve an ALIGN/REALIGN spec to per-array [`Alignment`]s.
    /// Shared with remapping-graph construction via
    /// [`resolve_align_spec`].
    fn build_alignments(
        &mut self,
        spec: &AlignSpec,
        span: Span,
    ) -> Option<Vec<(ArrayId, Alignment)>> {
        match resolve_align_spec(&self.env, &self.symbols, spec) {
            Ok(v) => Some(v),
            Err(msg) => {
                self.err(codes::BAD_DIRECTIVE, span, msg);
                None
            }
        }
    }

    fn apply_distribute(
        &mut self,
        target: &str,
        formats: &[DistFormatAst],
        onto: Option<&str>,
        span: Span,
    ) {
        let Some(t) = self.target_template(target, span) else { return };
        match resolve_distribution(&self.env, &self.symbols, self.default_grid, t, formats, onto) {
            Ok(d) => {
                self.template_dist.insert(t, d);
            }
            Err(msg) => self.err(codes::BAD_DIRECTIVE, span, msg),
        }
    }

    fn analyze_interface(&mut self, itf: &InterfaceRoutine) -> CalleeSig {
        // Dummy declarations.
        let mut dummy_extents: BTreeMap<String, Option<Extents>> = BTreeMap::new();
        let mut dummy_intent: BTreeMap<String, Intent> = BTreeMap::new();
        for d in &itf.decls {
            match d {
                Decl::Type { entities, .. } => {
                    for e in entities {
                        let ext = if e.dims.is_empty() {
                            None
                        } else {
                            const_dims(&e.dims).map(|s| Extents::new(&s))
                        };
                        dummy_extents.insert(e.name.clone(), ext);
                    }
                }
                Decl::Intent { intent, names, .. } => {
                    for n in names {
                        dummy_intent.insert(n.clone(), *intent);
                    }
                }
            }
        }

        // Mapping directives of the interface: register a template per
        // distributed dummy in the *caller's* env (prefixed to avoid
        // clashes) and record its prescribed mapping.
        let mut dummy_dist: BTreeMap<String, (Vec<DistFormatAst>, Option<String>)> = BTreeMap::new();
        for d in &itf.directives {
            match d {
                Directive::Distribute { target, formats, onto, .. } => {
                    dummy_dist.insert(target.clone(), (formats.clone(), onto.clone()));
                }
                Directive::Inherit { span, .. } => {
                    self.err(
                        codes::TRANSCRIPTIVE,
                        *span,
                        format!(
                            "INHERIT in interface of `{}` is forbidden (paper restriction 3)",
                            itf.name
                        ),
                    );
                }
                other => {
                    // ALIGN between dummies etc. — out of subset scope.
                    self.err(
                        codes::BAD_DIRECTIVE,
                        other.span(),
                        format!(
                            "only DISTRIBUTE directives are supported in interfaces \
                             (routine `{}`)",
                            itf.name
                        ),
                    );
                }
            }
        }

        let mut dummies = Vec::new();
        for p in &itf.params {
            let extents = dummy_extents.get(p).cloned().unwrap_or(None);
            let intent = dummy_intent.get(p).copied().unwrap_or(Intent::InOut);
            let mapping = match (&extents, dummy_dist.get(p)) {
                (Some(ext), Some((formats, onto))) => {
                    // Register the dummy's template in the caller env.
                    let tname = format!("__t_{}_{}", itf.name, p);
                    let shape: Vec<u64> = ext.0.clone();
                    let t = self.env.add_template(&tname, &shape);
                    match resolve_distribution(
                        &self.env,
                        &self.symbols,
                        self.default_grid,
                        t,
                        formats,
                        onto.as_deref(),
                    ) {
                        Ok(d) => {
                            self.template_dist.insert(t, d.clone());
                            Some(Mapping { align: Alignment::identity(t, ext.rank()), dist: d })
                        }
                        Err(msg) => {
                            self.err(codes::BAD_DIRECTIVE, itf.span, msg);
                            None
                        }
                    }
                }
                _ => None,
            };
            dummies.push(DummyInfo { name: p.clone(), extents, intent, mapping });
        }
        CalleeSig { name: itf.name.clone(), dummies }
    }

    fn walk_body(&mut self, body: &[Stmt], callees: &BTreeMap<String, CalleeSig>) {
        for s in body {
            match s {
                Stmt::Assign { lhs, rhs, span } => {
                    self.check_ref(&lhs.name, !lhs.subs.is_empty(), *span);
                    for e in &lhs.subs {
                        self.check_expr(e);
                    }
                    self.check_expr(rhs);
                }
                Stmt::If { cond, then_body, else_body, .. } => {
                    self.check_expr(cond);
                    self.walk_body(then_body, callees);
                    self.walk_body(else_body, callees);
                }
                Stmt::Do { var, lo, hi, step, body, .. } => {
                    if !self.symbols.contains_key(var) {
                        self.symbols.insert(var.clone(), Symbol::Scalar(implicit_type(var)));
                    }
                    self.check_expr(lo);
                    self.check_expr(hi);
                    if let Some(e) = step {
                        self.check_expr(e);
                    }
                    self.walk_body(body, callees);
                }
                Stmt::Call { name, args, span } => {
                    match callees.get(name) {
                        None => self.err(
                            codes::NO_INTERFACE,
                            *span,
                            format!(
                                "call to `{name}` without an explicit interface \
                                 (paper restriction 2: interfaces are mandatory)"
                            ),
                        ),
                        Some(sig) => {
                            if sig.dummies.len() != args.len() {
                                self.err(
                                    codes::BAD_CALL,
                                    *span,
                                    format!(
                                        "`{name}` expects {} argument(s), got {}",
                                        sig.dummies.len(),
                                        args.len()
                                    ),
                                );
                            }
                            for (dummy, actual) in sig.dummies.iter().zip(args) {
                                self.check_arg(name, dummy, actual, *span);
                            }
                        }
                    }
                    for e in args {
                        self.check_expr(e);
                    }
                }
                Stmt::Directive(d) => self.check_exec_directive(d),
                Stmt::Return { .. } => {}
            }
        }
    }

    fn check_arg(&mut self, callee: &str, dummy: &DummyInfo, actual: &Expr, span: Span) {
        if let Some(ext) = &dummy.extents {
            // Distributed dummy: the actual must be a whole-array
            // reference of identical shape (the paper's scheme copies
            // whole arrays at call sites).
            match actual {
                Expr::Var(n, _) => match self.symbols.get(n) {
                    Some(Symbol::Array(a)) => {
                        let have = self.env.array(*a).extents.clone();
                        if &have != ext {
                            self.err(
                                codes::BAD_CALL,
                                span,
                                format!(
                                    "argument `{n}` of `{callee}` has shape {have} \
                                     but dummy `{}` expects {ext}",
                                    dummy.name
                                ),
                            );
                        }
                    }
                    _ => self.err(
                        codes::BAD_CALL,
                        span,
                        format!(
                            "dummy `{}` of `{callee}` is an array; \
                             actual `{n}` is not",
                            dummy.name
                        ),
                    ),
                },
                _ => self.err(
                    codes::BAD_CALL,
                    span,
                    format!(
                        "dummy `{}` of `{callee}` is a mapped array: \
                         the actual must be a whole array name",
                        dummy.name
                    ),
                ),
            }
        }
    }

    fn check_exec_directive(&mut self, d: &Directive) {
        match d {
            Directive::Realign { spec, span } => {
                let arrays: Vec<String> = match spec {
                    AlignSpec::Explicit { array, .. } => vec![array.clone()],
                    AlignSpec::With { arrays, .. } => arrays.clone(),
                };
                for n in &arrays {
                    if !matches!(self.symbols.get(n), Some(Symbol::Array(_))) {
                        self.err(codes::UNRESOLVED, *span, format!("unknown array `{n}`"));
                    } else if !self.dynamic.contains(n) {
                        self.err(
                            codes::NOT_DYNAMIC,
                            *span,
                            format!("`{n}` is REALIGNed but not declared DYNAMIC"),
                        );
                    }
                }
                // Validate the spec shape itself.
                if let Err(msg) = resolve_align_spec(&self.env, &self.symbols, spec) {
                    self.err(codes::BAD_DIRECTIVE, *span, msg);
                }
            }
            Directive::Redistribute { target, formats, onto, span } => {
                let known = matches!(
                    self.symbols.get(target),
                    Some(Symbol::Template(_)) | Some(Symbol::Array(_))
                );
                if !known {
                    self.err(codes::UNRESOLVED, *span, format!("unknown object `{target}`"));
                    return;
                }
                if !self.dynamic.contains(target) {
                    self.err(
                        codes::NOT_DYNAMIC,
                        *span,
                        format!("`{target}` is REDISTRIBUTEd but not declared DYNAMIC"),
                    );
                }
                if let Some(t) = self.target_template(target, *span) {
                    if let Err(msg) = resolve_distribution(
                        &self.env,
                        &self.symbols,
                        self.default_grid,
                        t,
                        formats,
                        onto.as_deref(),
                    ) {
                        self.err(codes::BAD_DIRECTIVE, *span, msg);
                    }
                }
            }
            Directive::Kill { names, span } => {
                for n in names {
                    if !matches!(self.symbols.get(n), Some(Symbol::Array(_))) {
                        self.err(codes::UNRESOLVED, *span, format!("unknown array `{n}` in KILL"));
                    }
                }
            }
            _ => {}
        }
    }

    fn check_ref(&mut self, name: &str, _subscripted: bool, span: Span) {
        if !self.symbols.contains_key(name) {
            // Implicitly declare scalars on first use (Fortran style);
            // arrays must be declared.
            self.symbols.insert(name.to_string(), Symbol::Scalar(implicit_type(name)));
            let _ = span;
        }
    }

    fn check_expr(&mut self, e: &Expr) {
        let mut refs = Vec::new();
        e.collect_refs(&mut refs);
        for (name, subscripted, span) in refs {
            if is_intrinsic(&name) && subscripted {
                continue;
            }
            self.check_ref(&name, subscripted, span);
        }
    }
}

/// Names treated as intrinsic functions in expressions.
pub fn is_intrinsic(name: &str) -> bool {
    matches!(name, "sqrt" | "abs" | "mod" | "min" | "max" | "sin" | "cos" | "exp" | "real")
}

fn const_dims(dims: &[Expr]) -> Option<Vec<u64>> {
    dims.iter().map(|e| e.const_u64()).collect()
}

/// Resolve an ALIGN/REALIGN spec into per-array alignments (pure,
/// reused by the remapping-graph construction for REALIGN statements).
pub fn resolve_align_spec(
    env: &MappingEnv,
    symbols: &BTreeMap<String, Symbol>,
    spec: &AlignSpec,
) -> Result<Vec<(ArrayId, Alignment)>, String> {
    let target_template = |name: &str| -> Result<TemplateId, String> {
        match symbols.get(name) {
            Some(Symbol::Template(t)) => Ok(*t),
            Some(Symbol::Array(a)) => Ok(env.implicit_template(*a)),
            _ => Err(format!("unknown alignment target `{name}`")),
        }
    };
    match spec {
        AlignSpec::With { target, arrays } => {
            let t = target_template(target)?;
            let trank = env.template(t).shape.rank();
            let mut out = Vec::new();
            for n in arrays {
                let Some(Symbol::Array(a)) = symbols.get(n) else {
                    return Err(format!("unknown array `{n}` in ALIGN"));
                };
                let arank = env.array(*a).extents.rank();
                if arank != trank {
                    return Err(format!(
                        "ALIGN WITH: array `{n}` has rank {arank} but target has rank {trank}"
                    ));
                }
                out.push((*a, Alignment::identity(t, trank)));
            }
            Ok(out)
        }
        AlignSpec::Explicit { array, dummies, target, subscripts } => {
            let Some(Symbol::Array(a)) = symbols.get(array) else {
                return Err(format!("unknown array `{array}` in ALIGN"));
            };
            let t = target_template(target)?;
            let trank = env.template(t).shape.rank();
            if subscripts.is_empty() {
                // `ALIGN A WITH T` without subscripts: identity.
                if env.array(*a).extents.rank() != trank {
                    return Err("ALIGN without subscripts requires equal ranks".into());
                }
                return Ok(vec![(*a, Alignment::identity(t, trank))]);
            }
            if subscripts.len() != trank {
                return Err(format!(
                    "ALIGN target has {} subscripts but template rank is {trank}",
                    subscripts.len()
                ));
            }
            if dummies.len() != env.array(*a).extents.rank() {
                return Err(format!(
                    "ALIGN dummies {:?} do not match rank of `{array}`",
                    dummies
                ));
            }
            let mut targets = Vec::new();
            for sub in subscripts {
                match sub {
                    AlignSub::Star => targets.push(AlignTarget::Replicate),
                    AlignSub::Affine(e) => targets.push(affine_target(e, dummies)?),
                }
            }
            let al = Alignment { template: t, targets };
            al.validate(env.array(*a).extents.rank())?;
            Ok(vec![(*a, al)])
        }
    }
}

/// Interpret an alignment subscript expression as `stride*dummy +
/// offset` (or a constant).
fn affine_target(e: &Expr, dummies: &[String]) -> Result<AlignTarget, String> {
    fn go(e: &Expr, dummies: &[String]) -> Result<(Option<usize>, i64, i64), String> {
        // Returns (dummy axis, stride, offset).
        match e {
            Expr::Int(v, _) => Ok((None, 0, *v)),
            Expr::Var(n, _) => match dummies.iter().position(|d| d == n) {
                Some(k) => Ok((Some(k), 1, 0)),
                None => Err(format!("`{n}` is not an align dummy")),
            },
            Expr::Un { op: UnOp::Neg, e, .. } => {
                let (d, s, o) = go(e, dummies)?;
                Ok((d, -s, -o))
            }
            Expr::Bin { op, l, r, .. } => {
                let (ld, ls, lo) = go(l, dummies)?;
                let (rd, rs, ro) = go(r, dummies)?;
                match op {
                    BinOp::Add => match (ld, rd) {
                        (Some(d), None) => Ok((Some(d), ls, lo + ro)),
                        (None, Some(d)) => Ok((Some(d), rs, lo + ro)),
                        (None, None) => Ok((None, 0, lo + ro)),
                        _ => Err("alignment subscript uses two dummies".into()),
                    },
                    BinOp::Sub => match (ld, rd) {
                        (Some(d), None) => Ok((Some(d), ls, lo - ro)),
                        (None, Some(d)) => Ok((Some(d), -rs, lo - ro)),
                        (None, None) => Ok((None, 0, lo - ro)),
                        _ => Err("alignment subscript uses two dummies".into()),
                    },
                    BinOp::Mul => match (ld, rd) {
                        (Some(d), None) => Ok((Some(d), ls * ro, lo * ro)),
                        (None, Some(d)) => Ok((Some(d), lo * rs, lo * ro)),
                        (None, None) => Ok((None, 0, lo * ro)),
                        _ => Err("alignment subscript is not affine".into()),
                    },
                    _ => Err("alignment subscript is not affine".into()),
                }
            }
            _ => Err("alignment subscript is not affine".into()),
        }
    }
    let (dummy, stride, offset) = go(e, dummies)?;
    match dummy {
        // Fortran subscripts are 1-based: `T(j+1)` with 1-based j and
        // 1-based template cells is stride 1, offset 0 in 0-based terms:
        // t0 = (j0+1) + 1 - 1 - 1 + ... — handled uniformly below.
        Some(k) => Ok(AlignTarget::Axis {
            array_dim: k,
            stride,
            // 0-based conversion: t-1 = s*(a-1)+ (s + offset - 1)
            offset: stride + offset - 1,
        }),
        None => Ok(AlignTarget::Constant(offset - 1)),
    }
}

/// Resolve a DISTRIBUTE/REDISTRIBUTE body against a template (pure,
/// reused by the remapping-graph construction).
pub fn resolve_distribution(
    env: &MappingEnv,
    symbols: &BTreeMap<String, Symbol>,
    default_grid: Option<GridId>,
    t: TemplateId,
    formats: &[DistFormatAst],
    onto: Option<&str>,
) -> Result<Distribution, String> {
    let trank = env.template(t).shape.rank();
    if formats.len() != trank {
        return Err(format!(
            "distribution has {} format(s) but template `{}` has rank {trank}",
            formats.len(),
            env.template(t).name,
        ));
    }
    let grid = match onto {
        Some(g) => match symbols.get(g) {
            Some(Symbol::Grid(id)) => *id,
            _ => return Err(format!("unknown processors grid `{g}`")),
        },
        None => default_grid.ok_or("no PROCESSORS grid declared")?,
    };
    let mut out = Vec::new();
    for f in formats {
        out.push(match f {
            DistFormatAst::Star => DimFormat::Collapsed,
            DistFormatAst::Block(None) => DimFormat::Block(None),
            DistFormatAst::Cyclic(None) => DimFormat::Cyclic(None),
            DistFormatAst::Block(Some(e)) => DimFormat::Block(Some(
                e.const_u64().ok_or("BLOCK size must be a constant")?,
            )),
            DistFormatAst::Cyclic(Some(e)) => DimFormat::Cyclic(Some(
                e.const_u64().ok_or("CYCLIC size must be a constant")?,
            )),
        });
    }
    let d = Distribution::new(grid, out);
    if d.distributed_rank() > env.grid(grid).shape.rank() {
        return Err(format!(
            "distribution onto `{}` uses {} axes but the grid has rank {}",
            env.grid(grid).name,
            d.distributed_rank(),
            env.grid(grid).shape.rank()
        ));
    }
    Ok(d)
}
