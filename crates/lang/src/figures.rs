//! The paper's figure programs, transcribed into the front-end subset.
//!
//! Each constant reproduces one example of Coelho's PPoPP'97 paper (the
//! degraded archive scan loses some distribution parameters; where a
//! parameter is unreadable we chose values that preserve the property
//! the figure demonstrates — see DESIGN.md §4 for the per-figure
//! rationale). Extents are kept small (16, grids of 4) so the simulator
//! runs fast in tests; the experiment harness re-generates the same
//! programs at larger sizes via [`scaled`].

/// Fig. 1 — a realignment immediately followed by a redistribution:
/// `A` is remapped twice although a single direct remapping would do.
pub const FIG1_DIRECT: &str = "\
subroutine fig1
  real :: a(16,16), b(16,16)
!hpf$ processors p(4)
!hpf$ dynamic a, b
!hpf$ align with b :: a
!hpf$ distribute b(block, *) onto p
  a = 1.0
!hpf$ realign a(i, j) with b(j, i)
!hpf$ redistribute b(cyclic, *) onto p
  a = a + 1.0
end subroutine
";

/// Fig. 2 — both `C` remappings are useless: the realignment is undone
/// by the following redistribution (transpose ∘ transposed-distribution
/// = identity), and `C` is not referenced in between.
pub const FIG2_USELESS: &str = "\
subroutine fig2
  real :: b(16,16), c(16,16)
!hpf$ processors p(4)
!hpf$ dynamic b, c
!hpf$ align with b :: c
!hpf$ distribute b(block, *) onto p
  c = 1.0
!hpf$ realign c(i, j) with b(j, i)
!hpf$ redistribute b(*, block) onto p
  c = c + 1.0
end subroutine
";

/// Fig. 3 — redistributing template `T` remaps all five aligned arrays
/// although only `A` and `D` are used afterwards.
pub const FIG3_ALIGNED: &str = "\
subroutine fig3
  real :: a(16,16), b(16,16), c(16,16), d(16,16), e(16,16)
!hpf$ processors p(4)
!hpf$ template t(16,16)
!hpf$ dynamic t
!hpf$ align with t :: a, b, c, d, e
!hpf$ distribute t(block, *) onto p
  a = 1.0
  b = 2.0
  c = a + b
  d = c * 2.0
  e = d - a
!hpf$ redistribute t(cyclic, *) onto p
  a = a + 1.0
  d = d + a
end subroutine
";

/// Fig. 4 — useless argument remappings: consecutive calls to `foo`
/// remap `Y` back and forth; between `foo` and `bla` a direct
/// cyclic→cyclic(2) remapping is possible.
pub const FIG4_ARGS: &str = "\
subroutine fig4
  real :: y(16)
!hpf$ processors p(4)
!hpf$ dynamic y
!hpf$ distribute y(block) onto p
  interface
    subroutine foo(x)
      real :: x(16)
      intent(inout) :: x
!hpf$ distribute x(cyclic) onto p
    end subroutine
    subroutine bla(x)
      real :: x(16)
      intent(in) :: x
!hpf$ distribute x(cyclic(2)) onto p
    end subroutine
  end interface
  y = 1.0
  call foo(y)
  call foo(y)
  call bla(y)
  y = y + 1.0
end subroutine
";

/// Fig. 5 — forbidden: `A` is referenced while its mapping depends on
/// whether the `REALIGN` executed (restriction 1 → compile-time error).
pub const FIG5_AMBIGUOUS: &str = "\
subroutine fig5
  real :: a(16,16)
!hpf$ processors p(4)
!hpf$ processors q(2,2)
!hpf$ template t1(16,16)
!hpf$ template t2(16,16)
!hpf$ dynamic a, t2
!hpf$ align with t1 :: a
!hpf$ distribute t1(block, *) onto p
!hpf$ distribute t2(cyclic, *) onto p
  a = 1.0
  if (a(1,1) > 0.0) then
!hpf$ realign with t2 :: a
    a = 2.0
  endif
!hpf$ redistribute t2(block, block) onto q
  a = a + 1.0
end subroutine
";

/// Fig. 6 — accepted: the mapping *state* is ambiguous after the `IF`,
/// but `A` is not referenced until the final redistribution resolves it.
/// The runtime status descriptor picks the right copy source (Fig. 20).
pub const FIG6_OK: &str = "\
subroutine fig6
  real :: a(16)
!hpf$ processors p(4)
!hpf$ dynamic a
!hpf$ distribute a(block) onto p
  a = 1.0
  x = a(1)
  if (x > 0.0) then
!hpf$ redistribute a(cyclic)
    x = a(2)
  endif
!hpf$ redistribute a(cyclic(2))
  x = a(3)
end subroutine
";

/// Fig. 8 — a single call whose dummy prescribes a different mapping:
/// the implicit remapping is translated into explicit copies in the
/// caller.
pub const FIG8_CALL: &str = "\
subroutine fig8
  real :: b(16)
!hpf$ processors p(4)
!hpf$ dynamic b
!hpf$ distribute b(cyclic) onto p
  interface
    subroutine callee(a)
      real :: a(16)
      intent(in) :: a
!hpf$ distribute a(block) onto p
    end subroutine
  end interface
  b = 1.0
  call callee(b)
  b = b + 1.0
end subroutine
";

/// Fig. 10 — the paper's running example (`remap`), an ADI-like routine
/// with four remapping statements: one in each `IF` branch, two in the
/// sequential loop. With the added call/entry/exit vertices its
/// remapping graph has seven vertices (Fig. 11); after optimization `A`
/// is used with versions {0,1,2,3}, `B` only with {0,1}, `C` only with
/// {2,3} (Fig. 12).
pub const FIG10_ADI: &str = "\
subroutine remap(a, m, t)
  integer :: m, t
  real :: a(16,16), b(16,16), c(16,16)
  intent(inout) :: a
!hpf$ processors p(4)
!hpf$ processors q(2,2)
!hpf$ dynamic a
!hpf$ align with a :: b, c
!hpf$ distribute a(block, *) onto p
  b = a + 1.0
  if (b(1,1) > 0.0) then
!hpf$ redistribute a(cyclic, *) onto p
    a = a + b
  else
!hpf$ redistribute a(block, block) onto q
    x = a(3,3)
  endif
  do i = m, t
!hpf$ redistribute a(block, block) onto q
    c = a + 2.0
!hpf$ redistribute a(*, block) onto p
    a = a + c
  enddo
end subroutine
";

/// Fig. 13 — flow-dependent live copy: both branches remap `A` to the
/// same cyclic mapping, but only the THEN branch writes it; on the ELSE
/// path the original block copy `A_0` is still live when the final
/// redistribution wants it back, so no communication is needed there.
pub const FIG13_LIVE: &str = "\
subroutine fig13
  real :: a(16)
!hpf$ processors p(4)
!hpf$ dynamic a
!hpf$ distribute a(block) onto p
  x = a(1)
  if (x > 0.0) then
!hpf$ redistribute a(cyclic)
    a = 2.0
  else
!hpf$ redistribute a(cyclic)
    x = a(3)
  endif
!hpf$ redistribute a(block)
  x = a(5)
end subroutine
";

/// Fig. 15 — a call reached with an ambiguous mapping: legal, because
/// the inserted explicit remapping resolves the ambiguity before the
/// call; the reaching status is saved and restored afterwards (Fig. 18).
pub const FIG15_CALL_STATUS: &str = "\
subroutine fig15
  real :: a(16)
!hpf$ processors p(4)
!hpf$ dynamic a
!hpf$ distribute a(cyclic) onto p
  interface
    subroutine foo(x)
      real :: x(16)
      intent(inout) :: x
!hpf$ distribute x(block) onto p
    end subroutine
  end interface
  a = 1.0
  if (a(1) > 0.0) then
!hpf$ redistribute a(cyclic(2))
    a = 2.0
  endif
  call foo(a)
end subroutine
";

/// Fig. 16 — loop-invariant remappings: each iteration remaps
/// block→cyclic→block; the block-restore can be moved after the loop
/// (Fig. 17), after which the in-loop remapping is a runtime no-op from
/// the second iteration on.
pub const FIG16_LOOP: &str = "\
subroutine fig16(t)
  integer :: t
  real :: a(16)
!hpf$ processors p(4)
!hpf$ dynamic a
!hpf$ distribute a(block) onto p
  a = 1.0
  do i = 1, t
!hpf$ redistribute a(cyclic)
    a = a + 1.0
!hpf$ redistribute a(block)
  enddo
  x = a(1)
end subroutine
";

/// Fig. 21 — several leaving mappings at one vertex: after the
/// conditional realignment, the redistribution leaves `A` in one of two
/// different placements. The paper assumes this away (App. A); we
/// reject it with a dedicated diagnostic.
pub const FIG21_MULTI_LEAVING: &str = "\
subroutine fig21
  real :: a(16,16)
!hpf$ processors p(4)
!hpf$ processors q(2,2)
!hpf$ template t(16,16)
!hpf$ dynamic a, t
!hpf$ align a(i, j) with t(i, j)
!hpf$ distribute t(block, *) onto p
  a = 1.0
  if (a(1,1) > 0.0) then
!hpf$ realign a(i, j) with t(j, i)
  endif
!hpf$ redistribute t(block, block) onto q
  a = 2.0
end subroutine
";

/// Sec. 4.3 — the `KILL` directive: `B`'s values are asserted dead, so
/// the redistribution that remaps it moves no data for `B` — even
/// though `B` is referenced afterwards in a way too complex for the
/// conservative use analysis (element-wise redefinition reads as `W`,
/// not `D`).
pub const KILL_EXAMPLE: &str = "\
subroutine killex
  real :: a(16), b(16)
!hpf$ processors p(4)
!hpf$ dynamic a
!hpf$ align with a :: b
!hpf$ distribute a(block) onto p
  a = 1.0
  b = 2.0
  x = a(1) + b(1)
!hpf$ kill b
!hpf$ redistribute a(cyclic)
  a = a + 1.0
  do i = 1, 16
    b(i) = 3.0
  enddo
  x = b(2)
end subroutine
";

/// An ADI-style kernel for the end-to-end experiments (E20): row sweeps
/// under a row-block mapping, column sweeps under a column-block
/// mapping, remapping between the two each iteration.
pub const ADI_KERNEL: &str = "\
subroutine adi(t)
  integer :: t
  real :: u(16,16)
!hpf$ processors p(4)
!hpf$ dynamic u
!hpf$ distribute u(block, *) onto p
  u = 1.0
  do k = 1, t
    do j = 2, 16
      u(1, j) = u(1, j) + u(1, j - 1)
    enddo
!hpf$ redistribute u(*, block) onto p
    do i = 2, 16
      u(i, 1) = u(i, 1) + u(i - 1, 1)
    enddo
!hpf$ redistribute u(block, *) onto p
  enddo
  x = u(8, 8)
end subroutine
";

/// A 2-D-FFT-style kernel (E21): butterflies along rows, transpose by
/// redistribution, butterflies along the other axis, transpose back.
/// The back-transpose only reads, so the original copy is still live.
pub const FFT_KERNEL: &str = "\
subroutine fft2d
  real :: f(16,16)
!hpf$ processors p(4)
!hpf$ dynamic f
!hpf$ distribute f(block, *) onto p
  f = 1.0
!hpf$ redistribute f(*, block) onto p
  x = f(1, 1)
!hpf$ redistribute f(block, *) onto p
  x = f(2, 2)
end subroutine
";

/// An LU-style kernel (E22): the factorization prefers CYCLIC for load
/// balance, the triangular solves prefer BLOCK.
pub const LU_KERNEL: &str = "\
subroutine lu
  real :: m(16,16)
!hpf$ processors p(4)
!hpf$ dynamic m
!hpf$ distribute m(block, *) onto p
  m = 4.0
!hpf$ redistribute m(cyclic, *) onto p
  do k = 1, 15
    m(k, k) = m(k, k) + 1.0
  enddo
!hpf$ redistribute m(block, *) onto p
  x = m(1, 1)
end subroutine
";

/// All named figures, for data-driven tests.
pub fn all() -> Vec<(&'static str, &'static str)> {
    vec![
        ("fig1", FIG1_DIRECT),
        ("fig2", FIG2_USELESS),
        ("fig3", FIG3_ALIGNED),
        ("fig4", FIG4_ARGS),
        ("fig6", FIG6_OK),
        ("fig8", FIG8_CALL),
        ("fig10", FIG10_ADI),
        ("fig13", FIG13_LIVE),
        ("fig15", FIG15_CALL_STATUS),
        ("fig16", FIG16_LOOP),
        ("kill", KILL_EXAMPLE),
        ("adi", ADI_KERNEL),
        ("fft", FFT_KERNEL),
        ("lu", LU_KERNEL),
    ]
}

/// Regenerate a figure-style program at size `n` on `p` processors —
/// used by the scaling experiments. Only 1-D kernels support scaling.
pub fn scaled(which: &str, n: u64, p: u64) -> Option<String> {
    match which {
        "fig4" => Some(format!(
            "subroutine fig4\n  real :: y({n})\n!hpf$ processors p({p})\n!hpf$ dynamic y\n\
             !hpf$ distribute y(block) onto p\n  interface\n    subroutine foo(x)\n      \
             real :: x({n})\n      intent(inout) :: x\n!hpf$ distribute x(cyclic) onto p\n    \
             end subroutine\n    subroutine bla(x)\n      real :: x({n})\n      \
             intent(in) :: x\n!hpf$ distribute x(cyclic(2)) onto p\n    end subroutine\n  \
             end interface\n  y = 1.0\n  call foo(y)\n  call foo(y)\n  call bla(y)\n  \
             y = y + 1.0\nend subroutine\n"
        )),
        "fig16" => Some(format!(
            "subroutine fig16(t)\n  integer :: t\n  real :: a({n})\n!hpf$ processors p({p})\n\
             !hpf$ dynamic a\n!hpf$ distribute a(block) onto p\n  a = 1.0\n  do i = 1, t\n\
             !hpf$ redistribute a(cyclic)\n    a = a + 1.0\n!hpf$ redistribute a(block)\n  \
             enddo\n  x = a(1)\nend subroutine\n"
        )),
        "fft" => Some(format!(
            "subroutine fft2d\n  real :: f({n},{n})\n!hpf$ processors p({p})\n!hpf$ dynamic f\n\
             !hpf$ distribute f(block, *) onto p\n  f = 1.0\n\
             !hpf$ redistribute f(*, block) onto p\n  x = f(1, 1)\n\
             !hpf$ redistribute f(block, *) onto p\n  x = f(2, 2)\nend subroutine\n"
        )),
        "adi" => Some(format!(
            "subroutine adi(t)\n  integer :: t\n  real :: u({n},{n})\n!hpf$ processors p({p})\n\
             !hpf$ dynamic u\n!hpf$ distribute u(block, *) onto p\n  u = 1.0\n  do k = 1, t\n    \
             do j = 2, {n}\n      u(1, j) = u(1, j) + u(1, j - 1)\n    enddo\n\
             !hpf$ redistribute u(*, block) onto p\n    do i = 2, {n}\n      \
             u(i, 1) = u(i, 1) + u(i - 1, 1)\n    enddo\n!hpf$ redistribute u(block, *) onto p\n  \
             enddo\n  x = u(2, 2)\nend subroutine\n"
        )),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn all_figures_parse() {
        for (name, src) in all() {
            parse_program(src).unwrap_or_else(|e| panic!("figure {name} failed to parse: {e:?}"));
        }
        parse_program(FIG5_AMBIGUOUS).expect("fig5 parses (it fails later, in rgraph)");
        parse_program(FIG21_MULTI_LEAVING).expect("fig21 parses (it fails later, in rgraph)");
    }

    #[test]
    fn scaled_programs_parse() {
        for which in ["fig4", "fig16", "fft", "adi"] {
            let src = scaled(which, 64, 8).unwrap();
            parse_program(&src).unwrap_or_else(|e| panic!("scaled {which}: {e:?}"));
        }
        assert!(scaled("nope", 8, 2).is_none());
    }
}
