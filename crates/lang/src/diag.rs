//! Compiler diagnostics.

use crate::span::Span;

/// Diagnostic severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Compilation cannot proceed.
    Error,
    /// Suspicious but accepted (e.g. an ambiguous mapping *state* that
    /// is legal because the array is not referenced — paper Fig. 6).
    Warning,
}

/// One diagnostic message attached to a source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Severity.
    pub severity: Severity,
    /// Where in the source.
    pub span: Span,
    /// Human-readable message.
    pub message: String,
    /// Stable machine-checkable code (`E###`/`W###`), used by tests.
    pub code: &'static str,
}

impl Diagnostic {
    /// A new error diagnostic.
    pub fn error(code: &'static str, span: Span, message: impl Into<String>) -> Self {
        Diagnostic { severity: Severity::Error, span, message: message.into(), code }
    }

    /// A new warning diagnostic.
    pub fn warning(code: &'static str, span: Span, message: impl Into<String>) -> Self {
        Diagnostic { severity: Severity::Warning, span, message: message.into(), code }
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        write!(f, "{sev}[{}] {}: {}", self.code, self.span, self.message)
    }
}

/// Diagnostic codes used across the front-end and the remapping-graph
/// construction. Centralized so tests can assert on them.
pub mod codes {
    /// Lexical error.
    pub const LEX: &str = "E001";
    /// Parse error.
    pub const PARSE: &str = "E002";
    /// Unknown name.
    pub const UNRESOLVED: &str = "E010";
    /// Duplicate declaration.
    pub const DUPLICATE: &str = "E011";
    /// Directive shape error (rank mismatch, bad subscript, …).
    pub const BAD_DIRECTIVE: &str = "E012";
    /// `INHERIT`/transcriptive mapping — forbidden by the scheme
    /// (paper restriction 3).
    pub const TRANSCRIPTIVE: &str = "E013";
    /// Call to a routine without an explicit interface
    /// (paper restriction 2).
    pub const NO_INTERFACE: &str = "E014";
    /// Remapping of a non-`DYNAMIC` object.
    pub const NOT_DYNAMIC: &str = "E015";
    /// Mapping algebra error (bad block size, alignment overflow, …).
    pub const MAPPING: &str = "E016";
    /// Reference with an ambiguous mapping (paper restriction 1,
    /// Fig. 5).
    pub const AMBIGUOUS_REF: &str = "E020";
    /// A remapping statement with several possible leaving mappings
    /// (paper App. A, Fig. 21 — rejected under the paper's simplifying
    /// assumption).
    pub const MULTI_LEAVING: &str = "E021";
    /// Wrong number/shape of call arguments.
    pub const BAD_CALL: &str = "E022";
    /// Ambiguous mapping *state* accepted because unreferenced
    /// (paper Fig. 6) — informational warning.
    pub const AMBIGUOUS_STATE: &str = "W030";
}
