//! Pretty-printer: AST → canonical source. Used for golden tests and
//! for displaying the statically-mapped program the compiler produces.

use crate::ast::*;

/// Render a whole program.
pub fn program_to_string(p: &Program) -> String {
    let mut s = String::new();
    for r in &p.routines {
        routine_to_string_into(r, &mut s);
        s.push('\n');
    }
    s
}

/// Render one routine.
pub fn routine_to_string(r: &Routine) -> String {
    let mut s = String::new();
    routine_to_string_into(r, &mut s);
    s
}

fn routine_to_string_into(r: &Routine, s: &mut String) {
    s.push_str("subroutine ");
    s.push_str(&r.name);
    if !r.params.is_empty() {
        s.push('(');
        s.push_str(&r.params.join(", "));
        s.push(')');
    }
    s.push('\n');
    for d in &r.decls {
        s.push_str("  ");
        s.push_str(&decl_to_string(d));
        s.push('\n');
    }
    for d in &r.directives {
        s.push_str(&directive_to_string(d));
        s.push('\n');
    }
    if !r.interfaces.is_empty() {
        s.push_str("  interface\n");
        for itf in &r.interfaces {
            s.push_str("    subroutine ");
            s.push_str(&itf.name);
            s.push('(');
            s.push_str(&itf.params.join(", "));
            s.push_str(")\n");
            for d in &itf.decls {
                s.push_str("      ");
                s.push_str(&decl_to_string(d));
                s.push('\n');
            }
            for d in &itf.directives {
                s.push_str(&directive_to_string(d));
                s.push('\n');
            }
            s.push_str("    end subroutine\n");
        }
        s.push_str("  end interface\n");
    }
    for st in &r.body {
        stmt_to_string_into(st, 1, s);
    }
    s.push_str("end subroutine ");
    s.push_str(&r.name);
    s.push('\n');
}

fn decl_to_string(d: &Decl) -> String {
    match d {
        Decl::Type { ty, entities, .. } => {
            let tn = match ty {
                TypeSpec::Real => "real",
                TypeSpec::Integer => "integer",
                TypeSpec::Logical => "logical",
            };
            let es: Vec<String> = entities
                .iter()
                .map(|e| {
                    if e.dims.is_empty() {
                        e.name.clone()
                    } else {
                        format!(
                            "{}({})",
                            e.name,
                            e.dims.iter().map(expr_to_string).collect::<Vec<_>>().join(", ")
                        )
                    }
                })
                .collect();
            format!("{tn} :: {}", es.join(", "))
        }
        Decl::Intent { intent, names, .. } => {
            format!("intent({}) :: {}", intent_str(*intent), names.join(", "))
        }
    }
}

fn intent_str(i: Intent) -> &'static str {
    match i {
        Intent::In => "in",
        Intent::Out => "out",
        Intent::InOut => "inout",
    }
}

/// Render a directive (with its `!hpf$` prefix, no indentation —
/// directives conventionally start in column 1).
pub fn directive_to_string(d: &Directive) -> String {
    match d {
        Directive::Processors { name, dims, .. } => {
            format!("!hpf$ processors {name}({})", exprs(dims))
        }
        Directive::Template { name, dims, .. } => {
            format!("!hpf$ template {name}({})", exprs(dims))
        }
        Directive::Dynamic { names, .. } => format!("!hpf$ dynamic {}", names.join(", ")),
        Directive::Align { spec, .. } => format!("!hpf$ align {}", align_spec(spec)),
        Directive::Realign { spec, .. } => format!("!hpf$ realign {}", align_spec(spec)),
        Directive::Distribute { target, formats, onto, .. } => {
            format!("!hpf$ distribute {target}({}){}", fmts(formats), onto_str(onto))
        }
        Directive::Redistribute { target, formats, onto, .. } => {
            format!("!hpf$ redistribute {target}({}){}", fmts(formats), onto_str(onto))
        }
        Directive::Kill { names, .. } => format!("!hpf$ kill {}", names.join(", ")),
        Directive::Inherit { names, .. } => format!("!hpf$ inherit {}", names.join(", ")),
    }
}

fn onto_str(onto: &Option<String>) -> String {
    onto.as_ref().map(|g| format!(" onto {g}")).unwrap_or_default()
}

fn align_spec(spec: &AlignSpec) -> String {
    match spec {
        AlignSpec::With { target, arrays } => {
            format!("with {target} :: {}", arrays.join(", "))
        }
        AlignSpec::Explicit { array, dummies, target, subscripts } => {
            let subs: Vec<String> = subscripts
                .iter()
                .map(|s| match s {
                    AlignSub::Star => "*".to_string(),
                    AlignSub::Affine(e) => expr_to_string(e),
                })
                .collect();
            if dummies.is_empty() {
                format!("{array} with {target}({})", subs.join(", "))
            } else {
                format!("{array}({}) with {target}({})", dummies.join(", "), subs.join(", "))
            }
        }
    }
}

fn fmts(formats: &[DistFormatAst]) -> String {
    formats
        .iter()
        .map(|f| match f {
            DistFormatAst::Star => "*".to_string(),
            DistFormatAst::Block(None) => "block".to_string(),
            DistFormatAst::Block(Some(e)) => format!("block({})", expr_to_string(e)),
            DistFormatAst::Cyclic(None) => "cyclic".to_string(),
            DistFormatAst::Cyclic(Some(e)) => format!("cyclic({})", expr_to_string(e)),
        })
        .collect::<Vec<_>>()
        .join(", ")
}

fn exprs(es: &[Expr]) -> String {
    es.iter().map(expr_to_string).collect::<Vec<_>>().join(", ")
}

fn stmt_to_string_into(s: &Stmt, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    match s {
        Stmt::Assign { lhs, rhs, .. } => {
            out.push_str(&pad);
            out.push_str(&lhs.name);
            if !lhs.subs.is_empty() {
                out.push('(');
                out.push_str(&exprs(&lhs.subs));
                out.push(')');
            }
            out.push_str(" = ");
            out.push_str(&expr_to_string(rhs));
            out.push('\n');
        }
        Stmt::If { cond, then_body, else_body, .. } => {
            out.push_str(&pad);
            out.push_str("if (");
            out.push_str(&expr_to_string(cond));
            out.push_str(") then\n");
            for st in then_body {
                stmt_to_string_into(st, depth + 1, out);
            }
            if !else_body.is_empty() {
                out.push_str(&pad);
                out.push_str("else\n");
                for st in else_body {
                    stmt_to_string_into(st, depth + 1, out);
                }
            }
            out.push_str(&pad);
            out.push_str("endif\n");
        }
        Stmt::Do { var, lo, hi, step, body, .. } => {
            out.push_str(&pad);
            out.push_str(&format!("do {var} = {}, {}", expr_to_string(lo), expr_to_string(hi)));
            if let Some(st) = step {
                out.push_str(&format!(", {}", expr_to_string(st)));
            }
            out.push('\n');
            for st in body {
                stmt_to_string_into(st, depth + 1, out);
            }
            out.push_str(&pad);
            out.push_str("enddo\n");
        }
        Stmt::Call { name, args, .. } => {
            out.push_str(&pad);
            out.push_str(&format!("call {name}({})\n", exprs(args)));
        }
        Stmt::Directive(d) => {
            out.push_str(&directive_to_string(d));
            out.push('\n');
        }
        Stmt::Return { .. } => {
            out.push_str(&pad);
            out.push_str("return\n");
        }
    }
}

/// Render an expression with minimal parenthesization (conservative:
/// parens around every nested binary operation).
pub fn expr_to_string(e: &Expr) -> String {
    match e {
        Expr::Int(v, _) => v.to_string(),
        Expr::Real(v, _) => {
            if v.fract() == 0.0 && v.abs() < 1e15 {
                format!("{v:.1}")
            } else {
                v.to_string()
            }
        }
        Expr::Var(n, _) => n.clone(),
        Expr::Ref { name, subs, .. } => format!("{name}({})", exprs(subs)),
        Expr::Bin { op, l, r, .. } => {
            let ls = wrap(l);
            let rs = wrap(r);
            format!("{ls} {} {rs}", binop_str(*op))
        }
        Expr::Un { op, e, .. } => match op {
            UnOp::Neg => format!("-{}", wrap(e)),
            UnOp::Not => format!(".not. {}", wrap(e)),
        },
    }
}

fn wrap(e: &Expr) -> String {
    match e {
        Expr::Bin { .. } => format!("({})", expr_to_string(e)),
        _ => expr_to_string(e),
    }
}

fn binop_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Pow => "**",
        BinOp::Lt => "<",
        BinOp::Gt => ">",
        BinOp::Le => "<=",
        BinOp::Ge => ">=",
        BinOp::Eq => "==",
        BinOp::Ne => "/=",
        BinOp::And => ".and.",
        BinOp::Or => ".or.",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    /// Pretty-printed output must re-parse to the same AST (modulo
    /// spans, which `PartialEq` on the AST includes — so we compare the
    /// *second* round trip against the first).
    #[test]
    fn roundtrip_stability() {
        let src = "subroutine s(a, t)\n\
                   integer :: t\n\
                   real :: a(8,8), b(8,8)\n\
                   !hpf$ processors p(4)\n\
                   !hpf$ dynamic a\n\
                   !hpf$ align with a :: b\n\
                   !hpf$ distribute a(block, *) onto p\n\
                   b = a + 1.5\n\
                   if (b(1,1) > 0.0) then\n\
                   !hpf$ redistribute a(cyclic, *)\n\
                   a = -a\n\
                   endif\n\
                   do i = 1, t\n\
                   a(i, i) = 2.0 * a(i, i)\n\
                   enddo\n\
                   end";
        let p1 = parse_program(src).unwrap();
        let printed1 = program_to_string(&p1);
        let p2 = parse_program(&printed1).unwrap();
        let printed2 = program_to_string(&p2);
        assert_eq!(printed1, printed2);
    }
}
