//! Front-end for the HPF subset the paper's compilation scheme needs.
//!
//! The PPoPP'97 scheme (Coelho, *Compiling Dynamic Mappings with Array
//! Copies*) consumes: array declarations, the HPF mapping directives
//! (`PROCESSORS`, `TEMPLATE`, `DYNAMIC`, `ALIGN`, `DISTRIBUTE`,
//! `REALIGN`, `REDISTRIBUTE`, plus the paper's `KILL` extension),
//! explicit interfaces with `INTENT`, and structured control flow
//! (`IF`/`DO`/`CALL`/assignments). That is exactly what this front-end
//! parses — a Fortran-90-flavoured, line-oriented subset.
//!
//! Pipeline: [`lexer`] → [`parser`] → [`sema`] (name resolution,
//! directive checking, [`hpfc_mapping::MappingEnv`] construction).
//! [`figures`] holds every example program of the paper as a compilable
//! source string; the test-suites and experiment harness build on them.
//!
//! Deliberate restrictions, straight from the paper (Sec. 2.1):
//! * `INHERIT` / transcriptive mappings are parsed and **rejected**;
//! * calls to routines without an explicit interface are rejected;
//! * remapping a variable not declared `DYNAMIC` is rejected.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod diag;
pub mod figures;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod sema;
pub mod span;
pub mod token;

pub use ast::*;
pub use diag::{Diagnostic, Severity};
pub use parser::parse_program;
pub use sema::{analyze, Module};
pub use span::Span;

/// Parse and semantically analyze a source string in one call.
///
/// This is the entry point the rest of the workspace uses:
///
/// ```
/// let m = hpfc_lang::frontend(hpfc_lang::figures::FIG10_ADI).unwrap();
/// assert_eq!(m.routines.len(), 1);
/// ```
pub fn frontend(src: &str) -> Result<sema::Module, Vec<diag::Diagnostic>> {
    let program = parser::parse_program(src)?;
    sema::analyze(&program)
}
