//! Recursive-descent parser for the HPF subset.
//!
//! The grammar is line-oriented: one statement per logical line
//! (continuations handled by the lexer). Keywords are contextual
//! identifiers, as in Fortran.

use crate::ast::*;
use crate::diag::{codes, Diagnostic};
use crate::lexer::lex;
use crate::span::Span;
use crate::token::{Tok, Token};

/// Parse a program (one or more subroutines).
pub fn parse_program(src: &str) -> Result<Program, Vec<Diagnostic>> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0, errs: Vec::new() };
    let mut routines = Vec::new();
    p.skip_newlines();
    while !p.at_eof() {
        match p.routine() {
            Some(r) => routines.push(r),
            None => break,
        }
        p.skip_newlines();
    }
    if routines.is_empty() && p.errs.is_empty() {
        p.errs.push(Diagnostic::error(codes::PARSE, Span::default(), "no subroutine found"));
    }
    if p.errs.is_empty() {
        Ok(Program { routines })
    } else {
        Err(p.errs)
    }
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
    errs: Vec<Diagnostic>,
}

impl Parser {
    // ----- token plumbing ---------------------------------------------

    fn peek(&self) -> &Tok {
        &self.toks[self.pos.min(self.toks.len() - 1)].tok
    }

    fn peek_span(&self) -> Span {
        self.toks[self.pos.min(self.toks.len() - 1)].span
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos.min(self.toks.len() - 1)].clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), Tok::Eof)
    }

    fn skip_newlines(&mut self) {
        while matches!(self.peek(), Tok::Newline) {
            self.bump();
        }
    }

    fn eat(&mut self, want: &Tok) -> bool {
        if self.peek() == want {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, want: Tok) -> bool {
        if self.eat(&want) {
            true
        } else {
            let sp = self.peek_span();
            let found = self.peek().clone();
            self.errs.push(Diagnostic::error(
                codes::PARSE,
                sp,
                format!("expected {want}, found {found}"),
            ));
            false
        }
    }

    /// Consume an identifier-token and return its text.
    fn ident(&mut self) -> Option<String> {
        if let Tok::Ident(s) = self.peek().clone() {
            self.bump();
            Some(s)
        } else {
            let sp = self.peek_span();
            let found = self.peek().clone();
            self.errs.push(Diagnostic::error(
                codes::PARSE,
                sp,
                format!("expected identifier, found {found}"),
            ));
            None
        }
    }

    /// Whether the current token is the given contextual keyword.
    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> bool {
        if self.eat_kw(kw) {
            true
        } else {
            let sp = self.peek_span();
            let found = self.peek().clone();
            self.errs.push(Diagnostic::error(
                codes::PARSE,
                sp,
                format!("expected `{kw}`, found {found}"),
            ));
            false
        }
    }

    /// Skip to end of the current logical line (error recovery).
    fn sync_line(&mut self) {
        while !matches!(self.peek(), Tok::Newline | Tok::Eof) {
            self.bump();
        }
    }

    fn end_of_stmt(&mut self) {
        if !matches!(self.peek(), Tok::Newline | Tok::Eof) {
            let sp = self.peek_span();
            let found = self.peek().clone();
            self.errs.push(Diagnostic::error(
                codes::PARSE,
                sp,
                format!("unexpected {found} at end of statement"),
            ));
            self.sync_line();
        }
        self.skip_newlines();
    }

    // ----- routines ----------------------------------------------------

    fn routine(&mut self) -> Option<Routine> {
        let start = self.peek_span();
        if !self.expect_kw("subroutine") {
            self.sync_line();
            return None;
        }
        let name = self.ident()?;
        let mut params = Vec::new();
        if self.eat(&Tok::LParen)
            && !self.eat(&Tok::RParen) {
                loop {
                    params.push(self.ident()?);
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
                self.expect(Tok::RParen);
            }
        self.end_of_stmt();

        let mut decls = Vec::new();
        let mut directives = Vec::new();
        let mut interfaces = Vec::new();
        let mut body = Vec::new();

        loop {
            self.skip_newlines();
            if self.at_eof() {
                self.errs.push(Diagnostic::error(
                    codes::PARSE,
                    self.peek_span(),
                    format!("missing `end subroutine` for `{name}`"),
                ));
                break;
            }
            if self.at_kw("end") {
                self.bump();
                self.eat_kw("subroutine");
                if let Tok::Ident(_) = self.peek() {
                    self.bump(); // optional repeated name
                }
                self.end_of_stmt();
                break;
            }
            if self.at_kw("interface") {
                self.bump();
                self.end_of_stmt();
                self.interface_block(&mut interfaces);
                continue;
            }
            if let Some(d) = self.try_decl() {
                decls.push(d);
                continue;
            }
            if matches!(self.peek(), Tok::Hpf) {
                let d = self.directive()?;
                if d.is_executable() {
                    body.push(Stmt::Directive(d));
                } else {
                    directives.push(d);
                }
                continue;
            }
            if let Some(s) = self.stmt() {
                body.push(s);
            } else {
                self.sync_line();
                self.skip_newlines();
            }
        }

        let span = start.merge(self.peek_span());
        Some(Routine { name, params, decls, directives, interfaces, body, span })
    }

    fn interface_block(&mut self, out: &mut Vec<InterfaceRoutine>) {
        loop {
            self.skip_newlines();
            if self.at_eof() {
                self.errs.push(Diagnostic::error(
                    codes::PARSE,
                    self.peek_span(),
                    "unterminated interface block",
                ));
                return;
            }
            if self.at_kw("end") {
                self.bump();
                self.expect_kw("interface");
                self.end_of_stmt();
                return;
            }
            if let Some(ir) = self.interface_routine() {
                out.push(ir);
            } else {
                self.sync_line();
            }
        }
    }

    fn interface_routine(&mut self) -> Option<InterfaceRoutine> {
        let start = self.peek_span();
        if !self.expect_kw("subroutine") {
            return None;
        }
        let name = self.ident()?;
        let mut params = Vec::new();
        if self.eat(&Tok::LParen)
            && !self.eat(&Tok::RParen) {
                loop {
                    params.push(self.ident()?);
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
                self.expect(Tok::RParen);
            }
        self.end_of_stmt();
        let mut decls = Vec::new();
        let mut directives = Vec::new();
        loop {
            self.skip_newlines();
            if self.at_eof() {
                break;
            }
            if self.at_kw("end") {
                self.bump();
                self.eat_kw("subroutine");
                if let Tok::Ident(_) = self.peek() {
                    self.bump();
                }
                self.end_of_stmt();
                break;
            }
            if let Some(d) = self.try_decl() {
                decls.push(d);
                continue;
            }
            if matches!(self.peek(), Tok::Hpf) {
                if let Some(d) = self.directive() {
                    directives.push(d);
                }
                continue;
            }
            let sp = self.peek_span();
            self.errs.push(Diagnostic::error(
                codes::PARSE,
                sp,
                "only declarations and directives allowed in an interface body",
            ));
            self.sync_line();
        }
        let span = start.merge(self.peek_span());
        Some(InterfaceRoutine { name, params, decls, directives, span })
    }

    // ----- declarations -------------------------------------------------

    /// Try to parse a declaration line; `None` if the line is not one.
    fn try_decl(&mut self) -> Option<Decl> {
        let ty = if self.at_kw("real") {
            Some(TypeSpec::Real)
        } else if self.at_kw("integer") {
            Some(TypeSpec::Integer)
        } else if self.at_kw("logical") {
            Some(TypeSpec::Logical)
        } else {
            None
        };
        if let Some(ty) = ty {
            let span = self.peek_span();
            self.bump();
            // Optional `dimension(…)` attribute applying to all entities.
            let mut common_dims = Vec::new();
            if self.eat(&Tok::Comma)
                && self.expect_kw("dimension") && self.expect(Tok::LParen) {
                    loop {
                        common_dims.push(self.expr()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                    self.expect(Tok::RParen);
                }
            self.eat(&Tok::DoubleColon);
            let mut entities = Vec::new();
            loop {
                let name = self.ident()?;
                let mut dims = common_dims.clone();
                if self.eat(&Tok::LParen) {
                    dims.clear();
                    loop {
                        dims.push(self.expr()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                    self.expect(Tok::RParen);
                }
                entities.push(EntityDecl { name, dims });
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.end_of_stmt();
            return Some(Decl::Type { ty, entities, span });
        }
        if self.at_kw("intent") {
            let span = self.peek_span();
            self.bump();
            self.expect(Tok::LParen);
            let intent = if self.eat_kw("inout") {
                Intent::InOut
            } else if self.eat_kw("in") {
                Intent::In
            } else if self.eat_kw("out") {
                Intent::Out
            } else {
                self.errs.push(Diagnostic::error(
                    codes::PARSE,
                    self.peek_span(),
                    "expected IN, OUT or INOUT",
                ));
                Intent::InOut
            };
            self.expect(Tok::RParen);
            self.eat(&Tok::DoubleColon);
            let mut names = Vec::new();
            loop {
                names.push(self.ident()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.end_of_stmt();
            return Some(Decl::Intent { intent, names, span });
        }
        None
    }

    // ----- directives -----------------------------------------------------

    fn directive(&mut self) -> Option<Directive> {
        let span = self.peek_span();
        self.expect(Tok::Hpf);
        let kw = self.ident()?;
        let d = match kw.as_str() {
            "processors" => {
                let name = self.ident()?;
                let dims = self.paren_expr_list()?;
                Directive::Processors { name, dims, span }
            }
            "template" => {
                let name = self.ident()?;
                let dims = self.paren_expr_list()?;
                Directive::Template { name, dims, span }
            }
            "dynamic" => {
                self.eat(&Tok::DoubleColon);
                let names = self.name_list()?;
                Directive::Dynamic { names, span }
            }
            "align" | "realign" => {
                let spec = self.align_spec()?;
                if kw == "align" {
                    Directive::Align { spec, span }
                } else {
                    Directive::Realign { spec, span }
                }
            }
            "distribute" | "redistribute" => {
                let target = self.ident()?;
                let formats = self.dist_formats()?;
                let onto = if self.eat_kw("onto") { Some(self.ident()?) } else { None };
                if kw == "distribute" {
                    Directive::Distribute { target, formats, onto, span }
                } else {
                    Directive::Redistribute { target, formats, onto, span }
                }
            }
            "kill" => {
                self.eat(&Tok::DoubleColon);
                let names = self.name_list()?;
                Directive::Kill { names, span }
            }
            "inherit" => {
                self.eat(&Tok::DoubleColon);
                let names = self.name_list()?;
                Directive::Inherit { names, span }
            }
            other => {
                self.errs.push(Diagnostic::error(
                    codes::PARSE,
                    span,
                    format!("unknown HPF directive `{other}`"),
                ));
                self.sync_line();
                self.skip_newlines();
                return None;
            }
        };
        self.end_of_stmt();
        Some(d)
    }

    fn align_spec(&mut self) -> Option<AlignSpec> {
        if self.eat_kw("with") {
            // ALIGN WITH T :: A, B
            let target = self.ident()?;
            self.expect(Tok::DoubleColon);
            let arrays = self.name_list()?;
            return Some(AlignSpec::With { target, arrays });
        }
        // ALIGN A(i,j) WITH T(j, i)
        let array = self.ident()?;
        let mut dummies = Vec::new();
        if self.eat(&Tok::LParen) {
            loop {
                dummies.push(self.ident()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(Tok::RParen);
        }
        self.expect_kw("with");
        let target = self.ident()?;
        let mut subscripts = Vec::new();
        if self.eat(&Tok::LParen) {
            loop {
                if self.eat(&Tok::Star) {
                    subscripts.push(AlignSub::Star);
                } else {
                    subscripts.push(AlignSub::Affine(self.expr()?));
                }
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(Tok::RParen);
        }
        Some(AlignSpec::Explicit { array, dummies, target, subscripts })
    }

    fn dist_formats(&mut self) -> Option<Vec<DistFormatAst>> {
        let mut v = Vec::new();
        self.expect(Tok::LParen);
        loop {
            if self.eat(&Tok::Star) {
                v.push(DistFormatAst::Star);
            } else if self.eat_kw("block") {
                let arg =
                    if self.eat(&Tok::LParen) {
                        let e = self.expr()?;
                        self.expect(Tok::RParen);
                        Some(e)
                    } else {
                        None
                    };
                v.push(DistFormatAst::Block(arg));
            } else if self.eat_kw("cyclic") {
                let arg =
                    if self.eat(&Tok::LParen) {
                        let e = self.expr()?;
                        self.expect(Tok::RParen);
                        Some(e)
                    } else {
                        None
                    };
                v.push(DistFormatAst::Cyclic(arg));
            } else {
                self.errs.push(Diagnostic::error(
                    codes::PARSE,
                    self.peek_span(),
                    "expected BLOCK, CYCLIC or `*`",
                ));
                return None;
            }
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        self.expect(Tok::RParen);
        Some(v)
    }

    fn name_list(&mut self) -> Option<Vec<String>> {
        let mut v = vec![self.ident()?];
        while self.eat(&Tok::Comma) {
            v.push(self.ident()?);
        }
        Some(v)
    }

    fn paren_expr_list(&mut self) -> Option<Vec<Expr>> {
        self.expect(Tok::LParen);
        let mut v = vec![self.expr()?];
        while self.eat(&Tok::Comma) {
            v.push(self.expr()?);
        }
        self.expect(Tok::RParen);
        Some(v)
    }

    // ----- statements ----------------------------------------------------

    fn stmt(&mut self) -> Option<Stmt> {
        let span = self.peek_span();
        if self.at_kw("if") {
            return self.if_stmt();
        }
        if self.at_kw("do") {
            return self.do_stmt();
        }
        if self.at_kw("call") {
            self.bump();
            let name = self.ident()?;
            let args = if self.eat(&Tok::LParen) {
                if self.eat(&Tok::RParen) {
                    Vec::new()
                } else {
                    let mut v = vec![self.expr()?];
                    while self.eat(&Tok::Comma) {
                        v.push(self.expr()?);
                    }
                    self.expect(Tok::RParen);
                    v
                }
            } else {
                Vec::new()
            };
            self.end_of_stmt();
            return Some(Stmt::Call { name, args, span });
        }
        if self.at_kw("return") {
            self.bump();
            self.end_of_stmt();
            return Some(Stmt::Return { span });
        }
        if self.at_kw("continue") {
            self.bump();
            self.end_of_stmt();
            // `CONTINUE` is a no-op; encode as empty return-less marker.
            return self.stmt_or_next();
        }
        // Assignment.
        if let Tok::Ident(_) = self.peek() {
            let name = self.ident()?;
            let mut subs = Vec::new();
            if self.eat(&Tok::LParen) {
                loop {
                    subs.push(self.expr()?);
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
                self.expect(Tok::RParen);
            }
            self.expect(Tok::Assign);
            let rhs = self.expr()?;
            self.end_of_stmt();
            return Some(Stmt::Assign { lhs: LValue { name, subs, span }, rhs, span });
        }
        let found = self.peek().clone();
        self.errs.push(Diagnostic::error(
            codes::PARSE,
            span,
            format!("expected a statement, found {found}"),
        ));
        None
    }

    /// After a no-op line, parse the next statement if any.
    fn stmt_or_next(&mut self) -> Option<Stmt> {
        self.skip_newlines();
        if self.at_eof() || self.at_kw("end") || self.at_kw("else") || self.at_kw("endif")
            || self.at_kw("enddo")
        {
            None
        } else if matches!(self.peek(), Tok::Hpf) {
            self.directive().map(Stmt::Directive)
        } else {
            self.stmt()
        }
    }

    fn if_stmt(&mut self) -> Option<Stmt> {
        let span = self.peek_span();
        self.expect_kw("if");
        self.expect(Tok::LParen);
        let cond = self.expr()?;
        self.expect(Tok::RParen);
        self.expect_kw("then");
        self.end_of_stmt();
        let mut then_body = Vec::new();
        let mut else_body = Vec::new();
        let mut in_else = false;
        loop {
            self.skip_newlines();
            if self.at_eof() {
                self.errs.push(Diagnostic::error(codes::PARSE, span, "unterminated IF"));
                return None;
            }
            if self.at_kw("endif") {
                self.bump();
                self.end_of_stmt();
                break;
            }
            if self.at_kw("end") && matches!(self.peek2(), Tok::Ident(s) if s == "if") {
                self.bump();
                self.bump();
                self.end_of_stmt();
                break;
            }
            if self.at_kw("else") {
                self.bump();
                in_else = true;
                self.end_of_stmt();
                continue;
            }
            let s = if matches!(self.peek(), Tok::Hpf) {
                self.directive().map(Stmt::Directive)
            } else {
                self.stmt()
            };
            match s {
                Some(s) => {
                    if in_else {
                        else_body.push(s)
                    } else {
                        then_body.push(s)
                    }
                }
                None => self.sync_line(),
            }
        }
        Some(Stmt::If { cond, then_body, else_body, span })
    }

    fn do_stmt(&mut self) -> Option<Stmt> {
        let span = self.peek_span();
        self.expect_kw("do");
        let var = self.ident()?;
        self.expect(Tok::Assign);
        let lo = self.expr()?;
        self.expect(Tok::Comma);
        let hi = self.expr()?;
        let step = if self.eat(&Tok::Comma) { Some(self.expr()?) } else { None };
        self.end_of_stmt();
        let mut body = Vec::new();
        loop {
            self.skip_newlines();
            if self.at_eof() {
                self.errs.push(Diagnostic::error(codes::PARSE, span, "unterminated DO"));
                return None;
            }
            if self.at_kw("enddo") {
                self.bump();
                self.end_of_stmt();
                break;
            }
            if self.at_kw("end") && matches!(self.peek2(), Tok::Ident(s) if s == "do") {
                self.bump();
                self.bump();
                self.end_of_stmt();
                break;
            }
            let s = if matches!(self.peek(), Tok::Hpf) {
                self.directive().map(Stmt::Directive)
            } else {
                self.stmt()
            };
            match s {
                Some(s) => body.push(s),
                None => self.sync_line(),
            }
        }
        Some(Stmt::Do { var, lo, hi, step, body, span })
    }

    // ----- expressions -----------------------------------------------------

    fn expr(&mut self) -> Option<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Option<Expr> {
        let mut l = self.and_expr()?;
        while self.eat(&Tok::Or) {
            let r = self.and_expr()?;
            let span = l.span().merge(r.span());
            l = Expr::Bin { op: BinOp::Or, l: Box::new(l), r: Box::new(r), span };
        }
        Some(l)
    }

    fn and_expr(&mut self) -> Option<Expr> {
        let mut l = self.not_expr()?;
        while self.eat(&Tok::And) {
            let r = self.not_expr()?;
            let span = l.span().merge(r.span());
            l = Expr::Bin { op: BinOp::And, l: Box::new(l), r: Box::new(r), span };
        }
        Some(l)
    }

    fn not_expr(&mut self) -> Option<Expr> {
        if self.eat(&Tok::Not) {
            let e = self.not_expr()?;
            let span = e.span();
            Some(Expr::Un { op: UnOp::Not, e: Box::new(e), span })
        } else {
            self.rel_expr()
        }
    }

    fn rel_expr(&mut self) -> Option<Expr> {
        let l = self.add_expr()?;
        let op = match self.peek() {
            Tok::Lt => BinOp::Lt,
            Tok::Gt => BinOp::Gt,
            Tok::Le => BinOp::Le,
            Tok::Ge => BinOp::Ge,
            Tok::EqEq => BinOp::Eq,
            Tok::Ne => BinOp::Ne,
            _ => return Some(l),
        };
        self.bump();
        let r = self.add_expr()?;
        let span = l.span().merge(r.span());
        Some(Expr::Bin { op, l: Box::new(l), r: Box::new(r), span })
    }

    fn add_expr(&mut self) -> Option<Expr> {
        let mut l = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let r = self.mul_expr()?;
            let span = l.span().merge(r.span());
            l = Expr::Bin { op, l: Box::new(l), r: Box::new(r), span };
        }
        Some(l)
    }

    fn mul_expr(&mut self) -> Option<Expr> {
        let mut l = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                _ => break,
            };
            self.bump();
            let r = self.unary_expr()?;
            let span = l.span().merge(r.span());
            l = Expr::Bin { op, l: Box::new(l), r: Box::new(r), span };
        }
        Some(l)
    }

    fn unary_expr(&mut self) -> Option<Expr> {
        if self.eat(&Tok::Minus) {
            let e = self.unary_expr()?;
            let span = e.span();
            return Some(Expr::Un { op: UnOp::Neg, e: Box::new(e), span });
        }
        if self.eat(&Tok::Plus) {
            return self.unary_expr();
        }
        self.pow_expr()
    }

    fn pow_expr(&mut self) -> Option<Expr> {
        let base = self.primary()?;
        if self.eat(&Tok::Pow) {
            // Right-associative.
            let exp = self.unary_expr()?;
            let span = base.span().merge(exp.span());
            return Some(Expr::Bin { op: BinOp::Pow, l: Box::new(base), r: Box::new(exp), span });
        }
        Some(base)
    }

    fn primary(&mut self) -> Option<Expr> {
        let span = self.peek_span();
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Some(Expr::Int(v, span))
            }
            Tok::Real(v) => {
                self.bump();
                Some(Expr::Real(v, span))
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::RParen);
                Some(e)
            }
            Tok::Ident(name) => {
                self.bump();
                if self.eat(&Tok::LParen) {
                    let mut subs = vec![self.expr()?];
                    while self.eat(&Tok::Comma) {
                        subs.push(self.expr()?);
                    }
                    self.expect(Tok::RParen);
                    let span = span.merge(self.peek_span());
                    Some(Expr::Ref { name, subs, span })
                } else {
                    Some(Expr::Var(name, span))
                }
            }
            other => {
                self.errs.push(Diagnostic::error(
                    codes::PARSE,
                    span,
                    format!("expected an expression, found {other}"),
                ));
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_subroutine() {
        let p = parse_program("subroutine s\nx = 1\nend subroutine").unwrap();
        assert_eq!(p.routines.len(), 1);
        assert_eq!(p.routines[0].name, "s");
        assert_eq!(p.routines[0].body.len(), 1);
    }

    #[test]
    fn params_and_decls() {
        let src = "subroutine s(a, n)\ninteger :: n\nreal :: a(8,8), b(8)\nintent(inout) :: a\nend";
        let p = parse_program(src).unwrap();
        let r = &p.routines[0];
        assert_eq!(r.params, vec!["a", "n"]);
        assert_eq!(r.decls.len(), 3);
        match &r.decls[1] {
            Decl::Type { ty: TypeSpec::Real, entities, .. } => {
                assert_eq!(entities.len(), 2);
                assert_eq!(entities[0].name, "a");
                assert_eq!(entities[0].dims.len(), 2);
            }
            other => panic!("bad decl {other:?}"),
        }
        match &r.decls[2] {
            Decl::Intent { intent: Intent::InOut, names, .. } => assert_eq!(names, &["a"]),
            other => panic!("bad decl {other:?}"),
        }
    }

    #[test]
    fn directives_static_and_executable() {
        let src = "subroutine s\n\
                   real :: a(8)\n\
                   !hpf$ processors p(4)\n\
                   !hpf$ dynamic a\n\
                   !hpf$ distribute a(block) onto p\n\
                   a = 0.0\n\
                   !hpf$ redistribute a(cyclic)\n\
                   end";
        let p = parse_program(src).unwrap();
        let r = &p.routines[0];
        assert_eq!(r.directives.len(), 3); // processors, dynamic, distribute
        assert_eq!(r.body.len(), 2); // assign + redistribute
        assert!(matches!(r.body[1], Stmt::Directive(Directive::Redistribute { .. })));
    }

    #[test]
    fn align_with_colon_form() {
        let src = "subroutine s\n!hpf$ align with t :: a, b, c\nend";
        let p = parse_program(src).unwrap();
        match &p.routines[0].directives[0] {
            Directive::Align { spec: AlignSpec::With { target, arrays }, .. } => {
                assert_eq!(target, "t");
                assert_eq!(arrays, &["a", "b", "c"]);
            }
            other => panic!("bad directive {other:?}"),
        }
    }

    #[test]
    fn align_explicit_form_with_affine_subscripts() {
        let src = "subroutine s\n!hpf$ realign a(i,j) with t(j+1, 2*i, *)\nend";
        let p = parse_program(src).unwrap();
        match &p.routines[0].body[0] {
            Stmt::Directive(Directive::Realign {
                spec: AlignSpec::Explicit { array, dummies, target, subscripts },
                ..
            }) => {
                assert_eq!(array, "a");
                assert_eq!(dummies, &["i", "j"]);
                assert_eq!(target, "t");
                assert_eq!(subscripts.len(), 3);
                assert!(matches!(subscripts[2], AlignSub::Star));
            }
            other => panic!("bad stmt {other:?}"),
        }
    }

    #[test]
    fn distribute_formats() {
        let src = "subroutine s\n!hpf$ distribute t(block(10), cyclic, *) onto p\nend";
        let p = parse_program(src).unwrap();
        match &p.routines[0].directives[0] {
            Directive::Distribute { target, formats, onto, .. } => {
                assert_eq!(target, "t");
                assert_eq!(formats.len(), 3);
                assert!(matches!(formats[0], DistFormatAst::Block(Some(_))));
                assert!(matches!(formats[1], DistFormatAst::Cyclic(None)));
                assert!(matches!(formats[2], DistFormatAst::Star));
                assert_eq!(onto.as_deref(), Some("p"));
            }
            other => panic!("bad directive {other:?}"),
        }
    }

    #[test]
    fn if_else_and_do() {
        let src = "subroutine s\n\
                   do i = 1, 10, 2\n\
                   if (a(i) > 0.0) then\n\
                   a(i) = -a(i)\n\
                   else\n\
                   a(i) = 0.0\n\
                   endif\n\
                   end do\n\
                   end";
        let p = parse_program(src).unwrap();
        match &p.routines[0].body[0] {
            Stmt::Do { var, step, body, .. } => {
                assert_eq!(var, "i");
                assert!(step.is_some());
                assert!(matches!(&body[0], Stmt::If { else_body, .. } if else_body.len() == 1));
            }
            other => panic!("bad stmt {other:?}"),
        }
    }

    #[test]
    fn interface_block() {
        let src = "subroutine s\n\
                   interface\n\
                   subroutine foo(x)\n\
                   real :: x(8)\n\
                   intent(in) :: x\n\
                   !hpf$ distribute x(cyclic)\n\
                   end subroutine\n\
                   end interface\n\
                   call foo(b)\n\
                   end";
        let p = parse_program(src).unwrap();
        let r = &p.routines[0];
        assert_eq!(r.interfaces.len(), 1);
        assert_eq!(r.interfaces[0].name, "foo");
        assert_eq!(r.interfaces[0].directives.len(), 1);
        assert!(matches!(&r.body[0], Stmt::Call { name, args, .. } if name == "foo" && args.len() == 1));
    }

    #[test]
    fn expression_precedence() {
        let src = "subroutine s\nx = 1 + 2 * 3 ** 2\nend";
        let p = parse_program(src).unwrap();
        match &p.routines[0].body[0] {
            Stmt::Assign { rhs, .. } => {
                // 1 + (2 * (3 ** 2))
                let Expr::Bin { op: BinOp::Add, r, .. } = rhs else { panic!() };
                let Expr::Bin { op: BinOp::Mul, r, .. } = r.as_ref() else { panic!() };
                assert!(matches!(r.as_ref(), Expr::Bin { op: BinOp::Pow, .. }));
            }
            other => panic!("bad stmt {other:?}"),
        }
    }

    #[test]
    fn kill_and_inherit_parse() {
        let src = "subroutine s\n!hpf$ inherit x\n!hpf$ kill a, b\nend";
        let p = parse_program(src).unwrap();
        let r = &p.routines[0];
        assert!(matches!(&r.directives[0], Directive::Inherit { names, .. } if names == &["x"]));
        assert!(matches!(&r.body[0], Stmt::Directive(Directive::Kill { names, .. }) if names.len() == 2));
    }

    #[test]
    fn parse_error_is_reported() {
        let errs = parse_program("subroutine s\nx = = 1\nend").unwrap_err();
        assert!(errs.iter().any(|e| e.code == codes::PARSE));
    }

    #[test]
    fn two_routines() {
        let src = "subroutine a\nx=1\nend\nsubroutine b\ny=2\nend";
        let p = parse_program(src).unwrap();
        assert_eq!(p.routines.len(), 2);
    }
}
