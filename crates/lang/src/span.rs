//! Source positions and spans for diagnostics.

/// A half-open byte range into the source, with the 1-based line of its
/// start for human-readable diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based source line of `start`.
    pub line: u32,
}

impl Span {
    /// Span covering `start..end` on `line`.
    pub fn new(start: usize, end: usize, line: u32) -> Self {
        Span { start, end, line }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: self.line.min(other.line),
        }
    }

    /// A zero-width span used for synthesized nodes.
    pub fn synthetic() -> Span {
        Span::default()
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}", self.line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_covers_both() {
        let a = Span::new(4, 9, 2);
        let b = Span::new(12, 20, 3);
        let m = a.merge(b);
        assert_eq!(m, Span::new(4, 20, 2));
    }
}
