//! `hpfc` — the facade crate: the full compilation pipeline of
//! *Compiling Dynamic Mappings with Array Copies* (Coelho, PPoPP'97),
//! from HPF source to an executable statically-mapped program, plus a
//! simulated distributed machine to run it on.
//!
//! # Quickstart
//!
//! ```
//! use hpfc::{compile, execute, CompileOptions, ExecConfig};
//!
//! let compiled = compile(hpfc::figures::FIG10_ADI, &CompileOptions::default()).unwrap();
//! let unit = &compiled.units["remap"];
//! assert!(unit.opt_stats.removed > 0); // useless remappings eliminated
//!
//! let result = execute(
//!     &compiled.programs(),
//!     "remap",
//!     ExecConfig::default().with_scalar("m", 1.0).with_scalar("t", 2.0),
//! )
//! .unwrap(); // execution failures are typed `ExecError`s, not panics
//! assert!(result.stats.bytes > 0); // remapping traffic was simulated
//! ```
//!
//! # Pipeline
//!
//! 1. [`hpfc_lang`] parses and analyzes the HPF subset (restrictions 2
//!    and 3 of the paper enforced here);
//! 2. optional loop-invariant remapping motion
//!    ([`hpfc_cfg::transform`], paper Fig. 16 → 17);
//! 3. [`hpfc_rgraph`] builds the remapping graph (restriction 1
//!    enforced here) and runs the App. C/D optimizations;
//! 4. [`hpfc_codegen`] emits the static program with Fig. 19/20 copy
//!    code;
//! 5. [`hpfc_interp`] executes it on the [`hpfc_runtime`] simulator
//!    with exact communication accounting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;

pub use hpfc_cfg as cfg;
pub use hpfc_codegen as codegen;
pub use hpfc_interp as interp;
pub use hpfc_lang as lang;
pub use hpfc_mapping as mapping;
pub use hpfc_rgraph as rgraph;
pub use hpfc_runtime as runtime;

pub use hpfc_codegen::{CodegenStats, StaticProgram};
pub use hpfc_interp::{execute, ExecConfig, ExecResult, Executor};
pub use hpfc_lang::figures;
pub use hpfc_lang::{Diagnostic, Severity};
pub use hpfc_rgraph::{OptConfig, OptStats};
pub use hpfc_runtime::{
    CostModel, ExecError, Machine, NetStats, PlanRegistry, RegistryConfig, RegistryOutcome,
};

/// Compilation options.
#[derive(Debug, Clone, Copy)]
pub struct CompileOptions {
    /// The remapping-graph optimizations (App. C/D). Defaults to all on;
    /// [`OptConfig::none`] is the naive baseline.
    pub opt: OptConfig,
    /// Loop-invariant remapping motion (Fig. 16 → 17). Off by default —
    /// it is a separate ablation in the paper.
    pub loop_motion: bool,
    /// Directive-level remap grouping (Fig. 3 template impact): the
    /// remaps one directive issues for several arrays are aggregated
    /// into a merged caterpillar schedule with coalesced same-pair
    /// wire messages. On by default (in naive mode too — it is a
    /// scheduling property, not a dataflow optimization); turn off via
    /// [`CompileOptions::ungrouped`] for the one-schedule-per-array
    /// baseline.
    pub group_remaps: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions { opt: OptConfig::default(), loop_motion: false, group_remaps: true }
    }
}

impl CompileOptions {
    /// Everything off: the translation is still array copies, but no
    /// dataflow optimization is applied.
    pub fn naive() -> Self {
        CompileOptions { opt: OptConfig::none(), ..CompileOptions::default() }
    }

    /// Everything on, including loop motion.
    pub fn max() -> Self {
        CompileOptions { loop_motion: true, ..CompileOptions::default() }
    }

    /// The same options with directive-level remap grouping disabled —
    /// every array of a directive gets its own solo schedule (the
    /// pre-coalescing behavior, kept as a measurable baseline).
    pub fn ungrouped(mut self) -> Self {
        self.group_remaps = false;
        self
    }
}

/// One compiled routine with all intermediate artifacts exposed.
#[derive(Debug, Clone)]
pub struct CompiledUnit {
    /// The analyzed routine.
    pub unit: hpfc_lang::sema::RoutineUnit,
    /// Its (optimized) remapping graph.
    pub rg: hpfc_rgraph::Rg,
    /// What the optimizer did.
    pub opt_stats: OptStats,
    /// The lowered static program.
    pub program: StaticProgram,
    /// What lowering emitted.
    pub codegen_stats: CodegenStats,
    /// Remapping directives moved out of loops by the motion pass.
    pub moved_remaps: usize,
}

/// A compiled module.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// Routines by name, in source order.
    pub units: BTreeMap<String, CompiledUnit>,
    /// Source order of routine names (the first is the main unit).
    pub order: Vec<String>,
    /// Front-end warnings.
    pub warnings: Vec<Diagnostic>,
}

impl Compiled {
    /// The main (first) compiled routine.
    pub fn main(&self) -> &CompiledUnit {
        &self.units[&self.order[0]]
    }

    /// The static programs, keyed by routine name, for the executor.
    pub fn programs(&self) -> BTreeMap<String, StaticProgram> {
        self.units.iter().map(|(k, v)| (k.clone(), v.program.clone())).collect()
    }
}

/// Compile an HPF source module end to end.
pub fn compile(src: &str, options: &CompileOptions) -> Result<Compiled, Vec<Diagnostic>> {
    let mut ast = hpfc_lang::parse_program(src)?;

    // Loop-invariant remapping motion is a source-to-source transform.
    let mut moved_per_routine: Vec<usize> = Vec::new();
    if options.loop_motion {
        for r in &mut ast.routines {
            let (new_r, moved) = hpfc_cfg::transform::hoist_trailing_loop_remaps(r);
            *r = new_r;
            moved_per_routine.push(moved);
        }
    } else {
        moved_per_routine = vec![0; ast.routines.len()];
    }

    let module = hpfc_lang::analyze(&ast)?;
    let mut units = BTreeMap::new();
    let mut order = Vec::new();
    let mut errs = Vec::new();
    for (i, unit) in module.routines.iter().enumerate() {
        match hpfc_rgraph::build(unit) {
            Ok(mut rg) => {
                let opt_stats = hpfc_rgraph::optimize(&mut rg, options.opt);
                let (program, codegen_stats) = hpfc_codegen::lower_with(
                    unit,
                    &rg,
                    &hpfc_codegen::LowerOptions { group_remaps: options.group_remaps },
                );
                order.push(unit.name.clone());
                units.insert(
                    unit.name.clone(),
                    CompiledUnit {
                        unit: unit.clone(),
                        rg,
                        opt_stats,
                        program,
                        codegen_stats,
                        moved_remaps: moved_per_routine[i],
                    },
                );
            }
            Err(mut e) => errs.append(&mut e),
        }
    }
    if !errs.is_empty() {
        return Err(errs);
    }
    Ok(Compiled { units, order, warnings: module.warnings })
}

/// Compile and run in one call; returns the compiled artifacts and the
/// execution result of the main routine. A compiled program executing
/// cleanly is this facade's contract, so an [`runtime::ExecError`]
/// (which [`execute`] returns as a value) panics here; call
/// [`execute`] directly to handle execution errors as data.
pub fn compile_and_run(
    src: &str,
    options: &CompileOptions,
    exec: ExecConfig,
) -> Result<(Compiled, ExecResult), Vec<Diagnostic>> {
    let compiled = compile(src, options)?;
    let programs = compiled.programs();
    let main = compiled.order[0].clone();
    let result = execute(&programs, &main, exec)
        .unwrap_or_else(|e| panic!("execution of `{main}` failed: {e}"));
    Ok((compiled, result))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_figures_compile_with_and_without_opts() {
        for (name, src) in figures::all() {
            for opts in [CompileOptions::default(), CompileOptions::naive(), CompileOptions::max()]
            {
                compile(src, &opts).unwrap_or_else(|e| panic!("{name}: {e:?}"));
            }
        }
    }

    #[test]
    fn naive_vs_optimized_remap_counts() {
        let naive = compile(figures::FIG10_ADI, &CompileOptions::naive()).unwrap();
        let opt = compile(figures::FIG10_ADI, &CompileOptions::default()).unwrap();
        let n = naive.main().program.count_remaps();
        let o = opt.main().program.count_remaps();
        assert!(o < n, "optimization must drop static remap slots: {o} !< {n}");
        // `removed` also counts slots at synthetic vertices (entry
        // instantiation) that never emit code in either mode.
        assert!(opt.main().opt_stats.removed >= n - o);
    }

    #[test]
    fn fig10_runs_end_to_end() {
        let (compiled, result) = compile_and_run(
            figures::FIG10_ADI,
            &CompileOptions::default(),
            ExecConfig::default().with_scalar("m", 1.0).with_scalar("t", 2.0),
        )
        .unwrap();
        assert!(result.stats.remaps_performed > 0);
        assert!(result.stats.bytes > 0);
        assert_eq!(compiled.main().program.nprocs, 4);
    }
}
