//! `hpfcc` — command-line driver for the hpfc-rs compiler.
//!
//! ```text
//! hpfcc [options] <file.f | figure-name>
//!
//!   --naive          disable the App. C/D optimizations
//!   --loop-motion    enable Fig. 16→17 loop-invariant remapping motion
//!   --graph          print the remapping graph (Fig. 11-style labels)
//!   --dot            print the remapping graph in graphviz format
//!   --emit           print the generated static program (Fig. 19/20)
//!   --run            execute on the simulated machine and print stats
//!   --scalar k=v     pass a scalar dummy argument (repeatable)
//! ```
//!
//! `figure-name` may be any of the built-in paper programs
//! (`fig1`, `fig2`, …, `fig10`, `adi`, `fft`, `lu`, …).

use hpfc::{compile, execute, CompileOptions, ExecConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: hpfcc [--naive] [--loop-motion] [--graph] [--dot] [--emit] [--run] [--scalar k=v] <file.f | figure>");
        std::process::exit(2);
    }

    let mut options = CompileOptions::default();
    let mut show_graph = false;
    let mut show_dot = false;
    let mut emit = false;
    let mut run = false;
    let mut exec = ExecConfig::default();
    let mut input: Option<String> = None;

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--naive" => options.opt = hpfc::OptConfig::none(),
            "--loop-motion" => options.loop_motion = true,
            "--graph" => show_graph = true,
            "--dot" => show_dot = true,
            "--emit" => emit = true,
            "--run" => run = true,
            "--scalar" => {
                let kv = it.next().unwrap_or_default();
                match kv.split_once('=') {
                    Some((k, v)) => {
                        let val: f64 = v.parse().unwrap_or_else(|_| {
                            eprintln!("bad scalar value in `{kv}`");
                            std::process::exit(2);
                        });
                        exec = exec.with_scalar(k, val);
                    }
                    None => {
                        eprintln!("--scalar expects k=v");
                        std::process::exit(2);
                    }
                }
            }
            other => input = Some(other.to_string()),
        }
    }

    let Some(input) = input else {
        eprintln!("no input given");
        std::process::exit(2);
    };

    // Builtin figure or file on disk.
    let src = match hpfc::figures::all().into_iter().find(|(n, _)| *n == input) {
        Some((_, s)) => s.to_string(),
        None => std::fs::read_to_string(&input).unwrap_or_else(|e| {
            eprintln!("cannot read `{input}`: {e}");
            std::process::exit(2);
        }),
    };

    let compiled = match compile(&src, &options) {
        Ok(c) => c,
        Err(errs) => {
            for e in errs {
                eprintln!("{e}");
            }
            std::process::exit(1);
        }
    };
    for w in &compiled.warnings {
        eprintln!("{w}");
    }

    for name in &compiled.order {
        let u = &compiled.units[name];
        println!(
            "routine `{}`: {} remapping slot(s), {} removed, {} trivial, {} emitted",
            name,
            u.opt_stats.total,
            u.opt_stats.removed,
            u.opt_stats.trivial,
            u.codegen_stats.emitted_remaps
        );
        if show_graph {
            println!("{}", hpfc::rgraph::dot::to_text(&u.rg, &u.unit));
        }
        if show_dot {
            println!("{}", hpfc::rgraph::dot::to_dot(&u.rg, &u.unit));
        }
        if emit {
            println!("{}", hpfc::codegen::render::program_text(&u.program));
        }
    }

    if run {
        let main = compiled.order[0].clone();
        let r = match execute(&compiled.programs(), &main, exec) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("execution of `{main}` failed: {e}");
                std::process::exit(1);
            }
        };
        println!("--- simulated execution ---");
        println!("messages:        {}", r.stats.messages);
        println!("bytes:           {}", r.stats.bytes);
        println!("time (model):    {:.1} us", r.stats.time_us);
        println!("remaps moved:    {}", r.stats.remaps_performed);
        println!("remaps skipped:  {}", r.stats.remaps_skipped_noop);
        println!("live reuses:     {}", r.stats.remaps_reused_live);
        println!("dead-value skips:{}", r.stats.remaps_dead_values);
        println!("peak memory:     {} B/proc", r.peak_mem_bytes);
    }
}
