//! E23 — the redistribution-engine substrate (ref. [19]): closed-form
//! communication-set computation works on periodic interval
//! descriptors, so plan wall time must be near-constant from n = 1024
//! to n = 4194304 (the enumeration oracle is O(n) for contrast). Also
//! measures the full data movement, which is O(n) by nature but moves
//! block-level runs, not elements.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpfc::mapping::{testing::mapping_1d as mk, DimFormat};
use hpfc::runtime::{
    plan_by_enumeration, plan_redistribution, ArrayRt, CommSchedule, CopyProgram, ExecMode,
    Machine, VersionData,
};

fn bench_plan_closed_form(c: &mut Criterion) {
    let mut g = c.benchmark_group("redist/plan_closed_form");
    for n in [1024u64, 16384, 262144, 4194304] {
        let src = mk(n, 16, DimFormat::Block(None));
        let dst = mk(n, 16, DimFormat::Cyclic(Some(4)));
        g.bench_with_input(BenchmarkId::from_parameter(n), &(src, dst), |b, (s, d)| {
            b.iter(|| std::hint::black_box(plan_redistribution(s, d, 8)))
        });
    }
    g.finish();
}

/// Extent-independence under wrapping layouts on both sides: the
/// hyper-period (lcm of the two block-cyclic periods) is what planning
/// iterates, never the extent.
fn bench_plan_hyperperiod(c: &mut Criterion) {
    let mut g = c.benchmark_group("redist/plan_hyperperiod");
    for n in [1024u64, 16384, 262144, 4194304] {
        let src = mk(n, 16, DimFormat::Cyclic(Some(3)));
        let dst = mk(n, 16, DimFormat::Cyclic(Some(5)));
        g.bench_with_input(BenchmarkId::from_parameter(n), &(src, dst), |b, (s, d)| {
            b.iter(|| std::hint::black_box(plan_redistribution(s, d, 8)))
        });
    }
    g.finish();
}

fn bench_plan_oracle(c: &mut Criterion) {
    let mut g = c.benchmark_group("redist/plan_enumeration_oracle");
    for n in [1024u64, 16384] {
        let src = mk(n, 16, DimFormat::Block(None));
        let dst = mk(n, 16, DimFormat::Cyclic(Some(4)));
        g.bench_with_input(BenchmarkId::from_parameter(n), &(src, dst), |b, (s, d)| {
            b.iter(|| std::hint::black_box(plan_by_enumeration(s, d, 8)))
        });
    }
    g.finish();
}

/// The copy engines head to head on steady-state movement (destination
/// preallocated, plan/program precomputed — the cache-hit remap path):
/// `tables` is the PR-2 descriptor-table engine (positions re-derived
/// per copy via `count_below`); `program_tK` replays the compiled
/// `CopyProgram` serially (`t1`) or with K scoped workers per
/// caterpillar round. BLOCK → CYCLIC(1) is the engine's worst case —
/// every run degrades to a single element.
fn bench_data_movement(c: &mut Criterion) {
    let mut g = c.benchmark_group("redist/data_movement");
    for n in [1024u64, 16384, 262144, 4194304] {
        let src = mk(n, 16, DimFormat::Block(None));
        let dst = mk(n, 16, DimFormat::Cyclic(None));
        let plan = plan_redistribution(&src, &dst, 8);
        let schedule = CommSchedule::from_plan(&plan);
        let program = CopyProgram::try_compile(&plan, &schedule).expect("compiles");
        let mut a = VersionData::new(src, 8);
        a.fill(|p| p[0] as f64);
        let mut t = VersionData::new(dst, 8);
        g.bench_function(BenchmarkId::new("tables", n), |b| {
            b.iter(|| {
                t.copy_values_from_plan(&a, &plan);
                std::hint::black_box(&t);
            })
        });
        for threads in [1usize, 2, 4] {
            let mode =
                if threads == 1 { ExecMode::Serial } else { ExecMode::Parallel(threads) };
            g.bench_function(BenchmarkId::new(format!("program_t{threads}"), n), |b| {
                b.iter(|| {
                    t.copy_values_from_program(&a, &program, mode);
                    std::hint::black_box(&t);
                })
            });
        }
    }
    g.finish();
}

/// The kernel-dispatch A/B: stride-encoded run families replayed
/// through compile-time-chosen kernels vs the same program expanded
/// back to flat triples (`expand_to_triples`, the pre-encoding
/// representation). `cyclic(1)` is the adversarial shape for the
/// triple encoding — one 12-byte triple per element, ~48 MB at
/// n = 4194304 — which families collapse to O(P_src × P_dst) 24-byte
/// descriptors. The artifact byte counts are printed next to the
/// replay times so the shrink is recorded alongside the speed.
fn bench_kernel_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("redist/kernel_dispatch");
    for n in [16384u64, 262144, 4194304] {
        let src = mk(n, 16, DimFormat::Block(None));
        let dst = mk(n, 16, DimFormat::Cyclic(None));
        let plan = plan_redistribution(&src, &dst, 8);
        let schedule = CommSchedule::from_plan(&plan);
        let strided = CopyProgram::try_compile(&plan, &schedule).expect("compiles");
        let flat = strided.expand_to_triples();
        eprintln!(
            "redist/kernel_dispatch n={n}: artifact {} B strided vs {} B triples ({}x)",
            strided.artifact_bytes(),
            flat.artifact_bytes(),
            flat.artifact_bytes() / strided.artifact_bytes().max(1),
        );
        let mut a = VersionData::new(src, 8);
        a.fill(|p| p[0] as f64);
        let mut t = VersionData::new(dst, 8);
        g.bench_function(BenchmarkId::new("strided", n), |b| {
            b.iter(|| {
                t.copy_values_from_program(&a, &strided, ExecMode::Serial);
                std::hint::black_box(&t);
            })
        });
        g.bench_function(BenchmarkId::new("triples", n), |b| {
            b.iter(|| {
                t.copy_values_from_program(&a, &flat, ExecMode::Serial);
                std::hint::black_box(&t);
            })
        });
    }
    g.finish();
}

/// The one-time cost the replay path buys its zero-per-copy price
/// with: compiling a plan + schedule into the flat triple program.
/// O(total runs) — the compiled artifact *is* the data movement, so
/// this scales with the extent, but it is paid once per (src, dst)
/// version pair and amortized over every later remap.
fn bench_copy_program_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("redist/copy_program_compile");
    for n in [16384u64, 262144, 4194304] {
        let src = mk(n, 16, DimFormat::Block(None));
        let dst = mk(n, 16, DimFormat::Cyclic(Some(4)));
        let plan = plan_redistribution(&src, &dst, 8);
        let schedule = CommSchedule::from_plan(&plan);
        g.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(plan, schedule),
            |b, (plan, schedule)| {
                b.iter(|| std::hint::black_box(CopyProgram::try_compile(plan, schedule)))
            },
        );
    }
    g.finish();
}

fn bench_procs_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("redist/plan_vs_procs");
    for p in [4u64, 16, 64] {
        let src = mk(65536, p, DimFormat::Block(None));
        let dst = mk(65536, p, DimFormat::Cyclic(None));
        g.bench_with_input(BenchmarkId::from_parameter(p), &(src, dst), |b, (s, d)| {
            b.iter(|| std::hint::black_box(plan_redistribution(s, d, 8)))
        });
    }
    g.finish();
}

/// The plan-caching payoff: a remap loop that bounces an array between
/// two mappings. `replan_every_iter` pays the ~tens-of-µs closed-form
/// planning on every bounce (the pre-cache behavior); `cached` goes
/// through [`ArrayRt`], which memoizes plan + schedule per (src, dst)
/// version pair — after the first bounce the replan cost disappears and
/// only the O(n) data movement remains.
fn bench_remap_loop_caching(c: &mut Criterion) {
    let n = 16384u64;
    let mut g = c.benchmark_group("redist/remap_loop");
    let src = mk(n, 16, DimFormat::Block(None));
    let dst = mk(n, 16, DimFormat::Cyclic(Some(4)));

    g.bench_function("replan_every_iter", |b| {
        let mut a = VersionData::new(src.clone(), 8);
        a.fill(|p| p[0] as f64);
        let mut t = VersionData::new(dst.clone(), 8);
        b.iter(|| {
            let plan = plan_redistribution(&src, &dst, 8);
            t.copy_values_from_plan(&a, &plan);
            let plan_back = plan_redistribution(&dst, &src, 8);
            a.copy_values_from_plan(&t, &plan_back);
            std::hint::black_box((&a, &t));
        })
    });

    g.bench_function("cached", |b| {
        let mut m = Machine::new(16);
        let mut rt = ArrayRt::new("a", vec![src.clone(), dst.clone()], 8);
        rt.current(&mut m, 0).fill(|p| p[0] as f64);
        let keep: std::collections::BTreeSet<u32> = [0u32, 1].into_iter().collect();
        b.iter(|| {
            rt.remap(&mut m, 1, &keep, false);
            rt.set(&[0], 1.0); // stale the other copy: data moves every time
            rt.remap(&mut m, 0, &keep, false);
            rt.set(&[1], 1.0);
            std::hint::black_box(&rt);
        })
    });
    g.finish();
}

/// Remap-as-a-service: 8 concurrent interpreter-style sessions (fresh
/// array + fresh machine each) bounce over a 4-pair pool. `shared`
/// wires every machine to one plan registry — after warm-up no session
/// ever plans; each one starts with two registry hits and replays
/// compiled programs. `solo` is the registry-disabled A/B: every
/// session re-plans both directions (closed-form plan + caterpillar
/// schedule + program compile × 16 per iteration). The gap is the
/// tentpole's payoff for many-session workloads.
fn bench_registry_sessions(c: &mut Criterion) {
    use hpfc::runtime::PlanRegistry;
    use std::sync::Arc;
    const SESSIONS: usize = 8;
    const PAIRS: usize = 4;
    type Pair = (hpfc::mapping::NormalizedMapping, hpfc::mapping::NormalizedMapping);
    let mut g = c.benchmark_group("redist/registry_sessions");
    let pairs: Arc<Vec<Pair>> = Arc::new(
        (0..PAIRS)
            .map(|i| {
                let n = 16384 + 1024 * i as u64;
                (mk(n, 16, DimFormat::Block(None)), mk(n, 16, DimFormat::Cyclic(Some(4))))
            })
            .collect(),
    );
    let run_sessions = |pairs: &Arc<Vec<Pair>>, registry: &Option<Arc<PlanRegistry>>| {
        let handles: Vec<_> = (0..SESSIONS)
            .map(|t| {
                let pairs = Arc::clone(pairs);
                let registry = registry.clone();
                std::thread::spawn(move || {
                    let (src, dst): &(_, _) = &pairs[t % PAIRS];
                    let mut m = match &registry {
                        Some(reg) => Machine::new(16).with_registry(Arc::clone(reg)),
                        None => Machine::new(16).without_registry(),
                    };
                    let mut rt = ArrayRt::new("a", vec![src.clone(), dst.clone()], 8);
                    rt.current(&mut m, 0).fill(|p| p[0] as f64);
                    let keep: std::collections::BTreeSet<u32> = [0u32, 1].into_iter().collect();
                    rt.remap(&mut m, 1, &keep, false);
                    rt.set(&[0], 1.0);
                    rt.remap(&mut m, 0, &keep, false);
                    std::hint::black_box(rt.get(&[0]))
                })
            })
            .collect();
        for h in handles {
            h.join().expect("session thread");
        }
    };
    g.bench_function("shared", |b| {
        let registry = Some(Arc::new(PlanRegistry::new(8, 256)));
        b.iter(|| run_sessions(&pairs, &registry))
    });
    g.bench_function("solo", |b| {
        b.iter(|| run_sessions(&pairs, &None))
    });
    g.finish();
}

/// Symbolic plans in P (`HPFC_SYMBOLIC`): launch-time instantiation vs
/// re-running the planner. `replan` is the concrete cost a re-provision
/// pays per mapping pair without the symbolic layer (closed-form plan +
/// caterpillar schedule + program compile from the concrete mappings);
/// `instantiate_new_p` is the symbolic layer's cost for a `P` it has
/// not seen — rebuild both mappings from the P-free residue in closed
/// form, then the same pipeline (so it must track `replan`, paid once
/// per format pair instead of once per mapping pair); and
/// `instantiate_cached_p` is the re-launch steady state — the
/// instantiation point is served from the instance cache, an Arc clone.
/// The registry-entry economics (O(format pairs) vs O(pairs × P)) are
/// printed next to the times.
fn bench_symbolic_instantiate(c: &mut Criterion) {
    use hpfc::mapping::{format_pair, normalize_symbolic};
    use hpfc::runtime::{PlanRegistry, PlannedRemap, SymbolicPlan};

    let n = 16384u64;
    let mut g = c.benchmark_group("redist/symbolic_instantiate");
    let fmt_src = DimFormat::Cyclic(Some(4));
    let fmt_dst = DimFormat::Cyclic(None);
    let (sf, _) = normalize_symbolic(&mk(n, 16, fmt_src)).expect("symbolic");
    let (df, _) = normalize_symbolic(&mk(n, 16, fmt_dst)).expect("symbolic");

    // Registry economics across a re-provisioning sweep: the same 4
    // format pairs launched at every P. Concrete keying holds one entry
    // per (pair, P); symbolic keying holds one per pair.
    let sweep = [4u64, 8, 16, 32, 64];
    let registry = PlanRegistry::new(8, 1024);
    for p in sweep {
        for (fs, fd) in [(fmt_src, fmt_dst), (fmt_dst, fmt_src)] {
            for extent in [n, 2 * n] {
                let (src, dst) = (mk(extent, p, fs), mk(extent, p, fd));
                registry.get_or_instantiate(&src, &dst, 8).expect("symbolic pair");
            }
        }
    }
    eprintln!(
        "redist/symbolic_instantiate: {} symbolic entries ({} instantiation points) \
         serve what concrete keying holds as {} entries across P in {sweep:?}",
        registry.sym_len(),
        registry.sym_instances(),
        registry.sym_instances(),
    );

    let (src64, dst64) = (mk(n, 64, fmt_src), mk(n, 64, fmt_dst));
    g.bench_function("replan", |b| {
        b.iter(|| {
            std::hint::black_box(PlannedRemap::compile(plan_redistribution(&src64, &dst64, 8)))
        })
    });
    g.bench_function("instantiate_new_p", |b| {
        b.iter(|| {
            let sym = SymbolicPlan::new(format_pair(sf, df), 8);
            std::hint::black_box(sym.instantiate_planned(64, 64, n).expect("realizable"))
        })
    });
    g.bench_function("instantiate_cached_p", |b| {
        let sym = SymbolicPlan::new(format_pair(sf, df), 8);
        sym.instantiate_planned(64, 64, n).expect("realizable");
        b.iter(|| std::hint::black_box(sym.instantiate_planned(64, 64, n).expect("cached")))
    });
    g.finish();
}

/// The restore-path payoff (Fig. 18, PR 4): a save/restore bounce
/// around a call — remap to the callee's version, write there (staling
/// the saved copy), restore to the saved tag. `cached` is the
/// post-lowering behavior: the restore arm was planned at compile time
/// and seeded into the cache, so the bounce is tag dispatch + compiled
/// program replay. `lazy_plan_every_restore` models the pre-PR restore
/// cost by evicting the restore direction from the plan cache before
/// each bounce — what the first execution of every flow-dependent
/// restore used to pay at run time (closed-form plan + caterpillar
/// schedule + program compile).
fn bench_restore_bounce(c: &mut Criterion) {
    let n = 16384u64;
    let mut g = c.benchmark_group("redist/restore_bounce");
    let saved_m = mk(n, 16, DimFormat::Block(None));
    let dummy_m = mk(n, 16, DimFormat::Cyclic(Some(4)));
    let saved: u32 = 0;
    let dummy: u32 = 1;
    let keep: std::collections::BTreeSet<u32> = [saved, dummy].into_iter().collect();

    let bounce = |evict_restore_plan: bool, b: &mut criterion::Bencher| {
        let mut m = Machine::new(16);
        let mut rt = ArrayRt::new("a", vec![saved_m.clone(), dummy_m.clone()], 8);
        rt.current(&mut m, saved).fill(|p| p[0] as f64);
        b.iter(|| {
            if evict_restore_plan {
                rt.plan_cache.remove(&(dummy, saved));
            }
            rt.remap(&mut m, dummy, &keep, false);
            rt.set(&[0], 1.0); // the callee writes: the saved copy stales
            rt.restore(&mut m, saved, &keep, false);
            std::hint::black_box(&rt);
        })
    };

    g.bench_function("cached", |b| bounce(false, b));
    g.bench_function("lazy_plan_every_restore", |b| bounce(true, b));
    g.finish();
}

/// The directive-level coalescing payoff (Fig. 3, PR 5): two arrays
/// aligned to one template bounce between two mappings. `solo_sum`
/// remaps each array through its own cached schedule (one caterpillar
/// sweep, one cache lookup, one accounting pass per array per
/// direction — the pre-grouping behavior); `coalesced` moves both
/// through one [`hpfc::runtime::PlannedGroup`]: same payload and the
/// same compiled copy runs, but one merged round sweep per direction —
/// the same-pair wire messages share rounds and latency charges, and
/// the per-remap bookkeeping (cache lookups, schedule accounting)
/// is paid once per group instead of once per array.
fn bench_group_remap(c: &mut Criterion) {
    use hpfc::runtime::{remap_group, GroupMember, PlannedGroup, PlannedRemap};
    use std::sync::Arc;

    let n = 4096u64;
    let mut g = c.benchmark_group("redist/group_remap");
    let v0 = mk(n, 16, DimFormat::Block(None));
    let v1 = mk(n, 16, DimFormat::Cyclic(Some(4)));
    let keep: std::collections::BTreeSet<u32> = [0u32, 1].into_iter().collect();
    let skip = std::collections::BTreeSet::new();

    g.bench_function("solo_sum", |b| {
        let mut m = Machine::new(16);
        let mut a0 = ArrayRt::new("a0", vec![v0.clone(), v1.clone()], 8);
        let mut a1 = ArrayRt::new("a1", vec![v0.clone(), v1.clone()], 8);
        a0.current(&mut m, 0).fill(|p| p[0] as f64);
        a1.current(&mut m, 0).fill(|p| 2.0 * p[0] as f64);
        b.iter(|| {
            a0.remap(&mut m, 1, &keep, false);
            a1.remap(&mut m, 1, &keep, false);
            a0.set(&[0], 1.0); // stale the other copies: data moves every time
            a1.set(&[0], 1.0);
            a0.remap(&mut m, 0, &keep, false);
            a1.remap(&mut m, 0, &keep, false);
            a0.set(&[1], 1.0);
            a1.set(&[1], 1.0);
            std::hint::black_box((&a0, &a1));
        })
    });

    g.bench_function("coalesced", |b| {
        let mut m = Machine::new(16);
        let mut a0 = ArrayRt::new("a0", vec![v0.clone(), v1.clone()], 8);
        let mut a1 = ArrayRt::new("a1", vec![v0.clone(), v1.clone()], 8);
        a0.current(&mut m, 0).fill(|p| p[0] as f64);
        a1.current(&mut m, 0).fill(|p| 2.0 * p[0] as f64);
        let solo =
            |s: &_, d: &_| Arc::new(PlannedRemap::compile(plan_redistribution(s, d, 8)));
        let fwd = PlannedGroup::compile(vec![solo(&v0, &v1), solo(&v0, &v1)]);
        let back = PlannedGroup::compile(vec![solo(&v1, &v0), solo(&v1, &v0)]);
        b.iter(|| {
            let mut members = [
                GroupMember { rt: &mut a0, src: 0, target: 1, may_live: &keep, skip_if_current: &skip },
                GroupMember { rt: &mut a1, src: 0, target: 1, may_live: &keep, skip_if_current: &skip },
            ];
            remap_group(&mut m, &mut members, &fwd);
            a0.set(&[0], 1.0);
            a1.set(&[0], 1.0);
            let mut members = [
                GroupMember { rt: &mut a0, src: 1, target: 0, may_live: &keep, skip_if_current: &skip },
                GroupMember { rt: &mut a1, src: 1, target: 0, may_live: &keep, skip_if_current: &skip },
            ];
            remap_group(&mut m, &mut members, &back);
            a0.set(&[1], 1.0);
            a1.set(&[1], 1.0);
            std::hint::black_box((&a0, &a1));
        })
    });
    g.finish();
}

/// What the failure model costs when it is off — and when it is on.
/// The cached remap bounce of `redist/remap_loop`, re-measured under
/// the fault/validation configurations: `validation_off` is the
/// default machine (no `FaultPlan`, `ValidationLevel::Off`) and must
/// be indistinguishable from the plain cached bounce — the guarded
/// ladder is compiled out of the path by one branch; `counts_on` adds
/// the per-round conservation check (an integer sum the replay already
/// has); `checksums_on` pays one extra read pass over source and
/// destination words per round — the price of detecting single-word
/// corruption.
fn bench_fault_overhead(c: &mut Criterion) {
    use hpfc::runtime::ValidationLevel;

    let n = 16384u64;
    let mut g = c.benchmark_group("redist/fault_overhead");
    let src = mk(n, 16, DimFormat::Block(None));
    let dst = mk(n, 16, DimFormat::Cyclic(Some(4)));
    let keep: std::collections::BTreeSet<u32> = [0u32, 1].into_iter().collect();

    let bounce = |validation: ValidationLevel, b: &mut criterion::Bencher| {
        let mut m = Machine::new(16).with_validation(validation);
        let mut rt = ArrayRt::new("a", vec![src.clone(), dst.clone()], 8);
        rt.current(&mut m, 0).fill(|p| p[0] as f64);
        b.iter(|| {
            rt.remap(&mut m, 1, &keep, false);
            rt.set(&[0], 1.0); // stale the other copy: data moves every time
            rt.remap(&mut m, 0, &keep, false);
            rt.set(&[1], 1.0);
            std::hint::black_box(&rt);
        })
    };

    g.bench_function("validation_off", |b| bounce(ValidationLevel::Off, b));
    g.bench_function("counts_on", |b| bounce(ValidationLevel::Counts, b));
    g.bench_function("checksums_on", |b| bounce(ValidationLevel::Checksums, b));
    g.finish();
}

/// What the transaction costs. `txn_on_default` is the default machine
/// (`HPFC_TXN=on`, no faults, no validation): the snapshot is armed
/// only on the guarded path, so this must be indistinguishable from
/// the plain cached bounce — the transactional machinery is one branch
/// here. `txn_on_counts` runs guarded AND armed: every bounce captures
/// a rollback record (destination runs into the machine's reused
/// scratch arena) and commits it — the true price of all-or-nothing
/// remaps. `txn_off_counts` is the same guarded bounce with the
/// transaction disabled, isolating the snapshot cost from the
/// validation cost.
fn bench_txn_overhead(c: &mut Criterion) {
    use hpfc::runtime::ValidationLevel;

    let n = 16384u64;
    let mut g = c.benchmark_group("redist/txn_overhead");
    let src = mk(n, 16, DimFormat::Block(None));
    let dst = mk(n, 16, DimFormat::Cyclic(Some(4)));
    let keep: std::collections::BTreeSet<u32> = [0u32, 1].into_iter().collect();

    let bounce = |txn: bool, validation: ValidationLevel, b: &mut criterion::Bencher| {
        let mut m = Machine::new(16).with_txn(txn).with_validation(validation);
        let mut rt = ArrayRt::new("a", vec![src.clone(), dst.clone()], 8);
        rt.current(&mut m, 0).fill(|p| p[0] as f64);
        b.iter(|| {
            rt.remap(&mut m, 1, &keep, false);
            rt.set(&[0], 1.0); // stale the other copy: data moves every time
            rt.remap(&mut m, 0, &keep, false);
            rt.set(&[1], 1.0);
            std::hint::black_box(&rt);
        })
    };

    g.bench_function("txn_on_default", |b| bounce(true, ValidationLevel::Off, b));
    g.bench_function("txn_on_counts", |b| bounce(true, ValidationLevel::Counts, b));
    g.bench_function("txn_off_counts", |b| bounce(false, ValidationLevel::Counts, b));
    g.finish();
}

criterion_group!(
    benches,
    bench_plan_closed_form,
    bench_plan_hyperperiod,
    bench_plan_oracle,
    bench_data_movement,
    bench_kernel_dispatch,
    bench_copy_program_compile,
    bench_procs_sweep,
    bench_remap_loop_caching,
    bench_registry_sessions,
    bench_symbolic_instantiate,
    bench_restore_bounce,
    bench_group_remap,
    bench_fault_overhead,
    bench_txn_overhead
);
criterion_main!(benches);
