//! E23 — the redistribution-engine substrate (ref. [19]): closed-form
//! communication-set computation works on periodic interval
//! descriptors, so plan wall time must be near-constant from n = 1024
//! to n = 4194304 (the enumeration oracle is O(n) for contrast). Also
//! measures the full data movement, which is O(n) by nature but moves
//! block-level runs, not elements.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpfc::mapping::{
    Alignment, DimFormat, Distribution, Extents, GridId, Mapping, NormalizedMapping, ProcGrid,
    Template, TemplateId,
};
use hpfc::runtime::{plan_by_enumeration, plan_redistribution, VersionData};

fn mk(n: u64, p: u64, fmt: DimFormat) -> NormalizedMapping {
    let t = Template { id: TemplateId(0), name: "T".into(), shape: Extents::new(&[n]) };
    let g = ProcGrid { id: GridId(0), name: "P".into(), shape: Extents::new(&[p]) };
    Mapping {
        align: Alignment::identity(TemplateId(0), 1),
        dist: Distribution::new(GridId(0), vec![fmt]),
    }
    .normalize(&Extents::new(&[n]), &t, &g)
    .unwrap()
}

fn bench_plan_closed_form(c: &mut Criterion) {
    let mut g = c.benchmark_group("redist/plan_closed_form");
    for n in [1024u64, 16384, 262144, 4194304] {
        let src = mk(n, 16, DimFormat::Block(None));
        let dst = mk(n, 16, DimFormat::Cyclic(Some(4)));
        g.bench_with_input(BenchmarkId::from_parameter(n), &(src, dst), |b, (s, d)| {
            b.iter(|| std::hint::black_box(plan_redistribution(s, d, 8)))
        });
    }
    g.finish();
}

/// Extent-independence under wrapping layouts on both sides: the
/// hyper-period (lcm of the two block-cyclic periods) is what planning
/// iterates, never the extent.
fn bench_plan_hyperperiod(c: &mut Criterion) {
    let mut g = c.benchmark_group("redist/plan_hyperperiod");
    for n in [1024u64, 16384, 262144, 4194304] {
        let src = mk(n, 16, DimFormat::Cyclic(Some(3)));
        let dst = mk(n, 16, DimFormat::Cyclic(Some(5)));
        g.bench_with_input(BenchmarkId::from_parameter(n), &(src, dst), |b, (s, d)| {
            b.iter(|| std::hint::black_box(plan_redistribution(s, d, 8)))
        });
    }
    g.finish();
}

fn bench_plan_oracle(c: &mut Criterion) {
    let mut g = c.benchmark_group("redist/plan_enumeration_oracle");
    for n in [1024u64, 16384] {
        let src = mk(n, 16, DimFormat::Block(None));
        let dst = mk(n, 16, DimFormat::Cyclic(Some(4)));
        g.bench_with_input(BenchmarkId::from_parameter(n), &(src, dst), |b, (s, d)| {
            b.iter(|| std::hint::black_box(plan_by_enumeration(s, d, 8)))
        });
    }
    g.finish();
}

fn bench_data_movement(c: &mut Criterion) {
    let mut g = c.benchmark_group("redist/data_movement");
    for n in [1024u64, 16384] {
        let src = mk(n, 16, DimFormat::Block(None));
        let dst = mk(n, 16, DimFormat::Cyclic(None));
        let mut a = VersionData::new(src, 8);
        a.fill(|p| p[0] as f64);
        g.bench_with_input(BenchmarkId::from_parameter(n), &(a, dst), |b, (a, d)| {
            b.iter(|| {
                let mut t = VersionData::new(d.clone(), 8);
                t.copy_values_from(a);
                std::hint::black_box(t)
            })
        });
    }
    g.finish();
}

fn bench_procs_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("redist/plan_vs_procs");
    for p in [4u64, 16, 64] {
        let src = mk(65536, p, DimFormat::Block(None));
        let dst = mk(65536, p, DimFormat::Cyclic(None));
        g.bench_with_input(BenchmarkId::from_parameter(p), &(src, dst), |b, (s, d)| {
            b.iter(|| std::hint::black_box(plan_redistribution(s, d, 8)))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_plan_closed_form,
    bench_plan_hyperperiod,
    bench_plan_oracle,
    bench_data_movement,
    bench_procs_sweep
);
criterion_main!(benches);
