//! Compiler-phase wall time for every paper figure: the cost of the
//! whole pipeline (parse → sema → G_R → optimize → codegen) is the
//! "compile-time optimizations are cheap" claim of the paper's
//! implicit-compilation philosophy (Sec. 2.3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpfc::{compile, figures, CompileOptions};

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline/figure");
    for (name, src) in figures::all() {
        g.bench_with_input(BenchmarkId::from_parameter(name), &src, |b, src| {
            b.iter(|| std::hint::black_box(compile(src, &CompileOptions::default()).unwrap()))
        });
    }
    g.finish();
}

fn bench_naive_vs_opt(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline/fig10");
    g.bench_function("naive", |b| {
        b.iter(|| {
            std::hint::black_box(
                compile(figures::FIG10_ADI, &CompileOptions::naive()).unwrap(),
            )
        })
    });
    g.bench_function("optimized", |b| {
        b.iter(|| {
            std::hint::black_box(
                compile(figures::FIG10_ADI, &CompileOptions::max()).unwrap(),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_figures, bench_naive_vs_opt);
criterion_main!(benches);
