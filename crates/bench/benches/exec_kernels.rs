//! E20/E21/E14 — end-to-end simulated execution of the paper's
//! motivating kernels, naive vs optimized. Wall time here is dominated
//! by the simulator, but the *ratio* tracks the eliminated remapping
//! work; the authoritative communication counts come from
//! `hpfc-experiments`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpfc::{compile, execute, figures, CompileOptions, ExecConfig};

fn run(programs: &std::collections::BTreeMap<String, hpfc::StaticProgram>, main: &str, t: f64) {
    let r = execute(
        programs,
        main,
        ExecConfig::default().with_scalar("t", t).with_scalar("m", 1.0),
    );
    std::hint::black_box(r);
}

fn bench_adi(c: &mut Criterion) {
    let mut g = c.benchmark_group("exec/adi_n32_p4_t4");
    for (label, opts) in
        [("naive", CompileOptions::naive()), ("optimized", CompileOptions::max())]
    {
        let src = figures::scaled("adi", 32, 4).unwrap();
        let compiled = compile(&src, &opts).unwrap();
        let programs = compiled.programs();
        g.bench_with_input(BenchmarkId::from_parameter(label), &programs, |b, p| {
            b.iter(|| run(p, "adi", 4.0))
        });
    }
    g.finish();
}

fn bench_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("exec/fft_n64_p4");
    for (label, opts) in
        [("naive", CompileOptions::naive()), ("optimized", CompileOptions::default())]
    {
        let src = figures::scaled("fft", 64, 4).unwrap();
        let compiled = compile(&src, &opts).unwrap();
        let programs = compiled.programs();
        g.bench_with_input(BenchmarkId::from_parameter(label), &programs, |b, p| {
            b.iter(|| run(p, "fft2d", 0.0))
        });
    }
    g.finish();
}

fn bench_loop_motion(c: &mut Criterion) {
    let mut g = c.benchmark_group("exec/fig16_t16");
    for (label, opts) in
        [("naive", CompileOptions::naive()), ("motioned", CompileOptions::max())]
    {
        let compiled = compile(figures::FIG16_LOOP, &opts).unwrap();
        let programs = compiled.programs();
        g.bench_with_input(BenchmarkId::from_parameter(label), &programs, |b, p| {
            b.iter(|| run(p, "fig16", 16.0))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_adi, bench_fft, bench_loop_motion);
criterion_main!(benches);
