//! E20/E21/E14 — end-to-end simulated execution of the paper's
//! motivating kernels, naive vs optimized. Wall time here is dominated
//! by the simulator, but the *ratio* tracks the eliminated remapping
//! work; the authoritative communication counts come from
//! `hpfc-experiments`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpfc::{compile, execute, figures, CompileOptions, ExecConfig};

fn run(programs: &std::collections::BTreeMap<String, hpfc::StaticProgram>, main: &str, t: f64) {
    let r = execute(
        programs,
        main,
        ExecConfig::default().with_scalar("t", t).with_scalar("m", 1.0),
    )
    .expect("kernel executes cleanly");
    std::hint::black_box(r);
}

fn bench_adi(c: &mut Criterion) {
    let mut g = c.benchmark_group("exec/adi_n32_p4_t4");
    for (label, opts) in
        [("naive", CompileOptions::naive()), ("optimized", CompileOptions::max())]
    {
        let src = figures::scaled("adi", 32, 4).unwrap();
        let compiled = compile(&src, &opts).unwrap();
        let programs = compiled.programs();
        g.bench_with_input(BenchmarkId::from_parameter(label), &programs, |b, p| {
            b.iter(|| run(p, "adi", 4.0))
        });
    }
    g.finish();
}

fn bench_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("exec/fft_n64_p4");
    for (label, opts) in
        [("naive", CompileOptions::naive()), ("optimized", CompileOptions::default())]
    {
        let src = figures::scaled("fft", 64, 4).unwrap();
        let compiled = compile(&src, &opts).unwrap();
        let programs = compiled.programs();
        g.bench_with_input(BenchmarkId::from_parameter(label), &programs, |b, p| {
            b.iter(|| run(p, "fft2d", 0.0))
        });
    }
    g.finish();
}

fn bench_loop_motion(c: &mut Criterion) {
    let mut g = c.benchmark_group("exec/fig16_t16");
    for (label, opts) in
        [("naive", CompileOptions::naive()), ("motioned", CompileOptions::max())]
    {
        let compiled = compile(figures::FIG16_LOOP, &opts).unwrap();
        let programs = compiled.programs();
        g.bench_with_input(BenchmarkId::from_parameter(label), &programs, |b, p| {
            b.iter(|| run(p, "fig16", 16.0))
        });
    }
    g.finish();
}

/// A Fig. 3-style template bounce, remap-dominated: three aligned
/// arrays, a loop whose every iteration redistributes the template
/// there and back (two remap groups of three arrays each, all moving
/// data — naive mode keeps no live copies). `grouped` executes each
/// directive as one merged-schedule remap group (3 coalesced wire
/// messages' worth of accounting per pair-round instead of 3×);
/// `ungrouped` is the one-solo-schedule-per-array baseline.
fn bench_template_bounce_group(c: &mut Criterion) {
    const BOUNCE: &str = "\
subroutine g3loop(t)
  integer :: t
  real :: a0(256), a1(256), a2(256)
!hpf$ processors p(8)
!hpf$ template tt(256)
!hpf$ dynamic tt
!hpf$ align with tt :: a0, a1, a2
!hpf$ distribute tt(block) onto p
  a0 = 1.0
  a1 = 2.0
  a2 = 3.0
  do k = 1, t
!hpf$ redistribute tt(cyclic)
    x = a0(1) + a1(2) + a2(3)
!hpf$ redistribute tt(block)
    x = a0(4) + a1(5) + a2(6)
  enddo
end subroutine
";
    let mut g = c.benchmark_group("exec/template_bounce_group");
    for (label, opts) in [
        ("grouped", CompileOptions::naive()),
        ("ungrouped", CompileOptions::naive().ungrouped()),
    ] {
        let compiled = compile(BOUNCE, &opts).unwrap();
        let programs = compiled.programs();
        g.bench_with_input(BenchmarkId::from_parameter(label), &programs, |b, p| {
            b.iter(|| run(p, "g3loop", 8.0))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_adi,
    bench_fft,
    bench_loop_motion,
    bench_template_bounce_group
);
criterion_main!(benches);
