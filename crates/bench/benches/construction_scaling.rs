//! E18 — remapping-graph construction complexity (paper App. B:
//! O(n·s·m²·p²)). Sweeps the number of statements `n`, remapping
//! statements `m`, and distributed arrays `p` independently on
//! synthetic worst-case routines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpfc_bench::synth_program;

fn build_graph(src: &str) {
    let m = hpfc::lang::frontend(src).unwrap();
    let rg = hpfc::rgraph::build(m.main()).unwrap();
    std::hint::black_box(rg);
}

fn bench_statements(c: &mut Criterion) {
    let mut g = c.benchmark_group("construction/statements");
    for n in [64usize, 256, 1024] {
        let src = synth_program(n, 8, 4);
        g.bench_with_input(BenchmarkId::from_parameter(n), &src, |b, src| {
            b.iter(|| build_graph(src))
        });
    }
    g.finish();
}

fn bench_remaps(c: &mut Criterion) {
    let mut g = c.benchmark_group("construction/remap_statements");
    for m in [2usize, 8, 32] {
        let src = synth_program(256, m, 4);
        g.bench_with_input(BenchmarkId::from_parameter(m), &src, |b, src| {
            b.iter(|| build_graph(src))
        });
    }
    g.finish();
}

fn bench_arrays(c: &mut Criterion) {
    let mut g = c.benchmark_group("construction/arrays");
    for p in [2usize, 8, 32] {
        let src = synth_program(256, 8, p);
        g.bench_with_input(BenchmarkId::from_parameter(p), &src, |b, src| {
            b.iter(|| build_graph(src))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_statements, bench_remaps, bench_arrays);
criterion_main!(benches);
