//! E19 — optimization complexity (paper App. C: O(m²·p·q·r) for the
//! useless-remapping removal and reaching recomputation). Sweeps
//! remapping statements `m` and arrays `p`; `q` (mappings per array) is
//! 2 by construction, `r` (max predecessors) is small and constant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpfc_bench::synth_program;

fn built(src: &str) -> (hpfc::lang::sema::Module, hpfc::rgraph::Rg) {
    let m = hpfc::lang::frontend(src).unwrap();
    let rg = hpfc::rgraph::build(m.main()).unwrap();
    (m, rg)
}

fn bench_remove_useless(c: &mut Criterion) {
    let mut g = c.benchmark_group("optimize/remove_useless_m");
    for m in [4usize, 16, 64] {
        let src = synth_program(2 * m, m, 4);
        let (_module, rg) = built(&src);
        g.bench_with_input(BenchmarkId::from_parameter(m), &rg, |b, rg| {
            b.iter_batched(
                || rg.clone(),
                |mut rg| {
                    hpfc::rgraph::optimize(&mut rg, hpfc::OptConfig::default());
                    std::hint::black_box(rg)
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_arrays(c: &mut Criterion) {
    let mut g = c.benchmark_group("optimize/arrays_p");
    for p in [2usize, 8, 32] {
        let src = synth_program(64, 8, p);
        let (_module, rg) = built(&src);
        g.bench_with_input(BenchmarkId::from_parameter(p), &rg, |b, rg| {
            b.iter_batched(
                || rg.clone(),
                |mut rg| {
                    hpfc::rgraph::optimize(&mut rg, hpfc::OptConfig::default());
                    std::hint::black_box(rg)
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_remove_useless, bench_arrays);
criterion_main!(benches);
