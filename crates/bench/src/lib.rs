//! Experiment harness: regenerates every figure/claim of the paper
//! (see DESIGN.md §4 for the experiment index and EXPERIMENTS.md for
//! recorded results).
//!
//! The `hpfc-experiments` binary prints the tables; the criterion
//! benches under `benches/` measure compiler-phase wall time and the
//! complexity claims of App. B/C.

use hpfc::{compile, compile_and_run, figures, CompileOptions, ExecConfig, NetStats};

/// A synthetic routine generator for the complexity experiments
/// (E18/E19): `n_stmts` filler statements, `n_remaps` redistributions
/// alternating between two distributions, `n_arrays` arrays aligned to
/// one template (so every redistribution remaps all of them), on a
/// 4-processor grid.
pub fn synth_program(n_stmts: usize, n_remaps: usize, n_arrays: usize) -> String {
    assert!(n_arrays >= 1);
    let mut s = String::from("subroutine synth\n");
    let names: Vec<String> = (0..n_arrays).map(|i| format!("a{i}")).collect();
    s.push_str(&format!("  real :: {}\n", names.iter().map(|n| format!("{n}(64)"))
        .collect::<Vec<_>>().join(", ")));
    s.push_str("!hpf$ processors p(4)\n!hpf$ template t(64)\n!hpf$ dynamic t\n");
    s.push_str(&format!("!hpf$ align with t :: {}\n", names.join(", ")));
    s.push_str("!hpf$ distribute t(block) onto p\n");
    // Interleave remaps evenly among the filler statements; every array
    // is referenced after every remapping so nothing is removed (the
    // worst case for the analyses).
    let gap = n_stmts / (n_remaps + 1);
    let mut stmt = 0usize;
    for r in 0..=n_remaps {
        for k in 0..gap.max(1) {
            if stmt >= n_stmts {
                break;
            }
            let a = &names[(stmt + k) % n_arrays];
            s.push_str(&format!("  {a}(1) = {a}(2) + 1.0\n"));
            stmt += 1;
        }
        if r < n_remaps {
            let fmt = if r % 2 == 0 { "cyclic" } else { "block" };
            s.push_str(&format!("!hpf$ redistribute t({fmt}) onto p\n"));
        }
    }
    s.push_str("end subroutine\n");
    s
}

/// One experiment row: a label plus naive/optimized traffic.
#[derive(Debug, Clone)]
pub struct Row {
    /// Experiment / configuration label.
    pub label: String,
    /// Naive (unoptimized) stats.
    pub naive: NetStats,
    /// Optimized stats.
    pub opt: NetStats,
    /// Extra notes (what the row demonstrates).
    pub note: String,
}

impl Row {
    /// Percentage of remapping bytes eliminated.
    pub fn saved_pct(&self) -> f64 {
        if self.naive.bytes == 0 {
            0.0
        } else {
            100.0 * (1.0 - self.opt.bytes as f64 / self.naive.bytes as f64)
        }
    }
}

/// Run one figure program under both configurations (the two runs are
/// independent simulations: execute them concurrently).
pub fn run_figure(src: &str, label: &str, note: &str, exec: ExecConfig) -> Row {
    let (naive, opt) = std::thread::scope(|s| {
        let e1 = exec.clone();
        let h1 = s.spawn(move || {
            compile_and_run(src, &CompileOptions::naive(), e1)
                .unwrap_or_else(|e| panic!("{e:?}"))
                .1
        });
        let h2 = s.spawn(move || {
            compile_and_run(src, &CompileOptions::max(), exec)
                .unwrap_or_else(|e| panic!("{e:?}"))
                .1
        });
        (h1.join().expect("naive run"), h2.join().expect("optimized run"))
    });
    Row { label: label.to_string(), naive: naive.stats, opt: opt.stats, note: note.to_string() }
}

/// Run a batch of (source, label, note, exec) cells concurrently with
/// scoped threads — each cell is an independent deterministic
/// simulation.
pub fn run_figures_parallel(cells: Vec<(String, String, String, ExecConfig)>) -> Vec<Row> {
    std::thread::scope(|s| {
        let handles: Vec<_> = cells
            .iter()
            .map(|(src, label, note, exec)| {
                s.spawn(move || run_figure(src, label, note, exec.clone()))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("experiment cell")).collect()
    })
}

/// Format a table of rows.
pub fn print_rows(title: &str, rows: &[Row]) {
    println!("\n== {title} ==");
    println!(
        "{:<22} | {:>9} {:>11} | {:>9} {:>11} | {:>7} | note",
        "experiment", "naive msg", "naive bytes", "opt msg", "opt bytes", "saved"
    );
    for r in rows {
        println!(
            "{:<22} | {:>9} {:>11} | {:>9} {:>11} | {:>6.1}% | {}",
            r.label, r.naive.messages, r.naive.bytes, r.opt.messages, r.opt.bytes,
            r.saved_pct(), r.note
        );
    }
}

/// Compile-time statistics row (remapping-slot accounting).
pub fn print_static_table() {
    println!("\n== static optimization effect per figure (E01-E11) ==");
    println!(
        "{:<8} | {:>5} {:>7} {:>7} {:>8} {:>8}",
        "figure", "slots", "removed", "trivial", "no-data", "emitted"
    );
    for (name, src) in figures::all() {
        let c = compile(src, &CompileOptions::default()).unwrap();
        let u = c.main();
        println!(
            "{:<8} | {:>5} {:>7} {:>7} {:>8} {:>8}",
            name,
            u.opt_stats.total,
            u.opt_stats.removed,
            u.opt_stats.trivial,
            u.codegen_stats.no_data_remaps,
            u.codegen_stats.emitted_remaps,
        );
    }
}

/// The standard scalar-argument set used by the harness.
pub fn std_exec() -> ExecConfig {
    ExecConfig::default().with_scalar("m", 1.0).with_scalar("t", 4.0).with_scalar("s", 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synth_programs_compile_at_scale() {
        for (n, m, p) in [(16, 2, 2), (64, 8, 4), (128, 4, 8)] {
            let src = synth_program(n, m, p);
            let c = compile(&src, &CompileOptions::default())
                .unwrap_or_else(|e| panic!("synth({n},{m},{p}): {e:?}"));
            // Every remapping survives (worst case by construction):
            // m redistributes × p arrays, plus entry slots.
            assert!(c.main().opt_stats.total >= m * p);
        }
    }

    #[test]
    fn rows_compute_savings() {
        let r = run_figure(figures::FIG3_ALIGNED, "fig3", "", ExecConfig::default());
        assert!(r.saved_pct() > 0.0);
    }
}
