//! `hpfc-experiments` — regenerate every experiment table of the
//! reproduction (DESIGN.md §4, results recorded in EXPERIMENTS.md).
//!
//! Usage: `cargo run -p hpfc-bench --release --bin hpfc-experiments`
//! (optionally pass a single experiment id such as `e04` or `adi`).

use hpfc::{compile, compile_and_run, figures, CompileOptions, ExecConfig};
use hpfc_bench::{print_rows, print_static_table, run_figure, run_figures_parallel, std_exec, Row};

fn main() {
    let filter = std::env::args().nth(1);
    let want = |id: &str| filter.as_deref().map(|f| f == id || f == "all").unwrap_or(true);

    if want("static") {
        print_static_table();
    }

    if want("figures") || filter.is_none() {
        let rows: Vec<Row> = vec![
            run_figure(
                figures::FIG1_DIRECT,
                "e01 fig1 direct",
                "2 movements -> 1 direct remapping",
                std_exec(),
            ),
            run_figure(
                figures::FIG2_USELESS,
                "e02 fig2 useless",
                "both C remappings eliminated",
                std_exec(),
            ),
            run_figure(
                figures::FIG3_ALIGNED,
                "e03 fig3 aligned",
                "5 aligned arrays -> only A,D move",
                std_exec(),
            ),
            run_figure(
                figures::FIG4_ARGS,
                "e04 fig4 args",
                "6 argument movements -> 3",
                std_exec(),
            ),
            run_figure(
                figures::FIG6_OK,
                "e06 fig6 status",
                "ambiguous state resolved by status",
                std_exec(),
            ),
            run_figure(
                figures::FIG8_CALL,
                "e08 fig8 call",
                "implicit remapping made explicit",
                std_exec(),
            ),
            run_figure(
                figures::FIG10_ADI,
                "e10/e11 fig10 remap",
                "the paper's running example",
                std_exec(),
            ),
            run_figure(
                figures::FIG13_LIVE,
                "e12 fig13 live copy",
                "read-only path reuses A_0",
                std_exec(),
            ),
            run_figure(
                figures::FIG16_LOOP,
                "e14 fig16 loop",
                "2t movements -> 2 (motion+status)",
                std_exec(),
            ),
            run_figure(
                figures::KILL_EXAMPLE,
                "kill sec4.3",
                "B moves no data under KILL",
                std_exec(),
            ),
        ];
        print_rows("figure experiments: remapping traffic naive vs optimized", &rows);
    }

    if want("e05") {
        println!("\n== e05/e16: flow-level rejections ==");
        for (name, src) in
            [("fig5 (E020)", figures::FIG5_AMBIGUOUS), ("fig21 (E021)", figures::FIG21_MULTI_LEAVING)]
        {
            match compile(src, &CompileOptions::default()) {
                Err(e) => println!("{name}: rejected as expected: {}", e[0]),
                Ok(_) => println!("{name}: ERROR - compiled but must be rejected"),
            }
        }
    }

    if want("adi") {
        let cells: Vec<_> = [(32u64, 4u64, 4.0), (64, 4, 4.0), (64, 8, 4.0), (128, 8, 8.0)]
            .into_iter()
            .map(|(n, p, t)| {
                (
                    figures::scaled("adi", n, p).unwrap(),
                    format!("e20 adi n={n} P={p} t={t}"),
                    "per-iteration sweep remapping".to_string(),
                    ExecConfig::default().with_scalar("t", t),
                )
            })
            .collect();
        print_rows("E20: ADI end-to-end", &run_figures_parallel(cells));
    }

    if want("fft") {
        let cells: Vec<_> = [(32u64, 4u64), (64, 4), (128, 8), (256, 8)]
            .into_iter()
            .map(|(n, p)| {
                (
                    figures::scaled("fft", n, p).unwrap(),
                    format!("e21 fft n={n} P={p}"),
                    "back-transpose reuses live copy".to_string(),
                    ExecConfig::default(),
                )
            })
            .collect();
        print_rows("E21: 2-D FFT transpose", &run_figures_parallel(cells));
    }

    if want("lu") {
        let rows = vec![run_figure(
            figures::LU_KERNEL,
            "e22 lu block<->cyclic",
            "phase-change remappings",
            ExecConfig::default(),
        )];
        print_rows("E22: LU phase changes", &rows);
    }

    if want("fig4-sweep") {
        let cells: Vec<_> = [(64u64, 4u64), (256, 8), (1024, 16)]
            .into_iter()
            .map(|(n, p)| {
                (
                    figures::scaled("fig4", n, p).unwrap(),
                    format!("e04 fig4 n={n} P={p}"),
                    "interprocedural remapping removal".to_string(),
                    ExecConfig::default(),
                )
            })
            .collect();
        print_rows("E04 sweep: argument remappings across sizes", &run_figures_parallel(cells));
    }

    if want("e24") {
        println!("\n== e24: memory-pressure eviction (fig13 read-only path) ==");
        let src = "subroutine fig13x(s)\n  real :: a(1024)\n!hpf$ processors p(8)\n!hpf$ dynamic a\n!hpf$ distribute a(block) onto p\n  a = 1.0\n  if (s > 0.0) then\n!hpf$ redistribute a(cyclic)\n    a = 2.0\n  else\n!hpf$ redistribute a(cyclic)\n    x = a(3)\n  endif\n!hpf$ redistribute a(block)\n  x = a(5)\nend subroutine\n";
        let exec = ExecConfig::default().with_scalar("s", -1.0);
        let (_, normal) = compile_and_run(src, &CompileOptions::default(), exec.clone()).unwrap();
        let mut pressed = exec;
        pressed.evict_live_copies = true;
        let (_, evicted) = compile_and_run(src, &CompileOptions::default(), pressed).unwrap();
        println!(
            "normal:  {:>8} bytes, reuse {}, peak mem {:>7} B",
            normal.stats.bytes, normal.stats.remaps_reused_live, normal.peak_mem_bytes
        );
        println!(
            "evicted: {:>8} bytes, reuse {}, peak mem {:>7} B",
            evicted.stats.bytes, evicted.stats.remaps_reused_live, evicted.peak_mem_bytes
        );
    }

    if want("e14") {
        println!("\n== e14: loop-invariant motion (fig16), movements per run ==");
        println!("{:>4} | {:>11} | {:>14} | {:>12}", "t", "naive moves", "motioned moves", "noop-skips");
        for t in [1.0, 4.0, 16.0] {
            let exec = ExecConfig::default().with_scalar("t", t);
            let (_, naive) =
                compile_and_run(figures::FIG16_LOOP, &CompileOptions::naive(), exec.clone())
                    .unwrap();
            let (_, moved) =
                compile_and_run(figures::FIG16_LOOP, &CompileOptions::max(), exec).unwrap();
            println!(
                "{:>4} | {:>11} | {:>14} | {:>12}",
                t, naive.stats.remaps_performed, moved.stats.remaps_performed,
                moved.stats.remaps_skipped_noop
            );
        }
    }

    println!("\ndone.");
}
