//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this vendored shim
//! provides the (small) slice of the proptest API this workspace uses:
//! [`Strategy`] with `prop_map` / `prop_recursive` / `boxed`, range and
//! tuple strategies, `prop::bool::ANY`, `prop::collection::vec`,
//! [`Just`], the `proptest!` / `prop_assert!` / `prop_assert_eq!` /
//! `prop_oneof!` macros, and [`ProptestConfig`].
//!
//! Sampling is deterministic: every test derives its RNG seed from the
//! test name and case index (splitmix64), so failures are reproducible
//! run-over-run without a persistence file. There is no shrinking; the
//! failing input is printed instead.

use std::fmt::Debug;
use std::rc::Rc;

// --- RNG ---------------------------------------------------------------

/// Deterministic splitmix64 generator seeded per (test, case).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test identifier and case number.
    pub fn for_case(test_seed: u64, case: u64) -> Self {
        TestRng { state: test_seed ^ case.wrapping_mul(0x9e3779b97f4a7c15) }
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Stable seed for a test, derived from its fully qualified name.
pub fn seed_from_name(name: &str) -> u64 {
    // FNV-1a.
    let mut h = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

// --- errors and config -------------------------------------------------

/// A failed property within a `proptest!` body.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    /// Human-readable failure description.
    pub message: String,
}

impl TestCaseError {
    /// Failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Per-block configuration (only `cases` is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

// --- the Strategy trait ------------------------------------------------

/// A generator of random values (the proptest core abstraction, minus
/// shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase into a clonable, shareable strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let this = Rc::new(self);
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| this.sample(rng)))
    }

    /// Recursive strategies: `f` receives the strategy built so far and
    /// returns the branch strategy; recursion is bounded by `depth`.
    /// (`_desired_size` and `_expected_branch` are accepted for API
    /// compatibility and ignored.)
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let branch = f(cur).boxed();
            let l = leaf.clone();
            cur = BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
                // Lean toward leaves so generated sizes stay bounded.
                if rng.below(2) == 0 {
                    l.sample(rng)
                } else {
                    branch.sample(rng)
                }
            }));
        }
        cur
    }
}

/// Type-erased strategy (`Rc`-shared, clonable).
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed alternatives (`prop_oneof!` backend).
pub fn union<T>(alts: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T>
where
    T: 'static,
{
    assert!(!alts.is_empty(), "prop_oneof! needs at least one alternative");
    BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
        let k = rng.below(alts.len() as u64) as usize;
        alts[k].sample(rng)
    }))
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                lo + (rng.below(span.saturating_add(1).max(1))) as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )+};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
}

/// The `prop::` namespace mirrored from real proptest.
pub mod prop {
    /// Boolean strategies.
    pub mod bool {
        use crate::{Strategy, TestRng};

        /// Strategy yielding uniform booleans.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// Uniform boolean strategy (`prop::bool::ANY`).
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;
            fn sample(&self, rng: &mut TestRng) -> bool {
                rng.below(2) == 1
            }
        }
    }

    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Strategy for `Vec`s with lengths drawn from a range.
        #[derive(Clone)]
        pub struct VecStrategy<S> {
            element: S,
            len: std::ops::Range<usize>,
        }

        /// `Vec` strategy over `element` with length in `len`.
        pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.len.clone().sample(rng);
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Everything a test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

// --- macros ------------------------------------------------------------

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($l:expr, $r:expr) => {{
        let (l, r) = (&$l, &$r);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($l), stringify!($r), l, r
        );
    }};
    ($l:expr, $r:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$l, &$r);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
            stringify!($l), stringify!($r), l, r, format!($($fmt)+)
        );
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($l:expr, $r:expr) => {{
        let (l, r) = (&$l, &$r);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($l), stringify!($r), l
        );
    }};
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::union(vec![$($crate::Strategy::boxed($s)),+])
    };
}

/// The `proptest!` block: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

/// Internal: expand each test item in a `proptest!` block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $( $pat:pat in $strat:expr ),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let seed = $crate::seed_from_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases as u64 {
                let mut rng = $crate::TestRng::for_case(seed, case);
                $(
                    let $pat = $crate::Strategy::sample(&($strat), &mut rng);
                )+
                let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = result {
                    panic!("proptest {} failed at case {}:\n{}", stringify!($name), case, e);
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}
